//! # predpkt — prediction-packetizing hardware/software co-emulation
//!
//! A Rust reproduction of *"A Prediction Packetizing Scheme for Reducing
//! Channel Traffic in Transaction-Level Hardware/Software Co-Emulation"*
//! (Lee, Chung, Ahn, Lee, Kyung — DATE 2005): optimistic simulator–accelerator
//! synchronization built on **prediction and rollback**, applied to an AMBA AHB
//! SoC split between a transaction-level simulator domain and an RTL
//! accelerator domain.
//!
//! This crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | virtual time, cost ledger, snapshot/rollback, traces |
//! | [`ahb`] | cycle-accurate AHB bus substrate (masters, slaves, arbiter, checker) |
//! | [`channel`] | the simulator–accelerator channel model (iPROVE PCI constants) |
//! | [`predict`] | LOB, delta packetizer, burst/response/last-value predictors |
//! | [`core`] | half-bus models, channel wrappers, transitions, the co-emulator |
//! | [`perfmodel`] | closed-form Table 2 / Figure 4 expectations |
//! | [`workloads`] | Fig. 2 SoCs, scenario blueprints, the controlled-accuracy harness |
//!
//! ## Quickstart
//!
//! ```
//! use predpkt::prelude::*;
//!
//! // Split the paper's Fig. 2 SoC across the two domains and co-emulate it
//! // with dynamic leader election.
//! let blueprint = predpkt::workloads::figure2_soc(42);
//! let config = CoEmuConfig::paper_defaults()
//!     .policy(ModePolicy::Auto)
//!     .rollback_vars(None);
//! let mut coemu = CoEmulator::from_blueprint(&blueprint, config)?;
//! coemu.run_until_committed(2_000)?;
//!
//! let report = coemu.report();
//! assert!(report.accesses_per_cycle() < 2.0, "fewer channel accesses than lockstep");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use predpkt_ahb as ahb;
pub use predpkt_channel as channel;
pub use predpkt_core as core;
pub use predpkt_perfmodel as perfmodel;
pub use predpkt_predict as predict;
pub use predpkt_sim as sim;
pub use predpkt_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use predpkt_ahb::{AhbBus, AhbMaster, AhbSlave, MasterId, SlaveId};
    pub use predpkt_channel::{ChannelCostModel, Side};
    pub use predpkt_core::{
        CoEmuConfig, CoEmulator, DomainModel, ModePolicy, PerfReport, SocBlueprint,
    };
    pub use predpkt_perfmodel::{AnalyticRow, ModelParams};
    pub use predpkt_sim::{CostCategory, Frequency, VirtualTime};
}
