//! # predpkt — prediction-packetizing hardware/software co-emulation
//!
//! A Rust reproduction of *"A Prediction Packetizing Scheme for Reducing
//! Channel Traffic in Transaction-Level Hardware/Software Co-Emulation"*
//! (Lee, Chung, Ahn, Lee, Kyung — DATE 2005): optimistic simulator–accelerator
//! synchronization built on **prediction and rollback**, applied to an AMBA AHB
//! SoC split between a transaction-level simulator domain and an RTL
//! accelerator domain.
//!
//! This crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | virtual time, cost ledger, snapshot/rollback, traces |
//! | [`ahb`] | cycle-accurate AHB bus substrate (masters, slaves, arbiter, checker) |
//! | [`channel`] | the channel model (iPROVE PCI constants) and the transport backends |
//! | [`predict`] | LOB, delta packetizer, predictors, pluggable predictor suites |
//! | [`core`] | half-bus models, channel wrappers, co-emulation sessions |
//! | [`perfmodel`] | closed-form Table 2 / Figure 4 expectations |
//! | [`workloads`] | Fig. 2 SoCs, scenario blueprints, the controlled-accuracy harness |
//!
//! ## Quickstart
//!
//! An [`EmuSession`](crate::core::EmuSession) composes a blueprint, a
//! configuration, a transport backend, a predictor suite, and observers:
//!
//! ```
//! use predpkt::prelude::*;
//!
//! // Split the paper's Fig. 2 SoC across the two domains and co-emulate it
//! // with dynamic leader election, counting protocol events as we go.
//! let blueprint = predpkt::workloads::figure2_soc(42);
//! let counters = EventCounters::new();
//! let mut session = EmuSession::from_blueprint(&blueprint)
//!     .config(CoEmuConfig::paper_defaults().policy(ModePolicy::Auto).rollback_vars(None))
//!     .observer(Box::new(counters.clone()))
//!     .build()?;
//! session.run_until_committed(2_000)?;
//!
//! let report = session.report();
//! assert!(report.accesses_per_cycle() < 2.0, "fewer channel accesses than lockstep");
//! assert!(counters.snapshot().lob_flushes > 0, "the LOB actually flushed");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same session runs over a real-thread transport
//! (`TransportSelect::Threaded`), a fault-injecting one
//! (`TransportSelect::Lossy`), a real TCP socket pair
//! (`TransportSelect::Tcp`), or a shared-memory ring pair
//! (`TransportSelect::Shm` — multi-process co-emulation on one host) by
//! changing one builder call — committed traces are bit-identical across
//! backends. Custom prediction strategies plug in through
//! [`predict::PredictorSuite`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use predpkt_ahb as ahb;
pub use predpkt_channel as channel;
pub use predpkt_core as core;
pub use predpkt_farm as farm;
pub use predpkt_perfmodel as perfmodel;
pub use predpkt_predict as predict;
pub use predpkt_sim as sim;
pub use predpkt_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use predpkt_ahb::{AhbBus, AhbMaster, AhbSlave, MasterId, SlaveId};
    pub use predpkt_channel::{ChannelCostModel, FaultSpec, Side};
    pub use predpkt_core::{
        CoEmuConfig, CoEmulator, DomainModel, EmuObserver, EmuSession, EventCounters, EventLog,
        ModePolicy, PerfReport, SocBlueprint, ThreadedOpts, TransportSelect,
    };
    pub use predpkt_perfmodel::{AnalyticRow, ModelParams};
    pub use predpkt_predict::{LastValueSuite, PaperSuite, PredictorSuite};
    pub use predpkt_sim::{CostCategory, Frequency, VirtualTime};
}
