//! End-to-end validation of the parametric harness: the synthetic SoC driven
//! through the full protocol engine must (a) exhibit the configured prediction
//! accuracy, (b) reproduce the paper's headline Table 2 figures at the
//! calibration points.

use predpkt_core::{CoEmuConfig, CoEmulator, ModePolicy};
use predpkt_sim::CostCategory;
use predpkt_workloads::SyntheticSoc;

fn run_als(p: f64, cycles: u64) -> predpkt_core::PerfReport {
    let (sim, acc) = SyntheticSoc::als(p, 0xfeed).build();
    let config = CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedAls);
    let mut coemu = CoEmulator::new(sim, acc, config);
    coemu.run_until_committed(cycles).unwrap();
    coemu.report()
}

#[test]
fn observed_accuracy_tracks_configured_p() {
    for &p in &[1.0, 0.9, 0.6, 0.3] {
        let report = run_als(p, 40_000);
        let observed = report.observed_accuracy().expect("predictions checked");
        assert!(
            (observed - p).abs() < 0.02,
            "configured p={p}, observed {observed}"
        );
    }
}

#[test]
fn perfect_accuracy_reproduces_paper_performance() {
    // Paper Table 2, p=1.0: Tacc=1.0e-7, Tstore=4.69e-10, Tch=4.3e-7,
    // performance 652 kcycles/s (16.75x over the 38.9k conventional baseline).
    let report = run_als(1.0, 50_000);
    let perf = report.performance_cps();
    assert!(
        (perf - 652_000.0).abs() / 652_000.0 < 0.05,
        "perf {perf} vs paper 652k"
    );
    let tacc = report.per_cycle(CostCategory::Accelerator);
    assert!((tacc - 1.0e-7).abs() / 1.0e-7 < 0.03, "Tacc {tacc}");
    let tstore = report.per_cycle(CostCategory::StateStore);
    assert!(
        (tstore - 4.69e-10).abs() / 4.69e-10 < 0.05,
        "Tstore {tstore}"
    );
    let tch = report.per_cycle(CostCategory::Channel);
    assert!((tch - 4.3e-7).abs() / 4.3e-7 < 0.15, "Tch {tch}");
    // No rollbacks at perfect accuracy.
    assert_eq!(
        report.sim_stats().rollbacks + report.acc_stats().rollbacks,
        0
    );
}

#[test]
fn degradation_is_monotonic_in_accuracy() {
    let mut last = f64::INFINITY;
    for &p in &[1.0, 0.99, 0.9, 0.8, 0.6, 0.3, 0.1] {
        let perf = run_als(p, 20_000).performance_cps();
        assert!(
            perf < last,
            "performance must degrade as accuracy drops: p={p}, {perf} !< {last}"
        );
        last = perf;
    }
}

#[test]
fn channel_accesses_amortized_at_high_accuracy() {
    // Two accesses per transition of ~64 committed cycles at p=1.
    let report = run_als(1.0, 20_000);
    let apc = report.accesses_per_cycle();
    assert!(
        apc < 0.04,
        "p=1 should amortize to ~2/64 accesses per cycle, got {apc}"
    );
    // The R-path (success report) is the steady state at p=1.
    assert!(report.sim_stats().path(predpkt_core::PaperPath::R) > 0);
}

#[test]
fn rollback_costs_appear_at_low_accuracy() {
    let report = run_als(0.5, 20_000);
    assert!(report.rollback_rate() > 0.0);
    assert!(report.per_cycle(CostCategory::StateRestore) > 0.0);
    let (f, p_, s, l, r, c) = (
        report.acc_stats().path(predpkt_core::PaperPath::F),
        report.acc_stats().path(predpkt_core::PaperPath::P),
        report.acc_stats().path(predpkt_core::PaperPath::S),
        report.sim_stats().path(predpkt_core::PaperPath::L),
        report.sim_stats().path(predpkt_core::PaperPath::R),
        report.sim_stats().path(predpkt_core::PaperPath::C),
    );
    // Paper Table 1: the leader occupies P/S/F paths, the lagger L/R paths.
    assert!(f > 0, "roll-forth exercised");
    assert!(p_ > 0 && s > 0 && l > 0);
    // Full-success transitions are essentially impossible at p=0.5 with 64
    // predictions (0.5^64); the R-path is exercised in the p=1 test instead.
    let _ = r;
    assert_eq!(
        c, 0,
        "forced ALS on an always-predictable model never goes conservative"
    );
}

#[test]
fn sla_mirrors_als_with_simulator_leading() {
    let (sim, acc) = SyntheticSoc::sla(1.0, 7).build();
    let config = CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedSla);
    let mut coemu = CoEmulator::new(sim, acc, config);
    coemu.run_until_committed(20_000).unwrap();
    let report = coemu.report();
    // Simulator leads: its P-path is occupied, the accelerator follows.
    assert!(report.sim_stats().path(predpkt_core::PaperPath::P) > 0);
    assert!(report.acc_stats().path(predpkt_core::PaperPath::L) > 0);
    // SLA at p=1 with sim=1000k achieves a gain comparable to ALS (the paper
    // reports 15.34x vs 38.9k = ~597 kcycles/s).
    let perf = report.performance_cps();
    assert!(
        perf > 550_000.0 && perf < 700_000.0,
        "SLA p=1 perf {perf} out of the expected band"
    );
}

#[test]
fn conventional_baseline_reproduces_paper() {
    // Conservative mode on the synthetic payloads must land on the paper's
    // 38.9 kcycles/s conventional figure.
    let (sim, acc) = SyntheticSoc::als(1.0, 3).build();
    let config = CoEmuConfig::paper_defaults().policy(ModePolicy::Conservative);
    let mut coemu = CoEmulator::new(sim, acc, config);
    coemu.run_until_committed(3_000).unwrap();
    let report = coemu.report();
    let perf = report.performance_cps();
    assert!(
        (perf - 38_900.0).abs() / 38_900.0 < 0.05,
        "conventional perf {perf} vs paper 38.9k"
    );
    assert!((report.accesses_per_cycle() - 2.0).abs() < 0.01);
}

#[test]
fn carry_actuals_refinement_improves_low_accuracy() {
    // Our head-carry refinement adds one guaranteed-correct cycle per
    // transition; at low accuracy that nearly doubles progress per transition.
    let run = |carry: bool| {
        let (sim, acc) = SyntheticSoc::als(0.1, 5).build();
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::ForcedAls)
            .carry(carry);
        let mut coemu = CoEmulator::new(sim, acc, config);
        coemu.run_until_committed(5_000).unwrap();
        coemu.report().performance_cps()
    };
    let faithful = run(false);
    let refined = run(true);
    assert!(
        refined > faithful * 1.2,
        "head-carry should win at p=0.1: {refined} vs {faithful}"
    );
}
