//! Real-SoC blueprints used by examples, tests, and benches.

use predpkt_ahb::engine::BusOp;
use predpkt_ahb::masters::{CpuMaster, CpuProfile, DmaDescriptor, DmaMaster, TrafficGenMaster};
use predpkt_ahb::signals::{Hburst, Hsize};
use predpkt_ahb::slaves::{FifoSlave, MemorySlave, PeripheralSlave, SplitSlave};
use predpkt_core::{Side, SocBlueprint};

/// The paper's Fig. 2 arrangement: three masters and three slaves split across
/// the domains (TL components on the simulator, RTL on the accelerator).
///
/// * M0 — CPU (simulator, TL)
/// * M1 — DMA engine (accelerator, RTL)
/// * M2 — wrap-burst traffic generator (accelerator, RTL)
/// * S0 — main memory (simulator, TL)
/// * S1 — slow memory, 2/1 wait states (simulator, TL)
/// * S2 — timer peripheral with IRQ (accelerator, RTL)
pub fn figure2_soc(seed: u64) -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Simulator, move || {
            Box::new(CpuMaster::new(seed | 1, CpuProfile::default()))
        })
        .master(Side::Accelerator, || {
            Box::new(DmaMaster::new(vec![
                DmaDescriptor::new(0x0000_0100, 0x0000_1100, 24),
                DmaDescriptor::new(0x0000_1200, 0x0000_0200, 12),
            ]))
        })
        .master(Side::Accelerator, || {
            Box::new(
                TrafficGenMaster::from_ops(vec![
                    BusOp::read_burst(0x0000_0040, Hsize::Word, Hburst::Wrap8),
                    BusOp::write_single(0x0000_2004, 0xabcd),
                ])
                .looping()
                .with_idle_gap(11),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x1000, || {
            Box::new(MemorySlave::new(0x1000, 0))
        })
        .slave(Side::Simulator, 0x0000_1000, 0x1000, || {
            Box::new(MemorySlave::with_waits(0x1000, 2, 1))
        })
        .slave(Side::Accelerator, 0x0000_2000, 0x1000, || {
            Box::new(PeripheralSlave::new(1))
        })
}

/// A DMA-offload workload: the accelerator-side DMA streams blocks between two
/// accelerator-side memories while the simulator-side CPU polls sparsely —
/// the best case for the optimistic scheme (long, predictable bursts, data
/// flow confined to the leader).
pub fn dma_offload_soc(words: u32) -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Accelerator, move || {
            Box::new(DmaMaster::new(vec![DmaDescriptor::new(
                0x1000, 0x2000, words,
            )]))
        })
        .master(Side::Simulator, || {
            Box::new(
                TrafficGenMaster::from_ops(vec![BusOp::read_single(0x0000_0010)])
                    .looping()
                    .with_idle_gap(31),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x1000, || {
            Box::new(MemorySlave::new(0x1000, 0))
        })
        .slave(Side::Accelerator, 0x0000_1000, 0x1000, || {
            let mut m = MemorySlave::new(0x1000, 0);
            for i in 0..256 {
                m.poke_word(4 * i, 0x5000_0000 + i);
            }
            Box::new(m)
        })
        .slave(Side::Accelerator, 0x0000_2000, 0x1000, || {
            Box::new(MemorySlave::new(0x1000, 1))
        })
}

/// An interrupt-driven workload: an accelerator-side timer peripheral
/// interrupts a simulator-side CPU that services it over the bus.
pub fn irq_driven_soc(period: u32) -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Simulator, move || {
            Box::new(
                TrafficGenMaster::from_ops(vec![
                    BusOp::write_single(0x1008, period), // timer period
                    BusOp::write_single(0x1000, 0b11),   // enable timer + IRQ
                    BusOp::read_single(0x1004),          // poll status
                    BusOp::write_single(0x1004, 1),      // acknowledge
                ])
                .looping()
                .with_idle_gap(7),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x1000, || {
            Box::new(MemorySlave::new(0x1000, 0))
        })
        .slave(Side::Accelerator, 0x0000_1000, 0x1000, || {
            Box::new(PeripheralSlave::new(0))
        })
}

/// A SPLIT-heavy workload: accesses to a slow split-capable device keep
/// masking/unmasking masters across the domain boundary.
pub fn split_heavy_soc(latency: u32, seed: u64) -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Accelerator, || {
            Box::new(
                TrafficGenMaster::from_ops(vec![
                    BusOp::write_single(0x1004, 0x11),
                    BusOp::read_single(0x1004),
                ])
                .looping()
                .with_idle_gap(3),
            )
        })
        .master(Side::Simulator, move || {
            Box::new(CpuMaster::new(seed | 1, CpuProfile::default()))
        })
        .slave(Side::Simulator, 0x0000_0000, 0x1000, || {
            Box::new(MemorySlave::new(0x1000, 0))
        })
        .slave(Side::Accelerator, 0x0000_1000, 0x1000, move || {
            Box::new(SplitSlave::new(0x100, latency))
        })
}

/// A streaming workload: the simulator-side consumer drains an
/// accelerator-side producer FIFO — the paper's producer–consumer response
/// archetype, exercising the wait-state predictor.
pub fn stream_soc(produce_period: u32) -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Simulator, move || {
            Box::new(
                TrafficGenMaster::from_ops(vec![BusOp::read_incr(0x1000, Hsize::Word, 4)])
                    .looping()
                    .with_idle_gap(2),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x1000, || {
            Box::new(MemorySlave::new(0x1000, 0))
        })
        .slave(Side::Accelerator, 0x0000_1000, 0x1000, move || {
            Box::new(FifoSlave::new(8, produce_period, 0))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_blueprints_build_golden_and_pairs() {
        for (name, bp) in [
            ("figure2", figure2_soc(42)),
            ("dma", dma_offload_soc(64)),
            ("irq", irq_driven_soc(16)),
            ("split", split_heavy_soc(5, 9)),
            ("stream", stream_soc(3)),
        ] {
            let golden = bp.build_golden().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(golden.num_masters() >= 1, "{name}");
            let (sim, acc) = bp.build_pair().unwrap();
            assert!(bp.placement().is_split(), "{name} must span both domains");
            drop((sim, acc));
        }
    }

    #[test]
    fn figure2_is_three_by_three() {
        let bp = figure2_soc(1);
        assert_eq!(bp.num_masters(), 3);
        assert_eq!(bp.num_slaves(), 3);
    }

    #[test]
    fn blueprints_are_deterministic_factories() {
        let bp = figure2_soc(7);
        let mut a = bp.build_golden().unwrap();
        let mut b = bp.build_golden().unwrap();
        a.run(300);
        b.run(300);
        assert_eq!(a.trace().hash(), b.trace().hash());
    }
}
