//! The controlled-accuracy synthetic harness.
//!
//! [`SyntheticSoc`] builds a pair of [`SyntheticModel`]s: the lagger side hosts
//! a pseudo-random **value stream** whose word changes with probability `1−p`
//! at each cycle (a fresh SplitMix64 draw keyed by the cycle index, so the
//! process is independent of rollback replays); the leader side hosts a
//! deterministic counter. The leader predicts the stream by last value, making
//! each per-cycle prediction correct with probability exactly `p` — the
//! definition of the paper's *prediction accuracy* axis in Table 2 / Figure 4.
//!
//! Payload widths default to the paper's conventional-method assumption
//! (≈2 words simulator→accelerator, 1 word back per cycle).

use predpkt_channel::Side;
use predpkt_core::{DomainModel, EmuSession, EmuSessionBuilder, TickKind};
use predpkt_sim::{
    splitmix64_mix, Snapshot, SnapshotError, StateReader, StateWriter, Trace, TraceMark,
};

/// One synthetic domain. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticModel {
    side: Side,
    leader_side: Side,
    /// Probability a cycle keeps the stream value (prediction accuracy).
    p: f64,
    seed: u64,
    local_width: usize,
    remote_width: usize,
    /// Current stream value (lagger) or counter base (leader).
    value: u32,
    /// Last observed remote words (the last-value predictor).
    last_remote: Vec<u32>,
    cycle: u64,
    trace: Trace,
}

impl SyntheticModel {
    fn new(
        side: Side,
        leader_side: Side,
        p: f64,
        seed: u64,
        local_width: usize,
        remote_width: usize,
    ) -> Self {
        assert!((0.0..=1.0).contains(&p), "accuracy must be a probability");
        assert!(
            local_width > 0 && remote_width > 0,
            "widths must be non-zero"
        );
        SyntheticModel {
            side,
            leader_side,
            p,
            seed,
            local_width,
            remote_width,
            value: 0,
            last_remote: vec![0; remote_width],
            cycle: 0,
            trace: Trace::new(),
        }
    }

    fn is_stream_host(&self) -> bool {
        self.side != self.leader_side
    }

    /// The stream value for a given cycle is a pure function of (seed, cycle):
    /// each cycle keeps the previous value with probability `p`, else draws a
    /// fresh non-equal value.
    fn stream_step(&self, value: u32, cycle: u64) -> u32 {
        let r = splitmix64_mix(self.seed, cycle);
        // Map the high 53 bits to [0,1).
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.p {
            value
        } else {
            // A fresh value guaranteed different from the current one.
            let delta = ((r & 0x7fff_ffff) as u32) | 1;
            value.wrapping_add(delta)
        }
    }
}

impl DomainModel for SyntheticModel {
    fn side(&self) -> Side {
        self.side
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn local_width(&self) -> usize {
        self.local_width
    }

    fn remote_width(&self) -> usize {
        self.remote_width
    }

    fn local_outputs(&self) -> Vec<u32> {
        // Both sides expose their current value in word 0 and stable zeros
        // elsewhere: consecutive cycles differ only when the value changes, so
        // the delta packetizer compresses flushes to ≈1 word per cycle — the
        // payload regime the paper's Tch row assumes (mostly-stable MSABS
        // signals within a burst).
        let mut out = vec![0u32; self.local_width];
        out[0] = self.value;
        out
    }

    fn needs_sync(&self) -> bool {
        false
    }

    fn elect_leader(&self) -> Side {
        self.leader_side
    }

    fn predict_remote(&mut self) -> Vec<u32> {
        // Last-value prediction of the peer's outputs — correct with
        // probability exactly `p` against the stream host.
        self.last_remote.clone()
    }

    fn tick(&mut self, remote: &[u32], kind: TickKind) {
        debug_assert_eq!(remote.len(), self.remote_width);
        self.trace
            .record(self.local_outputs().iter().map(|&w| w as u64).collect());
        if kind == TickKind::Actual {
            self.last_remote = remote.to_vec();
        } else {
            // Speculative timeline: the last-value predictor assumes stability,
            // so the reference stays as-is.
        }
        if self.is_stream_host() {
            self.value = self.stream_step(self.value, self.cycle);
        } else {
            // The leader's payload changes only when the observed stream does,
            // mirroring "data activity correlates with unpredictability".
            if remote[0] != self.value {
                self.value = remote[0];
            }
        }
        self.cycle += 1;
    }

    fn verify_prediction(&self, _leader_outputs: &[u32], predicted_me: &[u32]) -> bool {
        predicted_me == self.local_outputs()
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }

    fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    fn trace_mark(&self) -> TraceMark {
        self.trace.mark()
    }

    fn trace_truncate(&mut self, mark: TraceMark) {
        self.trace.truncate(mark);
    }
}

impl Snapshot for SyntheticModel {
    fn save(&self, w: &mut StateWriter<'_>) {
        w.u32(self.value);
        w.slice_u32(&self.last_remote);
        w.word(self.cycle);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.value = r.u32()?;
        self.last_remote = r.slice_u32()?;
        self.cycle = r.word()?;
        Ok(())
    }
}

/// Factory for synthetic model pairs.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSoc {
    /// Prediction accuracy `p`.
    pub accuracy: f64,
    /// Which side leads (ALS = accelerator, SLA = simulator).
    pub leader: Side,
    /// PRNG seed.
    pub seed: u64,
    /// Simulator-side payload width in words (paper conventional ≈ 2).
    pub sim_width: usize,
    /// Accelerator-side payload width in words (paper conventional ≈ 1).
    pub acc_width: usize,
}

impl SyntheticSoc {
    /// The ALS arrangement (accelerator leads, stream on the simulator side)
    /// with the paper's payload assumptions.
    pub fn als(accuracy: f64, seed: u64) -> Self {
        SyntheticSoc {
            accuracy,
            leader: Side::Accelerator,
            seed,
            sim_width: 2,
            acc_width: 1,
        }
    }

    /// The SLA arrangement (simulator leads, stream on the accelerator side).
    pub fn sla(accuracy: f64, seed: u64) -> Self {
        SyntheticSoc {
            accuracy,
            leader: Side::Simulator,
            seed,
            sim_width: 2,
            acc_width: 1,
        }
    }

    /// Starts an [`EmuSession`] builder over this synthetic pair, so the
    /// controlled-accuracy harness composes with any transport backend and
    /// observer:
    ///
    /// ```
    /// use predpkt_workloads::SyntheticSoc;
    /// let mut session = SyntheticSoc::als(0.9, 7).session().build().unwrap();
    /// session.run_until_committed(1_000).unwrap();
    /// assert!(session.committed_cycles() >= 1_000);
    /// ```
    pub fn session(self) -> EmuSessionBuilder<SyntheticModel> {
        let (sim, acc) = self.build();
        EmuSession::builder(sim, acc)
    }

    /// Builds the two domain models.
    pub fn build(self) -> (SyntheticModel, SyntheticModel) {
        let sim = SyntheticModel::new(
            Side::Simulator,
            self.leader,
            self.accuracy,
            self.seed,
            self.sim_width,
            self.acc_width,
        );
        let acc = SyntheticModel::new(
            Side::Accelerator,
            self.leader,
            self.accuracy,
            self.seed,
            self.acc_width,
            self.sim_width,
        );
        (sim, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_change_rate_matches_one_minus_p() {
        for &p in &[0.9, 0.5, 0.1] {
            let model = SyntheticModel::new(Side::Simulator, Side::Accelerator, p, 42, 2, 1);
            let mut value = 0u32;
            let mut changes = 0;
            let n = 50_000u64;
            for c in 0..n {
                let next = model.stream_step(value, c);
                if next != value {
                    changes += 1;
                }
                value = next;
            }
            let observed = changes as f64 / n as f64;
            assert!(
                (observed - (1.0 - p)).abs() < 0.01,
                "p={p}: observed change rate {observed}"
            );
        }
    }

    #[test]
    fn stream_is_a_function_of_cycle_not_call_count() {
        let m = SyntheticModel::new(Side::Simulator, Side::Accelerator, 0.5, 7, 2, 1);
        let a = m.stream_step(123, 10);
        let b = m.stream_step(123, 10);
        assert_eq!(a, b, "same cycle, same outcome (replay-safe)");
    }

    #[test]
    fn changed_values_differ() {
        let m = SyntheticModel::new(Side::Simulator, Side::Accelerator, 0.0, 9, 2, 1);
        let mut v = 55u32;
        for c in 0..1000 {
            let next = m.stream_step(v, c);
            assert_ne!(next, v, "p=0 must change every cycle");
            v = next;
        }
    }

    /// The workspace-wide snapshot round-trip law (the shared harness lives
    /// in `predpkt-core`'s `snapshot_roundtrip` suite; this crate sits above
    /// core in the dependency order, so its one impl is checked here): save a
    /// seeded instance, restore into a fresh one, save again — a fixed point;
    /// truncated words are rejected and the rejection is recoverable.
    #[test]
    fn snapshot_roundtrip_law() {
        use predpkt_sim::{restore_from_vec, save_to_vec, StateVec};
        let (mut sim, mut acc) = SyntheticSoc::als(0.7, 0x5eed).build();
        for _ in 0..48 {
            let sim_out = sim.local_outputs();
            let acc_out = acc.local_outputs();
            sim.tick(&acc_out, TickKind::Actual);
            acc.tick(&sim_out, TickKind::Actual);
        }

        let saved = save_to_vec(&sim);
        let mut fresh = SyntheticSoc::als(0.7, 0x5eed).build().0;
        restore_from_vec(&mut fresh, &saved).expect("restore into a fresh instance");
        assert_eq!(
            saved,
            save_to_vec(&fresh),
            "save → restore → save fixed point"
        );
        // The trace is excluded by the rollback-cut convention; states match
        // once it is handed over, and the restored replica evolves the same
        // stream (it is a pure function of seed and the restored cycle).
        *fresh.trace_mut() = sim.trace().clone();
        assert_eq!(sim, fresh);

        let truncated = StateVec::from(saved.words()[..saved.len() - 1].to_vec());
        restore_from_vec(&mut fresh, &truncated).expect_err("truncated words rejected");
        restore_from_vec(&mut fresh, &saved).expect("recoverable after rejection");
        assert_eq!(saved, save_to_vec(&fresh), "recovery restore lost state");
    }

    #[test]
    fn widths_mirror() {
        let (sim, acc) = SyntheticSoc::als(0.9, 1).build();
        assert_eq!(sim.local_width(), acc.remote_width());
        assert_eq!(acc.local_width(), sim.remote_width());
        assert_eq!(sim.elect_leader(), Side::Accelerator);
        assert!(!sim.needs_sync());
    }

    #[test]
    fn verify_prediction_is_exact_equality() {
        let (sim, _) = SyntheticSoc::als(1.0, 1).build();
        let me = sim.local_outputs();
        assert!(sim.verify_prediction(&[0], &me));
        let mut wrong = me.clone();
        wrong[0] ^= 1;
        assert!(!sim.verify_prediction(&[0], &wrong));
    }

    #[test]
    fn snapshot_roundtrip() {
        let (mut sim, _) = SyntheticSoc::als(0.7, 3).build();
        sim.tick(&[5], TickKind::Actual);
        sim.tick(&[6], TickKind::Actual);
        let state = predpkt_sim::save_to_vec(&sim);
        let mut copy = SyntheticSoc::als(0.7, 3).build().0;
        predpkt_sim::restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy.cycle(), 2);
        assert_eq!(copy.local_outputs(), sim.local_outputs());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_accuracy_rejected() {
        let _ = SyntheticModel::new(Side::Simulator, Side::Accelerator, 1.5, 1, 1, 1);
    }
}
