//! # predpkt-workloads — SoC scenarios and the parametric evaluation harness
//!
//! Two kinds of workloads drive the evaluation:
//!
//! * **Real SoCs** ([`soc`]): blueprints in the shape of the paper's Fig. 2
//!   (three masters, three slaves, mixed placement) and variants stressing
//!   specific mechanisms (DMA bursts, interrupts, SPLIT slaves, FIFO streams).
//!   These demonstrate functional equivalence and *emergent* prediction
//!   accuracy with the real predictors.
//! * **The synthetic controlled-accuracy harness** ([`synthetic`]): the paper's
//!   Table 2 and Figure 4 are parametric in prediction accuracy `p` ("We
//!   assumed simulator speed of 1,000 kcycles/sec, … LOB depth of 64 and 1,000
//!   rollback variables"). [`SyntheticModel`] reproduces that setup exactly: a
//!   lagger-side value stream changes with probability `1−p` per cycle, so the
//!   leader's last-value prediction is correct with probability exactly `p` —
//!   while exercising the *identical* protocol engine, LOB, packetizer,
//!   rollback, and channel accounting as the real system.
//! * **The workload zoo** ([`zoo`]): scenario-diversity blueprints from the
//!   wider co-emulation literature — NoC-style hotspot meshes and
//!   DMA-descriptor-ring pipelines — built to differentiate predictor
//!   suites rather than protocol mechanisms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod soc;
pub mod synthetic;
pub mod zoo;

pub use soc::{dma_offload_soc, figure2_soc, irq_driven_soc, split_heavy_soc, stream_soc};
pub use synthetic::{SyntheticModel, SyntheticSoc};
pub use zoo::{descriptor_ring_soc, mesh_hotspot_soc, MeshConfig, RingConfig};
