//! The workload zoo: scenario-diversity blueprints beyond the paper's Fig. 2.
//!
//! Two shapes drawn from the co-emulation literature, chosen because they
//! stress the *predictability* axis the suites compete on:
//!
//! * [`mesh_hotspot_soc`] — EmuNoC-style mesh traffic with configurable
//!   hotspots: cross-domain masters walk a fixed route set over node buffers,
//!   with a weighted fraction of requests funnelled at one hot node. The
//!   request *sequence* repeats, so context/Markov predictors can learn it
//!   while last-value prediction misses every address change.
//! * [`descriptor_ring_soc`] — a DMA-descriptor-ring / streaming-pipeline
//!   workload (the UVM ISP shape): a DMA engine cycles frame buffers through
//!   a small ring while a host-side master polls status and drains results.
//!
//! Both are **deterministic factories**: generation uses a seeded
//! [`SplitMix64`] stream at *blueprint-build* time, so the same config always
//! yields the same script — a precondition for using their traffic numbers
//! as a CI trend gate.

use predpkt_ahb::engine::BusOp;
use predpkt_ahb::masters::{DmaDescriptor, DmaMaster, TrafficGenMaster};
use predpkt_ahb::signals::Hsize;
use predpkt_core::{Side, SocBlueprint};
use predpkt_sim::SplitMix64;

/// Configuration for [`mesh_hotspot_soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh width in nodes.
    pub width: u32,
    /// Mesh height in nodes.
    pub height: u32,
    /// Percentage (0–100) of requests directed at the hotspot node.
    pub hotspot_pct: u32,
    /// Script length (requests per master before the script loops).
    pub ops_per_master: u32,
    /// Seed for deterministic route generation.
    pub seed: u64,
    /// Idle cycles between requests.
    pub idle_gap: u32,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            hotspot_pct: 40,
            ops_per_master: 12,
            seed: 0x6d65_7368, // "mesh"
            idle_gap: 6,
        }
    }
}

/// Bytes of buffer space modelled per mesh node.
const NODE_STRIDE: u32 = 0x40;

/// Generates one master's deterministic route: `(address, is_write)` per
/// request — a walk over the mesh's node buffers, biased toward the hotspot.
fn mesh_route(cfg: &MeshConfig, salt: u64) -> Vec<(u32, bool)> {
    let nodes = (cfg.width * cfg.height).max(1);
    let hotspot = nodes / 2; // centre-ish node
    let mut rng = SplitMix64::new(cfg.seed ^ salt);
    let mut node = rng.below(nodes as u64) as u32;
    let mut route = Vec::with_capacity(cfg.ops_per_master as usize);
    for i in 0..cfg.ops_per_master {
        let target = if rng.below(100) < cfg.hotspot_pct as u64 {
            hotspot
        } else {
            // Walk to a 4-neighbour of the current node (torus wrap).
            let (x, y) = (node % cfg.width, node / cfg.width);
            node = match rng.below(4) {
                0 => (x + 1) % cfg.width + y * cfg.width,
                1 => (x + cfg.width - 1) % cfg.width + y * cfg.width,
                2 => x + ((y + 1) % cfg.height) * cfg.width,
                _ => x + ((y + cfg.height - 1) % cfg.height) * cfg.width,
            };
            node
        };
        route.push((target * NODE_STRIDE + (i % 8) * 4, rng.flip()));
    }
    route
}

/// Turns a route into a looping request script.
fn mesh_script(cfg: &MeshConfig, salt: u64, base: u32) -> Vec<BusOp> {
    mesh_route(cfg, salt)
        .into_iter()
        .enumerate()
        .map(|(i, (offset, write))| {
            let addr = base + offset;
            if write {
                BusOp::write_single(addr, 0x4e0c_0000 | i as u32)
            } else {
                BusOp::read_single(addr)
            }
        })
        .collect()
}

/// NoC-style mesh traffic with a configurable hotspot (the EmuNoC shape).
///
/// A simulator-side injector walks the mesh's node buffers along a fixed,
/// hotspot-biased route; the node-buffer address space is split across the
/// domain boundary, so injected packets constantly cross it. An
/// accelerator-side telemetry master drains a congestion counter at a fixed
/// low cadence (the NoC monitor). Both request streams are strictly
/// periodic: exactly the shape where sequence-learning suites should beat
/// last-value prediction outright, because last-value misses every request
/// edge and every address change while the loop itself never varies.
pub fn mesh_hotspot_soc(cfg: MeshConfig) -> SocBlueprint {
    // Node buffers: low half of the mesh on the simulator, high half on the
    // accelerator (each padded to a whole decode region).
    let span = ((cfg.width * cfg.height) * NODE_STRIDE)
        .next_power_of_two()
        .max(0x1000);
    let sim_script = mesh_script(&cfg, 0x51, 0x0000_0000);
    let gap = cfg.idle_gap;
    SocBlueprint::new()
        .master(Side::Simulator, move || {
            Box::new(
                TrafficGenMaster::from_ops(sim_script.clone())
                    .looping()
                    .with_idle_gap(gap),
            )
        })
        .master(Side::Accelerator, move || {
            Box::new(
                TrafficGenMaster::from_ops(vec![
                    BusOp::read_single(span / 2),        // congestion counter
                    BusOp::read_single(span / 2 + 0x20), // hotspot occupancy
                ])
                .looping()
                .with_idle_gap(29),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, span / 2, move || {
            Box::new(predpkt_ahb::slaves::MemorySlave::new(span / 2, 0))
        })
        .slave(Side::Accelerator, span / 2, span / 2, move || {
            Box::new(predpkt_ahb::slaves::MemorySlave::new(span / 2, 1))
        })
}

/// Configuration for [`descriptor_ring_soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Descriptors in the ring (jobs executed by the DMA engine).
    pub descriptors: u32,
    /// Words moved per descriptor (the "frame" size).
    pub frame_words: u32,
    /// Ring slots the frames cycle through.
    pub slots: u32,
    /// Host poll cadence (idle cycles between status reads).
    pub poll_gap: u32,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            descriptors: 6,
            frame_words: 24,
            slots: 3,
            poll_gap: 9,
        }
    }
}

/// A DMA-descriptor-ring / streaming-pipeline workload (the UVM ISP shape).
///
/// An accelerator-side DMA engine executes a ring of descriptors, streaming
/// frames from a sensor buffer into per-slot pipeline buffers; a
/// simulator-side host master polls a status word and reads back results in
/// a fixed cadence. DMA bursts are long and linear (burst-following
/// territory) while the host's poll loop is pure repetition (context
/// territory) — the workload that rewards adaptive, per-component strategy
/// choice.
pub fn descriptor_ring_soc(cfg: RingConfig) -> SocBlueprint {
    let slots = cfg.slots.max(1);
    let frame_bytes = cfg.frame_words * 4;
    // Accelerator memory: sensor buffer at 0x1000, ring slots from 0x2000.
    let jobs: Vec<DmaDescriptor> = (0..cfg.descriptors)
        .map(|i| {
            let slot = i % slots;
            DmaDescriptor::new(
                0x0000_1000 + (i % 2) * frame_bytes,
                0x0000_2000 + slot * frame_bytes,
                cfg.frame_words,
            )
        })
        .collect();
    let poll_gap = cfg.poll_gap;
    SocBlueprint::new()
        .master(Side::Accelerator, move || {
            Box::new(DmaMaster::new(jobs.clone()))
        })
        .master(Side::Simulator, move || {
            Box::new(
                TrafficGenMaster::from_ops(vec![
                    BusOp::read_single(0x0000_0000),               // status word
                    BusOp::read_incr(0x0000_2000, Hsize::Word, 4), // drain slot 0
                    BusOp::write_single(0x0000_0004, 1),           // credit return
                ])
                .looping()
                .with_idle_gap(poll_gap),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x1000, || {
            Box::new(predpkt_ahb::slaves::MemorySlave::new(0x1000, 0))
        })
        .slave(Side::Accelerator, 0x0000_1000, 0x1000, || {
            let mut m = predpkt_ahb::slaves::MemorySlave::new(0x1000, 0);
            for i in 0..256 {
                m.poke_word(4 * i, 0x1559_0000 + i);
            }
            Box::new(m)
        })
        .slave(Side::Accelerator, 0x0000_2000, 0x1000, || {
            Box::new(predpkt_ahb::slaves::MemorySlave::new(0x1000, 1))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_blueprints_build_and_pair() {
        for (name, bp) in [
            ("mesh", mesh_hotspot_soc(MeshConfig::default())),
            ("ring", descriptor_ring_soc(RingConfig::default())),
        ] {
            let golden = bp.build_golden().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(golden.num_masters() >= 2, "{name}");
            assert!(bp.placement().is_split(), "{name} must span both domains");
            let (sim, acc) = bp.build_pair().unwrap();
            drop((sim, acc));
        }
    }

    #[test]
    fn zoo_blueprints_are_deterministic_factories() {
        for bp in [
            mesh_hotspot_soc(MeshConfig::default()),
            descriptor_ring_soc(RingConfig::default()),
        ] {
            let mut a = bp.build_golden().unwrap();
            let mut b = bp.build_golden().unwrap();
            a.run(300);
            b.run(300);
            assert_eq!(a.trace().hash(), b.trace().hash());
        }
    }

    #[test]
    fn mesh_routes_are_deterministic_and_hotspot_biased() {
        let cfg = MeshConfig::default();
        let a = mesh_route(&cfg, 0x51);
        assert_eq!(a, mesh_route(&cfg, 0x51), "same seed, same route");
        let nodes = cfg.width * cfg.height;
        let hotspot_base = (nodes / 2) * NODE_STRIDE;
        let hot = a
            .iter()
            .filter(|(addr, _)| (hotspot_base..hotspot_base + NODE_STRIDE).contains(addr))
            .count();
        assert!(
            hot * 100 >= a.len() * (cfg.hotspot_pct as usize) / 2,
            "hotspot weighting must show up in the route ({hot}/{})",
            a.len()
        );
    }

    #[test]
    fn ring_blueprint_has_dma_and_host() {
        let bp = descriptor_ring_soc(RingConfig {
            descriptors: 4,
            ..RingConfig::default()
        });
        assert_eq!(bp.num_masters(), 2);
        assert_eq!(bp.num_slaves(), 3);
    }
}
