//! Randomized tests on the AHB substrate's core data structures, driven by a
//! seeded SplitMix64 generator so every case is reproducible without an
//! external fuzzing framework.

use predpkt_ahb::burst::{beat_addr, fits_in_boundary, next_addr, BurstTracker, BURST_BOUNDARY};
use predpkt_ahb::signals::{Hburst, Hresp, Hsize, Htrans, MasterSignals, SlaveSignals};
use predpkt_sim::SplitMix64;

struct Rng(SplitMix64);

impl Rng {
    fn seeded(seed: u64) -> Self {
        Rng(SplitMix64::new(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.below(n)
    }

    fn flip(&mut self) -> bool {
        self.0.flip()
    }

    fn hsize(&mut self) -> Hsize {
        match self.below(3) {
            0 => Hsize::Byte,
            1 => Hsize::Half,
            _ => Hsize::Word,
        }
    }

    fn hburst(&mut self) -> Hburst {
        let all = Hburst::ALL;
        all[self.below(all.len() as u64) as usize]
    }

    fn htrans(&mut self) -> Htrans {
        match self.below(4) {
            0 => Htrans::Idle,
            1 => Htrans::Busy,
            2 => Htrans::Nonseq,
            _ => Htrans::Seq,
        }
    }

    fn master_signals(&mut self) -> MasterSignals {
        MasterSignals {
            busreq: self.flip(),
            lock: self.flip(),
            trans: self.htrans(),
            addr: self.next() as u32,
            write: self.flip(),
            size: self.hsize(),
            burst: self.hburst(),
            prot: self.below(16) as u8,
            wdata: self.next() as u32,
        }
    }

    fn slave_signals(&mut self) -> SlaveSignals {
        SlaveSignals {
            ready: self.flip(),
            resp: Hresp::decode(self.below(4) as u32).unwrap(),
            rdata: self.next() as u32,
            split_unmask: self.next() as u16,
            irq: self.flip(),
        }
    }
}

const CASES: u64 = 400;

#[test]
fn master_signals_pack_roundtrips() {
    let mut rng = Rng::seeded(0xa5b0_0001);
    for case in 0..CASES {
        let sig = rng.master_signals();
        assert_eq!(MasterSignals::unpack(&sig.pack()), Some(sig), "case {case}");
    }
}

#[test]
fn slave_signals_pack_roundtrips() {
    let mut rng = Rng::seeded(0xa5b0_0002);
    for case in 0..CASES {
        let sig = rng.slave_signals();
        assert_eq!(SlaveSignals::unpack(&sig.pack()), Some(sig), "case {case}");
    }
}

#[test]
fn wrapping_bursts_stay_in_container() {
    let mut rng = Rng::seeded(0xa5b0_0003);
    let mut checked = 0;
    while checked < CASES {
        let (size, burst) = (rng.hsize(), rng.hburst());
        if !burst.is_wrapping() {
            continue;
        }
        checked += 1;
        let beats = burst.beats().unwrap();
        let start = (rng.next() as u32) & !(size.bytes() - 1); // align
        let container = size.bytes() * beats;
        let base = start & !(container - 1);
        let mut a = start;
        for _ in 0..beats * 2 {
            a = next_addr(a, size, burst);
            assert!(
                a >= base && a < base + container,
                "addr {a:#x} escaped container [{base:#x}, {:#x})",
                base + container
            );
        }
    }
}

#[test]
fn wrapping_bursts_visit_each_beat_once() {
    let mut rng = Rng::seeded(0xa5b0_0004);
    let mut checked = 0;
    while checked < CASES {
        let (size, burst) = (rng.hsize(), rng.hburst());
        if !burst.is_wrapping() {
            continue;
        }
        checked += 1;
        let beats = burst.beats().unwrap();
        let start = (rng.next() as u32) & !(size.bytes() - 1);
        let mut seen = std::collections::HashSet::new();
        for b in 0..beats {
            assert!(seen.insert(beat_addr(start, size, burst, b)));
        }
        // And the sequence is periodic with period `beats`.
        assert_eq!(beat_addr(start, size, burst, beats), start);
    }
}

#[test]
fn incrementing_bursts_step_uniformly() {
    let mut rng = Rng::seeded(0xa5b0_0005);
    for _ in 0..CASES {
        let size = rng.hsize();
        let start = (rng.below(0x8000_0000) as u32) & !(size.bytes() - 1);
        let beat = rng.below(16) as u32;
        assert_eq!(
            beat_addr(start, size, Hburst::Incr, beat),
            start + size.bytes() * beat
        );
    }
}

#[test]
fn boundary_rule_consistent_with_addresses() {
    let mut rng = Rng::seeded(0xa5b0_0006);
    let mut checked = 0;
    while checked < CASES {
        let (size, burst) = (rng.hsize(), rng.hburst());
        if burst.beats().is_none() || burst.is_wrapping() {
            continue;
        }
        checked += 1;
        let start = ((rng.next() as u32) & !(size.bytes() - 1)).min(u32::MAX - 0x1000);
        let beats = burst.beats().unwrap();
        let fits = fits_in_boundary(start, size, burst);
        // Verify against the address sequence itself.
        let crosses = (0..beats)
            .any(|b| beat_addr(start, size, burst, b) / BURST_BOUNDARY != start / BURST_BOUNDARY);
        assert_eq!(fits, !crosses);
    }
}

#[test]
fn tracker_matches_addr_sequence() {
    let mut rng = Rng::seeded(0xa5b0_0007);
    let mut checked = 0;
    while checked < CASES {
        let (size, burst) = (rng.hsize(), rng.hburst());
        if burst.beats().is_some_and(|b| b <= 1) {
            continue;
        }
        checked += 1;
        let start = (rng.next() as u32) & !(size.bytes() - 1);
        let mut t = BurstTracker::start(start, size, burst);
        for b in 1..burst.beats().unwrap_or(8) {
            assert_eq!(t.next_addr(), beat_addr(start, size, burst, b));
            t.advance();
        }
        if let Some(beats) = burst.beats() {
            assert!(t.complete());
            assert_eq!(t.issued(), beats);
        }
    }
}

#[test]
fn tracker_pack_roundtrips() {
    let mut rng = Rng::seeded(0xa5b0_0008);
    for _ in 0..CASES {
        let (size, burst) = (rng.hsize(), rng.hburst());
        let start = (rng.next() as u32) & !(size.bytes() - 1);
        let mut t = BurstTracker::start(start, size, burst);
        for _ in 0..rng.below(16) {
            t.advance();
        }
        assert_eq!(BurstTracker::unpack(&t.pack()), Some(t));
    }
}
