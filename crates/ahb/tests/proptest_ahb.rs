//! Property-based tests on the AHB substrate's core data structures.

use proptest::prelude::*;
use predpkt_ahb::burst::{beat_addr, fits_in_boundary, next_addr, BurstTracker, BURST_BOUNDARY};
use predpkt_ahb::signals::{Hburst, Hsize, Htrans, MasterSignals, SlaveSignals};

fn hsize() -> impl Strategy<Value = Hsize> {
    prop_oneof![Just(Hsize::Byte), Just(Hsize::Half), Just(Hsize::Word)]
}

fn hburst() -> impl Strategy<Value = Hburst> {
    proptest::sample::select(Hburst::ALL.to_vec())
}

fn htrans() -> impl Strategy<Value = Htrans> {
    prop_oneof![
        Just(Htrans::Idle),
        Just(Htrans::Busy),
        Just(Htrans::Nonseq),
        Just(Htrans::Seq)
    ]
}

fn master_signals() -> impl Strategy<Value = MasterSignals> {
    (
        any::<bool>(),
        any::<bool>(),
        htrans(),
        any::<u32>(),
        any::<bool>(),
        hsize(),
        hburst(),
        0u8..16,
        any::<u32>(),
    )
        .prop_map(
            |(busreq, lock, trans, addr, write, size, burst, prot, wdata)| MasterSignals {
                busreq,
                lock,
                trans,
                addr,
                write,
                size,
                burst,
                prot,
                wdata,
            },
        )
}

fn slave_signals() -> impl Strategy<Value = SlaveSignals> {
    (
        any::<bool>(),
        0u32..4,
        any::<u32>(),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(|(ready, resp, rdata, split_unmask, irq)| SlaveSignals {
            ready,
            resp: predpkt_ahb::signals::Hresp::decode(resp).unwrap(),
            rdata,
            split_unmask,
            irq,
        })
}

proptest! {
    #[test]
    fn master_signals_pack_roundtrips(sig in master_signals()) {
        prop_assert_eq!(MasterSignals::unpack(&sig.pack()), Some(sig));
    }

    #[test]
    fn slave_signals_pack_roundtrips(sig in slave_signals()) {
        prop_assert_eq!(SlaveSignals::unpack(&sig.pack()), Some(sig));
    }

    #[test]
    fn wrapping_bursts_stay_in_container(start in any::<u32>(), size in hsize(), burst in hburst()) {
        prop_assume!(burst.is_wrapping());
        let beats = burst.beats().unwrap();
        let start = start & !(size.bytes() - 1); // align
        let container = size.bytes() * beats;
        let base = start & !(container - 1);
        let mut a = start;
        for _ in 0..beats * 2 {
            a = next_addr(a, size, burst);
            prop_assert!(a >= base && a < base + container,
                "addr {a:#x} escaped container [{base:#x}, {:#x})", base + container);
        }
    }

    #[test]
    fn wrapping_bursts_visit_each_beat_once(start in any::<u32>(), size in hsize(), burst in hburst()) {
        prop_assume!(burst.is_wrapping());
        let beats = burst.beats().unwrap();
        let start = start & !(size.bytes() - 1);
        let mut seen = std::collections::HashSet::new();
        for b in 0..beats {
            prop_assert!(seen.insert(beat_addr(start, size, burst, b)));
        }
        // And the sequence is periodic with period `beats`.
        prop_assert_eq!(beat_addr(start, size, burst, beats), start);
    }

    #[test]
    fn incrementing_bursts_step_uniformly(start in 0u32..0x8000_0000, size in hsize(), beat in 0u32..16) {
        let start = start & !(size.bytes() - 1);
        prop_assert_eq!(
            beat_addr(start, size, Hburst::Incr, beat),
            start + size.bytes() * beat
        );
    }

    #[test]
    fn boundary_rule_consistent_with_addresses(start in any::<u32>(), size in hsize(), burst in hburst()) {
        prop_assume!(burst.beats().is_some() && !burst.is_wrapping());
        let start = (start & !(size.bytes() - 1)).min(u32::MAX - 0x1000);
        let beats = burst.beats().unwrap();
        let fits = fits_in_boundary(start, size, burst);
        // Verify against the address sequence itself.
        let crosses = (0..beats).any(|b| {
            beat_addr(start, size, burst, b) / BURST_BOUNDARY != start / BURST_BOUNDARY
        });
        prop_assert_eq!(fits, !crosses);
    }

    #[test]
    fn tracker_matches_addr_sequence(start in any::<u32>(), size in hsize(), burst in hburst()) {
        prop_assume!(burst.beats().map_or(true, |b| b > 1));
        let start = start & !(size.bytes() - 1);
        let mut t = BurstTracker::start(start, size, burst);
        for b in 1..burst.beats().unwrap_or(8) {
            prop_assert_eq!(t.next_addr(), beat_addr(start, size, burst, b));
            t.advance();
        }
        if let Some(beats) = burst.beats() {
            prop_assert!(t.complete());
            prop_assert_eq!(t.issued(), beats);
        }
    }

    #[test]
    fn tracker_pack_roundtrips(start in any::<u32>(), size in hsize(), burst in hburst(), advances in 0u32..16) {
        let start = start & !(size.bytes() - 1);
        let mut t = BurstTracker::start(start, size, burst);
        for _ in 0..advances {
            t.advance();
        }
        prop_assert_eq!(BurstTracker::unpack(&t.pack()), Some(t));
    }
}
