//! # predpkt-ahb — cycle-accurate AMBA AHB substrate
//!
//! The paper splits an AHB-based SoC between a software simulator and a hardware
//! accelerator. This crate is the bus substrate both sides share: signal types,
//! the burst address sequencer, a static-priority arbiter with SPLIT masking and
//! lock support, an address decoder, master/slave traits with reusable protocol
//! engines, a library of masters (traffic generator, DMA, CPU) and slaves
//! (memory, peripheral with IRQ, SPLIT-capable, producer–consumer FIFO, default),
//! a monolithic golden [`AhbBus`], a protocol [`checker`], and transaction
//! extraction from traces.
//!
//! ## The Moore-machine contract
//!
//! Every component is a **Moore machine**: [`AhbMaster::outputs`] /
//! [`AhbSlave::outputs`] are pure functions of state latched at the previous
//! clock edge, and `tick` advances that state given the full bus view of the
//! cycle. Consequently all cross-component signal values for cycle *N* exist
//! before any component evaluates cycle *N* — which is exactly the property the
//! paper needs to split the bus into two half-bus models with no combinational
//! half-loop (problem definition #1, §3). The [`fabric::Fabric`] (arbiter +
//! decoder + pipeline registers) is replicated in both domains and stays
//! bit-identical because it sees identical inputs.
//!
//! ## Example
//!
//! ```
//! use predpkt_ahb::bus::AhbBus;
//! use predpkt_ahb::engine::BusOp;
//! use predpkt_ahb::masters::TrafficGenMaster;
//! use predpkt_ahb::slaves::MemorySlave;
//!
//! let mut bus = AhbBus::builder()
//!     .master(TrafficGenMaster::from_ops(vec![
//!         BusOp::write_single(0x0000_0010, 0xdead_beef),
//!         BusOp::read_single(0x0000_0010),
//!     ]))
//!     .slave(MemorySlave::new(0x1000, 0), 0x0000_0000, 0x1000)
//!     .build()
//!     .unwrap();
//! for _ in 0..32 {
//!     bus.tick();
//! }
//! assert_eq!(bus.trace().len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod bus;
pub mod checker;
pub mod engine;
pub mod fabric;
pub mod masters;
pub mod signals;
pub mod slaves;
pub mod txn;

pub use bus::{AhbBus, AhbBusBuilder, BusConfigError};
pub use fabric::{CycleView, Fabric};
pub use signals::{
    AddrPhase, Hburst, Hresp, Hsize, Htrans, MasterId, MasterSignals, MasterView, SlaveId,
    SlaveSignals, SlaveView,
};

use predpkt_sim::Snapshot;
use std::any::Any;

/// A bus master: drives requests, addresses, control and write data.
///
/// Implementors are Moore machines (see the crate docs) and must be
/// [`Snapshot`]-able so they can live in a rollback-capable leader domain, and
/// `Send` so a domain model can move to a worker thread when the co-emulation
/// runs over a real-thread transport.
pub trait AhbMaster: Snapshot + Any + Send {
    /// The signal values this master drives during the current cycle
    /// (pure function of state latched at the previous edge).
    fn outputs(&self) -> MasterSignals;

    /// Advances one clock edge given everything the master port sees.
    fn tick(&mut self, view: &MasterView);

    /// `true` once the master has no further work (used by tests and examples
    /// to terminate runs; the bus itself never requires it).
    fn done(&self) -> bool {
        false
    }

    /// Upcast for concrete-type inspection (see [`AhbBus::master_as`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for concrete-type inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A bus slave: responds to selected transfers with ready/response/read data.
///
/// Implementors are Moore machines and must be [`Snapshot`]-able, and `Send`
/// for the same reason as [`AhbMaster`].
pub trait AhbSlave: Snapshot + Any + Send {
    /// The signal values this slave drives during the current cycle.
    fn outputs(&self) -> SlaveSignals;

    /// Advances one clock edge given everything the slave port sees.
    fn tick(&mut self, view: &SlaveView);

    /// Upcast for concrete-type inspection (see [`AhbBus::slave_as`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for concrete-type inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
