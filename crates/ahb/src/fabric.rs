//! Bus fabric: arbiter + decoder + pipeline registers.
//!
//! The fabric is the part of the bus the paper *replicates into both half-bus
//! models* (§4): because arbitration priority and address maps are static, the
//! arbiter and decoder outputs "can be deduced from arbitration request signals
//! and address signals" and need not cross the channel. [`Fabric`] therefore
//! computes everything derived — grant, address-phase routing, the data-phase
//! register, response/data muxes, the built-in default slave — as a pure
//! function of the per-cycle Moore outputs of masters and slaves plus its own
//! replicated state.
//!
//! Two fabric replicas fed identical master/slave signal arrays stay
//! bit-identical forever; an integration test asserts exactly that.

use crate::burst::BurstTracker;
use crate::signals::{
    AddrPhase, Hresp, MasterId, MasterSignals, MasterView, SlaveId, SlaveSignals, SlaveView,
};
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// One region of the static address map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First address of the region.
    pub base: u32,
    /// Region size in bytes.
    pub size: u32,
    /// Slave served by this region.
    pub slave: SlaveId,
}

impl Region {
    /// `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// `true` if two regions overlap.
    pub fn overlaps(&self, other: &Region) -> bool {
        let a_end = self.base as u64 + self.size as u64;
        let b_end = other.base as u64 + other.size as u64;
        (self.base as u64) < b_end && (other.base as u64) < a_end
    }
}

/// The static address decoder (HSEL generation).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Decoder {
    regions: Vec<Region>,
}

impl Decoder {
    /// Builds a decoder from regions.
    ///
    /// # Errors
    ///
    /// Returns the offending pair if two regions overlap, or the region if its
    /// size is zero or it wraps past the top of the address space.
    pub fn new(regions: Vec<Region>) -> Result<Decoder, DecodeMapError> {
        for (i, r) in regions.iter().enumerate() {
            if r.size == 0 {
                return Err(DecodeMapError::EmptyRegion { region: *r });
            }
            if r.base.checked_add(r.size - 1).is_none() {
                return Err(DecodeMapError::WrapsAddressSpace { region: *r });
            }
            for other in &regions[i + 1..] {
                if r.overlaps(other) {
                    return Err(DecodeMapError::Overlap {
                        first: *r,
                        second: *other,
                    });
                }
            }
        }
        Ok(Decoder { regions })
    }

    /// Decodes an address to its slave; `None` selects the default slave.
    pub fn decode(&self, addr: u32) -> Option<SlaveId> {
        self.regions
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| r.slave)
    }

    /// The configured regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

/// Address-map construction failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMapError {
    /// Two regions overlap.
    Overlap {
        /// First overlapping region.
        first: Region,
        /// Second overlapping region.
        second: Region,
    },
    /// A region has zero size.
    EmptyRegion {
        /// The offending region.
        region: Region,
    },
    /// A region extends past the 32-bit address space.
    WrapsAddressSpace {
        /// The offending region.
        region: Region,
    },
}

impl std::fmt::Display for DecodeMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeMapError::Overlap { first, second } => {
                write!(f, "address map regions overlap: {first:?} and {second:?}")
            }
            DecodeMapError::EmptyRegion { region } => {
                write!(f, "address map region is empty: {region:?}")
            }
            DecodeMapError::WrapsAddressSpace { region } => {
                write!(f, "address map region wraps the address space: {region:?}")
            }
        }
    }
}

impl std::error::Error for DecodeMapError {}

/// Static-priority AHB arbiter with SPLIT masking, lock support, and
/// defined-length-burst grant holding.
///
/// Lower master index = higher priority (the paper assumes statically defined
/// arbitration priority). Grants change only on ready cycles, never inside a
/// defined-length burst, and never while the granted master holds HLOCK with an
/// active request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arbiter {
    num_masters: usize,
    default_master: MasterId,
    granted: MasterId,
    split_mask: u16,
    burst: Option<BurstTracker>,
}

impl Arbiter {
    /// Creates an arbiter for `num_masters` masters; the default master owns
    /// the bus when nobody requests it.
    ///
    /// # Panics
    ///
    /// Panics if `num_masters` is 0 or exceeds 16 (HSPLIT is a 16-bit vector),
    /// or if `default_master` is out of range.
    pub fn new(num_masters: usize, default_master: MasterId) -> Self {
        assert!(
            num_masters > 0 && num_masters <= 16,
            "1..=16 masters supported"
        );
        assert!(
            default_master.0 < num_masters,
            "default master out of range"
        );
        Arbiter {
            num_masters,
            default_master,
            granted: default_master,
            split_mask: 0,
            burst: None,
        }
    }

    /// The master owning the address phase this cycle (HGRANT, Moore output).
    pub fn granted(&self) -> MasterId {
        self.granted
    }

    /// The current SPLIT mask (bit per master).
    pub fn split_mask(&self) -> u16 {
        self.split_mask
    }

    /// `true` while the granted master is inside a defined-length burst.
    pub fn holding_burst(&self) -> bool {
        self.burst.is_some()
    }

    /// Advances the arbiter one clock edge.
    ///
    /// `masters` are this cycle's master outputs; `hready`/`resp` the muxed
    /// data-phase response; `dp` the data phase served this cycle;
    /// `split_unmask` the OR of all slaves' HSPLITx vectors.
    pub fn tick(
        &mut self,
        masters: &[MasterSignals],
        hready: bool,
        resp: Hresp,
        dp: Option<&AddrPhase>,
        split_unmask: u16,
    ) {
        // 1. SPLIT bookkeeping: mask on the first cycle of a SPLIT response,
        //    unmask whatever the slaves re-enable.
        if let Some(d) = dp {
            if resp == Hresp::Split && !hready {
                self.split_mask |= 1 << d.master.0;
            }
        }
        self.split_mask &= !split_unmask;

        // 2. Burst tracking over the granted master's accepted address phases.
        let g = &masters[self.granted.0];
        if hready {
            match g.trans {
                crate::signals::Htrans::Nonseq => {
                    self.burst = match g.burst.beats() {
                        Some(beats) if beats > 1 => {
                            Some(BurstTracker::start(g.addr, g.size, g.burst))
                        }
                        _ => None, // SINGLE and INCR: re-arbitrate freely
                    };
                }
                crate::signals::Htrans::Seq => {
                    if let Some(t) = &mut self.burst {
                        t.advance();
                        if t.complete() {
                            self.burst = None;
                        }
                    }
                }
                crate::signals::Htrans::Idle => self.burst = None,
                crate::signals::Htrans::Busy => {} // burst paused, keep holding
            }
        } else if resp.is_error_class() {
            // First cycle of ERROR/RETRY/SPLIT aborts any in-flight burst.
            self.burst = None;
        }

        // 3. Grant decision (effective next cycle). Grants move only on ready
        //    cycles, never mid-defined-burst, never away from a locked master.
        if !hready {
            return;
        }
        if self.burst.is_some() {
            return;
        }
        if g.lock && g.busreq {
            return;
        }
        let winner = (0..self.num_masters)
            .find(|&i| masters[i].busreq && self.split_mask & (1 << i) == 0)
            .map(MasterId);
        self.granted = winner.unwrap_or(self.default_master);
    }
}

impl Snapshot for Arbiter {
    fn save(&self, w: &mut StateWriter<'_>) {
        w.usize(self.granted.0);
        w.u32(self.split_mask as u32);
        match &self.burst {
            Some(t) => {
                let packed = t.pack();
                w.bool(true).u32(packed[0]).u32(packed[1]);
            }
            None => {
                w.bool(false);
            }
        }
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let granted = r.usize()?;
        if granted >= self.num_masters {
            return Err(SnapshotError::Corrupt { at: 0 });
        }
        self.granted = MasterId(granted);
        self.split_mask = r.u32()? as u16;
        self.burst = if r.bool()? {
            let words = [r.u32()?, r.u32()?];
            Some(BurstTracker::unpack(&words).ok_or(SnapshotError::Corrupt { at: 0 })?)
        } else {
            None
        };
        Ok(())
    }
}

/// Everything derived about one bus cycle: the output of the fabric's
/// combinational view over the Moore outputs of all components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleView {
    /// Master owning the address phase.
    pub grant: MasterId,
    /// The address phase driven this cycle (by the granted master).
    pub addr_phase: AddrPhase,
    /// System HREADY.
    pub hready: bool,
    /// System HRESP.
    pub resp: Hresp,
    /// Muxed read data (data-phase slave).
    pub rdata: u32,
    /// Muxed write data (data-phase master).
    pub wdata: u32,
    /// The data phase being served this cycle.
    pub dp: Option<AddrPhase>,
    /// Interrupt lines, one bit per slave.
    pub irq: u16,
}

/// Arbiter + decoder + data-phase register + default slave: the replicated
/// heart of the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fabric {
    arbiter: Arbiter,
    decoder: Decoder,
    dp: Option<AddrPhase>,
    /// Default-slave FSM: `true` while driving the second cycle of its
    /// two-cycle ERROR response.
    default_err2: bool,
}

impl Fabric {
    /// Creates a fabric.
    pub fn new(arbiter: Arbiter, decoder: Decoder) -> Self {
        Fabric {
            arbiter,
            decoder,
            dp: None,
            default_err2: false,
        }
    }

    /// The decoder (static, never part of snapshots).
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// The arbiter.
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// The in-flight data phase.
    pub fn data_phase(&self) -> Option<&AddrPhase> {
        self.dp.as_ref()
    }

    /// Computes the combinational per-cycle view from all Moore outputs.
    ///
    /// # Panics
    ///
    /// Panics if a slave index stored in the data phase exceeds `slaves`
    /// (impossible for phases produced by this fabric's decoder).
    pub fn view(&self, masters: &[MasterSignals], slaves: &[SlaveSignals]) -> CycleView {
        let grant = self.arbiter.granted();
        let m = &masters[grant.0];
        let addr_phase = AddrPhase {
            master: grant,
            slave: if m.trans.is_active() {
                self.decoder.decode(m.addr)
            } else {
                None
            },
            trans: m.trans,
            addr: m.addr,
            write: m.write,
            size: m.size,
            burst: m.burst,
        };

        let (hready, resp, rdata) = match &self.dp {
            None => (true, Hresp::Okay, 0),
            Some(d) => match d.slave {
                Some(s) => {
                    let so = &slaves[s.0];
                    (so.ready, so.resp, so.rdata)
                }
                // Built-in default slave: two-cycle ERROR.
                None => (self.default_err2, Hresp::Error, 0),
            },
        };

        let wdata = match &self.dp {
            Some(d) if d.write => masters[d.master.0].wdata,
            _ => 0,
        };

        let mut irq = 0u16;
        for (i, s) in slaves.iter().enumerate() {
            if s.irq {
                irq |= 1 << i;
            }
        }

        CycleView {
            grant,
            addr_phase,
            hready,
            resp,
            rdata,
            wdata,
            dp: self.dp,
            irq,
        }
    }

    /// Advances the fabric one clock edge.
    pub fn tick(&mut self, view: &CycleView, masters: &[MasterSignals], slaves: &[SlaveSignals]) {
        // Default-slave FSM: first unready ERROR cycle arms the second cycle.
        self.default_err2 = matches!(&self.dp, Some(d) if d.slave.is_none()) && !self.default_err2;

        // Data-phase register: on ready cycles the current phase retires and an
        // active address phase becomes the next data phase.
        if view.hready {
            self.dp = view.addr_phase.trans.is_active().then_some(view.addr_phase);
        }

        let split_unmask = slaves.iter().fold(0u16, |acc, s| acc | s.split_unmask);
        self.arbiter.tick(
            masters,
            view.hready,
            view.resp,
            view.dp.as_ref(),
            split_unmask,
        );
    }

    /// Builds the per-master view of a cycle.
    pub fn master_view(&self, view: &CycleView, master: MasterId) -> MasterView {
        MasterView {
            granted: view.grant == master,
            hready: view.hready,
            resp: view.resp,
            rdata: view.rdata,
            dp_mine: matches!(&view.dp, Some(d) if d.master == master),
            irq: view.irq,
        }
    }

    /// Builds the per-slave view of a cycle.
    pub fn slave_view(&self, view: &CycleView, slave: SlaveId) -> SlaveView {
        let selects_me = matches!(view.addr_phase.slave, Some(s) if s == slave)
            && view.addr_phase.trans.is_active();
        let dp_active = matches!(&view.dp, Some(d) if d.slave == Some(slave));
        SlaveView {
            addr_phase: selects_me.then_some(view.addr_phase),
            hready: view.hready,
            dp_active,
            dp: if dp_active { view.dp } else { None },
            wdata: if dp_active { view.wdata } else { 0 },
        }
    }
}

impl Snapshot for Fabric {
    fn save(&self, w: &mut StateWriter<'_>) {
        self.arbiter.save(w);
        w.bool(self.default_err2);
        match &self.dp {
            Some(d) => {
                w.bool(true);
                w.usize(d.master.0);
                match d.slave {
                    Some(s) => w.bool(true).usize(s.0),
                    None => w.bool(false),
                };
                w.u32(d.trans.encode())
                    .u32(d.addr)
                    .bool(d.write)
                    .u32(d.size.encode())
                    .u32(d.burst.encode());
            }
            None => {
                w.bool(false);
            }
        }
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.arbiter.restore(r)?;
        self.default_err2 = r.bool()?;
        self.dp = if r.bool()? {
            let master = MasterId(r.usize()?);
            let slave = if r.bool()? {
                Some(SlaveId(r.usize()?))
            } else {
                None
            };
            let trans =
                crate::signals::Htrans::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            let addr = r.u32()?;
            let write = r.bool()?;
            let size =
                crate::signals::Hsize::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            let burst =
                crate::signals::Hburst::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            Some(AddrPhase {
                master,
                slave,
                trans,
                addr,
                write,
                size,
                burst,
            })
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{Hburst, Hsize, Htrans};
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn decoder_two_slaves() -> Decoder {
        Decoder::new(vec![
            Region {
                base: 0x0000,
                size: 0x1000,
                slave: SlaveId(0),
            },
            Region {
                base: 0x1000,
                size: 0x1000,
                slave: SlaveId(1),
            },
        ])
        .unwrap()
    }

    fn idle_masters(n: usize) -> Vec<MasterSignals> {
        vec![MasterSignals::idle(); n]
    }

    fn idle_slaves(n: usize) -> Vec<SlaveSignals> {
        vec![SlaveSignals::idle(); n]
    }

    #[test]
    fn decoder_rejects_overlap() {
        let err = Decoder::new(vec![
            Region {
                base: 0x0,
                size: 0x100,
                slave: SlaveId(0),
            },
            Region {
                base: 0x80,
                size: 0x100,
                slave: SlaveId(1),
            },
        ])
        .unwrap_err();
        assert!(matches!(err, DecodeMapError::Overlap { .. }));
    }

    #[test]
    fn decoder_rejects_empty_and_wrapping() {
        assert!(matches!(
            Decoder::new(vec![Region {
                base: 0,
                size: 0,
                slave: SlaveId(0)
            }]),
            Err(DecodeMapError::EmptyRegion { .. })
        ));
        assert!(matches!(
            Decoder::new(vec![Region {
                base: u32::MAX,
                size: 2,
                slave: SlaveId(0)
            }]),
            Err(DecodeMapError::WrapsAddressSpace { .. })
        ));
    }

    #[test]
    fn decoder_decodes_and_defaults() {
        let d = decoder_two_slaves();
        assert_eq!(d.decode(0x0), Some(SlaveId(0)));
        assert_eq!(d.decode(0xfff), Some(SlaveId(0)));
        assert_eq!(d.decode(0x1000), Some(SlaveId(1)));
        assert_eq!(d.decode(0x2000), None);
    }

    #[test]
    fn arbiter_defaults_to_default_master() {
        let mut a = Arbiter::new(3, MasterId(0));
        assert_eq!(a.granted(), MasterId(0));
        let masters = idle_masters(3);
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(0));
    }

    #[test]
    fn arbiter_priority_is_static_by_index() {
        let mut a = Arbiter::new(3, MasterId(0));
        let mut masters = idle_masters(3);
        masters[1].busreq = true;
        masters[2].busreq = true;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1), "lower index wins");
    }

    #[test]
    fn arbiter_holds_grant_when_not_ready() {
        let mut a = Arbiter::new(2, MasterId(0));
        let mut masters = idle_masters(2);
        masters[1].busreq = true;
        a.tick(&masters, false, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(0), "no handover on wait states");
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1));
    }

    #[test]
    fn arbiter_holds_grant_through_defined_burst() {
        let mut a = Arbiter::new(2, MasterId(0));
        let mut masters = idle_masters(2);
        // Master 0 launches an INCR4 burst; master 1 requests mid-burst.
        masters[0].busreq = true;
        masters[0].trans = Htrans::Nonseq;
        masters[0].burst = Hburst::Incr4;
        masters[0].addr = 0x100;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert!(a.holding_burst());
        masters[1].busreq = true;
        masters[0].trans = Htrans::Seq;
        for beat in 1..4u32 {
            masters[0].addr = 0x100 + 4 * beat;
            a.tick(&masters, true, Hresp::Okay, None, 0);
            if beat < 3 {
                assert_eq!(a.granted(), MasterId(0), "grant held at beat {beat}");
            }
        }
        // Burst complete: grant moves to the higher-priority requester... which
        // is master 0 itself (still requesting); drop its request to hand over.
        masters[0].busreq = false;
        masters[0].trans = Htrans::Idle;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1));
    }

    #[test]
    fn arbiter_incr_burst_rearbitrates() {
        let mut a = Arbiter::new(2, MasterId(0));
        let mut masters = idle_masters(2);
        masters[0].busreq = true;
        masters[0].trans = Htrans::Nonseq;
        masters[0].burst = Hburst::Incr;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert!(!a.holding_burst(), "INCR never holds");
        masters[1].busreq = true;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(0), "static priority still favours 0");
        masters[0].busreq = false;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1));
    }

    #[test]
    fn arbiter_lock_holds_grant() {
        let mut a = Arbiter::new(2, MasterId(1));
        let mut masters = idle_masters(2);
        masters[1].busreq = true;
        masters[1].lock = true;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1));
        masters[0].busreq = true; // higher priority, but lock wins
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1));
        masters[1].lock = false;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(0));
    }

    #[test]
    fn arbiter_split_masks_and_unmasks() {
        let mut a = Arbiter::new(2, MasterId(0));
        let mut masters = idle_masters(2);
        masters[1].busreq = true;
        let dp = AddrPhase {
            master: MasterId(1),
            slave: Some(SlaveId(0)),
            trans: Htrans::Nonseq,
            addr: 0,
            write: false,
            size: Hsize::Word,
            burst: Hburst::Single,
        };
        // First cycle of SPLIT: mask master 1.
        a.tick(&masters, false, Hresp::Split, Some(&dp), 0);
        assert_eq!(a.split_mask(), 0b10);
        // Master 1 keeps requesting but cannot win.
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(0));
        // Slave un-splits master 1.
        a.tick(&masters, true, Hresp::Okay, None, 0b10);
        assert_eq!(a.split_mask(), 0);
        a.tick(&masters, true, Hresp::Okay, None, 0);
        assert_eq!(a.granted(), MasterId(1));
    }

    #[test]
    fn arbiter_snapshot_roundtrip() {
        let mut a = Arbiter::new(4, MasterId(2));
        let mut masters = idle_masters(4);
        masters[3].busreq = true;
        masters[3].trans = Htrans::Nonseq;
        masters[3].burst = Hburst::Incr8;
        masters[3].addr = 0x40;
        a.tick(&masters, true, Hresp::Okay, None, 0);
        a.tick(&masters, true, Hresp::Okay, None, 0);
        let state = save_to_vec(&a);
        let mut copy = Arbiter::new(4, MasterId(2));
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, a);
    }

    #[test]
    #[should_panic(expected = "1..=16 masters")]
    fn arbiter_rejects_too_many_masters() {
        let _ = Arbiter::new(17, MasterId(0));
    }

    #[test]
    fn fabric_idle_view() {
        let f = Fabric::new(Arbiter::new(1, MasterId(0)), decoder_two_slaves());
        let masters = idle_masters(1);
        let slaves = idle_slaves(2);
        let v = f.view(&masters, &slaves);
        assert!(v.hready);
        assert_eq!(v.resp, Hresp::Okay);
        assert_eq!(v.dp, None);
        assert_eq!(v.addr_phase.trans, Htrans::Idle);
    }

    #[test]
    fn fabric_pipelines_address_to_data_phase() {
        let mut f = Fabric::new(Arbiter::new(1, MasterId(0)), decoder_two_slaves());
        let mut masters = idle_masters(1);
        let slaves = idle_slaves(2);
        masters[0].trans = Htrans::Nonseq;
        masters[0].addr = 0x1004;
        masters[0].write = true;
        masters[0].wdata = 0xaa55;
        let v = f.view(&masters, &slaves);
        f.tick(&v, &masters, &slaves);
        // Next cycle: the write occupies the data phase, targeting slave 1.
        let v2 = f.view(&masters, &slaves);
        let dp = v2.dp.expect("data phase formed");
        assert_eq!(dp.slave, Some(SlaveId(1)));
        assert!(dp.write);
        assert_eq!(v2.wdata, 0xaa55, "write data muxed from data-phase master");
    }

    #[test]
    fn fabric_holds_data_phase_through_wait_states() {
        let mut f = Fabric::new(Arbiter::new(1, MasterId(0)), decoder_two_slaves());
        let mut masters = idle_masters(1);
        let mut slaves = idle_slaves(2);
        masters[0].trans = Htrans::Nonseq;
        masters[0].addr = 0x10;
        let v = f.view(&masters, &slaves);
        f.tick(&v, &masters, &slaves);
        masters[0].trans = Htrans::Idle;
        slaves[0].ready = false; // slave inserts wait states
        for _ in 0..3 {
            let v = f.view(&masters, &slaves);
            assert!(!v.hready);
            assert!(v.dp.is_some());
            f.tick(&v, &masters, &slaves);
            assert!(f.data_phase().is_some(), "data phase held while not ready");
        }
        slaves[0].ready = true;
        let v = f.view(&masters, &slaves);
        assert!(v.hready);
        f.tick(&v, &masters, &slaves);
        assert!(f.data_phase().is_none(), "data phase retired on ready");
    }

    #[test]
    fn fabric_default_slave_two_cycle_error() {
        let mut f = Fabric::new(Arbiter::new(1, MasterId(0)), decoder_two_slaves());
        let mut masters = idle_masters(1);
        let slaves = idle_slaves(2);
        masters[0].trans = Htrans::Nonseq;
        masters[0].addr = 0x9999_0000; // unmapped
        let v = f.view(&masters, &slaves);
        f.tick(&v, &masters, &slaves);
        masters[0].trans = Htrans::Idle;
        // First error cycle: not ready, ERROR.
        let v1 = f.view(&masters, &slaves);
        assert!(!v1.hready);
        assert_eq!(v1.resp, Hresp::Error);
        f.tick(&v1, &masters, &slaves);
        // Second error cycle: ready, ERROR; phase retires.
        let v2 = f.view(&masters, &slaves);
        assert!(v2.hready);
        assert_eq!(v2.resp, Hresp::Error);
        f.tick(&v2, &masters, &slaves);
        let v3 = f.view(&masters, &slaves);
        assert!(v3.hready);
        assert_eq!(v3.resp, Hresp::Okay);
    }

    #[test]
    fn fabric_views_route_irq_and_ownership() {
        let f = Fabric::new(Arbiter::new(2, MasterId(0)), decoder_two_slaves());
        let masters = idle_masters(2);
        let mut slaves = idle_slaves(2);
        slaves[1].irq = true;
        let v = f.view(&masters, &slaves);
        assert_eq!(v.irq, 0b10);
        let mv = f.master_view(&v, MasterId(0));
        assert!(mv.granted);
        assert_eq!(mv.irq, 0b10);
        let mv1 = f.master_view(&v, MasterId(1));
        assert!(!mv1.granted);
        let sv = f.slave_view(&v, SlaveId(0));
        assert!(sv.addr_phase.is_none() && !sv.dp_active);
    }

    #[test]
    fn fabric_snapshot_roundtrip_mid_transfer() {
        let mut f = Fabric::new(Arbiter::new(2, MasterId(0)), decoder_two_slaves());
        let mut masters = idle_masters(2);
        let slaves = idle_slaves(2);
        masters[0].trans = Htrans::Nonseq;
        masters[0].burst = Hburst::Incr4;
        masters[0].busreq = true;
        masters[0].addr = 0x20;
        let v = f.view(&masters, &slaves);
        f.tick(&v, &masters, &slaves);
        let state = save_to_vec(&f);
        let mut copy = Fabric::new(Arbiter::new(2, MasterId(0)), decoder_two_slaves());
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, f);
    }

    #[test]
    fn replicated_fabrics_stay_bit_identical() {
        // The property the paper's half-bus models rely on: two replicas fed the
        // same signal arrays never diverge.
        let mk = || Fabric::new(Arbiter::new(2, MasterId(0)), decoder_two_slaves());
        let mut a = mk();
        let mut b = mk();
        let mut masters = idle_masters(2);
        let mut slaves = idle_slaves(2);
        for step in 0..200u32 {
            // Pseudo-random but deterministic stimulus.
            let r = step.wrapping_mul(2654435761);
            masters[0].busreq = r & 1 != 0;
            masters[1].busreq = r & 2 != 0;
            masters[0].trans = if r & 4 != 0 {
                Htrans::Nonseq
            } else {
                Htrans::Idle
            };
            masters[0].addr = (r % 0x3000) & !3;
            slaves[0].ready = r & 8 != 0;
            let va = a.view(&masters, &slaves);
            let vb = b.view(&masters, &slaves);
            assert_eq!(va, vb, "views diverged at step {step}");
            a.tick(&va, &masters, &slaves);
            b.tick(&vb, &masters, &slaves);
            assert_eq!(a, b, "state diverged at step {step}");
        }
    }
}
