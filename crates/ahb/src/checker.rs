//! AHB protocol checker.
//!
//! Validates per-cycle bus behaviour against the specification rules the rest
//! of the workspace relies on. Enabled on the golden bus in every integration
//! test, so any protocol regression in a master, slave, or the fabric fails
//! loudly with the cycle number and rule.

use crate::burst::{next_addr, BURST_BOUNDARY};
use crate::fabric::CycleView;
use crate::signals::{Hresp, Htrans, MasterSignals, SlaveSignals};
use std::fmt;

/// The rule a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Active address phases must be aligned to the transfer size.
    Alignment,
    /// SEQ must continue a burst: previous phase NONSEQ/SEQ/BUSY, same control,
    /// sequenced address.
    SeqContinuity,
    /// BUSY is only legal inside a multi-beat burst.
    BusyOutsideBurst,
    /// Address/control must be held while the bus is stalled.
    AddressHeldOnWait,
    /// Write data must be held while the data phase is extended.
    WdataHeldOnWait,
    /// ERROR/RETRY/SPLIT are two-cycle responses: first cycle not ready, second
    /// ready, same response.
    TwoCycleResponse,
    /// The cycle after the first error-class cycle must drive IDLE.
    IdleAfterError,
    /// Defined-length incrementing bursts must not cross the 1 kB boundary.
    BurstBoundary,
    /// Grant may only move on a ready cycle.
    GrantStability,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// The broken rule.
    pub rule: Rule,
    /// Human-readable details.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {} — {}", self.cycle, self.rule, self.detail)
    }
}

/// Per-cycle state retained between checks.
#[derive(Debug, Clone)]
struct PrevCycle {
    view: CycleView,
    masters: Vec<MasterSignals>,
}

/// The checker. Feed it every cycle via [`check`](ProtocolChecker::check).
#[derive(Debug, Default)]
pub struct ProtocolChecker {
    prev: Option<PrevCycle>,
    violations: Vec<Violation>,
}

impl ProtocolChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn report(&mut self, cycle: u64, rule: Rule, detail: String) {
        self.violations.push(Violation {
            cycle,
            rule,
            detail,
        });
    }

    /// Checks one cycle.
    pub fn check(
        &mut self,
        cycle: u64,
        view: &CycleView,
        masters: &[MasterSignals],
        _slaves: &[SlaveSignals],
    ) {
        let ap = &view.addr_phase;

        // Alignment of active phases.
        if ap.trans.is_active() && ap.addr % ap.size.bytes() != 0 {
            self.report(
                cycle,
                Rule::Alignment,
                format!(
                    "addr {:#x} not aligned to {} bytes",
                    ap.addr,
                    ap.size.bytes()
                ),
            );
        }

        // Defined-length incrementing bursts inside the 1 kB boundary.
        if ap.trans == Htrans::Nonseq && !ap.burst.is_wrapping() {
            if let Some(beats) = ap.burst.beats() {
                let span = ap.size.bytes() * beats;
                if span > 0 && ap.addr / BURST_BOUNDARY != (ap.addr + span - 1) / BURST_BOUNDARY {
                    self.report(
                        cycle,
                        Rule::BurstBoundary,
                        format!("burst from {:#x} spans {span} bytes across 1kB", ap.addr),
                    );
                }
            }
        }

        let prev_taken = self.prev.take();
        if let Some(prev) = &prev_taken {
            let pap = &prev.view.addr_phase;
            let prev_error_first = !prev.view.hready && prev.view.resp.is_error_class();

            // SEQ continuity and BUSY placement.
            match ap.trans {
                Htrans::Seq | Htrans::Busy => {
                    let burst_live = pap.master == ap.master
                        && matches!(pap.trans, Htrans::Nonseq | Htrans::Seq | Htrans::Busy)
                        && pap.burst != crate::signals::Hburst::Single;
                    if !burst_live {
                        let rule = if ap.trans == Htrans::Busy {
                            Rule::BusyOutsideBurst
                        } else {
                            Rule::SeqContinuity
                        };
                        self.report(
                            cycle,
                            rule,
                            format!("{:?} without a live burst (prev {:?})", ap.trans, pap.trans),
                        );
                    } else if ap.trans == Htrans::Seq {
                        // Control must match; address must follow the sequence
                        // (held during wait states, advanced after acceptance).
                        if ap.size != pap.size || ap.burst != pap.burst || ap.write != pap.write {
                            self.report(
                                cycle,
                                Rule::SeqContinuity,
                                "control changed mid-burst".to_string(),
                            );
                        }
                        let expected = match pap.trans {
                            // After an accepted beat the address advances; after
                            // BUSY or a stalled beat it may advance or hold.
                            Htrans::Nonseq | Htrans::Seq if prev.view.hready => {
                                vec![next_addr(pap.addr, pap.size, pap.burst)]
                            }
                            Htrans::Busy => {
                                vec![pap.addr]
                            }
                            _ => vec![pap.addr, next_addr(pap.addr, pap.size, pap.burst)],
                        };
                        if !expected.contains(&ap.addr) {
                            self.report(
                                cycle,
                                Rule::SeqContinuity,
                                format!("SEQ addr {:#x}, expected one of {:x?}", ap.addr, expected),
                            );
                        }
                    }
                }
                _ => {}
            }

            // Address/control held while stalled (unless recovering from an
            // error-class response, where the master must IDLE instead).
            if !prev.view.hready && pap.trans.is_active() {
                if prev_error_first {
                    if ap.trans != Htrans::Idle && ap.master == pap.master {
                        self.report(
                            cycle,
                            Rule::IdleAfterError,
                            format!("{:?} driven during error recovery", ap.trans),
                        );
                    }
                } else if ap.master == pap.master
                    && (ap.trans, ap.addr, ap.write, ap.size, ap.burst)
                        != (pap.trans, pap.addr, pap.write, pap.size, pap.burst)
                {
                    self.report(
                        cycle,
                        Rule::AddressHeldOnWait,
                        format!(
                            "address phase changed during wait: {:#x}/{:?} -> {:#x}/{:?}",
                            pap.addr, pap.trans, ap.addr, ap.trans
                        ),
                    );
                }
            }

            // Write data held during extended data phases (not during error
            // responses, where the transfer is already aborted).
            if let (Some(dp), Some(pdp)) = (&view.dp, &prev.view.dp) {
                if dp == pdp
                    && dp.write
                    && !prev.view.hready
                    && prev.view.resp == Hresp::Okay
                    && view.resp == Hresp::Okay
                {
                    let now = masters[dp.master.0].wdata;
                    let before = prev.masters[dp.master.0].wdata;
                    if now != before {
                        self.report(
                            cycle,
                            Rule::WdataHeldOnWait,
                            format!("wdata changed during wait: {before:#x} -> {now:#x}"),
                        );
                    }
                }
            }

            // Two-cycle response shape: a ready error-class response must follow
            // an unready first cycle with the same response.
            if view.hready && view.resp.is_error_class() {
                let ok = !prev.view.hready && prev.view.resp == view.resp;
                if !ok {
                    self.report(
                        cycle,
                        Rule::TwoCycleResponse,
                        format!("{:?} completed without its first cycle", view.resp),
                    );
                }
            }
            // And an unready error-class first cycle must not repeat (the second
            // cycle must be ready).
            if !view.hready && view.resp.is_error_class() && prev_error_first {
                self.report(
                    cycle,
                    Rule::TwoCycleResponse,
                    format!("{:?} first cycle repeated", view.resp),
                );
            }

            // Grant stability: grant may only move after a ready cycle.
            if view.grant != prev.view.grant && !prev.view.hready {
                self.report(
                    cycle,
                    Rule::GrantStability,
                    format!(
                        "grant moved {} -> {} on a wait state",
                        prev.view.grant, view.grant
                    ),
                );
            }
        } else if matches!(ap.trans, Htrans::Seq | Htrans::Busy) {
            self.report(
                cycle,
                Rule::SeqContinuity,
                format!("{:?} on the first observed cycle", ap.trans),
            );
        }

        self.prev = Some(PrevCycle {
            view: *view,
            masters: masters.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Arbiter, Decoder, Fabric, Region};
    use crate::signals::{Hburst, Hsize, MasterId, SlaveId};

    fn fabric() -> Fabric {
        Fabric::new(
            Arbiter::new(1, MasterId(0)),
            Decoder::new(vec![Region {
                base: 0,
                size: 0x1000,
                slave: SlaveId(0),
            }])
            .unwrap(),
        )
    }

    fn run_cycle(
        checker: &mut ProtocolChecker,
        fabric: &mut Fabric,
        cycle: u64,
        m: MasterSignals,
        s: SlaveSignals,
    ) {
        let masters = vec![m];
        let slaves = vec![s];
        let view = fabric.view(&masters, &slaves);
        checker.check(cycle, &view, &masters, &slaves);
        fabric.tick(&view, &masters, &slaves);
    }

    #[test]
    fn clean_single_passes() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.addr = 0x10;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        run_cycle(
            &mut checker,
            &mut f,
            1,
            MasterSignals::idle(),
            SlaveSignals::idle(),
        );
        assert!(checker.violations().is_empty());
    }

    #[test]
    fn misaligned_address_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.addr = 0x2; // word transfer at halfword address
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::Alignment));
    }

    #[test]
    fn seq_without_burst_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Seq;
        m.addr = 0x4;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SeqContinuity));
    }

    #[test]
    fn seq_wrong_address_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.burst = Hburst::Incr4;
        m.addr = 0x0;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        m.trans = Htrans::Seq;
        m.addr = 0x20; // should be 0x4
        run_cycle(&mut checker, &mut f, 1, m, SlaveSignals::idle());
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SeqContinuity && v.detail.contains("SEQ addr")));
    }

    #[test]
    fn busy_outside_burst_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.burst = Hburst::Single;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        m.trans = Htrans::Busy;
        run_cycle(&mut checker, &mut f, 1, m, SlaveSignals::idle());
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::BusyOutsideBurst));
    }

    #[test]
    fn address_change_during_wait_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        // Cycle 0: NONSEQ accepted.
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.addr = 0x10;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        // Cycle 1: slave stalls; master keeps driving another NONSEQ.
        let mut stall = SlaveSignals::idle();
        stall.ready = false;
        let mut m2 = m;
        m2.addr = 0x20;
        run_cycle(&mut checker, &mut f, 1, m2, stall);
        // Cycle 2: still stalled, master changed the phase => violation.
        let mut m3 = m;
        m3.addr = 0x30;
        run_cycle(&mut checker, &mut f, 2, m3, stall);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::AddressHeldOnWait));
    }

    #[test]
    fn wdata_change_during_wait_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.write = true;
        m.addr = 0x10;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        // Write data phase with wait states.
        let mut stall = SlaveSignals::idle();
        stall.ready = false;
        let mut m1 = MasterSignals::idle();
        m1.wdata = 0x1111;
        run_cycle(&mut checker, &mut f, 1, m1, stall);
        let mut m2 = MasterSignals::idle();
        m2.wdata = 0x2222; // changed during the extended data phase
        run_cycle(&mut checker, &mut f, 2, m2, stall);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::WdataHeldOnWait));
    }

    #[test]
    fn single_cycle_error_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        // Slave answers ERROR with ready high immediately: illegal.
        let mut bad = SlaveSignals::idle();
        bad.resp = Hresp::Error;
        bad.ready = true;
        run_cycle(&mut checker, &mut f, 1, MasterSignals::idle(), bad);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::TwoCycleResponse));
    }

    #[test]
    fn boundary_crossing_burst_flagged() {
        let mut checker = ProtocolChecker::new();
        let mut f = fabric();
        let mut m = MasterSignals::idle();
        m.trans = Htrans::Nonseq;
        m.burst = Hburst::Incr16;
        m.size = Hsize::Word;
        m.addr = 0x3f0; // 16 words from 0x3f0 crosses 0x400
        run_cycle(&mut checker, &mut f, 0, m, SlaveSignals::idle());
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.rule == Rule::BurstBoundary));
    }

    #[test]
    fn violation_display_readable() {
        let v = Violation {
            cycle: 12,
            rule: Rule::Alignment,
            detail: "addr 0x2".to_string(),
        };
        assert_eq!(v.to_string(), "cycle 12: Alignment — addr 0x2");
    }
}
