//! Producer–consumer FIFO slave.
//!
//! The paper argues slave responses are predictable because they "can be
//! modeled with a simple producer-consumer model" (§3). This slave *is* that
//! model: an internal producer fills a TX FIFO at a fixed rate (reads pop it),
//! an internal consumer drains an RX FIFO at a fixed rate (writes push it).
//! When a read finds the TX FIFO empty — or a write finds the RX FIFO full —
//! the slave stalls the bus until the producer/consumer catches up, producing
//! exactly the periodic wait-state pattern the response predictor learns.

use crate::engine::{PlannedResponse, SlaveEngine};
use crate::signals::{SlaveSignals, SlaveView};
use crate::AhbSlave;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};
use std::collections::VecDeque;

/// A streaming FIFO slave (UART/DSP-port archetype).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoSlave {
    capacity: usize,
    /// Producer fills `tx` once every `produce_period` cycles.
    produce_period: u32,
    produce_phase: u32,
    next_produced: u32,
    tx: VecDeque<u32>,
    /// Consumer drains `rx` once every `consume_period` cycles.
    consume_period: u32,
    consume_phase: u32,
    rx: VecDeque<u32>,
    consumed: Vec<u32>,
    engine: SlaveEngine,
    underflow_reads: u64,
}

impl FifoSlave {
    /// Creates a FIFO slave.
    ///
    /// * `capacity` — depth of each FIFO.
    /// * `produce_period` — cycles between TX words (0 disables the producer).
    /// * `consume_period` — cycles between RX drains (0 disables the consumer).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, produce_period: u32, consume_period: u32) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        FifoSlave {
            capacity,
            produce_period,
            produce_phase: 0,
            next_produced: 0,
            tx: VecDeque::new(),
            consume_period,
            consume_phase: 0,
            rx: VecDeque::new(),
            consumed: Vec::new(),
            engine: SlaveEngine::new(),
            underflow_reads: 0,
        }
    }

    /// Words the internal consumer has drained from the RX FIFO so far.
    pub fn consumed(&self) -> &[u32] {
        &self.consumed
    }

    /// Current TX fill level.
    pub fn tx_level(&self) -> usize {
        self.tx.len()
    }

    /// Current RX fill level.
    pub fn rx_level(&self) -> usize {
        self.rx.len()
    }

    /// Reads that completed against an empty TX FIFO after an engine stall with
    /// no producer running (returned zero). Zero in sane configurations.
    pub fn underflow_reads(&self) -> u64 {
        self.underflow_reads
    }

    fn run_producer_consumer(&mut self) {
        if self.produce_period > 0 {
            self.produce_phase += 1;
            if self.produce_phase >= self.produce_period {
                self.produce_phase = 0;
                if self.tx.len() < self.capacity {
                    self.tx.push_back(self.next_produced);
                    self.next_produced = self.next_produced.wrapping_add(1);
                }
            }
        }
        if self.consume_period > 0 {
            self.consume_phase += 1;
            if self.consume_phase >= self.consume_period {
                self.consume_phase = 0;
                if let Some(w) = self.rx.pop_front() {
                    self.consumed.push(w);
                }
            }
        }
    }
}

impl AhbSlave for FifoSlave {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> SlaveSignals {
        self.engine.outputs()
    }

    fn tick(&mut self, view: &SlaveView) {
        self.run_producer_consumer();

        // Resolve a pending stall as soon as the blocking condition clears.
        if self.engine.stalled() {
            let serving = *self.engine.serving().expect("stalled implies serving");
            if serving.write {
                if self.rx.len() < self.capacity {
                    self.engine.complete_stall(0);
                }
            } else if let Some(w) = self.tx.pop_front() {
                self.engine.complete_stall(w);
            } else if self.produce_period == 0 {
                // No producer will ever fill the FIFO: fail open with zero
                // rather than deadlocking the bus.
                self.underflow_reads += 1;
                self.engine.complete_stall(0);
            }
        }

        let events = self.engine.tick(view);
        if let Some(done) = events.completed {
            if let Some(wdata) = done.wdata {
                debug_assert!(self.rx.len() < self.capacity, "stall guaranteed space");
                self.rx.push_back(wdata);
            }
        }
        if let Some(phase) = events.accepted {
            if phase.write {
                if self.rx.len() < self.capacity {
                    self.engine.plan(PlannedResponse::okay(0, 0));
                } else {
                    self.engine.plan(PlannedResponse::stall());
                }
            } else if let Some(w) = self.tx.pop_front() {
                self.engine.plan(PlannedResponse::okay(0, w));
            } else {
                self.engine.plan(PlannedResponse::stall());
            }
        }
    }
}

impl Snapshot for FifoSlave {
    fn save(&self, w: &mut StateWriter<'_>) {
        w.u32(self.produce_phase)
            .u32(self.next_produced)
            .u32(self.consume_phase);
        let tx: Vec<u32> = self.tx.iter().copied().collect();
        w.slice_u32(&tx);
        let rx: Vec<u32> = self.rx.iter().copied().collect();
        w.slice_u32(&rx);
        w.slice_u32(&self.consumed);
        self.engine.save(w);
        w.word(self.underflow_reads);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.produce_phase = r.u32()?;
        self.next_produced = r.u32()?;
        self.consume_phase = r.u32()?;
        self.tx = r.slice_u32()?.into();
        self.rx = r.slice_u32()?.into();
        self.consumed = r.slice_u32()?;
        self.engine.restore(r)?;
        self.underflow_reads = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{AddrPhase, Hburst, Hsize, Htrans, MasterId, SlaveId};
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn phase(write: bool) -> AddrPhase {
        AddrPhase {
            master: MasterId(0),
            slave: Some(SlaveId(0)),
            trans: Htrans::Nonseq,
            addr: 0,
            write,
            size: Hsize::Word,
            burst: Hburst::Single,
        }
    }

    /// Completes one transfer, returning (rdata, cycles taken).
    fn complete(f: &mut FifoSlave, write: bool, wdata: u32) -> (u32, u32) {
        let p = phase(write);
        f.tick(&SlaveView {
            addr_phase: Some(p),
            ..SlaveView::quiet()
        });
        let mut cycles = 0;
        loop {
            cycles += 1;
            assert!(cycles < 1000, "slave deadlocked");
            let out = f.outputs();
            let rdata = out.rdata;
            f.tick(&SlaveView {
                dp_active: true,
                dp: Some(p),
                hready: out.ready,
                wdata,
                ..SlaveView::quiet()
            });
            if out.ready {
                return (rdata, cycles);
            }
        }
    }

    #[test]
    fn read_pops_produced_sequence() {
        let mut f = FifoSlave::new(8, 1, 0); // produce every cycle
                                             // Let the producer run a few cycles.
        for _ in 0..4 {
            f.tick(&SlaveView::quiet());
        }
        let (a, _) = complete(&mut f, false, 0);
        let (b, _) = complete(&mut f, false, 0);
        assert_eq!((a, b), (0, 1), "produced sequence pops in order");
    }

    #[test]
    fn empty_read_stalls_until_production() {
        let mut f = FifoSlave::new(4, 5, 0); // a word every 5 cycles
        let (value, cycles) = complete(&mut f, false, 0);
        assert_eq!(value, 0);
        assert!(cycles > 1, "read stalled for production, took {cycles}");
        assert!(cycles <= 6);
        assert_eq!(f.underflow_reads(), 0);
    }

    #[test]
    fn reader_without_producer_fails_open() {
        let mut f = FifoSlave::new(4, 0, 0);
        let (value, _) = complete(&mut f, false, 0);
        assert_eq!(value, 0);
        assert_eq!(f.underflow_reads(), 1);
    }

    #[test]
    fn writes_push_and_consumer_drains() {
        let mut f = FifoSlave::new(4, 0, 2);
        complete(&mut f, true, 0xa);
        complete(&mut f, true, 0xb);
        assert!(f.rx_level() <= 2);
        for _ in 0..10 {
            f.tick(&SlaveView::quiet());
        }
        assert_eq!(f.consumed(), &[0xa, 0xb]);
        assert_eq!(f.rx_level(), 0);
    }

    #[test]
    fn full_rx_stalls_writer() {
        let mut f = FifoSlave::new(2, 0, 8); // slow consumer
        let (_, c1) = complete(&mut f, true, 1);
        let (_, c2) = complete(&mut f, true, 2);
        assert_eq!((c1, c2), (1, 1), "fits in capacity");
        let (_, c3) = complete(&mut f, true, 3);
        assert!(c3 > 1, "third write stalls until the consumer drains");
    }

    #[test]
    fn producer_respects_capacity() {
        let mut f = FifoSlave::new(3, 1, 0);
        for _ in 0..10 {
            f.tick(&SlaveView::quiet());
        }
        assert_eq!(f.tx_level(), 3, "producer stops at capacity");
    }

    #[test]
    fn wait_pattern_is_periodic() {
        // The property the response predictor exploits: with a fixed production
        // period, successive empty-FIFO reads exhibit the same stall length.
        let mut f = FifoSlave::new(4, 3, 0);
        let (_, c1) = complete(&mut f, false, 0);
        let (_, c2) = complete(&mut f, false, 0);
        let (_, c3) = complete(&mut f, false, 0);
        assert_eq!(c2, c3, "steady-state stalls are periodic ({c1},{c2},{c3})");
    }

    #[test]
    fn snapshot_roundtrip_mid_stream() {
        let mut f = FifoSlave::new(4, 2, 3);
        complete(&mut f, true, 9);
        for _ in 0..3 {
            f.tick(&SlaveView::quiet());
        }
        let state = save_to_vec(&f);
        let mut copy = FifoSlave::new(4, 2, 3);
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, f);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = FifoSlave::new(0, 1, 1);
    }
}
