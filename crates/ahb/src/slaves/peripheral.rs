//! Register-file peripheral with a timer and an interrupt line.
//!
//! Interrupts are the paper's canonical example of a non-bus signal crossing
//! the domain boundary ("interrupt signal to be one of the most common
//! examples, it should be treated the same as elements of MSABS and should be a
//! subject of prediction, too", §3). This peripheral raises its IRQ
//! periodically so co-emulation tests exercise exactly that path.

use crate::engine::{PlannedResponse, SlaveEngine};
use crate::signals::{SlaveSignals, SlaveView};
use crate::AhbSlave;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// Control register offset: bit 0 = timer enable, bit 1 = IRQ enable.
pub const REG_CTRL: u32 = 0x00;
/// Status register offset: bit 0 = IRQ pending (write 1 to clear).
pub const REG_STATUS: u32 = 0x04;
/// Timer period register offset (cycles per IRQ).
pub const REG_TIMER_PERIOD: u32 = 0x08;
/// Timer current-count register offset (read-only).
pub const REG_TIMER_COUNT: u32 = 0x0c;
/// Data-port register offset: writes push into a mailbox, reads pop.
pub const REG_DATA: u32 = 0x10;

const CTRL_TIMER_EN: u32 = 0b01;
const CTRL_IRQ_EN: u32 = 0b10;
const MAILBOX_CAP: usize = 16;

/// A memory-mapped peripheral: control/status registers, a periodic timer that
/// raises the IRQ line, and a 16-entry mailbox data port.
///
/// All accesses complete with a fixed number of wait states (configurable),
/// making its responses predictable in the paper's sense; the IRQ line is the
/// signal the last-value interrupt predictor has to track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeripheralSlave {
    ctrl: u32,
    irq_pending: bool,
    period: u32,
    count: u32,
    mailbox: Vec<u32>,
    wait_states: u32,
    engine: SlaveEngine,
}

impl PeripheralSlave {
    /// Creates a peripheral whose accesses cost `wait_states` wait states.
    pub fn new(wait_states: u32) -> Self {
        PeripheralSlave {
            ctrl: 0,
            irq_pending: false,
            period: 0,
            count: 0,
            mailbox: Vec::new(),
            wait_states,
            engine: SlaveEngine::new(),
        }
    }

    /// Direct register read (test access).
    pub fn peek(&self, offset: u32) -> u32 {
        match offset & 0x1c {
            REG_CTRL => self.ctrl,
            REG_STATUS => self.irq_pending as u32,
            REG_TIMER_PERIOD => self.period,
            REG_TIMER_COUNT => self.count,
            REG_DATA => self.mailbox.first().copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// `true` while the IRQ line is asserted.
    pub fn irq_asserted(&self) -> bool {
        self.irq_pending && self.ctrl & CTRL_IRQ_EN != 0
    }

    /// Number of words waiting in the mailbox.
    pub fn mailbox_len(&self) -> usize {
        self.mailbox.len()
    }

    fn register_read(&mut self, offset: u32) -> u32 {
        match offset & 0x1c {
            REG_CTRL => self.ctrl,
            REG_STATUS => self.irq_pending as u32,
            REG_TIMER_PERIOD => self.period,
            REG_TIMER_COUNT => self.count,
            REG_DATA => {
                if self.mailbox.is_empty() {
                    0
                } else {
                    self.mailbox.remove(0)
                }
            }
            _ => 0,
        }
    }

    fn register_write(&mut self, offset: u32, value: u32) {
        match offset & 0x1c {
            REG_CTRL => self.ctrl = value & 0b11,
            REG_STATUS if value & 1 != 0 => {
                self.irq_pending = false;
            }
            REG_TIMER_PERIOD => {
                self.period = value;
                self.count = 0;
            }
            REG_DATA if self.mailbox.len() < MAILBOX_CAP => {
                self.mailbox.push(value);
            }
            _ => {}
        }
    }
}

impl AhbSlave for PeripheralSlave {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> SlaveSignals {
        let mut sig = self.engine.outputs();
        sig.irq = self.irq_asserted();
        sig
    }

    fn tick(&mut self, view: &SlaveView) {
        // Timer runs every cycle regardless of bus activity.
        if self.ctrl & CTRL_TIMER_EN != 0 && self.period > 0 {
            self.count += 1;
            if self.count >= self.period {
                self.count = 0;
                self.irq_pending = true;
            }
        }

        let events = self.engine.tick(view);
        if let Some(done) = events.completed {
            if let Some(wdata) = done.wdata {
                self.register_write(done.phase.addr, wdata);
            }
        }
        if let Some(phase) = events.accepted {
            let rdata = if phase.write {
                0
            } else {
                self.register_read(phase.addr)
            };
            self.engine
                .plan(PlannedResponse::okay(self.wait_states, rdata));
        }
    }
}

impl Snapshot for PeripheralSlave {
    fn save(&self, w: &mut StateWriter<'_>) {
        w.u32(self.ctrl)
            .bool(self.irq_pending)
            .u32(self.period)
            .u32(self.count)
            .slice_u32(&self.mailbox);
        self.engine.save(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.ctrl = r.u32()?;
        self.irq_pending = r.bool()?;
        self.period = r.u32()?;
        self.count = r.u32()?;
        self.mailbox = r.slice_u32()?;
        self.engine.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{AddrPhase, Hburst, Hsize, Htrans, MasterId, SlaveId};
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn phase(write: bool, addr: u32) -> AddrPhase {
        AddrPhase {
            master: MasterId(0),
            slave: Some(SlaveId(0)),
            trans: Htrans::Nonseq,
            addr,
            write,
            size: Hsize::Word,
            burst: Hburst::Single,
        }
    }

    fn bus_write(p: &mut PeripheralSlave, addr: u32, value: u32) {
        let ph = phase(true, addr);
        p.tick(&SlaveView {
            addr_phase: Some(ph),
            ..SlaveView::quiet()
        });
        loop {
            let ready = p.outputs().ready;
            p.tick(&SlaveView {
                dp_active: true,
                dp: Some(ph),
                hready: ready,
                wdata: value,
                ..SlaveView::quiet()
            });
            if ready {
                break;
            }
        }
    }

    fn bus_read(p: &mut PeripheralSlave, addr: u32) -> u32 {
        let ph = phase(false, addr);
        p.tick(&SlaveView {
            addr_phase: Some(ph),
            ..SlaveView::quiet()
        });
        loop {
            let out = p.outputs();
            p.tick(&SlaveView {
                dp_active: true,
                dp: Some(ph),
                hready: out.ready,
                ..SlaveView::quiet()
            });
            if out.ready {
                return out.rdata;
            }
        }
    }

    #[test]
    fn register_access_roundtrip() {
        let mut p = PeripheralSlave::new(1);
        bus_write(&mut p, REG_TIMER_PERIOD, 100);
        assert_eq!(bus_read(&mut p, REG_TIMER_PERIOD), 100);
        bus_write(&mut p, REG_CTRL, 0b11);
        assert_eq!(bus_read(&mut p, REG_CTRL), 0b11);
    }

    #[test]
    fn timer_raises_irq_and_status_clears_it() {
        let mut p = PeripheralSlave::new(0);
        bus_write(&mut p, REG_TIMER_PERIOD, 8);
        bus_write(&mut p, REG_CTRL, 0b11);
        // Idle-tick until the IRQ fires.
        let mut fired_at = None;
        for cycle in 0..32 {
            if p.irq_asserted() {
                fired_at = Some(cycle);
                break;
            }
            p.tick(&SlaveView::quiet());
        }
        assert!(fired_at.is_some(), "timer IRQ fired");
        assert!(p.outputs().irq);
        // Write-1-to-clear.
        bus_write(&mut p, REG_STATUS, 1);
        assert!(!p.irq_asserted());
    }

    #[test]
    fn irq_masked_without_enable() {
        let mut p = PeripheralSlave::new(0);
        bus_write(&mut p, REG_TIMER_PERIOD, 4);
        bus_write(&mut p, REG_CTRL, CTRL_TIMER_EN); // timer on, IRQ off
        for _ in 0..10 {
            p.tick(&SlaveView::quiet());
        }
        assert!(p.peek(REG_STATUS) == 1, "pending set internally");
        assert!(!p.irq_asserted(), "line masked");
    }

    #[test]
    fn mailbox_fifo_order_and_capacity() {
        let mut p = PeripheralSlave::new(0);
        for i in 0..20 {
            bus_write(&mut p, REG_DATA, 100 + i);
        }
        assert_eq!(p.mailbox_len(), MAILBOX_CAP, "overflow dropped");
        assert_eq!(bus_read(&mut p, REG_DATA), 100);
        assert_eq!(bus_read(&mut p, REG_DATA), 101);
        assert_eq!(p.mailbox_len(), MAILBOX_CAP - 2);
    }

    #[test]
    fn empty_mailbox_reads_zero() {
        let mut p = PeripheralSlave::new(0);
        assert_eq!(bus_read(&mut p, REG_DATA), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_timer_state() {
        let mut p = PeripheralSlave::new(2);
        bus_write(&mut p, REG_TIMER_PERIOD, 50);
        bus_write(&mut p, REG_CTRL, 0b11);
        for _ in 0..17 {
            p.tick(&SlaveView::quiet());
        }
        let state = save_to_vec(&p);
        let mut copy = PeripheralSlave::new(2);
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, p);
    }
}
