//! SPLIT-capable slave: models a slow device that releases the bus while it
//! works.
//!
//! On a first access the slave answers SPLIT (two-cycle response), remembers
//! the requesting master, and starts an internal job of `latency` cycles. When
//! the job finishes it pulses the corresponding HSPLITx bit, the arbiter
//! unmasks the master, and the retried transfer is served from the backing
//! store with zero waits. Multiple masters can be split concurrently; jobs
//! complete in arrival order.

use crate::engine::{PlannedResponse, SlaveEngine};
use crate::signals::{MasterId, SlaveSignals, SlaveView};
use crate::AhbSlave;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// One split job in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    master: MasterId,
    cycles_left: u32,
    /// Processing starts only once the SPLIT response has completed.
    armed: bool,
}

/// A slave that SPLITs first accesses and serves retried ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitSlave {
    words: Vec<u32>,
    latency: u32,
    jobs: Vec<Job>,
    /// Masters whose job finished and whose retry will be served.
    ready_masters: u16,
    /// HSPLITx bits to pulse this cycle.
    unmask_pulse: u16,
    engine: SlaveEngine,
    splits_issued: u64,
}

impl SplitSlave {
    /// Creates a split slave with `size_bytes` of backing store and an internal
    /// processing latency of `latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32, latency: u32) -> Self {
        assert!(size_bytes > 0, "backing store must not be empty");
        SplitSlave {
            words: vec![0; size_bytes.div_ceil(4) as usize],
            latency,
            jobs: Vec::new(),
            ready_masters: 0,
            unmask_pulse: 0,
            engine: SlaveEngine::new(),
            splits_issued: 0,
        }
    }

    fn index(&self, addr: u32) -> usize {
        (addr as usize / 4) % self.words.len()
    }

    /// Direct word read (test access).
    pub fn peek_word(&self, addr: u32) -> u32 {
        self.words[self.index(addr)]
    }

    /// Direct word write (test access).
    pub fn poke_word(&mut self, addr: u32, value: u32) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Total SPLIT responses issued.
    pub fn splits_issued(&self) -> u64 {
        self.splits_issued
    }
}

impl AhbSlave for SplitSlave {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> SlaveSignals {
        let mut sig = self.engine.outputs();
        sig.split_unmask = self.unmask_pulse;
        sig
    }

    fn tick(&mut self, view: &SlaveView) {
        // The unmask pulse lasts exactly one cycle.
        self.unmask_pulse = 0;

        // Progress internal jobs; the oldest armed job counts down, and on
        // completion unmasks its master.
        if let Some(job) = self.jobs.first_mut() {
            if job.armed {
                if job.cycles_left > 0 {
                    job.cycles_left -= 1;
                }
                if job.cycles_left == 0 {
                    let done = self.jobs.remove(0);
                    self.ready_masters |= 1 << done.master.0;
                    self.unmask_pulse |= 1 << done.master.0;
                }
            }
        }

        let events = self.engine.tick(view);
        if let Some(done) = events.completed {
            if done.resp == crate::signals::Hresp::Split {
                // The split handshake finished: start processing the job.
                if let Some(job) = self
                    .jobs
                    .iter_mut()
                    .find(|j| j.master == done.phase.master && !j.armed)
                {
                    job.armed = true;
                }
            } else if let Some(wdata) = done.wdata {
                let i = self.index(done.phase.addr);
                self.words[i] = wdata;
            }
        }
        if let Some(phase) = events.accepted {
            let bit = 1u16 << phase.master.0;
            if self.ready_masters & bit != 0 {
                // The retried transfer: serve immediately.
                self.ready_masters &= !bit;
                let rdata = if phase.write {
                    0
                } else {
                    self.words[self.index(phase.addr)]
                };
                self.engine.plan(PlannedResponse::okay(0, rdata));
            } else {
                // Fresh transfer: split the master and queue a job.
                self.splits_issued += 1;
                self.jobs.push(Job {
                    master: phase.master,
                    cycles_left: self.latency.max(1),
                    armed: false,
                });
                self.engine.plan(PlannedResponse::error_class(
                    0,
                    crate::signals::Hresp::Split,
                ));
            }
        }
    }
}

impl Snapshot for SplitSlave {
    fn save(&self, w: &mut StateWriter<'_>) {
        w.slice_u32(&self.words);
        w.usize(self.jobs.len());
        for j in &self.jobs {
            w.usize(j.master.0).u32(j.cycles_left).bool(j.armed);
        }
        w.u32(self.ready_masters as u32);
        w.u32(self.unmask_pulse as u32);
        self.engine.save(w);
        w.word(self.splits_issued);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.words = r.slice_u32()?;
        let n = r.usize()?;
        self.jobs = (0..n)
            .map(|_| {
                Ok(Job {
                    master: MasterId(r.usize()?),
                    cycles_left: r.u32()?,
                    armed: r.bool()?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?;
        self.ready_masters = r.u32()? as u16;
        self.unmask_pulse = r.u32()? as u16;
        self.engine.restore(r)?;
        self.splits_issued = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{AddrPhase, Hburst, Hresp, Hsize, Htrans, SlaveId};
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn phase(master: usize, write: bool, addr: u32) -> AddrPhase {
        AddrPhase {
            master: MasterId(master),
            slave: Some(SlaveId(0)),
            trans: Htrans::Nonseq,
            addr,
            write,
            size: Hsize::Word,
            burst: Hburst::Single,
        }
    }

    #[test]
    fn first_access_splits_then_serves_retry() {
        let mut s = SplitSlave::new(0x100, 3);
        s.poke_word(0x8, 0x7777);
        // First access: accepted, planned as SPLIT.
        s.tick(&SlaveView {
            addr_phase: Some(phase(1, false, 0x8)),
            ..SlaveView::quiet()
        });
        // Two-cycle SPLIT response.
        let out = s.outputs();
        assert!(!out.ready);
        assert_eq!(out.resp, Hresp::Split);
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        let out = s.outputs();
        assert!(out.ready);
        assert_eq!(out.resp, Hresp::Split);
        s.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        assert_eq!(s.splits_issued(), 1);

        // Idle until the unmask pulse appears.
        let mut pulsed_at = None;
        for i in 0..10 {
            if s.outputs().split_unmask & 0b10 != 0 {
                pulsed_at = Some(i);
                break;
            }
            s.tick(&SlaveView::quiet());
        }
        assert!(pulsed_at.is_some(), "HSPLIT pulse for master 1");

        // Retried access is served with data.
        s.tick(&SlaveView {
            addr_phase: Some(phase(1, false, 0x8)),
            ..SlaveView::quiet()
        });
        let out = s.outputs();
        assert!(out.ready);
        assert_eq!(out.resp, Hresp::Okay);
        assert_eq!(out.rdata, 0x7777);
    }

    #[test]
    fn unmask_pulse_is_one_cycle() {
        let mut s = SplitSlave::new(0x10, 1);
        s.tick(&SlaveView {
            addr_phase: Some(phase(0, false, 0x0)),
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        // Find the pulse, then confirm it clears.
        let mut seen = false;
        for _ in 0..5 {
            let pulse = s.outputs().split_unmask;
            s.tick(&SlaveView::quiet());
            if pulse != 0 {
                seen = true;
                assert_eq!(s.outputs().split_unmask, 0, "pulse lasts one cycle");
                break;
            }
        }
        assert!(seen);
    }

    #[test]
    fn split_write_commits_on_retry() {
        let mut s = SplitSlave::new(0x100, 1);
        // Fresh write: split.
        s.tick(&SlaveView {
            addr_phase: Some(phase(0, true, 0x4)),
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        // Wait for unmask.
        for _ in 0..4 {
            s.tick(&SlaveView::quiet());
        }
        // Retry: write completes and commits.
        let wp = phase(0, true, 0x4);
        s.tick(&SlaveView {
            addr_phase: Some(wp),
            ..SlaveView::quiet()
        });
        assert!(s.outputs().ready);
        s.tick(&SlaveView {
            dp_active: true,
            dp: Some(wp),
            wdata: 0xbeef,
            ..SlaveView::quiet()
        });
        assert_eq!(s.peek_word(0x4), 0xbeef);
    }

    #[test]
    fn concurrent_splits_complete_in_order() {
        let mut s = SplitSlave::new(0x100, 10);
        // Master 0 splits.
        s.tick(&SlaveView {
            addr_phase: Some(phase(0, false, 0x0)),
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        // Master 2 splits.
        s.tick(&SlaveView {
            addr_phase: Some(phase(2, false, 0x0)),
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        assert_eq!(s.splits_issued(), 2);
        // Collect unmask pulses in order.
        let mut pulses = Vec::new();
        for _ in 0..40 {
            let p = s.outputs().split_unmask;
            if p != 0 {
                pulses.push(p);
            }
            s.tick(&SlaveView::quiet());
        }
        assert_eq!(pulses, vec![0b001, 0b100], "jobs finish in arrival order");
    }

    #[test]
    fn snapshot_roundtrip_mid_job() {
        let mut s = SplitSlave::new(0x40, 5);
        s.tick(&SlaveView {
            addr_phase: Some(phase(3, false, 0xc)),
            ..SlaveView::quiet()
        });
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        let state = save_to_vec(&s);
        let mut copy = SplitSlave::new(0x40, 5);
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, s);
    }
}
