//! Explicit always-ERROR slave.
//!
//! The [`Fabric`](crate::fabric::Fabric) already answers unmapped addresses with
//! a built-in two-cycle ERROR; this component exists for designs that want an
//! explicit error region in the address map (e.g. to trap firmware bugs at a
//! known slave index) and for protocol tests.

use crate::engine::{PlannedResponse, SlaveEngine};
use crate::signals::{Hresp, SlaveSignals, SlaveView};
use crate::AhbSlave;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// A slave that answers every transfer with a two-cycle ERROR.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefaultSlave {
    engine: SlaveEngine,
    errors: u64,
}

impl DefaultSlave {
    /// Creates the slave.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of transfers rejected so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl AhbSlave for DefaultSlave {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> SlaveSignals {
        self.engine.outputs()
    }

    fn tick(&mut self, view: &SlaveView) {
        let events = self.engine.tick(view);
        if events.completed.is_some() {
            self.errors += 1;
        }
        if events.accepted.is_some() {
            self.engine
                .plan(PlannedResponse::error_class(0, Hresp::Error));
        }
    }
}

impl Snapshot for DefaultSlave {
    fn save(&self, w: &mut StateWriter<'_>) {
        self.engine.save(w);
        w.word(self.errors);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.engine.restore(r)?;
        self.errors = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{AddrPhase, Hburst, Hsize, Htrans, MasterId, SlaveId};

    #[test]
    fn always_errors_in_two_cycles() {
        let mut s = DefaultSlave::new();
        let p = AddrPhase {
            master: MasterId(0),
            slave: Some(SlaveId(0)),
            trans: Htrans::Nonseq,
            addr: 0x123 & !3,
            write: false,
            size: Hsize::Word,
            burst: Hburst::Single,
        };
        s.tick(&SlaveView {
            addr_phase: Some(p),
            ..SlaveView::quiet()
        });
        let o1 = s.outputs();
        assert!(!o1.ready);
        assert_eq!(o1.resp, Hresp::Error);
        s.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        let o2 = s.outputs();
        assert!(o2.ready);
        assert_eq!(o2.resp, Hresp::Error);
        s.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        assert_eq!(s.errors(), 1);
    }
}
