//! Word-addressed RAM slave with byte-lane support and configurable wait states.

use crate::engine::{PlannedResponse, SlaveEngine};
use crate::signals::{Hsize, Htrans, SlaveSignals, SlaveView};
use crate::AhbSlave;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// A RAM slave.
///
/// Addresses are interpreted modulo the memory size (mirror mapping), so the
/// slave does not need to know its decoder base. The first beat of a burst
/// costs [`first_wait`](MemorySlave::new) wait states; sequential beats cost
/// `seq_wait` — the classic SRAM/SDRAM-lite pattern whose responses the paper
/// classifies as predictable.
///
/// # Example
///
/// ```
/// use predpkt_ahb::slaves::MemorySlave;
/// let mut mem = MemorySlave::new(0x1000, 1);
/// mem.poke_word(0x10, 0xdead_beef);
/// assert_eq!(mem.peek_word(0x10), 0xdead_beef);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySlave {
    words: Vec<u32>,
    first_wait: u32,
    seq_wait: u32,
    engine: SlaveEngine,
    reads: u64,
    writes: u64,
}

impl MemorySlave {
    /// Creates a RAM of `size_bytes` (rounded up to a word multiple) whose
    /// first-beat accesses cost `first_wait` wait states and whose sequential
    /// beats complete with zero waits.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32, first_wait: u32) -> Self {
        Self::with_waits(size_bytes, first_wait, 0)
    }

    /// Creates a RAM with distinct first-beat and sequential-beat wait states.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn with_waits(size_bytes: u32, first_wait: u32, seq_wait: u32) -> Self {
        assert!(size_bytes > 0, "memory must not be empty");
        let words = vec![0u32; size_bytes.div_ceil(4) as usize];
        MemorySlave {
            words,
            first_wait,
            seq_wait,
            engine: SlaveEngine::new(),
            reads: 0,
            writes: 0,
        }
    }

    fn index(&self, addr: u32) -> usize {
        (addr as usize / 4) % self.words.len()
    }

    /// Reads a word directly (test access, no bus semantics).
    pub fn peek_word(&self, addr: u32) -> u32 {
        self.words[self.index(addr)]
    }

    /// Writes a word directly (test access, no bus semantics).
    pub fn poke_word(&mut self, addr: u32, value: u32) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Number of completed read beats.
    pub fn read_beats(&self) -> u64 {
        self.reads
    }

    /// Number of completed write beats.
    pub fn write_beats(&self) -> u64 {
        self.writes
    }

    /// Merges `wdata` into the stored word according to size and byte lanes
    /// (AHB little-endian lane placement).
    fn merge_lanes(word: u32, wdata: u32, addr: u32, size: Hsize) -> u32 {
        match size {
            Hsize::Word => wdata,
            Hsize::Half => {
                let shift = (addr & 0b10) * 8;
                let mask = 0xffffu32 << shift;
                (word & !mask) | (wdata & mask)
            }
            Hsize::Byte => {
                let shift = (addr & 0b11) * 8;
                let mask = 0xffu32 << shift;
                (word & !mask) | (wdata & mask)
            }
        }
    }
}

impl AhbSlave for MemorySlave {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> SlaveSignals {
        self.engine.outputs()
    }

    fn tick(&mut self, view: &SlaveView) {
        let events = self.engine.tick(view);
        // Commit the completing transfer before planning a pipelined successor
        // so back-to-back write→read to the same address reads fresh data.
        if let Some(done) = events.completed {
            if let Some(wdata) = done.wdata {
                let i = self.index(done.phase.addr);
                self.words[i] =
                    Self::merge_lanes(self.words[i], wdata, done.phase.addr, done.phase.size);
                self.writes += 1;
            } else {
                self.reads += 1;
            }
        }
        if let Some(phase) = events.accepted {
            let wait = if phase.trans == Htrans::Nonseq {
                self.first_wait
            } else {
                self.seq_wait
            };
            let rdata = if phase.write {
                0
            } else {
                self.words[self.index(phase.addr)]
            };
            self.engine.plan(PlannedResponse::okay(wait, rdata));
        }
    }
}

impl Snapshot for MemorySlave {
    fn save(&self, w: &mut StateWriter<'_>) {
        w.slice_u32(&self.words);
        self.engine.save(w);
        w.word(self.reads).word(self.writes);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.words = r.slice_u32()?;
        self.engine.restore(r)?;
        self.reads = r.word()?;
        self.writes = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{AddrPhase, Hburst, MasterId, SlaveId};
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn phase(write: bool, addr: u32, size: Hsize, trans: Htrans) -> AddrPhase {
        AddrPhase {
            master: MasterId(0),
            slave: Some(SlaveId(0)),
            trans,
            addr,
            write,
            size,
            burst: Hburst::Single,
        }
    }

    /// Runs an accepted transfer through to completion, returning the delivered
    /// read data (for reads) and the cycle count it took.
    fn complete(mem: &mut MemorySlave, p: AddrPhase, wdata: u32) -> (u32, u32) {
        mem.tick(&SlaveView {
            addr_phase: Some(p),
            ..SlaveView::quiet()
        });
        let mut cycles = 0;
        loop {
            cycles += 1;
            let out = mem.outputs();
            let view = SlaveView {
                dp_active: true,
                dp: Some(p),
                hready: out.ready,
                wdata,
                ..SlaveView::quiet()
            };
            let rdata = out.rdata;
            mem.tick(&view);
            if out.ready {
                return (rdata, cycles);
            }
        }
    }

    #[test]
    fn word_write_then_read() {
        let mut mem = MemorySlave::new(0x100, 0);
        complete(
            &mut mem,
            phase(true, 0x20, Hsize::Word, Htrans::Nonseq),
            0x1234_5678,
        );
        let (rdata, _) = complete(&mut mem, phase(false, 0x20, Hsize::Word, Htrans::Nonseq), 0);
        assert_eq!(rdata, 0x1234_5678);
        assert_eq!(mem.write_beats(), 1);
        assert_eq!(mem.read_beats(), 1);
    }

    #[test]
    fn wait_states_respected() {
        let mut mem = MemorySlave::with_waits(0x100, 3, 1);
        let (_, cycles) = complete(&mut mem, phase(false, 0x0, Hsize::Word, Htrans::Nonseq), 0);
        assert_eq!(cycles, 4, "3 wait states + 1 data cycle");
        let (_, cycles) = complete(&mut mem, phase(false, 0x4, Hsize::Word, Htrans::Seq), 0);
        assert_eq!(cycles, 2, "1 sequential wait + 1 data cycle");
    }

    #[test]
    fn byte_lanes_merge() {
        let mut mem = MemorySlave::new(0x100, 0);
        mem.poke_word(0x10, 0xaabb_ccdd);
        // Byte write to lane 2 (addr & 3 == 2): data arrives on bits 23..16.
        complete(
            &mut mem,
            phase(true, 0x12, Hsize::Byte, Htrans::Nonseq),
            0x00ee_0000,
        );
        assert_eq!(mem.peek_word(0x10), 0xaaee_ccdd);
        // Half write to the upper lane.
        complete(
            &mut mem,
            phase(true, 0x12, Hsize::Half, Htrans::Nonseq),
            0x1122_0000,
        );
        assert_eq!(mem.peek_word(0x10), 0x1122_ccdd);
    }

    #[test]
    fn mirror_addressing() {
        let mut mem = MemorySlave::new(0x10, 0); // 4 words
        mem.poke_word(0x0, 7);
        assert_eq!(mem.peek_word(0x10), 7, "address wraps modulo size");
    }

    #[test]
    fn back_to_back_write_read_same_address() {
        // Pipelined: the read of 0x8 is accepted in the same cycle the write to
        // 0x8 completes; it must observe the written value.
        let mut mem = MemorySlave::new(0x100, 0);
        let wp = phase(true, 0x8, Hsize::Word, Htrans::Nonseq);
        let rp = phase(false, 0x8, Hsize::Word, Htrans::Nonseq);
        // Accept write.
        mem.tick(&SlaveView {
            addr_phase: Some(wp),
            ..SlaveView::quiet()
        });
        // Write data phase completes; read accepted in the same cycle.
        assert!(mem.outputs().ready);
        mem.tick(&SlaveView {
            addr_phase: Some(rp),
            dp_active: true,
            dp: Some(wp),
            wdata: 0x55aa,
            ..SlaveView::quiet()
        });
        // Read data phase delivers the fresh value.
        let out = mem.outputs();
        assert!(out.ready);
        assert_eq!(out.rdata, 0x55aa);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut mem = MemorySlave::with_waits(0x40, 2, 1);
        mem.poke_word(0x0, 1);
        mem.poke_word(0x3c, 2);
        complete(&mut mem, phase(true, 0x4, Hsize::Word, Htrans::Nonseq), 99);
        let state = save_to_vec(&mem);
        let mut copy = MemorySlave::with_waits(0x40, 2, 1);
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, mem);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn zero_size_rejected() {
        let _ = MemorySlave::new(0, 0);
    }
}
