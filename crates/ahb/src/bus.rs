//! The monolithic golden bus.
//!
//! [`AhbBus`] owns every master, slave and the fabric and evaluates them in
//! lockstep — the single-domain reference against which the split co-emulation
//! of `predpkt-core` must be bit-identical. Each [`tick`](AhbBus::tick) records
//! the full MSABS signal vector into a [`Trace`], so equivalence is a trace
//! comparison.

use crate::checker::{ProtocolChecker, Violation};
use crate::fabric::{Arbiter, CycleView, DecodeMapError, Decoder, Fabric, Region};
use crate::signals::{MasterId, MasterSignals, SlaveId, SlaveSignals};
use crate::{AhbMaster, AhbSlave};
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter, Trace};
use std::fmt;

/// Packs one cycle's Moore outputs into a canonical trace record.
///
/// Both the golden bus and the split co-emulation use this encoding, so traces
/// compare directly.
pub fn pack_cycle_record(masters: &[MasterSignals], slaves: &[SlaveSignals]) -> Vec<u64> {
    let mut rec = Vec::with_capacity(masters.len() * 3 + slaves.len() * 2);
    for m in masters {
        rec.extend(m.pack().iter().map(|&w| w as u64));
    }
    for s in slaves {
        rec.extend(s.pack().iter().map(|&w| w as u64));
    }
    rec
}

/// Bus construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusConfigError {
    /// No master was added.
    NoMasters,
    /// More than 16 masters or slaves (HSPLIT/IRQ vectors are 16 bits).
    TooManyComponents {
        /// The offending count.
        count: usize,
    },
    /// Address-map problem.
    AddressMap(DecodeMapError),
    /// The default master index is out of range.
    BadDefaultMaster {
        /// The requested index.
        index: usize,
    },
}

impl fmt::Display for BusConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusConfigError::NoMasters => write!(f, "bus needs at least one master"),
            BusConfigError::TooManyComponents { count } => {
                write!(f, "at most 16 masters and 16 slaves supported, got {count}")
            }
            BusConfigError::AddressMap(e) => write!(f, "address map: {e}"),
            BusConfigError::BadDefaultMaster { index } => {
                write!(f, "default master {index} out of range")
            }
        }
    }
}

impl std::error::Error for BusConfigError {}

impl From<DecodeMapError> for BusConfigError {
    fn from(e: DecodeMapError) -> Self {
        BusConfigError::AddressMap(e)
    }
}

/// Builder for [`AhbBus`].
#[derive(Default)]
pub struct AhbBusBuilder {
    masters: Vec<Box<dyn AhbMaster>>,
    slaves: Vec<Box<dyn AhbSlave>>,
    regions: Vec<Region>,
    default_master: usize,
    check_protocol: bool,
    trace_enabled: bool,
}

impl AhbBusBuilder {
    /// Adds a master; priority follows insertion order (first = highest).
    pub fn master(self, m: impl AhbMaster + 'static) -> Self {
        self.master_boxed(Box::new(m))
    }

    /// Adds an already-boxed master (factory-driven construction).
    pub fn master_boxed(mut self, m: Box<dyn AhbMaster>) -> Self {
        self.masters.push(m);
        self
    }

    /// Adds a slave mapped at `[base, base+size)`.
    pub fn slave(self, s: impl AhbSlave + 'static, base: u32, size: u32) -> Self {
        self.slave_boxed(Box::new(s), base, size)
    }

    /// Adds an already-boxed slave (factory-driven construction).
    pub fn slave_boxed(mut self, s: Box<dyn AhbSlave>, base: u32, size: u32) -> Self {
        let id = SlaveId(self.slaves.len());
        self.slaves.push(s);
        self.regions.push(Region {
            base,
            size,
            slave: id,
        });
        self
    }

    /// Selects the default master (granted when nobody requests); defaults to 0.
    pub fn default_master(mut self, index: usize) -> Self {
        self.default_master = index;
        self
    }

    /// Enables the protocol checker (violations collected per cycle).
    pub fn check_protocol(mut self) -> Self {
        self.check_protocol = true;
        self
    }

    /// Disables trace recording (enabled by default).
    pub fn without_trace(mut self) -> Self {
        self.trace_enabled = false;
        self
    }

    /// Builds the bus.
    ///
    /// # Errors
    ///
    /// Returns a [`BusConfigError`] for an empty master list, too many
    /// components, a broken address map, or an out-of-range default master.
    pub fn build(self) -> Result<AhbBus, BusConfigError> {
        if self.masters.is_empty() {
            return Err(BusConfigError::NoMasters);
        }
        if self.masters.len() > 16 {
            return Err(BusConfigError::TooManyComponents {
                count: self.masters.len(),
            });
        }
        if self.slaves.len() > 16 {
            return Err(BusConfigError::TooManyComponents {
                count: self.slaves.len(),
            });
        }
        if self.default_master >= self.masters.len() {
            return Err(BusConfigError::BadDefaultMaster {
                index: self.default_master,
            });
        }
        let decoder = Decoder::new(self.regions)?;
        let arbiter = Arbiter::new(self.masters.len(), MasterId(self.default_master));
        Ok(AhbBus {
            masters: self.masters,
            slaves: self.slaves,
            fabric: Fabric::new(arbiter, decoder),
            trace: Trace::new(),
            trace_enabled: self.trace_enabled,
            checker: self.check_protocol.then(ProtocolChecker::new),
            cycle: 0,
        })
    }
}

/// A complete single-domain AHB system evaluated cycle by cycle.
///
/// # Example
///
/// ```
/// use predpkt_ahb::bus::AhbBus;
/// use predpkt_ahb::engine::BusOp;
/// use predpkt_ahb::masters::TrafficGenMaster;
/// use predpkt_ahb::slaves::MemorySlave;
///
/// let mut bus = AhbBus::builder()
///     .master(TrafficGenMaster::from_ops(vec![BusOp::write_single(0x40, 7)]))
///     .slave(MemorySlave::new(0x1000, 0), 0x0, 0x1000)
///     .build()?;
/// bus.run(16);
/// let mem: &MemorySlave = bus.slave_as(predpkt_ahb::SlaveId(0)).unwrap();
/// assert_eq!(mem.peek_word(0x40), 7);
/// # Ok::<(), predpkt_ahb::BusConfigError>(())
/// ```
pub struct AhbBus {
    masters: Vec<Box<dyn AhbMaster>>,
    slaves: Vec<Box<dyn AhbSlave>>,
    fabric: Fabric,
    trace: Trace,
    trace_enabled: bool,
    checker: Option<ProtocolChecker>,
    cycle: u64,
}

impl AhbBus {
    /// Starts building a bus.
    pub fn builder() -> AhbBusBuilder {
        AhbBusBuilder {
            trace_enabled: true,
            ..AhbBusBuilder::default()
        }
    }

    /// Evaluates one clock cycle, returning the derived view.
    pub fn tick(&mut self) -> CycleView {
        let m_out: Vec<MasterSignals> = self.masters.iter().map(|m| m.outputs()).collect();
        let s_out: Vec<SlaveSignals> = self.slaves.iter().map(|s| s.outputs()).collect();
        let view = self.fabric.view(&m_out, &s_out);

        if let Some(checker) = &mut self.checker {
            checker.check(self.cycle, &view, &m_out, &s_out);
        }
        if self.trace_enabled {
            self.trace.record(pack_cycle_record(&m_out, &s_out));
        }

        for (i, m) in self.masters.iter_mut().enumerate() {
            m.tick(&self.fabric.master_view(&view, MasterId(i)));
        }
        for (j, s) in self.slaves.iter_mut().enumerate() {
            s.tick(&self.fabric.slave_view(&view, SlaveId(j)));
        }
        self.fabric.tick(&view, &m_out, &s_out);
        self.cycle += 1;
        view
    }

    /// Runs `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Runs until every master reports [`done`](AhbMaster::done) and the bus is
    /// quiescent, or `max_cycles` elapse. Returns the cycles consumed.
    pub fn run_until_done(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while self.cycle - start < max_cycles {
            if self.masters.iter().all(|m| m.done()) && self.fabric.data_phase().is_none() {
                break;
            }
            self.tick();
        }
        self.cycle - start
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The fabric (arbiter/decoder/data-phase inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Protocol violations collected so far (empty without
    /// [`check_protocol`](AhbBusBuilder::check_protocol)).
    pub fn violations(&self) -> &[Violation] {
        self.checker.as_ref().map_or(&[], |c| c.violations())
    }

    /// Number of masters.
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// Number of slaves.
    pub fn num_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// Downcasts a master to its concrete type.
    pub fn master_as<T: AhbMaster>(&self, id: MasterId) -> Option<&T> {
        self.masters.get(id.0)?.as_any().downcast_ref::<T>()
    }

    /// Downcasts a slave to its concrete type.
    pub fn slave_as<T: AhbSlave>(&self, id: SlaveId) -> Option<&T> {
        self.slaves.get(id.0)?.as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of a master.
    pub fn master_as_mut<T: AhbMaster>(&mut self, id: MasterId) -> Option<&mut T> {
        self.masters.get_mut(id.0)?.as_any_mut().downcast_mut::<T>()
    }

    /// Mutable downcast of a slave.
    pub fn slave_as_mut<T: AhbSlave>(&mut self, id: SlaveId) -> Option<&mut T> {
        self.slaves.get_mut(id.0)?.as_any_mut().downcast_mut::<T>()
    }
}

impl Snapshot for AhbBus {
    fn save(&self, w: &mut StateWriter<'_>) {
        self.fabric.save(w);
        w.word(self.cycle);
        for m in &self.masters {
            m.save(w);
        }
        for s in &self.slaves {
            s.save(w);
        }
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.fabric.restore(r)?;
        self.cycle = r.word()?;
        for m in &mut self.masters {
            m.restore(r)?;
        }
        for s in &mut self.slaves {
            s.restore(r)?;
        }
        Ok(())
    }
}

impl fmt::Debug for AhbBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AhbBus")
            .field("masters", &self.masters.len())
            .field("slaves", &self.slaves.len())
            .field("cycle", &self.cycle)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BusOp;
    use crate::masters::{CpuMaster, CpuProfile, DmaDescriptor, DmaMaster, TrafficGenMaster};
    use crate::signals::{Hburst, Hsize};
    use crate::slaves::{FifoSlave, MemorySlave, PeripheralSlave, SplitSlave};

    fn two_slave_bus(master: impl AhbMaster + 'static) -> AhbBus {
        AhbBus::builder()
            .master(master)
            .slave(MemorySlave::new(0x1000, 0), 0x0000, 0x1000)
            .slave(MemorySlave::with_waits(0x1000, 2, 1), 0x1000, 0x1000)
            .check_protocol()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            AhbBus::builder().build(),
            Err(BusConfigError::NoMasters)
        ));
        let err = AhbBus::builder()
            .master(TrafficGenMaster::from_ops(vec![]))
            .default_master(5)
            .build();
        assert!(matches!(
            err,
            Err(BusConfigError::BadDefaultMaster { index: 5 })
        ));
        let err = AhbBus::builder()
            .master(TrafficGenMaster::from_ops(vec![]))
            .slave(MemorySlave::new(0x100, 0), 0x0, 0x100)
            .slave(MemorySlave::new(0x100, 0), 0x80, 0x100)
            .build();
        assert!(matches!(err, Err(BusConfigError::AddressMap(_))));
    }

    #[test]
    fn write_then_read_roundtrip_through_bus() {
        let gen = TrafficGenMaster::from_ops(vec![
            BusOp::write_single(0x20, 0xfeed_f00d),
            BusOp::read_single(0x20),
        ]);
        let mut bus = two_slave_bus(gen);
        let used = bus.run_until_done(200);
        assert!(used < 200, "finished in {used} cycles");
        let gen: &TrafficGenMaster = bus.master_as(MasterId(0)).unwrap();
        assert_eq!(gen.results().len(), 2);
        assert_eq!(gen.results()[1].rdata, vec![0xfeed_f00d]);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn burst_write_lands_in_memory() {
        let gen = TrafficGenMaster::from_ops(vec![BusOp::write_burst(
            0x100,
            Hsize::Word,
            Hburst::Incr8,
            (0..8).collect(),
        )]);
        let mut bus = two_slave_bus(gen);
        bus.run_until_done(200);
        let mem: &MemorySlave = bus.slave_as(SlaveId(0)).unwrap();
        for i in 0..8u32 {
            assert_eq!(mem.peek_word(0x100 + 4 * i), i);
        }
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn wrap_burst_reads_container() {
        let gen =
            TrafficGenMaster::from_ops(vec![BusOp::read_burst(0x38, Hsize::Word, Hburst::Wrap4)]);
        let mut bus = AhbBus::builder()
            .master(gen)
            .slave(
                {
                    let mut m = MemorySlave::new(0x100, 0);
                    for i in 0..16 {
                        m.poke_word(0x30 + 4 * i, 0x1000 + i);
                    }
                    m
                },
                0x0,
                0x100,
            )
            .check_protocol()
            .build()
            .unwrap();
        bus.run_until_done(100);
        let gen: &TrafficGenMaster = bus.master_as(MasterId(0)).unwrap();
        assert_eq!(gen.results()[0].rdata, vec![0x1002, 0x1003, 0x1000, 0x1001]);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn wait_state_slave_slows_but_completes() {
        let gen = TrafficGenMaster::from_ops(vec![
            BusOp::write_single(0x1000, 1), // slave 1: 2 first waits
            BusOp::read_single(0x1000),
        ]);
        let mut bus = two_slave_bus(gen);
        let cycles = bus.run_until_done(200);
        assert!(cycles > 8, "wait states cost cycles");
        let gen: &TrafficGenMaster = bus.master_as(MasterId(0)).unwrap();
        assert_eq!(gen.results()[1].rdata, vec![1]);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn unmapped_access_errors() {
        let gen = TrafficGenMaster::from_ops(vec![BusOp::write_single(0x8000_0000, 1)]);
        let mut bus = two_slave_bus(gen);
        bus.run_until_done(100);
        let gen: &TrafficGenMaster = bus.master_as(MasterId(0)).unwrap();
        assert!(gen.results()[0].error, "default slave errors");
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn two_masters_arbitrate_by_priority() {
        let fast = TrafficGenMaster::from_ops(vec![BusOp::write_burst(
            0x0,
            Hsize::Word,
            Hburst::Incr4,
            vec![1, 2, 3, 4],
        )]);
        let slow = TrafficGenMaster::from_ops(vec![BusOp::write_burst(
            0x100,
            Hsize::Word,
            Hburst::Incr4,
            vec![5, 6, 7, 8],
        )]);
        let mut bus = AhbBus::builder()
            .master(fast)
            .master(slow)
            .slave(MemorySlave::new(0x1000, 0), 0x0, 0x1000)
            .check_protocol()
            .build()
            .unwrap();
        bus.run_until_done(300);
        let mem: &MemorySlave = bus.slave_as(SlaveId(0)).unwrap();
        assert_eq!(mem.peek_word(0x0), 1);
        assert_eq!(mem.peek_word(0x100), 5);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn dma_copies_between_slaves() {
        let dma = DmaMaster::new(vec![DmaDescriptor::new(0x0, 0x1000, 24)]);
        let mut bus = AhbBus::builder()
            .master(dma)
            .slave(
                {
                    let mut m = MemorySlave::new(0x1000, 0);
                    for i in 0..24 {
                        m.poke_word(4 * i, 0xa000 + i);
                    }
                    m
                },
                0x0,
                0x1000,
            )
            .slave(MemorySlave::with_waits(0x1000, 1, 0), 0x1000, 0x1000)
            .check_protocol()
            .build()
            .unwrap();
        let cycles = bus.run_until_done(1000);
        assert!(cycles < 1000);
        let dst: &MemorySlave = bus.slave_as(SlaveId(1)).unwrap();
        for i in 0..24u32 {
            assert_eq!(dst.peek_word(4 * i), 0xa000 + i, "word {i}");
        }
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn split_slave_full_protocol_on_bus() {
        let gen = TrafficGenMaster::from_ops(vec![
            BusOp::write_single(0x2000, 0x77),
            BusOp::read_single(0x2000),
        ]);
        let mut bus = AhbBus::builder()
            .master(gen)
            // A second master keeps the bus busy while master 0 is split.
            .master(TrafficGenMaster::from_ops(vec![BusOp::write_single(0x0, 9)]).looping())
            .slave(MemorySlave::new(0x1000, 0), 0x0, 0x1000)
            .slave(SplitSlave::new(0x100, 6), 0x2000, 0x100)
            .check_protocol()
            .build()
            .unwrap();
        bus.run(400);
        let gen: &TrafficGenMaster = bus.master_as(MasterId(0)).unwrap();
        assert_eq!(
            gen.results().len(),
            2,
            "split transfers eventually complete"
        );
        assert!(!gen.results()[0].error);
        assert_eq!(gen.results()[1].rdata, vec![0x77]);
        let split: &SplitSlave = bus.slave_as(SlaveId(1)).unwrap();
        assert!(split.splits_issued() >= 2);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn mixed_soc_runs_clean_under_checker() {
        // The paper's Figure 2 shape: 3 masters, 3 slaves.
        let cpu = CpuMaster::new(42, CpuProfile::default());
        let dma = DmaMaster::new(vec![DmaDescriptor::new(0x0, 0x1100, 40)]);
        let gen =
            TrafficGenMaster::from_ops(vec![BusOp::read_burst(0x2000, Hsize::Word, Hburst::Wrap8)])
                .looping()
                .with_idle_gap(7);
        let mut bus = AhbBus::builder()
            .master(cpu)
            .master(dma)
            .master(gen)
            .slave(MemorySlave::new(0x2000, 0), 0x0, 0x2000)
            .slave(MemorySlave::with_waits(0x1000, 2, 1), 0x2000, 0x1000)
            .slave(FifoSlave::new(8, 3, 2), 0x3000, 0x100)
            .check_protocol()
            .build()
            .unwrap();
        bus.run(2000);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }

    #[test]
    fn peripheral_irq_visible_on_bus() {
        let gen = TrafficGenMaster::from_ops(vec![
            BusOp::write_single(0x1008, 16),   // period
            BusOp::write_single(0x1000, 0b11), // enable
        ]);
        let mut bus = AhbBus::builder()
            .master(gen)
            .slave(MemorySlave::new(0x1000, 0), 0x0, 0x1000)
            .slave(PeripheralSlave::new(0), 0x1000, 0x100)
            .build()
            .unwrap();
        let mut irq_seen = false;
        for _ in 0..100 {
            let view = bus.tick();
            if view.irq & 0b10 != 0 {
                irq_seen = true;
                break;
            }
        }
        assert!(irq_seen, "timer IRQ reached the bus view");
    }

    #[test]
    fn snapshot_roundtrip_replays_identically() {
        let cpu = CpuMaster::new(1234, CpuProfile::default());
        let mut bus = AhbBus::builder()
            .master(cpu)
            .slave(MemorySlave::new(0x2000, 1), 0x0, 0x2000)
            .build()
            .unwrap();
        bus.run(100);
        let state = predpkt_sim::save_to_vec(&bus);
        let hash_at_snap = bus.trace().hash();

        // Continue the original 50 cycles.
        bus.run(50);
        let final_hash = bus.trace().hash();

        // Restore a fresh copy and replay the same 50 cycles.
        let mut copy = AhbBus::builder()
            .master(CpuMaster::new(1234, CpuProfile::default()))
            .slave(MemorySlave::new(0x2000, 1), 0x0, 0x2000)
            .build()
            .unwrap();
        predpkt_sim::restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy.cycle(), 100);
        copy.run(50);
        // Compare the last 50 records of both traces.
        let a: Vec<_> = bus.trace().iter().skip(100).collect();
        let b: Vec<_> = copy.trace().iter().collect();
        assert_eq!(a, b, "restored bus replays bit-identically");
        assert_ne!(hash_at_snap, final_hash);
    }

    #[test]
    fn busy_stimulus_passes_checker() {
        let gen = TrafficGenMaster::from_ops(vec![BusOp::write_burst(
            0x0,
            Hsize::Word,
            Hburst::Incr4,
            vec![1, 2, 3, 4],
        )])
        .with_busy_beats(2);
        let mut bus = two_slave_bus(gen);
        bus.run_until_done(200);
        let mem: &MemorySlave = bus.slave_as(SlaveId(0)).unwrap();
        assert_eq!(mem.peek_word(0xc), 4);
        assert!(bus.violations().is_empty(), "{:?}", bus.violations());
    }
}
