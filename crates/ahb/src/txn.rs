//! Transaction-level view: reconstructing transactions from cycle traces.
//!
//! The paper's simulator side runs *transaction-level* models; this module is
//! the bridge between the cycle world and that abstraction. A
//! [`TxnExtractor`] replays a recorded trace through a fresh fabric replica and
//! groups completed data phases into [`Transaction`]s — used by tests to assert
//! end-to-end data movement and by examples to print TLM-style logs.

use crate::fabric::Fabric;
use crate::signals::{
    Hburst, Hresp, Hsize, Htrans, MasterId, MasterSignals, SlaveId, SlaveSignals,
};
use predpkt_sim::Trace;
use std::fmt;

/// One beat of a reconstructed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beat {
    /// Beat address.
    pub addr: u32,
    /// Data moved (write data or read data).
    pub data: u32,
    /// Cycle at which the beat's data phase completed.
    pub cycle: u64,
}

/// A reconstructed bus transaction (one burst or single).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Initiating master.
    pub master: MasterId,
    /// Target slave (`None` = default slave).
    pub slave: Option<SlaveId>,
    /// Direction.
    pub write: bool,
    /// Transfer size.
    pub size: Hsize,
    /// Burst kind of the first beat.
    pub burst: Hburst,
    /// Completed beats in order.
    pub beats: Vec<Beat>,
    /// Cycle of the first address phase.
    pub start_cycle: u64,
    /// Cycle the last data phase completed.
    pub end_cycle: u64,
    /// Wait-state cycles endured.
    pub wait_cycles: u64,
    /// Final response (`Okay`, or the error-class response that ended it).
    pub resp: Hresp,
}

impl Transaction {
    /// First beat's address.
    pub fn addr(&self) -> u32 {
        self.beats.first().map_or(0, |b| b.addr)
    }

    /// The data words in beat order.
    pub fn data(&self) -> Vec<u32> {
        self.beats.iter().map(|b| b.data).collect()
    }

    /// Total bus cycles occupied.
    pub fn duration(&self) -> u64 {
        self.end_cycle - self.start_cycle + 1
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {:#010x} {:?} x{} @[{}..{}] {:?}",
            self.master,
            if self.write { "W" } else { "R" },
            self.addr(),
            self.burst,
            self.beats.len(),
            self.start_cycle,
            self.end_cycle,
            self.resp,
        )
    }
}

/// Replays per-cycle signal vectors through a fabric replica and extracts
/// transactions.
#[derive(Debug)]
pub struct TxnExtractor {
    fabric: Fabric,
    cycle: u64,
    open: Option<Transaction>,
    /// Wait cycles endured by a beat that has not completed yet.
    pending_waits: u64,
    done: Vec<Transaction>,
    num_masters: usize,
    num_slaves: usize,
}

impl TxnExtractor {
    /// Creates an extractor around a fabric replica configured identically to
    /// the bus that produced the trace.
    pub fn new(fabric: Fabric, num_masters: usize, num_slaves: usize) -> Self {
        TxnExtractor {
            fabric,
            cycle: 0,
            open: None,
            pending_waits: 0,
            done: Vec::new(),
            num_masters,
            num_slaves,
        }
    }

    /// Feeds one cycle of Moore outputs.
    pub fn feed(&mut self, masters: &[MasterSignals], slaves: &[SlaveSignals]) {
        let view = self.fabric.view(masters, slaves);

        // A completing data phase extends / closes the open transaction.
        if let Some(dp) = &view.dp {
            if view.hready {
                let data = if dp.write { view.wdata } else { view.rdata };
                let beat = Beat {
                    addr: dp.addr,
                    data,
                    cycle: self.cycle,
                };
                let waited = std::mem::take(&mut self.pending_waits);
                match &mut self.open {
                    Some(t)
                        if t.master == dp.master
                            && t.write == dp.write
                            && t.slave == dp.slave
                            && dp.trans == Htrans::Seq =>
                    {
                        t.beats.push(beat);
                        t.wait_cycles += waited;
                        t.end_cycle = self.cycle;
                    }
                    _ => {
                        self.close_open();
                        self.open = Some(Transaction {
                            master: dp.master,
                            slave: dp.slave,
                            write: dp.write,
                            size: dp.size,
                            burst: dp.burst,
                            beats: vec![beat],
                            start_cycle: self.cycle.saturating_sub(1),
                            end_cycle: self.cycle,
                            wait_cycles: waited,
                            resp: Hresp::Okay,
                        });
                        // Singles close immediately; bursts stay open for SEQ
                        // continuation.
                        if dp.burst == Hburst::Single {
                            self.close_open();
                        }
                    }
                }
            } else if view.resp.is_error_class() {
                // First error cycle terminates whatever is open with that
                // response (the failed beat carries no data).
                let resp = view.resp;
                self.pending_waits = 0;
                if let Some(t) = &mut self.open {
                    t.resp = resp;
                    t.end_cycle = self.cycle;
                }
                self.close_open();
            } else {
                self.pending_waits += 1;
            }
        } else if self.open.is_some()
            && !matches!(view.addr_phase.trans, Htrans::Seq | Htrans::Busy)
        {
            // Burst ended (no data phase, no continuation).
            self.close_open();
        }

        self.fabric.tick(&view, masters, slaves);
        self.cycle += 1;
    }

    /// Feeds an entire packed trace (as recorded by
    /// [`AhbBus`](crate::bus::AhbBus) /
    /// [`pack_cycle_record`](crate::bus::pack_cycle_record)).
    ///
    /// Records that fail to unpack are skipped.
    pub fn feed_trace(&mut self, trace: &Trace) {
        for rec in trace.iter() {
            if let Some((m, s)) = unpack_cycle_record(rec, self.num_masters, self.num_slaves) {
                self.feed(&m, &s);
            }
        }
    }

    fn close_open(&mut self) {
        if let Some(t) = self.open.take() {
            self.done.push(t);
        }
    }

    /// Finishes extraction, returning all transactions in completion order.
    pub fn finish(mut self) -> Vec<Transaction> {
        self.close_open();
        self.done
    }
}

/// Unpacks a [`pack_cycle_record`](crate::bus::pack_cycle_record) vector back into signal arrays.
pub fn unpack_cycle_record(
    record: &[u64],
    num_masters: usize,
    num_slaves: usize,
) -> Option<(Vec<MasterSignals>, Vec<SlaveSignals>)> {
    if record.len() != num_masters * 3 + num_slaves * 2 {
        return None;
    }
    let as_u32 = |w: u64| u32::try_from(w).ok();
    let mut masters = Vec::with_capacity(num_masters);
    for i in 0..num_masters {
        let words = [
            as_u32(record[i * 3])?,
            as_u32(record[i * 3 + 1])?,
            as_u32(record[i * 3 + 2])?,
        ];
        masters.push(MasterSignals::unpack(&words)?);
    }
    let base = num_masters * 3;
    let mut slaves = Vec::with_capacity(num_slaves);
    for j in 0..num_slaves {
        let words = [
            as_u32(record[base + j * 2])?,
            as_u32(record[base + j * 2 + 1])?,
        ];
        slaves.push(SlaveSignals::unpack(&words)?);
    }
    Some((masters, slaves))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{pack_cycle_record, AhbBus};
    use crate::engine::BusOp;
    use crate::fabric::{Arbiter, Decoder, Region};
    use crate::masters::TrafficGenMaster;
    use crate::slaves::MemorySlave;

    fn extractor_for(bus: &AhbBus) -> TxnExtractor {
        // Rebuild an identical fabric replica from scratch.
        let fabric = Fabric::new(
            Arbiter::new(bus.num_masters(), MasterId(0)),
            Decoder::new(bus.fabric().decoder().regions().to_vec()).unwrap(),
        );
        TxnExtractor::new(fabric, bus.num_masters(), bus.num_slaves())
    }

    fn trace_of(ops: Vec<BusOp>) -> (Trace, usize, usize, Vec<Region>) {
        let mut bus = AhbBus::builder()
            .master(TrafficGenMaster::from_ops(ops))
            .slave(MemorySlave::new(0x1000, 1), 0x0, 0x1000)
            .build()
            .unwrap();
        bus.run_until_done(500);
        (
            bus.trace().clone(),
            bus.num_masters(),
            bus.num_slaves(),
            bus.fabric().decoder().regions().to_vec(),
        )
    }

    fn extract(ops: Vec<BusOp>) -> Vec<Transaction> {
        let (trace, nm, ns, regions) = trace_of(ops);
        let fabric = Fabric::new(
            Arbiter::new(nm, MasterId(0)),
            Decoder::new(regions).unwrap(),
        );
        let mut x = TxnExtractor::new(fabric, nm, ns);
        x.feed_trace(&trace);
        x.finish()
    }

    #[test]
    fn single_write_and_read_extracted() {
        let txns = extract(vec![
            BusOp::write_single(0x40, 0xaa),
            BusOp::read_single(0x40),
        ]);
        assert_eq!(txns.len(), 2);
        assert!(txns[0].write);
        assert_eq!(txns[0].addr(), 0x40);
        assert_eq!(txns[0].data(), vec![0xaa]);
        assert!(!txns[1].write);
        assert_eq!(txns[1].data(), vec![0xaa]);
        assert_eq!(txns[0].slave, Some(SlaveId(0)));
    }

    #[test]
    fn burst_grouped_into_one_transaction() {
        let txns = extract(vec![BusOp::write_burst(
            0x100,
            Hsize::Word,
            Hburst::Incr8,
            (10..18).collect(),
        )]);
        assert_eq!(txns.len(), 1);
        let t = &txns[0];
        assert_eq!(t.beats.len(), 8);
        assert_eq!(t.burst, Hburst::Incr8);
        assert_eq!(t.data(), (10..18).collect::<Vec<u32>>());
        assert_eq!(t.beats[7].addr, 0x11c);
        assert!(t.duration() >= 9, "8 beats pipelined + setup");
    }

    #[test]
    fn wait_cycles_counted() {
        let txns = extract(vec![BusOp::read_single(0x10)]);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].wait_cycles, 1, "memory has 1 first-beat wait");
    }

    #[test]
    fn error_transaction_recorded() {
        let txns = extract(vec![BusOp::write_single(0x8000_0000, 1)]);
        // The default slave errors the transfer before any data phase completes:
        // the transaction never opens (no completed beat), which is acceptable —
        // nothing reached a slave. Subsequent ops still extract.
        assert!(txns
            .iter()
            .all(|t| t.resp == Hresp::Okay || t.beats.is_empty() || t.resp.is_error_class()));
    }

    #[test]
    fn unpack_rejects_wrong_shape() {
        assert!(unpack_cycle_record(&[0; 4], 1, 1).is_none());
        assert!(unpack_cycle_record(&[u64::MAX; 5], 1, 1).is_none());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let m = vec![MasterSignals {
            busreq: true,
            addr: 0x123,
            ..MasterSignals::idle()
        }];
        let s = vec![SlaveSignals {
            rdata: 7,
            ..SlaveSignals::idle()
        }];
        let rec = pack_cycle_record(&m, &s);
        let (m2, s2) = unpack_cycle_record(&rec, 1, 1).unwrap();
        assert_eq!(m, m2);
        assert_eq!(s, s2);
    }

    #[test]
    fn display_format() {
        let txns = extract(vec![BusOp::write_single(0x40, 0xaa)]);
        let text = txns[0].to_string();
        assert!(text.contains("M0 W 0x00000040"));
    }

    #[test]
    fn extractor_for_live_bus() {
        let mut bus = AhbBus::builder()
            .master(TrafficGenMaster::from_ops(vec![BusOp::read_single(0x0)]))
            .slave(MemorySlave::new(0x100, 0), 0x0, 0x100)
            .build()
            .unwrap();
        bus.run_until_done(100);
        let mut x = extractor_for(&bus);
        x.feed_trace(bus.trace());
        assert_eq!(x.finish().len(), 1);
    }
}
