//! Slave library.
//!
//! | Slave | Behaviour | Response pattern (predictability, paper §3) |
//! |---|---|---|
//! | [`MemorySlave`] | word RAM with byte lanes | fixed first/sequential wait states — fully predictable |
//! | [`PeripheralSlave`] | register file + timer + IRQ | fixed wait states, IRQ line — predictable responses, last-value IRQ |
//! | [`SplitSlave`] | slow device using SPLIT | splits, processes, un-splits — exercises arbiter masking |
//! | [`FifoSlave`] | producer–consumer stream FIFO | waits follow fill state — the paper's producer–consumer archetype |
//! | [`DefaultSlave`] | always ERROR | two-cycle ERROR |

mod default_slave;
mod fifo;
mod memory;
mod peripheral;
mod split;

pub use default_slave::DefaultSlave;
pub use fifo::FifoSlave;
pub use memory::MemorySlave;
pub use peripheral::{
    PeripheralSlave, REG_CTRL, REG_DATA, REG_STATUS, REG_TIMER_COUNT, REG_TIMER_PERIOD,
};
pub use split::SplitSlave;
