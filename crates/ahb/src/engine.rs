//! Reusable protocol engines for masters and slaves.
//!
//! The AHB handshake (grant acquisition, pipelined address/data phases, wait
//! states, two-cycle ERROR/RETRY/SPLIT responses, burst pauses and restarts) is
//! identical for every component; these engines implement it once so the
//! concrete masters and slaves in [`crate::masters`] / [`crate::slaves`] only
//! contain their behavioural logic.
//!
//! # Master side
//!
//! A [`MasterEngine`] executes one [`BusOp`] at a time: it requests the bus,
//! drives NONSEQ/SEQ/BUSY address phases beat by beat, supplies write data
//! during the pipelined data phase, collects read data, and recovers from
//! error-class responses (RETRY/SPLIT restart the failed beat as single
//! transfers; ERROR aborts the operation). Results surface as [`OpResult`].
//!
//! # Slave side
//!
//! A [`SlaveEngine`] tracks the data phase the fabric assigns to its slave,
//! inserts planned wait states, produces single-cycle OKAY or two-cycle
//! error-class responses, and reports [`SlaveEvents`] (a transfer accepted this
//! cycle, a transfer completed this cycle) for the slave to act on.

use crate::burst::{beat_addr, fits_in_boundary};
use crate::signals::{
    AddrPhase, Hburst, Hresp, Hsize, Htrans, MasterSignals, MasterView, SlaveSignals, SlaveView,
};
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

// ---------------------------------------------------------------------------
// Master engine
// ---------------------------------------------------------------------------

/// One bus operation: a read or write of one or more beats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusOp {
    write: bool,
    size: Hsize,
    burst: Hburst,
    addrs: Vec<u32>,
    wdata: Vec<u32>,
    lock: bool,
    prot: u8,
}

impl BusOp {
    /// A single-beat word read.
    pub fn read_single(addr: u32) -> Self {
        Self::read_burst(addr, Hsize::Word, Hburst::Single)
    }

    /// A single-beat word write.
    pub fn write_single(addr: u32, data: u32) -> Self {
        Self::write_burst(addr, Hsize::Word, Hburst::Single, vec![data])
    }

    /// A defined-length or wrapping read burst starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is [`Hburst::Incr`] (use [`BusOp::read_incr`]), if the
    /// address is not aligned to `size`, or if an incrementing defined-length
    /// burst would cross the 1 kB boundary.
    pub fn read_burst(addr: u32, size: Hsize, burst: Hburst) -> Self {
        let beats = burst.beats().expect("use read_incr for INCR bursts");
        Self::build(false, addr, size, burst, beats, vec![])
    }

    /// An undefined-length (INCR) read of `beats` beats.
    ///
    /// # Panics
    ///
    /// Panics on misalignment.
    pub fn read_incr(addr: u32, size: Hsize, beats: u32) -> Self {
        assert!(beats >= 1, "at least one beat");
        let burst = if beats == 1 {
            Hburst::Single
        } else {
            Hburst::Incr
        };
        Self::build(false, addr, size, burst, beats, vec![])
    }

    /// A defined-length or wrapping write burst; `data.len()` must equal the
    /// burst length.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BusOp::read_burst`], or if
    /// `data.len()` does not match the burst length.
    pub fn write_burst(addr: u32, size: Hsize, burst: Hburst, data: Vec<u32>) -> Self {
        let beats = burst.beats().expect("use write_incr for INCR bursts");
        assert_eq!(
            data.len() as u32,
            beats,
            "data length must match burst length"
        );
        Self::build(true, addr, size, burst, beats, data)
    }

    /// An undefined-length (INCR) write of `data.len()` beats.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or empty data.
    pub fn write_incr(addr: u32, size: Hsize, data: Vec<u32>) -> Self {
        assert!(!data.is_empty(), "at least one beat");
        let burst = if data.len() == 1 {
            Hburst::Single
        } else {
            Hburst::Incr
        };
        let beats = data.len() as u32;
        Self::build(true, addr, size, burst, beats, data)
    }

    fn build(
        write: bool,
        addr: u32,
        size: Hsize,
        burst: Hburst,
        beats: u32,
        wdata: Vec<u32>,
    ) -> Self {
        assert_eq!(
            addr % size.bytes(),
            0,
            "address must be aligned to transfer size"
        );
        assert!(
            burst == Hburst::Incr || fits_in_boundary(addr, size, burst),
            "defined-length burst crosses the 1kB boundary"
        );
        let addrs = (0..beats)
            .map(|b| beat_addr(addr, size, burst, b))
            .collect();
        BusOp {
            write,
            size,
            burst,
            addrs,
            wdata,
            lock: false,
            prot: 0b0011,
        }
    }

    /// Requests a locked transfer (HLOCK asserted for the whole operation).
    pub fn locked(mut self) -> Self {
        self.lock = true;
        self
    }

    /// Overrides the HPROT value.
    pub fn with_prot(mut self, prot: u8) -> Self {
        self.prot = prot & 0xf;
        self
    }

    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        self.write
    }

    /// Number of beats.
    pub fn beats(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// The first beat's address.
    pub fn start_addr(&self) -> u32 {
        self.addrs[0]
    }
}

/// Outcome of one completed [`BusOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// `true` if the operation was a write.
    pub write: bool,
    /// The first beat's address.
    pub addr: u32,
    /// Read data, one word per beat (empty for writes).
    pub rdata: Vec<u32>,
    /// `true` if the slave answered ERROR (operation aborted).
    pub error: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MState {
    /// No operation in flight.
    Idle,
    /// Requesting the bus.
    Req,
    /// Driving address phases; `first` selects NONSEQ for the next beat.
    Drive { first: bool },
    /// All address phases issued; waiting for the last data phase.
    Drain,
    /// Second cycle of an error-class response: drive IDLE, then recover.
    ErrAbort,
}

impl MState {
    fn encode(self) -> u32 {
        match self {
            MState::Idle => 0,
            MState::Req => 1,
            MState::Drive { first: false } => 2,
            MState::Drive { first: true } => 3,
            MState::Drain => 4,
            MState::ErrAbort => 5,
        }
    }

    fn decode(v: u32) -> Option<MState> {
        Some(match v {
            0 => MState::Idle,
            1 => MState::Req,
            2 => MState::Drive { first: false },
            3 => MState::Drive { first: true },
            4 => MState::Drain,
            5 => MState::ErrAbort,
            _ => return None,
        })
    }
}

/// The master-side protocol engine. See the module docs.
///
/// # Example
///
/// ```
/// use predpkt_ahb::engine::{BusOp, MasterEngine};
/// let mut engine = MasterEngine::new();
/// engine.submit(BusOp::write_single(0x100, 42));
/// assert!(engine.busy());
/// let sig = engine.outputs(); // requests the bus
/// assert!(sig.busreq);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterEngine {
    op: Option<BusOp>,
    state: MState,
    /// Next address-phase beat index.
    addr_beat: u32,
    /// Beat currently in (or entering) the data phase.
    dp_beat: Option<u32>,
    /// Beats whose data phase completed.
    done_beats: u32,
    /// Collected read data.
    rdata: Vec<u32>,
    /// After an error-class response, re-issue remaining beats as singles.
    restart_singles: bool,
    /// Error recorded for the in-flight op.
    error: bool,
    /// Result of the last completed op, until taken.
    result: Option<OpResult>,
    /// BUSY cycles to insert before each SEQ beat (test stimulus).
    busy_beats: u32,
    /// BUSY cycles still owed before the next beat.
    busy_left: u32,
}

impl Default for MasterEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MasterEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        MasterEngine {
            op: None,
            state: MState::Idle,
            addr_beat: 0,
            dp_beat: None,
            done_beats: 0,
            rdata: Vec::new(),
            restart_singles: false,
            error: false,
            result: None,
            busy_beats: 0,
            busy_left: 0,
        }
    }

    /// Inserts `n` BUSY cycles before every SEQ beat (protocol stimulus for
    /// tests; real masters use 0).
    pub fn with_busy_beats(mut self, n: u32) -> Self {
        self.busy_beats = n;
        self
    }

    /// Starts executing `op`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn submit(&mut self, op: BusOp) {
        assert!(self.op.is_none(), "operation already in flight");
        self.op = Some(op);
        self.state = MState::Req;
        self.addr_beat = 0;
        self.dp_beat = None;
        self.done_beats = 0;
        self.rdata.clear();
        self.restart_singles = false;
        self.error = false;
        self.busy_left = 0;
    }

    /// `true` while an operation is in flight.
    pub fn busy(&self) -> bool {
        self.op.is_some()
    }

    /// Takes the result of the last completed operation, if any.
    pub fn take_result(&mut self) -> Option<OpResult> {
        self.result.take()
    }

    /// The signal values the engine drives this cycle (Moore).
    pub fn outputs(&self) -> MasterSignals {
        let mut sig = MasterSignals::idle();
        let Some(op) = &self.op else { return sig };
        sig.busreq = true;
        sig.lock = op.lock;
        sig.prot = op.prot;
        sig.size = op.size;
        sig.write = op.write;

        // Write data for the beat in the data phase, held across wait states.
        if let Some(beat) = self.dp_beat {
            if op.write {
                sig.wdata = op.wdata[beat as usize];
            }
        }

        if let MState::Drive { first } = self.state {
            let beat = self.addr_beat;
            sig.addr = op.addrs[beat as usize];
            if self.busy_left > 0 {
                sig.trans = Htrans::Busy;
                sig.burst = self.wire_burst(op, false);
            } else if self.restart_singles {
                sig.trans = Htrans::Nonseq;
                sig.burst = Hburst::Single;
            } else {
                sig.trans = if first { Htrans::Nonseq } else { Htrans::Seq };
                sig.burst = self.wire_burst(op, first);
            }
        }
        sig
    }

    fn wire_burst(&self, op: &BusOp, _first: bool) -> Hburst {
        if self.restart_singles {
            Hburst::Single
        } else {
            op.burst
        }
    }

    /// Advances one clock edge.
    pub fn tick(&mut self, view: &MasterView) {
        if self.op.is_none() {
            return;
        }
        let out = self.outputs();

        // --- Data-phase progress -------------------------------------------
        //
        // Robustness note: under optimistic co-emulation a master can be driven
        // with *mispredicted* slave responses, which may present
        // protocol-impossible view sequences (e.g. an OKAY completion for a
        // transfer the engine already abandoned after a SPLIT). Such timelines
        // are doomed — the lagger's prediction check fails at this very cycle
        // and the domain rolls back — so the engine only needs to stay
        // memory-safe and consistent; spurious events are ignored.
        if view.dp_mine {
            if !view.hready && view.resp.is_error_class() {
                // First cycle of a two-cycle response: the dp beat failed.
                if let Some(failed) = self.dp_beat {
                    match view.resp {
                        Hresp::Error => {
                            self.error = true;
                        }
                        Hresp::Retry | Hresp::Split => {
                            // Re-issue from the failed beat as single transfers.
                            self.addr_beat = failed;
                            self.restart_singles = true;
                        }
                        Hresp::Okay => unreachable!("okay is not error-class"),
                    }
                    self.dp_beat = None;
                    self.busy_left = 0;
                    self.state = MState::ErrAbort;
                }
            } else if view.hready {
                // A non-OKAY response here is the second cycle of an
                // error-class response: the data phase retires and recovery
                // continues below via ErrAbort.
                if view.resp == Hresp::Okay {
                    if let Some(_beat) = self.dp_beat.take() {
                        let op = self.op.as_ref().expect("op in flight");
                        if !op.write {
                            self.rdata.push(view.rdata);
                        }
                        self.done_beats += 1;
                        if self.done_beats == self.op.as_ref().unwrap().beats()
                            && !matches!(self.state, MState::ErrAbort)
                        {
                            self.finish_op();
                            return;
                        }
                    }
                }
            }
        }

        match self.state {
            MState::Idle => {}
            MState::Req => {
                if view.granted && view.hready {
                    self.state = MState::Drive { first: true };
                }
            }
            MState::Drive { .. } => {
                if !view.granted {
                    // Grant revoked between bursts / during INCR: pause and
                    // re-acquire; remaining beats restart as NONSEQ.
                    self.pause_for_regrant();
                } else if out.trans == Htrans::Busy {
                    self.busy_left -= 1;
                } else if out.trans.is_active() && view.hready {
                    // Beat accepted: it enters the data phase next cycle.
                    self.dp_beat = Some(self.addr_beat);
                    self.addr_beat += 1;
                    let beats = self.op.as_ref().unwrap().beats();
                    if self.addr_beat >= beats {
                        self.state = MState::Drain;
                    } else {
                        // Singles after a restart are each their own NONSEQ
                        // burst; BUSY is only legal inside a multi-beat burst.
                        self.state = MState::Drive {
                            first: self.restart_singles,
                        };
                        self.busy_left = if self.restart_singles {
                            0
                        } else {
                            self.busy_beats
                        };
                    }
                }
            }
            MState::Drain => {
                // Waiting for the final data phase; completion handled above.
            }
            MState::ErrAbort => {
                if view.hready {
                    // Second error cycle done.
                    if self.error {
                        self.finish_op();
                    } else {
                        self.state = MState::Req;
                    }
                }
            }
        }
    }

    fn pause_for_regrant(&mut self) {
        let op = self.op.as_ref().expect("op in flight");
        // Wrapping address sequences are not expressible after a pause; re-issue
        // remaining beats as singles. Incrementing sequences restart as NONSEQ
        // of the same kind via `first`.
        if op.burst.is_wrapping() {
            self.restart_singles = true;
        }
        self.busy_left = 0;
        self.state = MState::Req;
    }

    fn finish_op(&mut self) {
        let op = self.op.take().expect("op in flight");
        self.result = Some(OpResult {
            write: op.write,
            addr: op.addrs[0],
            rdata: std::mem::take(&mut self.rdata),
            error: self.error,
        });
        self.state = MState::Idle;
        self.dp_beat = None;
        self.busy_left = 0;
    }
}

impl Snapshot for MasterEngine {
    fn save(&self, w: &mut StateWriter<'_>) {
        match &self.op {
            Some(op) => {
                w.bool(true)
                    .bool(op.write)
                    .u32(op.size.encode())
                    .u32(op.burst.encode())
                    .slice_u32(&op.addrs)
                    .slice_u32(&op.wdata)
                    .bool(op.lock)
                    .u32(op.prot as u32);
            }
            None => {
                w.bool(false);
            }
        }
        w.u32(self.state.encode());
        w.u32(self.addr_beat);
        match self.dp_beat {
            Some(b) => w.bool(true).u32(b),
            None => w.bool(false),
        };
        w.u32(self.done_beats);
        w.slice_u32(&self.rdata);
        w.bool(self.restart_singles);
        w.bool(self.error);
        match &self.result {
            Some(res) => {
                w.bool(true)
                    .bool(res.write)
                    .u32(res.addr)
                    .slice_u32(&res.rdata)
                    .bool(res.error);
            }
            None => {
                w.bool(false);
            }
        }
        w.u32(self.busy_beats);
        w.u32(self.busy_left);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.op = if r.bool()? {
            let write = r.bool()?;
            let size = Hsize::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            let burst = Hburst::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            let addrs = r.slice_u32()?;
            let wdata = r.slice_u32()?;
            let lock = r.bool()?;
            let prot = r.u32()? as u8;
            Some(BusOp {
                write,
                size,
                burst,
                addrs,
                wdata,
                lock,
                prot,
            })
        } else {
            None
        };
        self.state = MState::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
        self.addr_beat = r.u32()?;
        self.dp_beat = if r.bool()? { Some(r.u32()?) } else { None };
        self.done_beats = r.u32()?;
        self.rdata = r.slice_u32()?;
        self.restart_singles = r.bool()?;
        self.error = r.bool()?;
        self.result = if r.bool()? {
            let write = r.bool()?;
            let addr = r.u32()?;
            let rdata = r.slice_u32()?;
            let error = r.bool()?;
            Some(OpResult {
                write,
                addr,
                rdata,
                error,
            })
        } else {
            None
        };
        self.busy_beats = r.u32()?;
        self.busy_left = r.u32()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Slave engine
// ---------------------------------------------------------------------------

/// How a slave answers one accepted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedResponse {
    /// Wait states to insert before responding.
    pub wait_states: u32,
    /// Final response (OKAY completes in one ready cycle; ERROR/RETRY/SPLIT use
    /// the two-cycle protocol).
    pub resp: Hresp,
    /// Read data delivered on the completing cycle (ignored for writes).
    pub rdata: u32,
}

impl PlannedResponse {
    /// An OKAY response after `wait_states` wait states delivering `rdata`.
    pub fn okay(wait_states: u32, rdata: u32) -> Self {
        PlannedResponse {
            wait_states,
            resp: Hresp::Okay,
            rdata,
        }
    }

    /// An error-class response after `wait_states` wait states.
    ///
    /// # Panics
    ///
    /// Panics if `resp` is [`Hresp::Okay`].
    pub fn error_class(wait_states: u32, resp: Hresp) -> Self {
        assert!(resp.is_error_class(), "use PlannedResponse::okay for OKAY");
        PlannedResponse {
            wait_states,
            resp,
            rdata: 0,
        }
    }

    /// An open-ended stall: the engine inserts wait states until the slave calls
    /// [`SlaveEngine::complete_stall`]. Used by producer–consumer slaves whose
    /// readiness depends on dynamic fill state.
    pub fn stall() -> Self {
        PlannedResponse {
            wait_states: STALL_SENTINEL,
            resp: Hresp::Okay,
            rdata: 0,
        }
    }
}

/// Wait-state count marking an open-ended stall.
const STALL_SENTINEL: u32 = u32::MAX;

/// What happened at a slave port during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlaveEvents {
    /// A transfer completed its data phase this cycle (writes carry the data).
    pub completed: Option<CompletedTransfer>,
    /// A new transfer was accepted this cycle and enters the data phase next
    /// cycle; the slave **must** call [`SlaveEngine::plan`] before the next
    /// [`SlaveEngine::outputs`].
    pub accepted: Option<AddrPhase>,
}

/// A data phase that finished this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTransfer {
    /// The transfer.
    pub phase: AddrPhase,
    /// Write data (writes only).
    pub wdata: Option<u32>,
    /// The response it completed with.
    pub resp: Hresp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    Idle,
    /// Accepted but not yet planned (must be resolved before `outputs`).
    Pending,
    /// Inserting wait states.
    Wait {
        left: u32,
    },
    /// Open-ended stall awaiting [`SlaveEngine::complete_stall`].
    Stalled,
    /// Ready cycle of an OKAY response.
    RespondOkay,
    /// First cycle of a two-cycle error-class response.
    ErrFirst,
    /// Second cycle of a two-cycle error-class response.
    ErrSecond,
}

/// The slave-side protocol engine. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlaveEngine {
    state: SState,
    phase: Option<AddrPhase>,
    resp: Hresp,
    rdata: u32,
}

impl Default for SlaveEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SlaveEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        SlaveEngine {
            state: SState::Idle,
            phase: None,
            resp: Hresp::Okay,
            rdata: 0,
        }
    }

    /// The signal values the engine drives this cycle (Moore).
    ///
    /// # Panics
    ///
    /// Panics if an accepted transfer was never [`plan`](SlaveEngine::plan)ned.
    pub fn outputs(&self) -> SlaveSignals {
        let mut sig = SlaveSignals::idle();
        match self.state {
            SState::Idle => {}
            SState::Pending => panic!("slave accepted a transfer but did not plan a response"),
            SState::Wait { .. } | SState::Stalled => {
                sig.ready = false;
            }
            SState::RespondOkay => {
                sig.rdata = self.rdata;
            }
            SState::ErrFirst => {
                sig.ready = false;
                sig.resp = self.resp;
            }
            SState::ErrSecond => {
                sig.resp = self.resp;
            }
        }
        sig
    }

    /// Advances one clock edge, reporting what happened.
    pub fn tick(&mut self, view: &SlaveView) -> SlaveEvents {
        let mut events = SlaveEvents::default();

        // Progress the data phase we own.
        match self.state {
            SState::Wait { left } => {
                debug_assert!(view.dp_active, "waiting without owning the data phase");
                self.state = if left > 1 {
                    SState::Wait { left: left - 1 }
                } else if self.resp == Hresp::Okay {
                    SState::RespondOkay
                } else {
                    SState::ErrFirst
                };
            }
            SState::Stalled => {
                debug_assert!(view.dp_active, "stalled without owning the data phase");
            }
            SState::RespondOkay => {
                let phase = self.phase.take().expect("responding without a phase");
                events.completed = Some(CompletedTransfer {
                    phase,
                    wdata: phase.write.then_some(view.wdata),
                    resp: Hresp::Okay,
                });
                self.state = SState::Idle;
            }
            SState::ErrFirst => {
                self.state = SState::ErrSecond;
            }
            SState::ErrSecond => {
                let phase = self.phase.take().expect("responding without a phase");
                events.completed = Some(CompletedTransfer {
                    phase,
                    wdata: None,
                    resp: self.resp,
                });
                self.state = SState::Idle;
            }
            SState::Idle | SState::Pending => {}
        }

        // Accept a new transfer (pipelined with the completing one).
        if let Some(phase) = view.addr_phase {
            if view.hready && phase.trans.is_active() {
                debug_assert!(
                    matches!(self.state, SState::Idle),
                    "acceptance while still serving (fabric bug)"
                );
                self.phase = Some(phase);
                self.state = SState::Pending;
                events.accepted = Some(phase);
            }
        }

        events
    }

    /// Plans the response for the transfer accepted this cycle.
    ///
    /// # Panics
    ///
    /// Panics if no transfer is pending.
    pub fn plan(&mut self, plan: PlannedResponse) {
        assert!(
            matches!(self.state, SState::Pending),
            "plan() without a pending transfer"
        );
        self.resp = plan.resp;
        self.rdata = plan.rdata;
        self.state = if plan.wait_states == STALL_SENTINEL {
            SState::Stalled
        } else if plan.wait_states > 0 {
            SState::Wait {
                left: plan.wait_states,
            }
        } else if plan.resp == Hresp::Okay {
            SState::RespondOkay
        } else {
            SState::ErrFirst
        };
    }

    /// Resolves an open-ended stall: the transfer completes with OKAY and
    /// `rdata` on the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not stalled.
    pub fn complete_stall(&mut self, rdata: u32) {
        assert!(
            matches!(self.state, SState::Stalled),
            "complete_stall() without a stalled transfer"
        );
        self.rdata = rdata;
        self.state = SState::RespondOkay;
    }

    /// `true` while an open-ended stall is pending.
    pub fn stalled(&self) -> bool {
        matches!(self.state, SState::Stalled)
    }

    /// The transfer currently being served, if any.
    pub fn serving(&self) -> Option<&AddrPhase> {
        self.phase.as_ref()
    }
}

impl Snapshot for SlaveEngine {
    fn save(&self, w: &mut StateWriter<'_>) {
        let state_code = match self.state {
            SState::Idle => 0u32,
            SState::Pending => 1,
            SState::Wait { left } => 2 | (left << 3),
            SState::RespondOkay => 3,
            SState::ErrFirst => 4,
            SState::ErrSecond => 5,
            SState::Stalled => 6,
        };
        w.u32(state_code);
        match &self.phase {
            Some(p) => {
                w.bool(true);
                w.usize(p.master.0);
                match p.slave {
                    Some(s) => w.bool(true).usize(s.0),
                    None => w.bool(false),
                };
                w.u32(p.trans.encode())
                    .u32(p.addr)
                    .bool(p.write)
                    .u32(p.size.encode())
                    .u32(p.burst.encode());
            }
            None => {
                w.bool(false);
            }
        }
        w.u32(self.resp.encode());
        w.u32(self.rdata);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let code = r.u32()?;
        self.state = match code & 0b111 {
            0 => SState::Idle,
            1 => SState::Pending,
            2 => SState::Wait { left: code >> 3 },
            3 => SState::RespondOkay,
            4 => SState::ErrFirst,
            5 => SState::ErrSecond,
            6 => SState::Stalled,
            _ => return Err(SnapshotError::Corrupt { at: 0 }),
        };
        self.phase = if r.bool()? {
            let master = crate::signals::MasterId(r.usize()?);
            let slave = if r.bool()? {
                Some(crate::signals::SlaveId(r.usize()?))
            } else {
                None
            };
            let trans = Htrans::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            let addr = r.u32()?;
            let write = r.bool()?;
            let size = Hsize::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            let burst = Hburst::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
            Some(AddrPhase {
                master,
                slave,
                trans,
                addr,
                write,
                size,
                burst,
            })
        } else {
            None
        };
        self.resp = Hresp::decode(r.u32()?).ok_or(SnapshotError::Corrupt { at: 0 })?;
        self.rdata = r.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{MasterId, SlaveId};
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn phase(write: bool, addr: u32) -> AddrPhase {
        AddrPhase {
            master: MasterId(0),
            slave: Some(SlaveId(0)),
            trans: Htrans::Nonseq,
            addr,
            write,
            size: Hsize::Word,
            burst: Hburst::Single,
        }
    }

    // ---- BusOp -------------------------------------------------------------

    #[test]
    fn busop_constructors() {
        let r = BusOp::read_single(0x10);
        assert!(!r.is_write());
        assert_eq!(r.beats(), 1);
        let w = BusOp::write_incr(0x20, Hsize::Word, vec![1, 2, 3]);
        assert!(w.is_write());
        assert_eq!(w.beats(), 3);
        assert_eq!(w.burst, Hburst::Incr);
        let wrap = BusOp::read_burst(0x38, Hsize::Word, Hburst::Wrap4);
        assert_eq!(wrap.addrs, vec![0x38, 0x3c, 0x30, 0x34]);
        let single = BusOp::read_incr(0x40, Hsize::Word, 1);
        assert_eq!(single.burst, Hburst::Single);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn busop_rejects_misaligned() {
        let _ = BusOp::read_burst(0x2, Hsize::Word, Hburst::Incr4);
    }

    #[test]
    #[should_panic(expected = "1kB boundary")]
    fn busop_rejects_boundary_crossers() {
        let _ = BusOp::read_burst(0x3f8, Hsize::Word, Hburst::Incr16);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn busop_rejects_wrong_data_len() {
        let _ = BusOp::write_burst(0x0, Hsize::Word, Hburst::Incr4, vec![1]);
    }

    #[test]
    fn busop_locked_and_prot() {
        let op = BusOp::read_single(0).locked().with_prot(0xff);
        assert!(op.lock);
        assert_eq!(op.prot, 0xf);
    }

    // ---- MasterEngine happy path -------------------------------------------

    /// Drives the engine through a scripted sequence of views, returning the
    /// outputs observed each cycle.
    fn run(engine: &mut MasterEngine, views: &[MasterView]) -> Vec<MasterSignals> {
        views
            .iter()
            .map(|v| {
                let out = engine.outputs();
                engine.tick(v);
                out
            })
            .collect()
    }

    fn granted_ready() -> MasterView {
        MasterView {
            granted: true,
            ..MasterView::quiet()
        }
    }

    #[test]
    fn single_write_sequence() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::write_single(0x100, 0xabcd));
        // Cycle 0: requesting (IDLE), granted.
        // Cycle 1: NONSEQ address phase.
        // Cycle 2: data phase completes (dp_mine).
        let views = [
            granted_ready(),
            granted_ready(),
            MasterView {
                granted: true,
                dp_mine: true,
                ..MasterView::quiet()
            },
        ];
        let outs = run(&mut e, &views);
        assert_eq!(outs[0].trans, Htrans::Idle);
        assert!(outs[0].busreq);
        assert_eq!(outs[1].trans, Htrans::Nonseq);
        assert_eq!(outs[1].addr, 0x100);
        assert!(outs[1].write);
        assert_eq!(outs[2].trans, Htrans::Idle);
        assert_eq!(outs[2].wdata, 0xabcd, "write data driven in the data phase");
        let res = e.take_result().expect("op completed");
        assert!(res.write && !res.error);
        assert!(!e.busy());
    }

    #[test]
    fn read_burst_collects_data() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::read_burst(0x0, Hsize::Word, Hburst::Incr4));
        let mut views = vec![granted_ready(), granted_ready()];
        // Beats 1..3 address phases overlap data phases of beats 0..2.
        for _ in 0..3 {
            views.push(MasterView {
                granted: true,
                dp_mine: true,
                rdata: 7,
                ..MasterView::quiet()
            });
        }
        // Final data phase.
        views.push(MasterView {
            granted: true,
            dp_mine: true,
            rdata: 9,
            ..MasterView::quiet()
        });
        let outs = run(&mut e, &views);
        assert_eq!(outs[1].trans, Htrans::Nonseq);
        assert_eq!(outs[2].trans, Htrans::Seq);
        assert_eq!(outs[2].addr, 0x4);
        assert_eq!(outs[4].addr, 0xc);
        let res = e.take_result().unwrap();
        assert_eq!(res.rdata, vec![7, 7, 7, 9]);
    }

    #[test]
    fn wait_states_hold_address_and_wdata() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::write_incr(0x0, Hsize::Word, vec![0x11, 0x22]));
        let stall = MasterView {
            granted: true,
            hready: false,
            dp_mine: true,
            ..MasterView::quiet()
        };
        let views = [
            granted_ready(), // req
            granted_ready(), // NONSEQ beat0 accepted
            stall,           // beat0 dp stalled; SEQ beat1 held
            stall,           // still stalled
            MasterView {
                granted: true,
                dp_mine: true,
                ..MasterView::quiet()
            }, // beat0 completes, beat1 accepted
            MasterView {
                granted: true,
                dp_mine: true,
                ..MasterView::quiet()
            }, // beat1 completes
        ];
        let outs = run(&mut e, &views);
        // During the stall the SEQ address phase is held stable.
        assert_eq!(outs[2].trans, Htrans::Seq);
        assert_eq!(outs[3].trans, Htrans::Seq);
        assert_eq!(outs[2].addr, outs[3].addr);
        // And beat0's write data is held.
        assert_eq!(outs[2].wdata, 0x11);
        assert_eq!(outs[3].wdata, 0x11);
        assert_eq!(outs[4].wdata, 0x11);
        assert_eq!(outs[5].wdata, 0x22);
        assert!(e.take_result().unwrap().write);
    }

    #[test]
    fn error_response_aborts_op() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::read_burst(0x0, Hsize::Word, Hburst::Incr4));
        let views = [
            granted_ready(),
            granted_ready(), // NONSEQ accepted
            // First ERROR cycle (not ready).
            MasterView {
                granted: true,
                hready: false,
                resp: Hresp::Error,
                dp_mine: true,
                ..MasterView::quiet()
            },
            // Second ERROR cycle (ready): master drives IDLE.
            MasterView {
                granted: true,
                resp: Hresp::Error,
                ..MasterView::quiet()
            },
        ];
        let outs = run(&mut e, &views);
        assert_eq!(outs[3].trans, Htrans::Idle, "IDLE during error recovery");
        let res = e.take_result().unwrap();
        assert!(res.error);
        assert!(!e.busy());
    }

    #[test]
    fn retry_restarts_failed_beat_as_single() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::read_burst(0x0, Hsize::Word, Hburst::Incr4));
        let views = [
            granted_ready(),
            granted_ready(), // NONSEQ beat0 accepted
            // beat0 data phase gets RETRY (first cycle).
            MasterView {
                granted: true,
                hready: false,
                resp: Hresp::Retry,
                dp_mine: true,
                ..MasterView::quiet()
            },
            // second RETRY cycle.
            MasterView {
                granted: true,
                resp: Hresp::Retry,
                ..MasterView::quiet()
            },
            granted_ready(), // re-request granted
        ];
        let outs = run(&mut e, &views);
        assert_eq!(outs[3].trans, Htrans::Idle);
        // Next drive restarts beat0 as a SINGLE NONSEQ.
        let out5 = e.outputs();
        assert_eq!(out5.trans, Htrans::Nonseq);
        assert_eq!(out5.burst, Hburst::Single);
        assert_eq!(out5.addr, 0x0);
        assert!(e.busy());
    }

    #[test]
    fn grant_revocation_pauses_incr() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::read_incr(0x0, Hsize::Word, 4));
        let views = [
            granted_ready(),
            granted_ready(), // NONSEQ beat0 accepted
            // Grant revoked while beat1's SEQ phase was driven: beat1 not accepted.
            MasterView {
                granted: false,
                dp_mine: true,
                rdata: 1,
                ..MasterView::quiet()
            },
            // Re-granted.
            granted_ready(),
        ];
        run(&mut e, &views);
        let out = e.outputs();
        assert_eq!(out.trans, Htrans::Nonseq, "restart after pause");
        assert_eq!(out.addr, 0x4, "resumes at the unaccepted beat");
        assert_eq!(out.burst, Hburst::Incr);
    }

    #[test]
    fn busy_beats_inserted_between_seq_beats() {
        let mut e = MasterEngine::new().with_busy_beats(1);
        e.submit(BusOp::read_burst(0x0, Hsize::Word, Hburst::Incr4));
        let views = [
            granted_ready(),
            granted_ready(), // NONSEQ beat0
            MasterView {
                granted: true,
                dp_mine: true,
                ..MasterView::quiet()
            }, // BUSY cycle (beat0 dp completes)
            granted_ready(), // SEQ beat1
        ];
        let outs = run(&mut e, &views);
        assert_eq!(outs[1].trans, Htrans::Nonseq);
        assert_eq!(outs[2].trans, Htrans::Busy);
        assert_eq!(outs[2].addr, 0x4, "BUSY advertises the next beat's address");
        assert_eq!(outs[3].trans, Htrans::Seq);
        assert_eq!(outs[3].addr, 0x4);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_submit_rejected() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::read_single(0));
        e.submit(BusOp::read_single(4));
    }

    #[test]
    fn master_engine_snapshot_roundtrip_mid_op() {
        let mut e = MasterEngine::new();
        e.submit(BusOp::write_incr(0x0, Hsize::Word, vec![1, 2, 3]));
        let views = [granted_ready(), granted_ready()];
        run(&mut e, &views);
        let state = save_to_vec(&e);
        let mut copy = MasterEngine::new();
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, e);
    }

    // ---- SlaveEngine ---------------------------------------------------------

    #[test]
    fn slave_okay_zero_wait() {
        let mut e = SlaveEngine::new();
        // Cycle 0: address phase selects us.
        let ev = e.tick(&SlaveView {
            addr_phase: Some(phase(false, 0x8)),
            ..SlaveView::quiet()
        });
        let p = ev.accepted.expect("accepted");
        assert_eq!(p.addr, 0x8);
        e.plan(PlannedResponse::okay(0, 0x55));
        // Cycle 1: we own the data phase, ready with data.
        let out = e.outputs();
        assert!(out.ready);
        assert_eq!(out.rdata, 0x55);
        let ev = e.tick(&SlaveView {
            dp_active: true,
            dp: Some(phase(false, 0x8)),
            ..SlaveView::quiet()
        });
        let done = ev.completed.expect("completed");
        assert_eq!(done.resp, Hresp::Okay);
        assert_eq!(done.wdata, None);
    }

    #[test]
    fn slave_wait_states_then_write_commit() {
        let mut e = SlaveEngine::new();
        let ev = e.tick(&SlaveView {
            addr_phase: Some(phase(true, 0x4)),
            ..SlaveView::quiet()
        });
        assert!(ev.accepted.is_some());
        e.plan(PlannedResponse::okay(2, 0));
        // Two wait cycles.
        for _ in 0..2 {
            let out = e.outputs();
            assert!(!out.ready);
            let ev = e.tick(&SlaveView {
                dp_active: true,
                dp: Some(phase(true, 0x4)),
                hready: false,
                wdata: 0xfeed,
                ..SlaveView::quiet()
            });
            assert!(ev.completed.is_none());
        }
        // Completing cycle carries the write data.
        assert!(e.outputs().ready);
        let ev = e.tick(&SlaveView {
            dp_active: true,
            dp: Some(phase(true, 0x4)),
            wdata: 0xfeed,
            ..SlaveView::quiet()
        });
        assert_eq!(ev.completed.unwrap().wdata, Some(0xfeed));
    }

    #[test]
    fn slave_two_cycle_error_response() {
        let mut e = SlaveEngine::new();
        e.tick(&SlaveView {
            addr_phase: Some(phase(false, 0x0)),
            ..SlaveView::quiet()
        });
        e.plan(PlannedResponse::error_class(0, Hresp::Retry));
        // First cycle: not ready + RETRY.
        let out = e.outputs();
        assert!(!out.ready);
        assert_eq!(out.resp, Hresp::Retry);
        e.tick(&SlaveView {
            dp_active: true,
            hready: false,
            ..SlaveView::quiet()
        });
        // Second cycle: ready + RETRY.
        let out = e.outputs();
        assert!(out.ready);
        assert_eq!(out.resp, Hresp::Retry);
        let ev = e.tick(&SlaveView {
            dp_active: true,
            ..SlaveView::quiet()
        });
        assert_eq!(ev.completed.unwrap().resp, Hresp::Retry);
    }

    #[test]
    fn slave_pipelined_accept_while_completing() {
        let mut e = SlaveEngine::new();
        e.tick(&SlaveView {
            addr_phase: Some(phase(false, 0x0)),
            ..SlaveView::quiet()
        });
        e.plan(PlannedResponse::okay(0, 1));
        // Completing cycle also carries the next address phase.
        let ev = e.tick(&SlaveView {
            addr_phase: Some(phase(false, 0x4)),
            dp_active: true,
            dp: Some(phase(false, 0x0)),
            ..SlaveView::quiet()
        });
        assert!(ev.completed.is_some());
        assert_eq!(ev.accepted.unwrap().addr, 0x4);
        e.plan(PlannedResponse::okay(0, 2));
        assert_eq!(e.outputs().rdata, 2);
    }

    #[test]
    #[should_panic(expected = "did not plan")]
    fn slave_unplanned_response_panics() {
        let mut e = SlaveEngine::new();
        e.tick(&SlaveView {
            addr_phase: Some(phase(false, 0x0)),
            ..SlaveView::quiet()
        });
        let _ = e.outputs();
    }

    #[test]
    #[should_panic(expected = "without a pending")]
    fn slave_plan_without_accept_panics() {
        let mut e = SlaveEngine::new();
        e.plan(PlannedResponse::okay(0, 0));
    }

    #[test]
    #[should_panic(expected = "use PlannedResponse::okay")]
    fn error_class_plan_rejects_okay() {
        let _ = PlannedResponse::error_class(0, Hresp::Okay);
    }

    #[test]
    fn slave_not_selected_when_hready_low() {
        let mut e = SlaveEngine::new();
        // Address phase present but bus stalled: no acceptance.
        let ev = e.tick(&SlaveView {
            addr_phase: Some(phase(false, 0x0)),
            hready: false,
            ..SlaveView::quiet()
        });
        assert!(ev.accepted.is_none());
    }

    #[test]
    fn slave_engine_snapshot_roundtrip() {
        let mut e = SlaveEngine::new();
        e.tick(&SlaveView {
            addr_phase: Some(phase(true, 0xc)),
            ..SlaveView::quiet()
        });
        e.plan(PlannedResponse::okay(3, 0x77));
        let state = save_to_vec(&e);
        let mut copy = SlaveEngine::new();
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, e);
    }
}
