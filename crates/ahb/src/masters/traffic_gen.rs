//! Scripted traffic generator.

use crate::engine::{BusOp, MasterEngine, OpResult};
use crate::signals::{MasterSignals, MasterView};
use crate::AhbMaster;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// A master that executes a fixed list of operations, optionally separated by
/// idle gaps and optionally looping forever.
///
/// # Example
///
/// ```
/// use predpkt_ahb::engine::BusOp;
/// use predpkt_ahb::masters::TrafficGenMaster;
/// use predpkt_ahb::AhbMaster;
///
/// let m = TrafficGenMaster::from_ops(vec![
///     BusOp::write_single(0x100, 1),
///     BusOp::read_single(0x100),
/// ])
/// .with_idle_gap(3);
/// assert!(!m.done());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficGenMaster {
    script: Vec<BusOp>,
    next_op: usize,
    idle_gap: u32,
    idle_left: u32,
    looping: bool,
    engine: MasterEngine,
    results: Vec<OpResult>,
}

impl TrafficGenMaster {
    /// Creates a generator that runs `script` once.
    pub fn from_ops(script: Vec<BusOp>) -> Self {
        TrafficGenMaster {
            script,
            next_op: 0,
            idle_gap: 0,
            idle_left: 0,
            looping: false,
            engine: MasterEngine::new(),
            results: Vec::new(),
        }
    }

    /// Inserts `cycles` idle cycles between operations.
    pub fn with_idle_gap(mut self, cycles: u32) -> Self {
        self.idle_gap = cycles;
        self
    }

    /// Restarts the script from the top forever (results stop accumulating
    /// after the first pass to bound memory).
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }

    /// Inserts BUSY stimulus cycles inside bursts (protocol testing).
    pub fn with_busy_beats(mut self, n: u32) -> Self {
        self.engine = std::mem::take(&mut self.engine).with_busy_beats(n);
        self
    }

    /// Results of completed operations (first pass only when looping).
    pub fn results(&self) -> &[OpResult] {
        &self.results
    }
}

impl AhbMaster for TrafficGenMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> MasterSignals {
        self.engine.outputs()
    }

    fn tick(&mut self, view: &MasterView) {
        self.engine.tick(view);
        if let Some(res) = self.engine.take_result() {
            if self.results.len() < self.script.len() {
                self.results.push(res);
            }
            self.idle_left = self.idle_gap;
        }
        if !self.engine.busy() {
            if self.idle_left > 0 {
                self.idle_left -= 1;
            } else if self.next_op < self.script.len() {
                let op = self.script[self.next_op].clone();
                self.next_op += 1;
                if self.looping && self.next_op == self.script.len() {
                    self.next_op = 0;
                }
                self.engine.submit(op);
            }
        }
    }

    fn done(&self) -> bool {
        !self.looping && self.next_op >= self.script.len() && !self.engine.busy()
    }
}

impl Snapshot for TrafficGenMaster {
    fn save(&self, w: &mut StateWriter<'_>) {
        // The script is static configuration; only dynamic state is saved.
        w.usize(self.next_op);
        w.u32(self.idle_left);
        self.engine.save(w);
        w.usize(self.results.len());
        for res in &self.results {
            w.bool(res.write)
                .u32(res.addr)
                .slice_u32(&res.rdata)
                .bool(res.error);
        }
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.next_op = r.usize()?;
        self.idle_left = r.u32()?;
        self.engine.restore(r)?;
        let n = r.usize()?;
        self.results = (0..n)
            .map(|_| {
                Ok(OpResult {
                    write: r.bool()?,
                    addr: r.u32()?,
                    rdata: r.slice_u32()?,
                    error: r.bool()?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predpkt_sim::{restore_from_vec, save_to_vec};

    #[test]
    fn runs_script_in_order() {
        let mut m = TrafficGenMaster::from_ops(vec![
            BusOp::write_single(0x0, 0xa),
            BusOp::write_single(0x4, 0xb),
        ]);
        // Drive with an always-granted, always-ready view until done.
        let mut cycles = 0;
        let mut dp_mine = false;
        while !m.done() {
            cycles += 1;
            assert!(cycles < 100, "traffic gen stuck");
            let out = m.outputs();
            m.tick(&MasterView {
                granted: true,
                dp_mine,
                ..MasterView::quiet()
            });
            dp_mine = out.trans.is_active(); // the accepted phase owns the next data phase
        }
        assert_eq!(m.results().len(), 2);
        assert_eq!(m.results()[0].addr, 0x0);
        assert_eq!(m.results()[1].addr, 0x4);
    }

    #[test]
    fn idle_gap_inserts_idle_cycles() {
        let mut m = TrafficGenMaster::from_ops(vec![
            BusOp::write_single(0x0, 1),
            BusOp::write_single(0x4, 2),
        ])
        .with_idle_gap(2);
        let mut idle_after_first = 0;
        let mut saw_first = false;
        let mut dp_mine = false;
        for _ in 0..50 {
            if m.done() {
                break;
            }
            if m.results().len() == 1 {
                saw_first = true;
            }
            let out = m.outputs();
            if saw_first && !out.busreq {
                idle_after_first += 1;
            }
            m.tick(&MasterView {
                granted: true,
                dp_mine,
                ..MasterView::quiet()
            });
            dp_mine = out.trans.is_active();
        }
        assert!(
            idle_after_first >= 2,
            "idle gap honoured ({idle_after_first})"
        );
    }

    #[test]
    fn looping_never_finishes() {
        let mut m = TrafficGenMaster::from_ops(vec![BusOp::read_single(0x0)]).looping();
        let mut dp_mine = false;
        for _ in 0..64 {
            assert!(!m.done());
            let out = m.outputs();
            m.tick(&MasterView {
                granted: true,
                dp_mine,
                rdata: 5,
                ..MasterView::quiet()
            });
            dp_mine = out.trans.is_active();
        }
        // Results bounded by script length.
        assert_eq!(m.results().len(), 1);
    }

    #[test]
    fn snapshot_roundtrip_mid_script() {
        let mut m =
            TrafficGenMaster::from_ops(vec![BusOp::write_single(0x0, 1), BusOp::read_single(0x0)]);
        let mut dp_mine = false;
        for _ in 0..3 {
            let out = m.outputs();
            m.tick(&MasterView {
                granted: true,
                dp_mine,
                ..MasterView::quiet()
            });
            dp_mine = out.trans.is_active();
        }
        let state = save_to_vec(&m);
        let mut copy =
            TrafficGenMaster::from_ops(vec![BusOp::write_single(0x0, 1), BusOp::read_single(0x0)]);
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, m);
    }
}
