//! Descriptor-driven DMA master.
//!
//! The paper's motivating workload: "SoC designs where large amount of data
//! flow in bursts between building blocks" (§3). The DMA engine copies blocks
//! word by word: it reads a chunk from the source with the largest legal INCR
//! burst ([`plan_incr_burst`](crate::burst::plan_incr_burst) tiles around the
//! 1 kB boundary), buffers it, writes it to the destination, and repeats. While
//! a copy is active the bus sees long, regular bursts — the best case for the
//! address/control predictor and the arbitration-result predictor.

use crate::burst::plan_incr_burst;
use crate::engine::{BusOp, MasterEngine};
use crate::signals::{Hsize, MasterSignals, MasterView};
use crate::AhbMaster;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// One DMA job: copy `words` 32-bit words from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// Source byte address (word aligned).
    pub src: u32,
    /// Destination byte address (word aligned).
    pub dst: u32,
    /// Number of words to move.
    pub words: u32,
}

impl DmaDescriptor {
    /// Creates a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the addresses are not word aligned or `words` is zero.
    pub fn new(src: u32, dst: u32, words: u32) -> Self {
        assert_eq!(src % 4, 0, "source must be word aligned");
        assert_eq!(dst % 4, 0, "destination must be word aligned");
        assert!(words > 0, "empty descriptor");
        DmaDescriptor { src, dst, words }
    }
}

/// Maximum words buffered between the read and write halves of a chunk.
const CHUNK_WORDS: u32 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DmaPhase {
    /// Fetch the next chunk from the source.
    Reading,
    /// Store the buffered chunk to the destination.
    Writing,
}

/// The DMA master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaMaster {
    jobs: Vec<DmaDescriptor>,
    job_idx: usize,
    moved: u32,
    phase: DmaPhase,
    chunk: Vec<u32>,
    /// Beats of the operation currently in flight (read or write).
    inflight_words: u32,
    engine: MasterEngine,
    words_moved_total: u64,
    bus_errors: u64,
}

impl DmaMaster {
    /// Creates a DMA master that executes `jobs` in order, then idles.
    pub fn new(jobs: Vec<DmaDescriptor>) -> Self {
        DmaMaster {
            jobs,
            job_idx: 0,
            moved: 0,
            phase: DmaPhase::Reading,
            chunk: Vec::new(),
            inflight_words: 0,
            engine: MasterEngine::new(),
            words_moved_total: 0,
            bus_errors: 0,
        }
    }

    /// Total words successfully written to destinations.
    pub fn words_moved(&self) -> u64 {
        self.words_moved_total
    }

    /// Bus errors encountered (erroring chunks are skipped).
    pub fn bus_errors(&self) -> u64 {
        self.bus_errors
    }

    fn current_job(&self) -> Option<&DmaDescriptor> {
        self.jobs.get(self.job_idx)
    }

    fn launch_next(&mut self) {
        let Some(job) = self.current_job().copied() else {
            return;
        };
        let remaining = job.words - self.moved;
        match self.phase {
            DmaPhase::Reading => {
                let addr = job.src + self.moved * 4;
                let (_, beats) = plan_incr_burst(addr, Hsize::Word, remaining.min(CHUNK_WORDS));
                self.inflight_words = beats;
                self.engine
                    .submit(BusOp::read_incr(addr, Hsize::Word, beats));
            }
            DmaPhase::Writing => {
                let addr = job.dst + self.moved * 4;
                let data = std::mem::take(&mut self.chunk);
                self.inflight_words = data.len() as u32;
                self.engine
                    .submit(BusOp::write_incr(addr, Hsize::Word, data));
            }
        }
    }
}

impl AhbMaster for DmaMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> MasterSignals {
        self.engine.outputs()
    }

    fn tick(&mut self, view: &MasterView) {
        self.engine.tick(view);
        if let Some(res) = self.engine.take_result() {
            if res.error {
                // Skip the failing chunk and press on: errors counted, copy
                // integrity is the caller's concern.
                self.bus_errors += 1;
                self.moved = (self.moved + self.inflight_words.max(1))
                    .min(self.current_job().map_or(0, |j| j.words));
                self.chunk.clear();
                self.phase = DmaPhase::Reading;
            } else if res.write {
                self.moved += self.inflight_words;
                self.words_moved_total += self.inflight_words as u64;
                self.phase = DmaPhase::Reading;
            } else {
                self.chunk = res.rdata;
                self.phase = DmaPhase::Writing;
            }
            // Advance to the next descriptor when this one is finished.
            if let Some(job) = self.current_job() {
                if self.moved >= job.words {
                    self.job_idx += 1;
                    self.moved = 0;
                    self.phase = DmaPhase::Reading;
                }
            }
        }
        if !self.engine.busy() && !self.done() {
            self.launch_next();
        }
    }

    fn done(&self) -> bool {
        self.job_idx >= self.jobs.len() && !self.engine.busy()
    }
}

impl Snapshot for DmaMaster {
    fn save(&self, w: &mut StateWriter<'_>) {
        // Descriptors are static configuration.
        w.usize(self.job_idx);
        w.u32(self.moved);
        w.bool(matches!(self.phase, DmaPhase::Writing));
        w.slice_u32(&self.chunk);
        w.u32(self.inflight_words);
        self.engine.save(w);
        w.word(self.words_moved_total);
        w.word(self.bus_errors);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.job_idx = r.usize()?;
        self.moved = r.u32()?;
        self.phase = if r.bool()? {
            DmaPhase::Writing
        } else {
            DmaPhase::Reading
        };
        self.chunk = r.slice_u32()?;
        self.inflight_words = r.u32()?;
        self.engine.restore(r)?;
        self.words_moved_total = r.word()?;
        self.bus_errors = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predpkt_sim::{restore_from_vec, save_to_vec};

    /// Minimal single-master bus emulation: always granted, memory modelled as
    /// an address-indexed function, zero wait states. Returns writes performed.
    fn run_dma(dma: &mut DmaMaster, max_cycles: u32) -> Vec<(u32, u32)> {
        let mut writes = Vec::new();
        let mut dp: Option<(bool, u32)> = None; // (write, addr)
        let mut wdata_addr = 0;
        for _ in 0..max_cycles {
            if dma.done() {
                break;
            }
            let out = dma.outputs();
            let (dp_mine, rdata) = match dp {
                Some((false, addr)) => (true, addr ^ 0x5a5a_0000), // read "memory"
                Some((true, _)) => (true, 0),
                None => (false, 0),
            };
            if let Some((true, addr)) = dp {
                wdata_addr = addr;
            }
            let view = MasterView {
                granted: true,
                hready: true,
                dp_mine,
                rdata,
                ..MasterView::quiet()
            };
            // Capture write data during its data phase.
            if let Some((true, _)) = dp {
                writes.push((wdata_addr, out.wdata));
            }
            dp = out.trans.is_active().then_some((out.write, out.addr));
            dma.tick(&view);
        }
        writes
    }

    #[test]
    fn copies_all_words_in_order() {
        let mut dma = DmaMaster::new(vec![DmaDescriptor::new(0x100, 0x800, 20)]);
        let writes = run_dma(&mut dma, 400);
        assert!(dma.done());
        assert_eq!(dma.words_moved(), 20);
        assert_eq!(writes.len(), 20);
        // Every destination word must carry the value read from the matching
        // source address (our fake memory returns addr ^ 0x5a5a0000).
        for (i, (addr, data)) in writes.iter().enumerate() {
            assert_eq!(*addr, 0x800 + 4 * i as u32);
            assert_eq!(*data, (0x100 + 4 * i as u32) ^ 0x5a5a_0000);
        }
    }

    #[test]
    fn multiple_descriptors_processed_sequentially() {
        let mut dma = DmaMaster::new(vec![
            DmaDescriptor::new(0x0, 0x400, 4),
            DmaDescriptor::new(0x40, 0x440, 8),
        ]);
        let writes = run_dma(&mut dma, 600);
        assert!(dma.done());
        assert_eq!(dma.words_moved(), 12);
        assert_eq!(writes[0].0, 0x400);
        assert_eq!(writes[4].0, 0x440);
    }

    #[test]
    fn chunking_respects_sixteen_word_limit() {
        let mut dma = DmaMaster::new(vec![DmaDescriptor::new(0x0, 0x1000, 33)]);
        run_dma(&mut dma, 1000);
        assert!(dma.done());
        assert_eq!(dma.words_moved(), 33, "16+16+1 chunks");
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn misaligned_descriptor_rejected() {
        let _ = DmaDescriptor::new(0x2, 0x0, 1);
    }

    #[test]
    fn snapshot_roundtrip_mid_copy() {
        let mut dma = DmaMaster::new(vec![DmaDescriptor::new(0x0, 0x200, 12)]);
        // Run a handful of cycles, then snapshot.
        let mut dp: Option<(bool, u32)> = None;
        for _ in 0..7 {
            let out = dma.outputs();
            let dp_mine = dp.is_some();
            let rdata = dp.map_or(0, |(_, a)| a);
            dp = out.trans.is_active().then_some((out.write, out.addr));
            dma.tick(&MasterView {
                granted: true,
                dp_mine,
                rdata,
                ..MasterView::quiet()
            });
        }
        let state = save_to_vec(&dma);
        let mut copy = DmaMaster::new(vec![DmaDescriptor::new(0x0, 0x200, 12)]);
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, dma);
    }
}
