//! Pseudo-random CPU-like master.
//!
//! Models the irregular side of SoC traffic: single loads/stores to a data
//! region, burst line fills from a code region (instruction fetch), occasional
//! locked read-modify-write sequences, and think-time gaps. The generator is a
//! self-contained xorshift64* PRNG so the crate stays dependency-free and every
//! run is reproducible from the seed.

use crate::engine::{BusOp, MasterEngine};
use crate::signals::{Hburst, Hsize, MasterSignals, MasterView};
use crate::AhbMaster;
use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};

/// Behaviour knobs for [`CpuMaster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuProfile {
    /// Base of the code region (line fills come from here).
    pub code_base: u32,
    /// Size of the code region in bytes (power of two recommended).
    pub code_size: u32,
    /// Base of the data region (loads/stores go here).
    pub data_base: u32,
    /// Size of the data region in bytes.
    pub data_size: u32,
    /// Percent of operations that are line fills (INCR4 reads).
    pub fetch_pct: u8,
    /// Percent of operations that are stores (of the non-fetch remainder).
    pub store_pct: u8,
    /// Percent of operations that are locked read-modify-write pairs.
    pub rmw_pct: u8,
    /// Maximum think-time cycles between operations.
    pub max_think: u32,
}

impl Default for CpuProfile {
    fn default() -> Self {
        CpuProfile {
            code_base: 0x0000_0000,
            code_size: 0x1000,
            data_base: 0x0000_1000,
            data_size: 0x1000,
            fetch_pct: 40,
            store_pct: 30,
            rmw_pct: 5,
            max_think: 4,
        }
    }
}

/// A CPU-like master generating seeded pseudo-random traffic forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuMaster {
    profile: CpuProfile,
    rng: u64,
    think_left: u32,
    /// Second half of a read-modify-write (the write-back address).
    rmw_addr: Option<u32>,
    engine: MasterEngine,
    ops_issued: u64,
}

impl CpuMaster {
    /// Creates a CPU master from a seed and a traffic profile.
    ///
    /// # Panics
    ///
    /// Panics if the seed is zero (xorshift degenerates) or a region is empty.
    pub fn new(seed: u64, profile: CpuProfile) -> Self {
        assert!(seed != 0, "seed must be non-zero");
        assert!(
            profile.code_size >= 64 && profile.data_size >= 64,
            "regions too small"
        );
        CpuMaster {
            profile,
            rng: seed,
            think_left: 0,
            rmw_addr: None,
            engine: MasterEngine::new(),
            ops_issued: 0,
        }
    }

    /// Operations issued so far.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick_op(&mut self) -> BusOp {
        // Pending RMW write-back takes precedence.
        if let Some(addr) = self.rmw_addr.take() {
            let value = (self.next_rand() & 0xffff_ffff) as u32;
            return BusOp::write_single(addr, value).locked();
        }
        let r = self.next_rand();
        let pct = (r % 100) as u8;
        let p = self.profile;
        if pct < p.fetch_pct {
            // Line fill: INCR4 word read from the code region, aligned so the
            // burst cannot cross the 1 kB boundary.
            let offset = ((r >> 8) as u32 % p.code_size) & !0xf;
            BusOp::read_burst(p.code_base + offset, Hsize::Word, Hburst::Incr4)
        } else {
            let offset = ((r >> 8) as u32 % p.data_size) & !0x3;
            let addr = p.data_base + offset;
            let pct2 = ((r >> 40) % 100) as u8;
            if pct2 < p.rmw_pct {
                // Locked read; the paired write issues next.
                self.rmw_addr = Some(addr);
                BusOp::read_single(addr).locked()
            } else if pct2 < p.rmw_pct.saturating_add(p.store_pct) {
                BusOp::write_single(addr, (r >> 16) as u32)
            } else {
                BusOp::read_single(addr)
            }
        }
    }
}

impl AhbMaster for CpuMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn outputs(&self) -> MasterSignals {
        self.engine.outputs()
    }

    fn tick(&mut self, view: &MasterView) {
        self.engine.tick(view);
        if let Some(_res) = self.engine.take_result() {
            // Think time between operations, none inside an RMW pair.
            self.think_left = if self.rmw_addr.is_some() {
                0
            } else {
                (self.next_rand() % (self.profile.max_think as u64 + 1)) as u32
            };
        }
        if !self.engine.busy() {
            if self.think_left > 0 {
                self.think_left -= 1;
            } else {
                let op = self.pick_op();
                self.ops_issued += 1;
                self.engine.submit(op);
            }
        }
    }
}

impl Snapshot for CpuMaster {
    fn save(&self, w: &mut StateWriter<'_>) {
        // The profile is static configuration.
        w.word(self.rng);
        w.u32(self.think_left);
        match self.rmw_addr {
            Some(a) => w.bool(true).u32(a),
            None => w.bool(false),
        };
        self.engine.save(w);
        w.word(self.ops_issued);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.rng = r.word()?;
        self.think_left = r.u32()?;
        self.rmw_addr = if r.bool()? { Some(r.u32()?) } else { None };
        self.engine.restore(r)?;
        self.ops_issued = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predpkt_sim::{restore_from_vec, save_to_vec};

    fn drive(cpu: &mut CpuMaster, cycles: u32) -> Vec<MasterSignals> {
        let mut outs = Vec::new();
        let mut dp_active = false;
        for _ in 0..cycles {
            let out = cpu.outputs();
            outs.push(out);
            let view = MasterView {
                granted: true,
                dp_mine: dp_active,
                rdata: 0x42,
                ..MasterView::quiet()
            };
            dp_active = out.trans.is_active();
            cpu.tick(&view);
        }
        outs
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = CpuMaster::new(7, CpuProfile::default());
        let mut b = CpuMaster::new(7, CpuProfile::default());
        assert_eq!(drive(&mut a, 500), drive(&mut b, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = CpuMaster::new(7, CpuProfile::default());
        let mut b = CpuMaster::new(8, CpuProfile::default());
        assert_ne!(drive(&mut a, 500), drive(&mut b, 500));
    }

    #[test]
    fn addresses_stay_in_regions() {
        let profile = CpuProfile::default();
        let mut cpu = CpuMaster::new(99, profile);
        for out in drive(&mut cpu, 2000) {
            if out.trans.is_active() {
                let in_code = out.addr >= profile.code_base
                    && out.addr < profile.code_base + profile.code_size;
                let in_data = out.addr >= profile.data_base
                    && out.addr < profile.data_base + profile.data_size;
                assert!(in_code || in_data, "address {:#x} out of regions", out.addr);
                assert_eq!(out.addr % 4, 0, "word aligned");
            }
        }
    }

    #[test]
    fn issues_a_mix_of_reads_writes_and_bursts() {
        let mut cpu = CpuMaster::new(3, CpuProfile::default());
        let outs = drive(&mut cpu, 3000);
        let writes = outs
            .iter()
            .filter(|o| o.trans == crate::signals::Htrans::Nonseq && o.write)
            .count();
        let reads = outs
            .iter()
            .filter(|o| o.trans == crate::signals::Htrans::Nonseq && !o.write)
            .count();
        let bursts = outs
            .iter()
            .filter(|o| o.trans == crate::signals::Htrans::Seq)
            .count();
        assert!(writes > 0, "some writes");
        assert!(reads > 0, "some reads");
        assert!(bursts > 0, "some burst beats");
        assert!(cpu.ops_issued() > 100);
    }

    #[test]
    fn rmw_pairs_are_locked_and_adjacent() {
        let profile = CpuProfile {
            rmw_pct: 100,
            fetch_pct: 0,
            ..CpuProfile::default()
        };
        let mut cpu = CpuMaster::new(5, profile);
        let outs = drive(&mut cpu, 200);
        // Every active phase must be locked (all ops are RMW halves).
        let mut phases = outs.iter().filter(|o| o.trans.is_active());
        let first = phases.next().expect("traffic generated");
        assert!(first.lock);
        assert!(!first.write, "RMW starts with the read half");
        // Find the paired write: same address, locked.
        let write = outs
            .iter()
            .find(|o| o.trans.is_active() && o.write)
            .expect("write-back half");
        assert!(write.lock);
        assert_eq!(write.addr, first.addr);
    }

    #[test]
    fn snapshot_roundtrip_mid_traffic() {
        let mut cpu = CpuMaster::new(11, CpuProfile::default());
        drive(&mut cpu, 137);
        let state = save_to_vec(&cpu);
        let mut copy = CpuMaster::new(11, CpuProfile::default());
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, cpu);
        // And they continue identically.
        assert_eq!(drive(&mut copy, 100), drive(&mut cpu, 100));
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn zero_seed_rejected() {
        let _ = CpuMaster::new(0, CpuProfile::default());
    }
}
