//! Master library.
//!
//! | Master | Behaviour | Role in the evaluation |
//! |---|---|---|
//! | [`TrafficGenMaster`] | scripted list of [`BusOp`](crate::engine::BusOp)s with idle gaps | deterministic stimulus for equivalence tests |
//! | [`DmaMaster`] | descriptor-driven block copies using tiled INCR bursts | the burst-heavy workload the paper's intro motivates |
//! | [`CpuMaster`] | seeded pseudo-random loads/stores/fetches with think time | irregular traffic that stresses the predictors |

mod cpu;
mod dma;
mod traffic_gen;

pub use cpu::{CpuMaster, CpuProfile};
pub use dma::{DmaDescriptor, DmaMaster};
pub use traffic_gen::TrafficGenMaster;
