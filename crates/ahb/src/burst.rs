//! Burst address sequencing.
//!
//! The paper's address/control predictability rests on this arithmetic: within a
//! burst, addresses "either increase linearly over time or remain constant" —
//! so a channel wrapper that saw the first beat can predict every later one
//! (§3). The same arithmetic drives masters (generating beats), slaves
//! (prefetching), the protocol checker, and the address/control predictor in
//! `predpkt-predict`.

use crate::signals::{Hburst, Hsize};

/// AHB bursts must not cross this boundary (AHB spec §3.5: 1 kB).
pub const BURST_BOUNDARY: u32 = 0x400;

/// Computes the address of the beat following `addr` within a burst.
///
/// Incrementing bursts add the transfer size; wrapping bursts wrap at the
/// container boundary (`beats × size` bytes, aligned).
///
/// # Example
///
/// ```
/// use predpkt_ahb::burst::next_addr;
/// use predpkt_ahb::signals::{Hburst, Hsize};
///
/// // INCR4 word burst: 0x20 -> 0x24
/// assert_eq!(next_addr(0x20, Hsize::Word, Hburst::Incr4), 0x24);
/// // WRAP4 word burst starting at 0x3C wraps inside [0x30, 0x40)
/// assert_eq!(next_addr(0x3c, Hsize::Word, Hburst::Wrap4), 0x30);
/// ```
pub fn next_addr(addr: u32, size: Hsize, burst: Hburst) -> u32 {
    let step = size.bytes();
    let incremented = addr.wrapping_add(step);
    match burst.beats() {
        Some(beats) if burst.is_wrapping() => {
            let container = step * beats;
            let base = addr & !(container - 1);
            base | (incremented & (container - 1))
        }
        _ => incremented,
    }
}

/// The address of beat `beat` (0-based) of a burst starting at `start`.
///
/// # Example
///
/// ```
/// use predpkt_ahb::burst::beat_addr;
/// use predpkt_ahb::signals::{Hburst, Hsize};
/// assert_eq!(beat_addr(0x38, Hsize::Word, Hburst::Wrap4, 3), 0x34);
/// ```
pub fn beat_addr(start: u32, size: Hsize, burst: Hburst, beat: u32) -> u32 {
    let mut a = start;
    for _ in 0..beat {
        a = next_addr(a, size, burst);
    }
    a
}

/// `true` if a defined-length burst starting at `start` stays inside the 1 kB
/// boundary (always `true` for single transfers; `false` is never produced for
/// wrapping bursts, whose container is at most 64 bytes).
pub fn fits_in_boundary(start: u32, size: Hsize, burst: Hburst) -> bool {
    match burst.beats() {
        None => true, // INCR: the master must terminate it before the boundary
        Some(beats) => {
            if burst.is_wrapping() {
                true
            } else {
                let span = size.bytes() * beats;
                let first_page = start / BURST_BOUNDARY;
                let last_page = (start + span - 1) / BURST_BOUNDARY;
                first_page == last_page
            }
        }
    }
}

/// Picks the largest defined-length incrementing burst (INCR16/8/4/SINGLE) that
/// covers at most `remaining_beats` beats without crossing the 1 kB boundary
/// from `addr`.
///
/// Used by the DMA master to tile long transfers into legal bursts.
pub fn plan_incr_burst(addr: u32, size: Hsize, remaining_beats: u32) -> (Hburst, u32) {
    for (burst, beats) in [(Hburst::Incr16, 16), (Hburst::Incr8, 8), (Hburst::Incr4, 4)] {
        if remaining_beats >= beats && fits_in_boundary(addr, size, burst) {
            return (burst, beats);
        }
    }
    (Hburst::Single, 1)
}

/// Tracks progress through one burst: how many beats issued, what the next
/// address is, whether the burst is complete.
///
/// Both the arbiter (to hold grants for defined-length bursts) and the
/// address/control predictor (to extrapolate SEQ beats) use this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstTracker {
    size: Hsize,
    burst: Hburst,
    next: u32,
    issued: u32,
}

impl BurstTracker {
    /// Starts tracking at the first (NONSEQ) beat.
    pub fn start(addr: u32, size: Hsize, burst: Hburst) -> Self {
        BurstTracker {
            size,
            burst,
            next: next_addr(addr, size, burst),
            issued: 1,
        }
    }

    /// The expected address of the next SEQ beat.
    pub fn next_addr(&self) -> u32 {
        self.next
    }

    /// The burst kind being tracked.
    pub fn burst(&self) -> Hburst {
        self.burst
    }

    /// The transfer size being tracked.
    pub fn size(&self) -> Hsize {
        self.size
    }

    /// Number of beats issued so far.
    pub fn issued(&self) -> u32 {
        self.issued
    }

    /// Records one more accepted SEQ beat.
    pub fn advance(&mut self) {
        self.next = next_addr(self.next, self.size, self.burst);
        self.issued += 1;
    }

    /// `true` once a defined-length burst has issued all its beats
    /// (never `true` for INCR).
    pub fn complete(&self) -> bool {
        match self.burst.beats() {
            Some(beats) => self.issued >= beats,
            None => false,
        }
    }

    /// Packs into two words for snapshots
    /// (`[size|burst|issued, next]`).
    pub fn pack(&self) -> [u32; 2] {
        let meta = self.size.encode() | (self.burst.encode() << 3) | (self.issued << 6);
        [meta, self.next]
    }

    /// Unpacks the [`pack`](BurstTracker::pack) encoding.
    pub fn unpack(words: &[u32; 2]) -> Option<BurstTracker> {
        Some(BurstTracker {
            size: Hsize::decode(words[0] & 0b111)?,
            burst: Hburst::decode((words[0] >> 3) & 0b111)?,
            issued: words[0] >> 6,
            next: words[1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_word_steps_by_four() {
        assert_eq!(next_addr(0x100, Hsize::Word, Hburst::Incr), 0x104);
        assert_eq!(next_addr(0x100, Hsize::Half, Hburst::Incr), 0x102);
        assert_eq!(next_addr(0x100, Hsize::Byte, Hburst::Incr), 0x101);
    }

    #[test]
    fn wrap4_word_container() {
        // Container: 4 beats * 4 bytes = 16 bytes, base 0x30.
        let seq: Vec<u32> = std::iter::successors(Some(0x38u32), |&a| {
            Some(next_addr(a, Hsize::Word, Hburst::Wrap4))
        })
        .take(4)
        .collect();
        assert_eq!(seq, vec![0x38, 0x3c, 0x30, 0x34]);
    }

    #[test]
    fn wrap8_half_container() {
        // 8 beats * 2 bytes = 16-byte container.
        let start = 0x1e;
        let a1 = next_addr(start, Hsize::Half, Hburst::Wrap8);
        assert_eq!(a1, 0x10, "wraps to container base");
    }

    #[test]
    fn wrap16_byte_container() {
        // 16 beats * 1 byte = 16-byte container; wrap within it.
        let mut a = 0x0f;
        a = next_addr(a, Hsize::Byte, Hburst::Wrap16);
        assert_eq!(a, 0x00);
    }

    #[test]
    fn beat_addr_matches_iteration() {
        for burst in Hburst::ALL {
            for size in Hsize::ALL {
                let start = 0x200;
                let mut a = start;
                for beat in 0..burst.beats().unwrap_or(8) {
                    assert_eq!(beat_addr(start, size, burst, beat), a);
                    a = next_addr(a, size, burst);
                }
            }
        }
    }

    #[test]
    fn boundary_detection() {
        // INCR16 words from 0x3F0 would cross 0x400.
        assert!(!fits_in_boundary(0x3f0, Hsize::Word, Hburst::Incr16));
        assert!(fits_in_boundary(0x3c0, Hsize::Word, Hburst::Incr16));
        // Wrapping bursts never cross.
        assert!(fits_in_boundary(0x3fc, Hsize::Word, Hburst::Wrap16));
        // Singles never cross.
        assert!(fits_in_boundary(0x3fc, Hsize::Word, Hburst::Single));
        // INCR (undefined) is the master's problem.
        assert!(fits_in_boundary(0x3fc, Hsize::Word, Hburst::Incr));
    }

    #[test]
    fn plan_incr_burst_tiles_greedily() {
        assert_eq!(plan_incr_burst(0x0, Hsize::Word, 40), (Hburst::Incr16, 16));
        assert_eq!(plan_incr_burst(0x0, Hsize::Word, 12), (Hburst::Incr8, 8));
        assert_eq!(plan_incr_burst(0x0, Hsize::Word, 5), (Hburst::Incr4, 4));
        assert_eq!(plan_incr_burst(0x0, Hsize::Word, 3), (Hburst::Single, 1));
        // Near the boundary the planner downgrades.
        assert_eq!(plan_incr_burst(0x3f0, Hsize::Word, 16), (Hburst::Incr4, 4));
        assert_eq!(plan_incr_burst(0x3fc, Hsize::Word, 16), (Hburst::Single, 1));
    }

    #[test]
    fn tracker_follows_defined_burst() {
        let mut t = BurstTracker::start(0x100, Hsize::Word, Hburst::Incr4);
        assert_eq!(t.next_addr(), 0x104);
        assert!(!t.complete());
        t.advance(); // beat 2 accepted
        t.advance(); // beat 3 accepted
        assert_eq!(t.next_addr(), 0x10c);
        assert!(!t.complete());
        t.advance(); // beat 4 accepted
        assert!(t.complete());
        assert_eq!(t.issued(), 4);
    }

    #[test]
    fn tracker_incr_never_completes() {
        let mut t = BurstTracker::start(0x0, Hsize::Word, Hburst::Incr);
        for _ in 0..100 {
            t.advance();
        }
        assert!(!t.complete());
        assert_eq!(t.next_addr(), 4 * 101);
    }

    #[test]
    fn tracker_pack_roundtrip() {
        let mut t = BurstTracker::start(0xabc0, Hsize::Half, Hburst::Wrap8);
        t.advance();
        t.advance();
        assert_eq!(BurstTracker::unpack(&t.pack()), Some(t));
    }

    #[test]
    fn incr_address_can_wrap_u32() {
        // wrapping_add semantics at the top of the address space.
        assert_eq!(next_addr(u32::MAX - 3, Hsize::Word, Hburst::Incr), 0);
    }
}
