//! AHB signal types and per-cycle signal bundles.
//!
//! Names follow the AMBA AHB specification (HTRANS, HBURST, …); bundles follow
//! the paper's *minimal set of active bus signals* (MSABS, §3): per-master
//! address/control/write-data plus bus request, per-slave ready/response/
//! read-data plus SPLIT unmask, and interrupt lines (treated like MSABS
//! elements, as the paper prescribes).

use predpkt_sim::{Snapshot, SnapshotError, StateReader, StateWriter};
use std::fmt;

/// Index of a bus master (0 = highest arbitration priority by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(pub usize);

/// Index of a bus slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlaveId(pub usize);

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// HTRANS — transfer type of the address phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Htrans {
    /// No transfer this cycle.
    #[default]
    Idle,
    /// Burst continues but the master needs a beat of pause.
    Busy,
    /// First transfer of a burst (or a single).
    Nonseq,
    /// Subsequent transfer of a burst.
    Seq,
}

impl Htrans {
    /// Encodes as the 2-bit field of the specification.
    pub fn encode(self) -> u32 {
        match self {
            Htrans::Idle => 0b00,
            Htrans::Busy => 0b01,
            Htrans::Nonseq => 0b10,
            Htrans::Seq => 0b11,
        }
    }

    /// Decodes the 2-bit field.
    pub fn decode(bits: u32) -> Option<Htrans> {
        match bits {
            0b00 => Some(Htrans::Idle),
            0b01 => Some(Htrans::Busy),
            0b10 => Some(Htrans::Nonseq),
            0b11 => Some(Htrans::Seq),
            _ => None,
        }
    }

    /// `true` for NONSEQ/SEQ — phases that request an actual data transfer.
    pub fn is_active(self) -> bool {
        matches!(self, Htrans::Nonseq | Htrans::Seq)
    }
}

/// HBURST — burst kind of the address phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Hburst {
    /// Single transfer.
    #[default]
    Single,
    /// Incrementing burst of unspecified length.
    Incr,
    /// 4-beat wrapping burst.
    Wrap4,
    /// 4-beat incrementing burst.
    Incr4,
    /// 8-beat wrapping burst.
    Wrap8,
    /// 8-beat incrementing burst.
    Incr8,
    /// 16-beat wrapping burst.
    Wrap16,
    /// 16-beat incrementing burst.
    Incr16,
}

impl Hburst {
    /// Encodes as the 3-bit field of the specification.
    pub fn encode(self) -> u32 {
        match self {
            Hburst::Single => 0b000,
            Hburst::Incr => 0b001,
            Hburst::Wrap4 => 0b010,
            Hburst::Incr4 => 0b011,
            Hburst::Wrap8 => 0b100,
            Hburst::Incr8 => 0b101,
            Hburst::Wrap16 => 0b110,
            Hburst::Incr16 => 0b111,
        }
    }

    /// Decodes the 3-bit field.
    pub fn decode(bits: u32) -> Option<Hburst> {
        match bits {
            0b000 => Some(Hburst::Single),
            0b001 => Some(Hburst::Incr),
            0b010 => Some(Hburst::Wrap4),
            0b011 => Some(Hburst::Incr4),
            0b100 => Some(Hburst::Wrap8),
            0b101 => Some(Hburst::Incr8),
            0b110 => Some(Hburst::Wrap16),
            0b111 => Some(Hburst::Incr16),
            _ => None,
        }
    }

    /// Number of beats for defined-length bursts; `None` for [`Hburst::Incr`].
    pub fn beats(self) -> Option<u32> {
        match self {
            Hburst::Single => Some(1),
            Hburst::Incr => None,
            Hburst::Wrap4 | Hburst::Incr4 => Some(4),
            Hburst::Wrap8 | Hburst::Incr8 => Some(8),
            Hburst::Wrap16 | Hburst::Incr16 => Some(16),
        }
    }

    /// `true` for the wrapping variants.
    pub fn is_wrapping(self) -> bool {
        matches!(self, Hburst::Wrap4 | Hburst::Wrap8 | Hburst::Wrap16)
    }

    /// All burst kinds (for exhaustive tests).
    pub const ALL: [Hburst; 8] = [
        Hburst::Single,
        Hburst::Incr,
        Hburst::Wrap4,
        Hburst::Incr4,
        Hburst::Wrap8,
        Hburst::Incr8,
        Hburst::Wrap16,
        Hburst::Incr16,
    ];
}

/// HSIZE — transfer width (the workspace models a 32-bit bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Hsize {
    /// 8-bit transfer.
    Byte,
    /// 16-bit transfer.
    Half,
    /// 32-bit transfer.
    #[default]
    Word,
}

impl Hsize {
    /// Encodes as the 3-bit field of the specification.
    pub fn encode(self) -> u32 {
        match self {
            Hsize::Byte => 0b000,
            Hsize::Half => 0b001,
            Hsize::Word => 0b010,
        }
    }

    /// Decodes the 3-bit field.
    pub fn decode(bits: u32) -> Option<Hsize> {
        match bits {
            0b000 => Some(Hsize::Byte),
            0b001 => Some(Hsize::Half),
            0b010 => Some(Hsize::Word),
            _ => None,
        }
    }

    /// Transfer width in bytes.
    pub fn bytes(self) -> u32 {
        1 << self.encode()
    }

    /// All sizes (for exhaustive tests).
    pub const ALL: [Hsize; 3] = [Hsize::Byte, Hsize::Half, Hsize::Word];
}

/// HRESP — slave response of the data phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Hresp {
    /// Transfer progressing / completed normally.
    #[default]
    Okay,
    /// Transfer failed (two-cycle response).
    Error,
    /// Master must retry the transfer (two-cycle response).
    Retry,
    /// Slave split the transfer; master is masked until un-split
    /// (two-cycle response).
    Split,
}

impl Hresp {
    /// Encodes as the 2-bit field of the specification.
    pub fn encode(self) -> u32 {
        match self {
            Hresp::Okay => 0b00,
            Hresp::Error => 0b01,
            Hresp::Retry => 0b10,
            Hresp::Split => 0b11,
        }
    }

    /// Decodes the 2-bit field.
    pub fn decode(bits: u32) -> Option<Hresp> {
        match bits {
            0b00 => Some(Hresp::Okay),
            0b01 => Some(Hresp::Error),
            0b10 => Some(Hresp::Retry),
            0b11 => Some(Hresp::Split),
            _ => None,
        }
    }

    /// `true` for ERROR/RETRY/SPLIT — the two-cycle responses.
    pub fn is_error_class(self) -> bool {
        !matches!(self, Hresp::Okay)
    }
}

/// Signals driven by one master during one cycle (its MSABS contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MasterSignals {
    /// HBUSREQx — arbitration request.
    pub busreq: bool,
    /// HLOCK — locked-transfer request alongside `busreq`.
    pub lock: bool,
    /// HTRANS — transfer type of the driven address phase.
    pub trans: Htrans,
    /// HADDR — address of the driven address phase.
    pub addr: u32,
    /// HWRITE — direction of the driven address phase.
    pub write: bool,
    /// HSIZE — width of the driven address phase.
    pub size: Hsize,
    /// HBURST — burst kind of the driven address phase.
    pub burst: Hburst,
    /// HPROT — protection control (opaque 4-bit value).
    pub prot: u8,
    /// HWDATA — write data for the master's current data phase.
    pub wdata: u32,
}

impl MasterSignals {
    /// An idle master: no request, IDLE address phase.
    pub fn idle() -> Self {
        Self::default()
    }

    /// Packs into words for traces and channel packets
    /// (`[flags|trans|size|burst|prot, addr, wdata]`).
    pub fn pack(&self) -> [u32; 3] {
        let mut flags = 0u32;
        flags |= self.busreq as u32;
        flags |= (self.lock as u32) << 1;
        flags |= (self.write as u32) << 2;
        flags |= self.trans.encode() << 3;
        flags |= self.size.encode() << 5;
        flags |= self.burst.encode() << 8;
        flags |= (self.prot as u32 & 0xf) << 11;
        [flags, self.addr, self.wdata]
    }

    /// Unpacks the [`pack`](MasterSignals::pack) encoding.
    ///
    /// Returns `None` if a field fails validation.
    pub fn unpack(words: &[u32; 3]) -> Option<MasterSignals> {
        let flags = words[0];
        if flags >> 15 != 0 {
            return None;
        }
        Some(MasterSignals {
            busreq: flags & 1 != 0,
            lock: flags & 2 != 0,
            write: flags & 4 != 0,
            trans: Htrans::decode((flags >> 3) & 0b11)?,
            size: Hsize::decode((flags >> 5) & 0b111)?,
            burst: Hburst::decode((flags >> 8) & 0b111)?,
            prot: ((flags >> 11) & 0xf) as u8,
            addr: words[1],
            wdata: words[2],
        })
    }
}

/// Signals driven by one slave during one cycle (its MSABS contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveSignals {
    /// HREADYout — the slave can complete the current data phase this cycle.
    pub ready: bool,
    /// HRESP — response for the current data phase.
    pub resp: Hresp,
    /// HRDATA — read data for the current data phase.
    pub rdata: u32,
    /// HSPLITx — bit per master: re-enable a split master in the arbiter.
    pub split_unmask: u16,
    /// Interrupt line (treated like an MSABS element per the paper, §3).
    pub irq: bool,
}

impl SlaveSignals {
    /// An inactive slave: ready, OKAY, no data, no IRQ.
    pub fn idle() -> Self {
        SlaveSignals {
            ready: true,
            resp: Hresp::Okay,
            rdata: 0,
            split_unmask: 0,
            irq: false,
        }
    }

    /// Packs into words for traces and channel packets
    /// (`[flags|resp|split, rdata]`).
    pub fn pack(&self) -> [u32; 2] {
        let mut flags = 0u32;
        flags |= self.ready as u32;
        flags |= (self.irq as u32) << 1;
        flags |= self.resp.encode() << 2;
        flags |= (self.split_unmask as u32) << 4;
        [flags, self.rdata]
    }

    /// Unpacks the [`pack`](SlaveSignals::pack) encoding.
    ///
    /// Returns `None` if a field fails validation.
    pub fn unpack(words: &[u32; 2]) -> Option<SlaveSignals> {
        let flags = words[0];
        if flags >> 20 != 0 {
            return None;
        }
        Some(SlaveSignals {
            ready: flags & 1 != 0,
            irq: flags & 2 != 0,
            resp: Hresp::decode((flags >> 2) & 0b11)?,
            split_unmask: ((flags >> 4) & 0xffff) as u16,
            rdata: words[1],
        })
    }
}

impl Default for SlaveSignals {
    fn default() -> Self {
        Self::idle()
    }
}

/// An address phase as captured by the fabric: who requests what from whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrPhase {
    /// The master driving the phase.
    pub master: MasterId,
    /// Decoded target slave (`None` → default slave).
    pub slave: Option<SlaveId>,
    /// HTRANS of the phase.
    pub trans: Htrans,
    /// HADDR of the phase.
    pub addr: u32,
    /// HWRITE of the phase.
    pub write: bool,
    /// HSIZE of the phase.
    pub size: Hsize,
    /// HBURST of the phase.
    pub burst: Hburst,
}

/// Everything a master port sees during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterView {
    /// HGRANTx — this master owns the address phase this cycle.
    pub granted: bool,
    /// System HREADY (the data-phase slave's ready, muxed).
    pub hready: bool,
    /// System HRESP (the data-phase slave's response, muxed).
    pub resp: Hresp,
    /// HRDATA (valid when this master's read data phase completes).
    pub rdata: u32,
    /// `true` if this master owns the current data phase.
    pub dp_mine: bool,
    /// Interrupt lines, one bit per slave.
    pub irq: u16,
}

impl MasterView {
    /// A quiescent view: not granted, bus ready, OKAY.
    pub fn quiet() -> Self {
        MasterView {
            granted: false,
            hready: true,
            resp: Hresp::Okay,
            rdata: 0,
            dp_mine: false,
            irq: 0,
        }
    }
}

/// Everything a slave port sees during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveView {
    /// The address phase selecting this slave this cycle, if any.
    pub addr_phase: Option<AddrPhase>,
    /// System HREADY — the address phase above is *accepted* only when high.
    pub hready: bool,
    /// `true` if this slave owns the current data phase.
    pub dp_active: bool,
    /// The data phase being served (valid when `dp_active`).
    pub dp: Option<AddrPhase>,
    /// HWDATA (valid when `dp_active` and the phase is a write).
    pub wdata: u32,
}

impl SlaveView {
    /// A quiescent view: nothing selected, bus ready.
    pub fn quiet() -> Self {
        SlaveView {
            addr_phase: None,
            hready: true,
            dp_active: false,
            dp: None,
            wdata: 0,
        }
    }
}

impl Snapshot for MasterSignals {
    fn save(&self, w: &mut StateWriter<'_>) {
        let packed = self.pack();
        w.u32(packed[0]).u32(packed[1]).u32(packed[2]);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let words = [r.u32()?, r.u32()?, r.u32()?];
        *self = MasterSignals::unpack(&words).ok_or(SnapshotError::Corrupt { at: 0 })?;
        Ok(())
    }
}

impl Snapshot for SlaveSignals {
    fn save(&self, w: &mut StateWriter<'_>) {
        let packed = self.pack();
        w.u32(packed[0]).u32(packed[1]);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let words = [r.u32()?, r.u32()?];
        *self = SlaveSignals::unpack(&words).ok_or(SnapshotError::Corrupt { at: 0 })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predpkt_sim::{restore_from_vec, save_to_vec};

    #[test]
    fn htrans_roundtrip() {
        for t in [Htrans::Idle, Htrans::Busy, Htrans::Nonseq, Htrans::Seq] {
            assert_eq!(Htrans::decode(t.encode()), Some(t));
        }
        assert_eq!(Htrans::decode(4), None);
        assert!(Htrans::Nonseq.is_active());
        assert!(Htrans::Seq.is_active());
        assert!(!Htrans::Idle.is_active());
        assert!(!Htrans::Busy.is_active());
    }

    #[test]
    fn hburst_roundtrip_and_beats() {
        for b in Hburst::ALL {
            assert_eq!(Hburst::decode(b.encode()), Some(b));
        }
        assert_eq!(Hburst::decode(8), None);
        assert_eq!(Hburst::Single.beats(), Some(1));
        assert_eq!(Hburst::Incr.beats(), None);
        assert_eq!(Hburst::Wrap4.beats(), Some(4));
        assert_eq!(Hburst::Incr16.beats(), Some(16));
        assert!(Hburst::Wrap8.is_wrapping());
        assert!(!Hburst::Incr8.is_wrapping());
    }

    #[test]
    fn hsize_bytes() {
        assert_eq!(Hsize::Byte.bytes(), 1);
        assert_eq!(Hsize::Half.bytes(), 2);
        assert_eq!(Hsize::Word.bytes(), 4);
        for s in Hsize::ALL {
            assert_eq!(Hsize::decode(s.encode()), Some(s));
        }
        assert_eq!(Hsize::decode(0b011), None); // 64-bit not modeled
    }

    #[test]
    fn hresp_roundtrip() {
        for r in [Hresp::Okay, Hresp::Error, Hresp::Retry, Hresp::Split] {
            assert_eq!(Hresp::decode(r.encode()), Some(r));
        }
        assert!(!Hresp::Okay.is_error_class());
        assert!(Hresp::Split.is_error_class());
    }

    #[test]
    fn master_signals_pack_roundtrip() {
        let sig = MasterSignals {
            busreq: true,
            lock: false,
            trans: Htrans::Seq,
            addr: 0x8000_1234,
            write: true,
            size: Hsize::Half,
            burst: Hburst::Wrap8,
            prot: 0xb,
            wdata: 0xcafe_f00d,
        };
        assert_eq!(MasterSignals::unpack(&sig.pack()), Some(sig));
    }

    #[test]
    fn master_signals_unpack_rejects_garbage() {
        assert_eq!(MasterSignals::unpack(&[u32::MAX, 0, 0]), None);
    }

    #[test]
    fn slave_signals_pack_roundtrip() {
        let sig = SlaveSignals {
            ready: false,
            resp: Hresp::Split,
            rdata: 0x1122_3344,
            split_unmask: 0b1010,
            irq: true,
        };
        assert_eq!(SlaveSignals::unpack(&sig.pack()), Some(sig));
    }

    #[test]
    fn slave_signals_unpack_rejects_garbage() {
        assert_eq!(SlaveSignals::unpack(&[u32::MAX, 0]), None);
    }

    #[test]
    fn idle_defaults() {
        let m = MasterSignals::idle();
        assert!(!m.busreq);
        assert_eq!(m.trans, Htrans::Idle);
        let s = SlaveSignals::idle();
        assert!(s.ready);
        assert_eq!(s.resp, Hresp::Okay);
        assert_eq!(SlaveSignals::default(), s);
    }

    #[test]
    fn snapshot_roundtrip_for_signal_bundles() {
        let m = MasterSignals {
            busreq: true,
            trans: Htrans::Nonseq,
            addr: 0x44,
            burst: Hburst::Incr4,
            ..MasterSignals::idle()
        };
        let state = save_to_vec(&m);
        let mut copy = MasterSignals::idle();
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, m);

        let s = SlaveSignals {
            ready: false,
            resp: Hresp::Retry,
            rdata: 9,
            split_unmask: 1,
            irq: false,
        };
        let state = save_to_vec(&s);
        let mut copy = SlaveSignals::idle();
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, s);
    }

    #[test]
    fn ids_display() {
        assert_eq!(MasterId(2).to_string(), "M2");
        assert_eq!(SlaveId(0).to_string(), "S0");
    }

    #[test]
    fn views_quiet() {
        let mv = MasterView::quiet();
        assert!(mv.hready && !mv.granted && !mv.dp_mine);
        let sv = SlaveView::quiet();
        assert!(sv.hready && sv.addr_phase.is_none() && !sv.dp_active);
    }
}
