//! Shared machinery for the loopback-overhead bench binaries
//! (`tcp_loopback`, `shm_loopback`): the Fig. 2-shaped SoC, the timed
//! best-of-reps runner, the comparison table, and the `BENCH_*.json`
//! emitter. One definition keeps the bins' artifacts comparable — the same
//! workload, the same columns, the same JSON schema.

use predpkt_ahb::engine::BusOp;
use predpkt_ahb::masters::{DmaDescriptor, DmaMaster, TrafficGenMaster};
use predpkt_ahb::slaves::{MemorySlave, PeripheralSlave};
use predpkt_core::{
    CoEmuConfig, EmuSession, ModePolicy, Side, SocBlueprint, ThreadedOpts, TransportSelect,
};
use std::time::{Duration, Instant};

/// The Fig. 2-shaped SoC every loopback bench runs: a DMA master and a
/// looping traffic generator on the accelerator side against a memory slave
/// on the simulator side and a peripheral on the accelerator side.
pub fn fig2_soc() -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Accelerator, || {
            Box::new(DmaMaster::new(vec![
                DmaDescriptor::new(0x0000_0100, 0x0000_1100, 24),
                DmaDescriptor::new(0x0000_1200, 0x0000_0200, 12),
            ]))
        })
        .master(Side::Accelerator, || {
            Box::new(
                TrafficGenMaster::from_ops(vec![BusOp::write_single(0x0000_2004, 0xabcd)])
                    .looping()
                    .with_idle_gap(7),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x2000, || {
            Box::new(MemorySlave::new(0x2000, 0))
        })
        .slave(Side::Accelerator, 0x0000_2000, 0x1000, || {
            Box::new(PeripheralSlave::new(1))
        })
}

/// Fine-grained polling so blocked-domain wakeups don't dominate the
/// figure.
pub fn bench_opts() -> ThreadedOpts {
    ThreadedOpts {
        poll_interval: Duration::from_micros(200),
        deadlock_timeout: Duration::from_secs(10),
    }
}

/// The `(cycles, timed reps)` for a loopback bench: the full configuration,
/// or the reduced one under `--quick` (CI's bench-artifacts job).
///
/// `PREDPKT_LOOPBACK_REPS` overrides the rep count in either mode. Loopback
/// TCP wall clock is bimodal on shared hosts (scheduler placement, C-state
/// wakeups); two disciplines tame it so the trend gate can run tight:
/// best-of-N inside the bin — `--quick` included, which used to take a
/// single timed sample and fed the gate whichever mode the scheduler picked
/// — and the optional [`maybe_pin_cores`] affinity hook.
pub fn loopback_iterations(quick: bool) -> (u64, u32) {
    let (cycles, default_reps) = if quick { (400, 3) } else { (2_000, 5) };
    let reps = std::env::var("PREDPKT_LOOPBACK_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(default_reps);
    (cycles, reps)
}

/// Guard variable marking a process already re-executed under `taskset`, so
/// the pinning hook can never recurse.
const PIN_GUARD: &str = "PREDPKT_PIN_CORES_APPLIED";

/// Opt-in core pinning for the loopback bins: with `PREDPKT_PIN_CORES` set
/// to a CPU list (taskset syntax, e.g. `0-1` or `2,3`), the bench re-execs
/// itself under `taskset -c <list>` so both domain threads stay on the named
/// cores. Scheduler migration across cores (and across core complexes /
/// sockets) is the main source of loopback-TCP wall-clock bimodality;
/// pinning removes it without taking a dependency on an affinity crate.
///
/// No-op when the variable is unset, on non-Linux hosts, or when `taskset`
/// is unavailable (the bench then runs unpinned rather than failing).
pub fn maybe_pin_cores() {
    let Ok(cores) = std::env::var("PREDPKT_PIN_CORES") else {
        return;
    };
    if cores.is_empty() || std::env::var_os(PIN_GUARD).is_some() || !cfg!(target_os = "linux") {
        return;
    }
    let Ok(exe) = std::env::current_exe() else {
        return;
    };
    let status = std::process::Command::new("taskset")
        .arg("-c")
        .arg(&cores)
        .arg(exe)
        .args(std::env::args_os().skip(1))
        .env(PIN_GUARD, "1")
        .status();
    match status {
        Ok(status) => std::process::exit(status.code().unwrap_or(1)),
        Err(e) => {
            eprintln!("PREDPKT_PIN_CORES={cores}: taskset unavailable ({e}); running unpinned")
        }
    }
}

/// One backend's measurements in the comparison table.
pub struct LoopbackRow {
    /// Stable backend name (also the JSON `backend` field).
    pub backend: &'static str,
    /// Best wall-clock over the timed reps.
    pub wall: Duration,
    /// Host throughput in kilo-cycles per second.
    pub host_kcps: f64,
    /// Hash of the merged committed trace.
    pub trace_hash: u64,
    /// Total virtual time in picoseconds.
    pub virtual_time_ps: u64,
    /// Protocol-level channel words.
    pub channel_words: u64,
    /// Recovery-layer overhead words (0 for non-reliable backends).
    pub recovery_words: u64,
    /// Mean frames per physical write (socket write / ring publication);
    /// 0 for backends with no physical write concept.
    pub frames_per_write: f64,
    /// Fraction of reliability acks piggybacked on data frames; 0 for
    /// non-reliable backends.
    pub ack_piggyback_ratio: f64,
}

/// Runs the Fig. 2 SoC over `backend` for `cycles` committed cycles — one
/// warm-up run (region/connection setup, allocator) then `reps` timed
/// repetitions, keeping the best wall time.
pub fn run_loopback(
    backend_name: &'static str,
    backend: TransportSelect,
    cycles: u64,
    reps: u32,
) -> LoopbackRow {
    let mut best = Duration::MAX;
    let mut last = None;
    for rep in 0..=reps {
        let blueprint = fig2_soc();
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::Auto)
            .rollback_vars(None)
            .carry(true)
            .adaptive(true);
        let mut session = EmuSession::from_blueprint(&blueprint)
            .config(config)
            .transport(backend)
            .build()
            .expect("session builds");
        let t0 = Instant::now();
        session.run_until_committed(cycles).expect("run completes");
        let wall = t0.elapsed();
        if rep > 0 {
            best = best.min(wall);
        }
        let placement = blueprint.placement();
        let trace = session.merged_trace(|s, a| placement.merge_records(s, a));
        last = Some((trace.hash(), session));
    }
    let (trace_hash, session) = last.expect("at least one run");
    let committed = session.committed_cycles();
    let report = session.report();
    LoopbackRow {
        backend: backend_name,
        wall: best,
        host_kcps: committed as f64 / best.as_secs_f64() / 1_000.0,
        trace_hash,
        virtual_time_ps: session.ledger().total().as_picos(),
        channel_words: session.channel_stats().total_words(),
        recovery_words: report.recovery().map_or(0, |r| r.overhead_words),
        frames_per_write: report.frames_per_physical_write().unwrap_or(0.0),
        ack_piggyback_ratio: report.ack_piggyback_ratio().unwrap_or(0.0),
    }
}

/// Prints the comparison table and the bit-identity verdict; returns
/// whether every row matched the first one (the conformance property the
/// table is meant to witness).
pub fn print_loopback_table(
    title: &str,
    medium: &str,
    cycles: u64,
    reps: u32,
    rows: &[LoopbackRow],
) -> bool {
    println!("== {title} ==");
    println!("({cycles} committed cycles, best of {reps} timed reps after warm-up)\n");
    println!(
        "{:>14} {:>12} {:>12} {:>18} {:>12} {:>10} {:>9} {:>8}",
        "backend",
        "wall",
        "host kc/s",
        "trace hash",
        "chan words",
        "ovh words",
        "frm/wr",
        "ack pgb"
    );
    for r in rows {
        println!(
            "{:>14} {:>12} {:>12.1} {:>18} {:>12} {:>10} {:>9.2} {:>8.2}",
            r.backend,
            format!("{:.2?}", r.wall),
            r.host_kcps,
            format!("{:016x}", r.trace_hash),
            r.channel_words,
            r.recovery_words,
            r.frames_per_write,
            r.ack_piggyback_ratio
        );
    }
    let base = &rows[0];
    let all_identical = rows.iter().all(|r| {
        r.trace_hash == base.trace_hash
            && r.channel_words == base.channel_words
            && r.virtual_time_ps == base.virtual_time_ps
    });
    println!(
        "\nvirtual time: {} ps on every backend; traces and protocol channel words {} — \
         the {medium} costs the *host* (see wall column), never the model.",
        base.virtual_time_ps,
        if all_identical {
            "bit-identical"
        } else {
            "DIVERGED (conformance bug!)"
        }
    );
    all_identical
}

/// Writes the rows as `BENCH_<bench_name>.json` in the working directory
/// (the repo-root layout CI's bench-artifacts job validates and uploads).
pub fn write_loopback_json(bench_name: &str, cycles: u64, reps: u32, rows: &[LoopbackRow]) {
    let mut out = format!("{{\n  \"bench\": \"{bench_name}\",\n");
    out.push_str(&format!("  \"cycles\": {cycles},\n  \"reps\": {reps},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"wall_us\": {}, \"host_kcycles_per_s\": {:.3}, \
             \"trace_hash\": {}, \"virtual_time_ps\": {}, \"channel_words\": {}, \
             \"recovery_overhead_words\": {}, \"frames_per_write\": {:.4}, \
             \"ack_piggyback_ratio\": {:.4}}}{}\n",
            r.backend,
            r.wall.as_micros(),
            r.host_kcps,
            r.trace_hash,
            r.virtual_time_ps,
            r.channel_words,
            r.recovery_words,
            r.frames_per_write,
            r.ack_piggyback_ratio,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = format!("BENCH_{bench_name}.json");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}
