//! # predpkt-bench — evaluation harness
//!
//! Shared plumbing for the table/figure regeneration binaries (see
//! `src/bin/`) and the host-side micro-benchmarks (see `benches/`, built on
//! the self-contained [`micro`] harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use predpkt_core::{CoEmuConfig, ModePolicy, PerfReport};
use predpkt_workloads::SyntheticSoc;

pub mod args;
pub mod loopback;
pub mod micro;

/// Runs the synthetic harness at accuracy `p` under `config` for `cycles`
/// committed cycles and returns the report.
pub fn run_synthetic(p: f64, config: CoEmuConfig, cycles: u64) -> PerfReport {
    let soc = match config.policy {
        ModePolicy::ForcedSla => SyntheticSoc::sla(p, 0x5eed),
        _ => SyntheticSoc::als(p, 0x5eed),
    };
    let mut session = soc
        .session()
        .config(config)
        .build()
        .expect("synthetic session always builds");
    session
        .run_until_committed(cycles)
        .expect("synthetic run cannot deadlock");
    session.report()
}

/// Formats a cycles/second figure the way the paper does (e.g. `652k`).
pub fn fmt_kcps(cps: f64) -> String {
    if cps >= 1e6 {
        format!("{:.2}M", cps / 1e6)
    } else {
        format!("{:.1}k", cps / 1e3)
    }
}

/// Formats seconds-per-cycle in the paper's scientific notation (e.g. `1.0e-6`).
pub fn fmt_sci(secs: f64) -> String {
    if secs == 0.0 {
        "0".to_string()
    } else {
        format!("{secs:.1e}")
    }
}

/// Prints a fixed-width table row.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<22}");
    for c in cells {
        print!("{c:>11}");
    }
    println!();
}

/// Renders a crude ASCII chart of (x, y) series on a log-y scale — enough to
/// eyeball the Figure 4 shape in a terminal.
pub fn ascii_chart(title: &str, xs: &[f64], series: &[(&str, Vec<f64>)], height: usize) {
    println!("\n{title}");
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let (lo, hi) = all.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    });
    let (llo, lhi) = (lo.ln(), hi.ln());
    let marks = ['A', 'B', 'C', 'D', 'E', 'F'];
    for row in (0..height).rev() {
        let y = (llo + (lhi - llo) * (row as f64 + 0.5) / height as f64).exp();
        let mut line = vec![' '; xs.len() * 5];
        for (si, (_, ys)) in series.iter().enumerate() {
            for (xi, &v) in ys.iter().enumerate() {
                let level = ((v.ln() - llo) / (lhi - llo) * height as f64) as usize;
                if level == row {
                    line[xi * 5 + 2] = marks[si % marks.len()];
                }
            }
        }
        println!("{:>9} |{}", fmt_kcps(y), line.iter().collect::<String>());
    }
    print!("{:>9}  ", "p =");
    for &x in xs {
        print!("{x:>5.2}");
    }
    println!();
    for (si, (name, _)) in series.iter().enumerate() {
        println!("          {} = {}", marks[si % marks.len()], name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_kcps(38_900.0), "38.9k");
        assert_eq!(fmt_kcps(1_500_000.0), "1.50M");
        assert_eq!(fmt_sci(0.0), "0");
        assert_eq!(fmt_sci(1.0e-6), "1.0e-6");
    }

    #[test]
    fn synthetic_runner_works() {
        let report = run_synthetic(1.0, CoEmuConfig::paper_defaults(), 2_000);
        assert!(report.performance_cps() > 500_000.0);
    }
}
