//! E4 — the paper's in-text SLA results: maximum gains (3.25 at sim=100k,
//! 15.34 at sim=1000k) and break-even accuracies (98% and 70%).
//!
//! Run: `cargo run -p predpkt-bench --release --bin sla_summary [cycles]`
//! Pass `--json` to also write `BENCH_sla_summary.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{fmt_kcps, run_synthetic};
use predpkt_channel::Side;
use predpkt_core::{CoEmuConfig, ModePolicy};
use predpkt_perfmodel::{break_even_accuracy, AnalyticRow, ModelParams};
use predpkt_sim::Frequency;

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(40_000, 4_000);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();

    println!("== SLA summary (Simulator Leading Accelerator) ==\n");
    for (sim_k, paper_gain, paper_be, paper_conv) in
        [(100u64, 3.25, 0.98, "28.8k"), (1_000, 15.34, 0.70, "38.9k")]
    {
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::ForcedSla)
            .sim_speed(Frequency::from_kcycles_per_sec(sim_k));
        let params = ModelParams::from_config(&config, Side::Simulator);
        let conv = params.conventional_perf();

        // Maximum gain at p = 1.0.
        let des = run_synthetic(1.0, config, cycles);
        let des_gain = des.performance_cps() / conv;
        let model_gain = AnalyticRow::at(&params, 1.0).ratio;

        // Break-even accuracy (analytic bisection + DES spot check).
        let be = break_even_accuracy(&params, 0.3, 0.9999);
        let be_str = be.map_or("none".into(), |b| format!("{b:.3}"));
        let spot = be.map(|b| run_synthetic(b, config, cycles).performance_cps() / conv);

        json_rows.push(vec![
            ("kind", JsonValue::from("summary")),
            ("sim_kcps", JsonValue::from(sim_k)),
            ("conventional_cps", JsonValue::from(conv)),
            ("max_gain_measured", JsonValue::from(des_gain)),
            ("max_gain_model", JsonValue::from(model_gain)),
            ("break_even_p", JsonValue::from(be.unwrap_or(f64::NAN))),
        ]);
        println!(
            "simulator = {sim_k} kcycles/s (conventional {} , paper {paper_conv})",
            fmt_kcps(conv)
        );
        println!(
            "  max gain:   measured {des_gain:.2}x, model {model_gain:.2}x, paper {paper_gain}x"
        );
        println!(
            "  break-even: model p = {be_str} (paper {paper_be}); DES ratio at that p = {}",
            spot.map_or("-".into(), |r| format!("{r:.2}x"))
        );
        println!();
    }

    println!(
        "SLA vs ALS sensitivity (the paper: \"SLA suffers more from low prediction accuracies\"):"
    );
    for &p in &[1.0, 0.9, 0.7, 0.5] {
        let sla = run_synthetic(
            p,
            CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedSla),
            cycles,
        );
        let als = run_synthetic(
            p,
            CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedAls),
            cycles,
        );
        json_rows.push(vec![
            ("kind", JsonValue::from("sensitivity")),
            ("accuracy", JsonValue::from(p)),
            ("sla_cps", JsonValue::from(sla.performance_cps())),
            ("als_cps", JsonValue::from(als.performance_cps())),
        ]);
        println!(
            "  p={p:<5} SLA {:>8}   ALS {:>8}   SLA/ALS {:.2}",
            fmt_kcps(sla.performance_cps()),
            fmt_kcps(als.performance_cps()),
            sla.performance_cps() / als.performance_cps()
        );
    }

    if args.json {
        write_bench_json(
            "sla_summary",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
