//! E9 — TCP loopback overhead: what a real socket costs the host, and what
//! it costs the model (nothing).
//!
//! Runs the Fig. 2-shaped SoC over the in-process queue, the mpsc threaded
//! backend, the TCP loopback socket pair, and the reliable layer over TCP,
//! and reports host wall-clock throughput side by side with the *virtual*
//! figures — which must be bit-identical across all four (the cross-transport
//! conformance suite proves it; this bench records the real-time price).
//!
//! Run: `cargo run -p predpkt-bench --release --bin tcp_loopback`
//! Pass `--json` to also write `BENCH_tcp_loopback.json` for tracking.

use predpkt_ahb::engine::BusOp;
use predpkt_ahb::masters::{DmaDescriptor, DmaMaster, TrafficGenMaster};
use predpkt_ahb::slaves::{MemorySlave, PeripheralSlave};
use predpkt_core::{
    CoEmuConfig, EmuSession, ModePolicy, ReliableInner, Side, SocBlueprint, TcpOptions,
    ThreadedOpts, TransportSelect,
};
use std::time::{Duration, Instant};

const CYCLES: u64 = 2_000;
const REPS: u32 = 3;

fn soc() -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Accelerator, || {
            Box::new(DmaMaster::new(vec![
                DmaDescriptor::new(0x0000_0100, 0x0000_1100, 24),
                DmaDescriptor::new(0x0000_1200, 0x0000_0200, 12),
            ]))
        })
        .master(Side::Accelerator, || {
            Box::new(
                TrafficGenMaster::from_ops(vec![BusOp::write_single(0x0000_2004, 0xabcd)])
                    .looping()
                    .with_idle_gap(7),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x2000, || {
            Box::new(MemorySlave::new(0x2000, 0))
        })
        .slave(Side::Accelerator, 0x0000_2000, 0x1000, || {
            Box::new(PeripheralSlave::new(1))
        })
}

/// Fine-grained polling so blocked-domain wakeups don't dominate the figure.
fn opts() -> ThreadedOpts {
    ThreadedOpts {
        poll_interval: Duration::from_micros(200),
        deadlock_timeout: Duration::from_secs(10),
    }
}

struct Row {
    backend: &'static str,
    wall: Duration,
    host_kcps: f64,
    trace_hash: u64,
    virtual_time_ps: u64,
    channel_words: u64,
    recovery_words: u64,
}

fn run(backend_name: &'static str, backend: TransportSelect) -> Row {
    // Warm-up run (connection setup, allocator) then timed repetitions.
    let mut best = Duration::MAX;
    let mut last = None;
    for rep in 0..=REPS {
        let blueprint = soc();
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::Auto)
            .rollback_vars(None)
            .carry(true)
            .adaptive(true);
        let mut session = EmuSession::from_blueprint(&blueprint)
            .config(config)
            .transport(backend)
            .build()
            .expect("session builds");
        let t0 = Instant::now();
        session.run_until_committed(CYCLES).expect("run completes");
        let wall = t0.elapsed();
        if rep > 0 {
            best = best.min(wall);
        }
        let placement = blueprint.placement();
        let trace = session.merged_trace(|s, a| placement.merge_records(s, a));
        last = Some((trace.hash(), session));
    }
    let (trace_hash, session) = last.expect("at least one run");
    let committed = session.committed_cycles();
    let report = session.report();
    Row {
        backend: backend_name,
        wall: best,
        host_kcps: committed as f64 / best.as_secs_f64() / 1_000.0,
        trace_hash,
        virtual_time_ps: session.ledger().total().as_picos(),
        channel_words: session.channel_stats().total_words(),
        recovery_words: report.recovery().map_or(0, |r| r.overhead_words),
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let rows = vec![
        run("queue", TransportSelect::Queue),
        run("threaded", TransportSelect::Threaded(opts())),
        run(
            "tcp",
            TransportSelect::Tcp(TcpOptions::default().threaded(opts())),
        ),
        run(
            "reliable+tcp",
            TransportSelect::reliable(ReliableInner::Tcp(TcpOptions::default().threaded(opts()))),
        ),
    ];

    println!("== TCP loopback round-trip overhead vs in-process backends ==");
    println!("({CYCLES} committed cycles, best of {REPS} timed reps after warm-up)\n");
    println!(
        "{:>14} {:>12} {:>12} {:>18} {:>12} {:>10}",
        "backend", "wall", "host kc/s", "trace hash", "chan words", "ovh words"
    );
    for r in &rows {
        println!(
            "{:>14} {:>12} {:>12.1} {:>18} {:>12} {:>10}",
            r.backend,
            format!("{:.2?}", r.wall),
            r.host_kcps,
            format!("{:016x}", r.trace_hash),
            r.channel_words,
            r.recovery_words
        );
    }

    let base = &rows[0];
    let all_identical = rows.iter().all(|r| {
        r.trace_hash == base.trace_hash
            && r.channel_words == base.channel_words
            && r.virtual_time_ps == base.virtual_time_ps
    });
    println!(
        "\nvirtual time: {} ps on every backend; traces and protocol channel words {} — \
         the socket costs the *host* (see wall column), never the model.",
        base.virtual_time_ps,
        if all_identical {
            "bit-identical"
        } else {
            "DIVERGED (conformance bug!)"
        }
    );

    if json {
        let mut out = String::from("{\n  \"bench\": \"tcp_loopback\",\n");
        out.push_str(&format!("  \"cycles\": {CYCLES},\n  \"reps\": {REPS},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"wall_us\": {}, \"host_kcycles_per_s\": {:.3}, \
                 \"trace_hash\": {}, \"virtual_time_ps\": {}, \"channel_words\": {}, \
                 \"recovery_overhead_words\": {}}}{}\n",
                r.backend,
                r.wall.as_micros(),
                r.host_kcps,
                r.trace_hash,
                r.virtual_time_ps,
                r.channel_words,
                r.recovery_words,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_tcp_loopback.json", out).expect("write BENCH_tcp_loopback.json");
        println!("\nwrote BENCH_tcp_loopback.json");
    }
}
