//! E9 — TCP loopback overhead: what a real socket costs the host, and what
//! it costs the model (nothing).
//!
//! Runs the Fig. 2-shaped SoC over the in-process queue, the mpsc threaded
//! backend, the TCP loopback socket pair, and the reliable layer over TCP,
//! and reports host wall-clock throughput side by side with the *virtual*
//! figures — which must be bit-identical across all four (the cross-transport
//! conformance suite proves it; this bench records the real-time price).
//!
//! Run: `cargo run -p predpkt-bench --release --bin tcp_loopback`
//! Pass `--json` to also write `BENCH_tcp_loopback.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::loopback::{
    bench_opts, loopback_iterations, maybe_pin_cores, print_loopback_table, run_loopback,
    write_loopback_json,
};
use predpkt_core::{ReliableInner, TcpOptions, TransportSelect};

fn main() {
    maybe_pin_cores();
    let json = std::env::args().any(|a| a == "--json");
    let quick = std::env::args().any(|a| a == "--quick");
    let (cycles, reps) = loopback_iterations(quick);

    let rows = vec![
        run_loopback("queue", TransportSelect::Queue, cycles, reps),
        run_loopback(
            "threaded",
            TransportSelect::Threaded(bench_opts()),
            cycles,
            reps,
        ),
        run_loopback(
            "tcp",
            TransportSelect::Tcp(TcpOptions::default().threaded(bench_opts())),
            cycles,
            reps,
        ),
        run_loopback(
            "reliable+tcp",
            TransportSelect::reliable(ReliableInner::Tcp(
                TcpOptions::default().threaded(bench_opts()),
            )),
            cycles,
            reps,
        ),
    ];

    print_loopback_table(
        "TCP loopback round-trip overhead vs in-process backends",
        "socket",
        cycles,
        reps,
        &rows,
    );

    if json {
        write_loopback_json("tcp_loopback", cycles, reps, &rows);
    }
}
