//! E8 — retransmission overhead vs. fault rate: what an unreliable link
//! really costs under the paper's channel model.
//!
//! Runs the Fig. 2-shaped SoC over `Reliable{Lossy}` across a drop-rate sweep
//! (plus truncation and duplication rows) and reports the recovery work and
//! the billed channel traffic relative to the clean `QueueTransport` run —
//! the same accounting the transport-equivalence suite proves is protocol-
//! invisible.
//!
//! Run: `cargo run -p predpkt-bench --release --bin recovery_sweep`
//! Pass `--json` to also write `BENCH_recovery_sweep.json` for tracking.

use predpkt_ahb::engine::BusOp;
use predpkt_ahb::masters::{DmaDescriptor, DmaMaster, TrafficGenMaster};
use predpkt_ahb::slaves::{MemorySlave, PeripheralSlave};
use predpkt_channel::FaultSpec;
use predpkt_core::{
    CoEmuConfig, EmuSession, ModePolicy, PerfReport, ReliableInner, Side, SocBlueprint,
    TransportSelect,
};

const SEED: u64 = 0x5eed_2025;
const CYCLES: u64 = 400;
const DROP_RATES: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3];

fn soc() -> SocBlueprint {
    SocBlueprint::new()
        .master(Side::Accelerator, || {
            Box::new(DmaMaster::new(vec![
                DmaDescriptor::new(0x0000_0100, 0x0000_1100, 24),
                DmaDescriptor::new(0x0000_1200, 0x0000_0200, 12),
            ]))
        })
        .master(Side::Accelerator, || {
            Box::new(
                TrafficGenMaster::from_ops(vec![BusOp::write_single(0x0000_2004, 0xabcd)])
                    .looping()
                    .with_idle_gap(7),
            )
        })
        .slave(Side::Simulator, 0x0000_0000, 0x2000, || {
            Box::new(MemorySlave::new(0x2000, 0))
        })
        .slave(Side::Accelerator, 0x0000_2000, 0x1000, || {
            Box::new(PeripheralSlave::new(1))
        })
}

fn run(backend: TransportSelect) -> PerfReport {
    let blueprint = soc();
    let config = CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
        .carry(true)
        .adaptive(true);
    let mut session = EmuSession::from_blueprint(&blueprint)
        .config(config)
        .transport(backend)
        .build()
        .expect("session builds");
    session
        .run_until_committed(CYCLES)
        .expect("reliable session survives");
    session.report()
}

struct Row {
    label: String,
    retransmits: u64,
    acks: u64,
    dups: u64,
    crc_rejects: u64,
    reorder_drops: u64,
    overhead_words: u64,
    billed_words: u64,
    overhead_ratio: f64,
}

fn row(label: String, report: &PerfReport, clean_words: u64) -> Row {
    let r = report.recovery().copied().unwrap_or_default();
    Row {
        label,
        retransmits: r.retransmits,
        acks: r.acks_sent,
        dups: r.duplicates_suppressed,
        crc_rejects: r.crc_rejects,
        reorder_drops: r.out_of_order_drops,
        overhead_words: r.overhead_words,
        billed_words: report.billed_words(),
        overhead_ratio: report.billed_words() as f64 / clean_words as f64,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let clean = run(TransportSelect::Queue);
    let clean_words = clean.billed_words();
    println!("== Recovery overhead vs. fault rate ==");
    println!(
        "(Fig.2-shaped SoC, {CYCLES} cycles, seed {SEED:#x}; clean queue run bills {clean_words} words)\n"
    );
    println!(
        "{:>16} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "fault", "retrans", "acks", "dups", "crcrej", "reord", "ovh words", "billed", "x clean"
    );

    let mut rows = Vec::new();
    for rate in DROP_RATES {
        let report = run(TransportSelect::Reliable {
            inner: ReliableInner::Lossy(FaultSpec::drops(SEED, rate)),
            window: 8,
            retry_budget: 16,
        });
        rows.push(row(format!("drop {rate:.2}"), &report, clean_words));
    }
    for (label, spec) in [
        ("trunc 0.10", FaultSpec::truncations(SEED, 0.1)),
        ("dup 0.20", FaultSpec::duplicates(SEED, 0.2)),
        (
            "mixed",
            FaultSpec {
                seed: SEED,
                drop_rate: 0.1,
                truncate_rate: 0.08,
                duplicate_rate: 0.1,
            },
        ),
    ] {
        let report = run(TransportSelect::Reliable {
            inner: ReliableInner::Lossy(spec),
            window: 8,
            retry_budget: 16,
        });
        rows.push(row(label.to_string(), &report, clean_words));
    }

    for r in &rows {
        println!(
            "{:>16} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8.3}",
            r.label,
            r.retransmits,
            r.acks,
            r.dups,
            r.crc_rejects,
            r.reorder_drops,
            r.overhead_words,
            r.billed_words,
            r.overhead_ratio
        );
    }

    println!(
        "\nthe reliability layer keeps every run bit-identical to the clean one; the\n\
         columns above are the price — billed through the same iPROVE PCI cost model\n\
         the paper uses, so Table-2-style figures stay honest on unreliable links."
    );

    if json {
        let mut out = String::from("{\n  \"bench\": \"recovery_sweep\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n  \"cycles\": {CYCLES},\n"));
        out.push_str(&format!("  \"clean_billed_words\": {clean_words},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fault\": \"{}\", \"retransmits\": {}, \"acks\": {}, \
                 \"duplicates_suppressed\": {}, \"crc_rejects\": {}, \
                 \"out_of_order_drops\": {}, \"overhead_words\": {}, \
                 \"billed_words\": {}, \"overhead_ratio\": {:.6}}}{}\n",
                r.label,
                r.retransmits,
                r.acks,
                r.dups,
                r.crc_rejects,
                r.reorder_drops,
                r.overhead_words,
                r.billed_words,
                r.overhead_ratio,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_recovery_sweep.json", out).expect("write BENCH_recovery_sweep.json");
        println!("\nwrote BENCH_recovery_sweep.json");
    }
}
