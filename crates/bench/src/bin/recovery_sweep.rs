//! E8 — retransmission overhead vs. fault rate: what an unreliable link
//! really costs under the paper's channel model.
//!
//! Runs the Fig. 2-shaped SoC over `Reliable{Lossy}` across a drop-rate sweep
//! (plus truncation and duplication rows) and reports the recovery work and
//! the billed channel traffic relative to the clean `QueueTransport` run —
//! the same accounting the transport-equivalence suite proves is protocol-
//! invisible.
//!
//! Run: `cargo run -p predpkt-bench --release --bin recovery_sweep`
//! Pass `--json` to also write `BENCH_recovery_sweep.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::loopback::fig2_soc;
use predpkt_channel::FaultSpec;
use predpkt_core::{
    CoEmuConfig, EmuSession, ModePolicy, PerfReport, ReliableInner, TransportSelect,
};

const SEED: u64 = 0x5eed_2025;
const CYCLES: u64 = 400;
const QUICK_CYCLES: u64 = 150;
const DROP_RATES: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3];

fn run(backend: TransportSelect, cycles: u64) -> PerfReport {
    let blueprint = fig2_soc();
    let config = CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
        .carry(true)
        .adaptive(true);
    let mut session = EmuSession::from_blueprint(&blueprint)
        .config(config)
        .transport(backend)
        .build()
        .expect("session builds");
    session
        .run_until_committed(cycles)
        .expect("reliable session survives");
    session.report()
}

struct Row {
    label: String,
    retransmits: u64,
    acks: u64,
    dups: u64,
    crc_rejects: u64,
    reorder_drops: u64,
    overhead_words: u64,
    billed_words: u64,
    overhead_ratio: f64,
}

fn row(label: String, report: &PerfReport, clean_words: u64) -> Row {
    let r = report.recovery().copied().unwrap_or_default();
    Row {
        label,
        retransmits: r.retransmits,
        acks: r.acks_sent,
        dups: r.duplicates_suppressed,
        crc_rejects: r.crc_rejects,
        reorder_drops: r.out_of_order_drops,
        overhead_words: r.overhead_words,
        billed_words: report.billed_words(),
        overhead_ratio: report.billed_words() as f64 / clean_words as f64,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles = if quick { QUICK_CYCLES } else { CYCLES };

    let clean = run(TransportSelect::Queue, cycles);
    let clean_words = clean.billed_words();
    println!("== Recovery overhead vs. fault rate ==");
    println!(
        "(Fig.2-shaped SoC, {cycles} cycles, seed {SEED:#x}; clean queue run bills {clean_words} words)\n"
    );
    println!(
        "{:>16} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "fault", "retrans", "acks", "dups", "crcrej", "reord", "ovh words", "billed", "x clean"
    );

    let mut rows = Vec::new();
    for rate in DROP_RATES {
        let report = run(
            TransportSelect::Reliable {
                inner: ReliableInner::Lossy(FaultSpec::drops(SEED, rate)),
                window: 8,
                retry_budget: 16,
            },
            cycles,
        );
        rows.push(row(format!("drop {rate:.2}"), &report, clean_words));
    }
    for (label, spec) in [
        ("trunc 0.10", FaultSpec::truncations(SEED, 0.1)),
        ("dup 0.20", FaultSpec::duplicates(SEED, 0.2)),
        (
            "mixed",
            FaultSpec {
                drop_rate: 0.1,
                truncate_rate: 0.08,
                duplicate_rate: 0.1,
                ..FaultSpec::none(SEED)
            },
        ),
    ] {
        let report = run(
            TransportSelect::Reliable {
                inner: ReliableInner::Lossy(spec),
                window: 8,
                retry_budget: 16,
            },
            cycles,
        );
        rows.push(row(label.to_string(), &report, clean_words));
    }

    for r in &rows {
        println!(
            "{:>16} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8.3}",
            r.label,
            r.retransmits,
            r.acks,
            r.dups,
            r.crc_rejects,
            r.reorder_drops,
            r.overhead_words,
            r.billed_words,
            r.overhead_ratio
        );
    }

    println!(
        "\nthe reliability layer keeps every run bit-identical to the clean one; the\n\
         columns above are the price — billed through the same iPROVE PCI cost model\n\
         the paper uses, so Table-2-style figures stay honest on unreliable links."
    );

    if json {
        let mut out = String::from("{\n  \"bench\": \"recovery_sweep\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n  \"cycles\": {cycles},\n"));
        out.push_str(&format!("  \"clean_billed_words\": {clean_words},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fault\": \"{}\", \"retransmits\": {}, \"acks\": {}, \
                 \"duplicates_suppressed\": {}, \"crc_rejects\": {}, \
                 \"out_of_order_drops\": {}, \"overhead_words\": {}, \
                 \"billed_words\": {}, \"overhead_ratio\": {:.6}}}{}\n",
                r.label,
                r.retransmits,
                r.acks,
                r.dups,
                r.crc_rejects,
                r.reorder_drops,
                r.overhead_words,
                r.billed_words,
                r.overhead_ratio,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_recovery_sweep.json", out).expect("write BENCH_recovery_sweep.json");
        println!("\nwrote BENCH_recovery_sweep.json");
    }
}
