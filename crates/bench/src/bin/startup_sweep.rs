//! A3 — ablation: channel startup overhead.
//!
//! The whole scheme exists because startup overhead dominates short transfers;
//! this sweep shows the optimistic gain as a function of that overhead — with
//! a zero-overhead channel there is nothing to amortize and prediction only
//! adds risk.
//!
//! Run: `cargo run -p predpkt-bench --release --bin startup_sweep [cycles]`
//! Pass `--json` to also write `BENCH_startup_sweep.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{fmt_kcps, run_synthetic};
use predpkt_channel::ChannelCostModel;
use predpkt_core::{CoEmuConfig, ModePolicy};
use predpkt_sim::VirtualTime;

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(30_000, 3_000);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();

    println!("== Channel startup-overhead sweep (p = 0.99) ==\n");
    println!(
        "{:>12} {:>14} {:>14} {:>8}",
        "startup", "conventional", "optimistic", "gain"
    );
    for startup_ns in [0u64, 100, 1_000, 5_000, 12_200, 50_000, 100_000] {
        let channel =
            ChannelCostModel::iprove_pci().with_startup(VirtualTime::from_nanos(startup_ns));
        let conv = run_synthetic(
            0.99,
            CoEmuConfig::paper_defaults()
                .policy(ModePolicy::Conservative)
                .channel(channel),
            4_000,
        );
        let opt = run_synthetic(
            0.99,
            CoEmuConfig::paper_defaults()
                .policy(ModePolicy::ForcedAls)
                .channel(channel),
            cycles,
        );
        json_rows.push(vec![
            ("startup_ns", JsonValue::from(startup_ns)),
            ("conventional_cps", JsonValue::from(conv.performance_cps())),
            ("optimistic_cps", JsonValue::from(opt.performance_cps())),
            (
                "gain",
                JsonValue::from(opt.performance_cps() / conv.performance_cps()),
            ),
        ]);
        println!(
            "{:>10}ns {:>14} {:>14} {:>7.2}x",
            startup_ns,
            fmt_kcps(conv.performance_cps()),
            fmt_kcps(opt.performance_cps()),
            opt.performance_cps() / conv.performance_cps()
        );
    }
    println!(
        "\nthe gain is a direct function of the startup overhead being amortized;\n\
         at zero overhead the conventional method is already channel-limited only\n\
         by payload and the optimistic scheme's advantage collapses."
    );

    if args.json {
        write_bench_json(
            "startup_sweep",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
