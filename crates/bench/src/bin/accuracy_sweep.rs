//! Accuracy × traffic sweep: every predictor suite against every zoo
//! workload on several transport backends.
//!
//! The paper's premise is that prediction accuracy drives channel traffic;
//! this bin makes that relationship a standing artifact. For each cell of
//! the suite × workload × backend matrix it reports the observed prediction
//! hit rate, the billed channel traffic in words, and wall-clock time.
//! `traffic_words` is fully deterministic (it depends only on the protocol
//! event stream, which conformance pins across backends), which is what lets
//! CI trend-gate it without the noise floor of wall-clock metrics.
//!
//! The bin also self-checks the tentpole claim: on the hotspot-mesh workload
//! the sequence-learning suites (markov, adaptive) must move strictly fewer
//! words than `LastValueSuite`.
//!
//! Run: `cargo run -p predpkt-bench --release --bin accuracy_sweep [cycles]`
//! Pass `--json` to also write `BENCH_accuracy_sweep.json`, `--quick` for
//! the reduced CI configuration.

use std::time::Instant;

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::loopback::bench_opts;
use predpkt_core::{
    CoEmuConfig, EmuSession, ModePolicy, ShmOptions, SocBlueprint, TransportSelect,
};
use predpkt_predict::{AdaptiveSuite, LastValueSuite, MarkovSuite, PaperSuite};
use predpkt_workloads::{
    descriptor_ring_soc, figure2_soc, mesh_hotspot_soc, MeshConfig, RingConfig,
};

const SUITES: &[&str] = &["paper", "lastvalue", "markov", "adaptive"];

fn workloads(quick: bool) -> Vec<(&'static str, SocBlueprint)> {
    let mut w = vec![
        ("mesh-hotspot", mesh_hotspot_soc(MeshConfig::default())),
        ("desc-ring", descriptor_ring_soc(RingConfig::default())),
    ];
    if !quick {
        w.push(("figure2", figure2_soc(42)));
    }
    w
}

fn backends(quick: bool) -> Vec<(&'static str, TransportSelect)> {
    let mut b = vec![("queue", TransportSelect::Queue)];
    if !quick {
        b.push(("threaded", TransportSelect::Threaded(bench_opts())));
    }
    b.push((
        "shm",
        TransportSelect::Shm(ShmOptions::default().threaded(bench_opts())),
    ));
    b
}

fn config() -> CoEmuConfig {
    CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
}

/// One cell: build with the named suite, run, return (hit rate, words, wall).
fn run_cell(
    suite: &str,
    blueprint: &SocBlueprint,
    backend: TransportSelect,
    cycles: u64,
) -> (f64, u64, f64) {
    let builder = EmuSession::from_blueprint(blueprint)
        .config(config())
        .transport(backend);
    let builder = match suite {
        "paper" => builder.predictors(PaperSuite),
        "lastvalue" => builder.predictors(LastValueSuite),
        "markov" => builder.predictors(MarkovSuite),
        "adaptive" => builder.predictors(AdaptiveSuite::default()),
        other => unreachable!("unknown suite {other}"),
    };
    let mut session = builder.build().expect("session builds");
    let t0 = Instant::now();
    session.run_until_committed(cycles).expect("run completes");
    let wall = t0.elapsed();
    let report = session.report();
    (
        report.observed_accuracy().unwrap_or(f64::NAN),
        session.channel_stats().total_words(),
        wall.as_secs_f64() * 1e6,
    )
}

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(1600, 600);
    let workloads = workloads(args.quick);
    let backends = backends(args.quick);

    println!("== Accuracy × traffic sweep: suite × workload × backend ==");
    println!("({cycles} committed cycles per cell)\n");
    println!(
        "{:>10} {:>14} {:>9} {:>9} {:>12} {:>10}",
        "suite", "workload", "backend", "hit", "words", "wall"
    );

    let mut rows = Vec::new();
    // lastvalue/markov/adaptive traffic on the self-check cell.
    let mut mesh_queue_words: Vec<(String, u64)> = Vec::new();
    for (wname, blueprint) in &workloads {
        for (bname, backend) in &backends {
            for suite in SUITES {
                let (hit, words, wall_us) = run_cell(suite, blueprint, *backend, cycles);
                println!(
                    "{:>10} {:>14} {:>9} {:>9} {:>12} {:>9.0}µs",
                    suite,
                    wname,
                    bname,
                    if hit.is_finite() {
                        format!("{:.3}", hit)
                    } else {
                        "-".into()
                    },
                    words,
                    wall_us
                );
                if *wname == "mesh-hotspot" && *bname == "queue" {
                    mesh_queue_words.push((suite.to_string(), words));
                }
                rows.push(vec![
                    ("cell", JsonValue::from(format!("{suite}/{wname}/{bname}"))),
                    ("suite", JsonValue::from(*suite)),
                    ("workload", JsonValue::from(*wname)),
                    ("backend", JsonValue::from(*bname)),
                    ("hit_rate", JsonValue::from(hit)),
                    ("traffic_words", JsonValue::from(words)),
                    ("wall_us", JsonValue::from(wall_us)),
                ]);
            }
        }
    }

    // Self-check: on the hotspot mesh the sequence-learning suites must beat
    // last-value prediction outright in billed traffic.
    let words_of = |name: &str| {
        mesh_queue_words
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, w)| *w)
            .expect("mesh/queue cell ran")
    };
    let (lv, mk, ad) = (
        words_of("lastvalue"),
        words_of("markov"),
        words_of("adaptive"),
    );
    println!("\nself-check (mesh-hotspot/queue): lastvalue={lv} markov={mk} adaptive={ad}");
    assert!(
        mk < lv,
        "markov ({mk} words) must move strictly less traffic than lastvalue ({lv})"
    );
    assert!(
        ad < lv,
        "adaptive ({ad} words) must move strictly less traffic than lastvalue ({lv})"
    );
    println!("self-check ok: sequence-learning suites beat last-value on the hotspot mesh");

    if args.json {
        write_bench_json(
            "accuracy_sweep",
            &[
                ("cycles", JsonValue::from(cycles)),
                ("suites", JsonValue::from(SUITES.len())),
                ("workloads", JsonValue::from(workloads.len())),
                ("backends", JsonValue::from(backends.len())),
            ],
            &rows,
        );
    }
}
