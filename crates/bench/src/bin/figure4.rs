//! E3 — regenerates the paper's **Figure 4**: ALS performance vs prediction
//! accuracy for four configurations (simulator 100k / 1000k cycles/s × LOB
//! depth 8 / 64), with the conventional-method reference lines.
//!
//! Run: `cargo run -p predpkt-bench --release --bin figure4 [cycles]`
//! Pass `--json` to also write `BENCH_figure4.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{ascii_chart, fmt_kcps, run_synthetic};
use predpkt_channel::Side;
use predpkt_core::{CoEmuConfig, ModePolicy};
use predpkt_perfmodel::{ModelParams, PAPER_ACCURACY_GRID};
use predpkt_sim::Frequency;

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(40_000, 4_000);

    println!("== Figure 4: simulation performance vs prediction accuracy (ALS) ==\n");

    let configs = [
        ("Sim=100k,  LOB=64", 100u64, 64usize),
        ("Sim=100k,  LOB=8", 100, 8),
        ("Sim=1000k, LOB=64", 1_000, 64),
        ("Sim=1000k, LOB=8", 1_000, 8),
    ];

    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
    println!(
        "{:<20} {}",
        "series \\ accuracy",
        PAPER_ACCURACY_GRID
            .iter()
            .map(|p| format!("{p:>8.3}"))
            .collect::<String>()
    );
    for (name, sim_k, lob) in configs {
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::ForcedAls)
            .sim_speed(Frequency::from_kcycles_per_sec(sim_k))
            .try_lob_depth(lob)
            .expect("depth is non-zero");
        let ys: Vec<f64> = PAPER_ACCURACY_GRID
            .iter()
            .map(|&p| run_synthetic(p, config, cycles).performance_cps())
            .collect();
        println!(
            "{name:<20} {}",
            ys.iter()
                .map(|y| format!("{:>8}", fmt_kcps(*y)))
                .collect::<String>()
        );
        series.push((name, ys));
    }
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();
    for (name, ys) in &series {
        for (p, y) in PAPER_ACCURACY_GRID.iter().zip(ys) {
            json_rows.push(vec![
                ("series", JsonValue::from(*name)),
                ("accuracy", JsonValue::from(*p)),
                ("performance_cps", JsonValue::from(*y)),
            ]);
        }
    }

    // Conventional reference lines (paper: 28.8k and 38.9k).
    for (label, sim_k) in [
        ("conventional @100k", 100u64),
        ("conventional @1000k", 1_000),
    ] {
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::Conservative)
            .sim_speed(Frequency::from_kcycles_per_sec(sim_k));
        let perf = run_synthetic(1.0, config, 3_000).performance_cps();
        println!(
            "{label:<20} {:>8} (paper: {})",
            fmt_kcps(perf),
            if sim_k == 100 { "28.8k" } else { "38.9k" }
        );
    }

    ascii_chart(
        "Figure 4 (measured, log scale)",
        &PAPER_ACCURACY_GRID,
        &series,
        16,
    );

    // Analytic overlay for the two headline series.
    println!("\n-- analytic model (fixed depth) --");
    for (name, sim_k, lob) in configs {
        let config = CoEmuConfig::paper_defaults()
            .sim_speed(Frequency::from_kcycles_per_sec(sim_k))
            .try_lob_depth(lob)
            .expect("depth is non-zero");
        let params = ModelParams::from_config(&config, Side::Accelerator);
        let ys = predpkt_perfmodel::figure4_series(&params);
        println!(
            "{name:<20} {}",
            ys.iter()
                .map(|pt| format!("{:>8}", fmt_kcps(pt.performance)))
                .collect::<String>()
        );
    }

    if args.json {
        write_bench_json(
            "figure4",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
