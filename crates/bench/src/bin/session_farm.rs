//! E10 — session-farm throughput: ten thousand short co-emulation sessions
//! multiplexed over a fixed worker pool.
//!
//! The server-shaped workload the transports were never benchmarked under:
//! many *short* sessions (regression farms, parameter sweeps, CI matrices)
//! instead of one long one. The farm runs them as cooperative slices over
//! `WORKERS` threads — workers ≪ sessions, asserted against
//! `/proc/self/status` — with idle sessions parked on the readiness poll-set
//! at zero thread cost. Before the timed run, a bit-identity probe checks
//! that a farm-scheduled session commits exactly what a direct
//! `run_until_committed` run commits, per transport.
//!
//! Run: `cargo run -p predpkt-bench --release --bin session_farm [sessions]`
//! Pass `--json` to also write `BENCH_session_farm.json` for tracking, and
//! `--quick` for the reduced-session CI configuration.

use std::time::{Duration, Instant};

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::loopback::bench_opts;
use predpkt_core::{
    AhbDomainModel, CoEmuConfig, EmuSession, ModePolicy, ShmOptions, TcpOptions, TransportSelect,
};
use predpkt_farm::{FarmConfig, SessionFarm};
use predpkt_workloads::figure2_soc;

/// Short sessions: enough cycles to cross several transition boundaries (so
/// real protocol traffic flows) while keeping per-session work small — the
/// regime where scheduling overhead would show.
const TARGET_CYCLES: u64 = 40;
const PROBE_CYCLES: u64 = 120;
const WORKERS: usize = 8;
const SEEDS: u64 = 16;

fn config() -> CoEmuConfig {
    CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
}

/// The mixed-transport rotation: in-process queue, shared-memory ring, TCP
/// loopback — one third each.
fn transport_for(i: usize) -> TransportSelect {
    match i % 3 {
        0 => TransportSelect::Queue,
        1 => TransportSelect::Shm(ShmOptions::default().threaded(bench_opts())),
        _ => TransportSelect::Tcp(TcpOptions::default().threaded(bench_opts())),
    }
}

fn backend_name(i: usize) -> &'static str {
    match i % 3 {
        0 => "queue",
        1 => "shm",
        _ => "tcp",
    }
}

/// An optional latency as a JSON value: microseconds, or null when no
/// session completed.
fn latency_us(latency: Option<Duration>) -> JsonValue {
    match latency {
        Some(d) => JsonValue::from(d.as_micros() as u64),
        None => JsonValue::from(f64::NAN),
    }
}

#[cfg(target_os = "linux")]
fn thread_count() -> Option<usize> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[cfg(not(target_os = "linux"))]
fn thread_count() -> Option<usize> {
    None
}

/// What the bit-identity probe compares between a farm-scheduled run and a
/// direct run of the same session.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    trace_hash: u64,
    committed: u64,
    channel_words: u64,
    virtual_time_ps: u64,
}

fn fingerprint(session: &EmuSession<AhbDomainModel>, seed: u64) -> Fingerprint {
    let blueprint = figure2_soc(seed);
    let placement = blueprint.placement();
    Fingerprint {
        trace_hash: session
            .merged_trace(|s, a| placement.merge_records(s, a))
            .hash(),
        committed: session.committed_cycles(),
        channel_words: session.channel_stats().total_words(),
        virtual_time_ps: session.ledger().total().as_picos(),
    }
}

/// Runs the bit-identity probe: one session per transport through a small
/// farm, compared field-for-field against the direct queue run.
fn probe_bit_identity() -> bool {
    let mut direct = EmuSession::from_blueprint(&figure2_soc(0))
        .config(config())
        .build()
        .expect("probe session builds");
    direct
        .run_until_committed(PROBE_CYCLES)
        .expect("probe run completes");
    let expect = fingerprint(&direct, 0);

    let farm = SessionFarm::new(FarmConfig::new().workers(2).keep_sessions(true))
        .expect("probe farm builds");
    let mut ids = Vec::new();
    for i in 0..3 {
        let transport = transport_for(i);
        ids.push((
            backend_name(i),
            farm.submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(0))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(PROBE_CYCLES))
            })
            .expect("probe admitted"),
        ));
    }
    let report = farm.join();
    let mut identical = true;
    for (name, id) in ids {
        let result = report.result(id).expect("probe reported");
        let session = result.session.as_ref().expect("probe session kept");
        let got = fingerprint(session, 0);
        let ok = result.outcome.is_completed() && got == expect;
        println!(
            "  bit-identity farm+{name:<6} {}",
            if ok {
                "ok"
            } else {
                "DIVERGED (conformance bug!)"
            }
        );
        identical &= ok;
    }
    identical
}

fn main() {
    let args = BenchArgs::parse();
    // The positional override counts *sessions* here, not cycles.
    let sessions = args.cycles(10_000, 1_000) as usize;

    println!("== Session farm: {sessions} short sessions over {WORKERS} workers ==");
    println!(
        "({TARGET_CYCLES} committed cycles per session, queue/shm/tcp rotation, \
         slice budget 64 rounds)\n"
    );
    let identical = probe_bit_identity();

    let threads_before = thread_count();
    let farm = SessionFarm::new(
        FarmConfig::new()
            .workers(WORKERS)
            .capacity(sessions)
            .slice_steps(64),
    )
    .expect("farm builds");
    let t0 = Instant::now();
    for i in 0..sessions {
        let seed = i as u64 % SEEDS;
        let transport = transport_for(i);
        farm.submit(move || {
            Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                .config(config())
                .transport(transport)
                .build()?
                .into_sliced(TARGET_CYCLES))
        })
        .expect("capacity covers the full batch");
    }
    // Sample the process thread count while the pool is hot: the farm must
    // never scale threads with session count.
    let mut peak_threads = threads_before.unwrap_or(0);
    while farm.outstanding() > 0 {
        if let Some(t) = thread_count() {
            peak_threads = peak_threads.max(t);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = farm.join();
    let wall = t0.elapsed();

    assert_eq!(
        report.stats.completed as usize, sessions,
        "every session must complete: {}",
        report.stats
    );
    let threads_delta = threads_before.map(|before| peak_threads.saturating_sub(before));
    if let Some(delta) = threads_delta {
        assert!(
            delta <= WORKERS + 2,
            "thread count grew with session count: +{delta} threads for {sessions} sessions"
        );
    }

    let s = &report.stats;
    println!("\n{:>22} {}", "sessions", s.completed);
    println!("{:>22} {:.2?}", "wall", wall);
    println!("{:>22} {:.0}", "sessions/sec", s.sessions_per_sec);
    match (s.p50_latency, s.p99_latency) {
        (Some(p50), Some(p99)) => {
            println!("{:>22} {:.2?}", "p50 latency", p50);
            println!("{:>22} {:.2?}", "p99 latency", p99);
        }
        _ => println!("{:>22} (no sessions completed)", "latency"),
    }
    println!("{:>22} {:.1}%", "pool occupancy", s.pool_occupancy * 100.0);
    println!("{:>22} {}", "park events", s.parked_events);
    match threads_delta {
        Some(delta) => println!(
            "{:>22} +{delta} (pool of {WORKERS}; thread-per-session would need {})",
            "peak extra threads",
            2 * sessions
        ),
        None => println!(
            "{:>22} (not measurable on this platform)",
            "peak extra threads"
        ),
    }
    println!(
        "\n{} sessions never cost more than {WORKERS} worker threads; parked sessions\n\
         wait on the readiness poll-set, not on a thread.",
        s.completed
    );

    if args.json {
        write_bench_json(
            "session_farm",
            &[
                ("sessions", JsonValue::from(sessions)),
                ("cycles_per_session", JsonValue::from(TARGET_CYCLES)),
                ("trace_identical", JsonValue::from(u64::from(identical))),
            ],
            &[vec![
                ("backend", JsonValue::from("mixed")),
                ("wall_us", JsonValue::from(wall.as_micros() as u64)),
                ("sessions_per_sec", JsonValue::from(s.sessions_per_sec)),
                // Absent percentiles (a run where nothing completed) render
                // as JSON null via the non-finite-float rule — never NaN,
                // never a fake zero the trend gate would flag as a 100%
                // improvement.
                ("p50_us", latency_us(s.p50_latency)),
                ("p99_us", latency_us(s.p99_latency)),
                ("pool_occupancy", JsonValue::from(s.pool_occupancy)),
                ("parked_events", JsonValue::from(s.parked_events)),
                ("workers", JsonValue::from(WORKERS)),
                (
                    "peak_extra_threads",
                    JsonValue::from(threads_delta.map_or(f64::NAN, |d| d as f64)),
                ),
            ]],
        );
    }
    assert!(identical, "farm-scheduled runs diverged from direct runs");
}
