//! E1 — the paper's §1.2 channel characterization: 12.2 µs startup overhead vs
//! 49.95/75.73 ns per word payload, and why short per-cycle transfers waste
//! the channel ("the amount of data does not exceed five words at a time").
//!
//! Run: `cargo run -p predpkt-bench --release --bin channel_char`
//! Pass `--json` to also write `BENCH_channel_char.json` for tracking.
//! (`--quick` is accepted for CI uniformity; the characterization is
//! closed-form and already instant.)

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_channel::{ChannelCostModel, Direction, LayeredStartup};

fn main() {
    let args = BenchArgs::parse();
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();
    let pci = ChannelCostModel::iprove_pci();
    let layers = LayeredStartup::iprove_pci();

    println!("== Channel characterization (iPROVE PCI model) ==\n");
    println!("startup overhead: {} per access", pci.startup());
    println!(
        "  = API {} + driver {} + physical {}",
        layers.api, layers.driver, layers.physical
    );
    println!(
        "payload: {} /word sim->acc, {} /word acc->sim\n",
        pci.per_word(Direction::SimToAcc),
        pci.per_word(Direction::AccToSim)
    );

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "words", "cost fwd", "cost rev", "eff fwd", "MB/s fwd"
    );
    for words in [1u64, 2, 5, 8, 16, 32, 64, 128, 256, 1024, 4096] {
        let fwd = pci.access_cost(Direction::SimToAcc, words);
        let rev = pci.access_cost(Direction::AccToSim, words);
        let eff = pci.efficiency(Direction::SimToAcc, words);
        let mbs = pci.throughput_words_per_sec(Direction::SimToAcc, words) * 4.0 / 1e6;
        json_rows.push(vec![
            ("words", JsonValue::from(words)),
            ("cost_fwd_ps", JsonValue::from(fwd.as_picos())),
            ("cost_rev_ps", JsonValue::from(rev.as_picos())),
            ("efficiency_fwd", JsonValue::from(eff)),
            ("mbytes_per_sec_fwd", JsonValue::from(mbs)),
        ]);
        println!(
            "{words:>8} {fwd:>14} {rev:>14} {:>11.1}% {mbs:>12.1}",
            eff * 100.0
        );
    }

    println!(
        "\nthe paper's point: a conventional co-emulation cycle moves ~5 words per\n\
         access, so >97% of every access is startup overhead; a 64-cycle LOB burst\n\
         amortizes the same overhead across an entire transition."
    );

    // The conventional-cycle arithmetic that yields the paper's baselines.
    let per_cycle =
        pci.access_cost(Direction::SimToAcc, 3) + pci.access_cost(Direction::AccToSim, 2);
    println!(
        "\nconventional cycle channel time (3+2 wire words): {per_cycle} -> with \
         Tsim=1us, Tacc=0.1us: {:.1} kcycles/s (paper: 38.9k)",
        1e-3 / (per_cycle.as_secs_f64() + 1.1e-6)
    );

    if args.json {
        write_bench_json(
            "channel_char",
            &[("startup_ps", JsonValue::from(pci.startup().as_picos()))],
            &json_rows,
        );
    }
}
