//! E1 — the paper's §1.2 channel characterization: 12.2 µs startup overhead vs
//! 49.95/75.73 ns per word payload, and why short per-cycle transfers waste
//! the channel ("the amount of data does not exceed five words at a time").
//!
//! Run: `cargo run -p predpkt-bench --release --bin channel_char`

use predpkt_channel::{ChannelCostModel, Direction, LayeredStartup};

fn main() {
    let pci = ChannelCostModel::iprove_pci();
    let layers = LayeredStartup::iprove_pci();

    println!("== Channel characterization (iPROVE PCI model) ==\n");
    println!("startup overhead: {} per access", pci.startup());
    println!(
        "  = API {} + driver {} + physical {}",
        layers.api, layers.driver, layers.physical
    );
    println!(
        "payload: {} /word sim->acc, {} /word acc->sim\n",
        pci.per_word(Direction::SimToAcc),
        pci.per_word(Direction::AccToSim)
    );

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "words", "cost fwd", "cost rev", "eff fwd", "MB/s fwd"
    );
    for words in [1u64, 2, 5, 8, 16, 32, 64, 128, 256, 1024, 4096] {
        let fwd = pci.access_cost(Direction::SimToAcc, words);
        let rev = pci.access_cost(Direction::AccToSim, words);
        let eff = pci.efficiency(Direction::SimToAcc, words);
        let mbs = pci.throughput_words_per_sec(Direction::SimToAcc, words) * 4.0 / 1e6;
        println!(
            "{words:>8} {fwd:>14} {rev:>14} {:>11.1}% {mbs:>12.1}",
            eff * 100.0
        );
    }

    println!(
        "\nthe paper's point: a conventional co-emulation cycle moves ~5 words per\n\
         access, so >97% of every access is startup overhead; a 64-cycle LOB burst\n\
         amortizes the same overhead across an entire transition."
    );

    // The conventional-cycle arithmetic that yields the paper's baselines.
    let per_cycle =
        pci.access_cost(Direction::SimToAcc, 3) + pci.access_cost(Direction::AccToSim, 2);
    println!(
        "\nconventional cycle channel time (3+2 wire words): {per_cycle} -> with \
         Tsim=1us, Tacc=0.1us: {:.1} kcycles/s (paper: 38.9k)",
        1e-3 / (per_cycle.as_secs_f64() + 1.1e-6)
    );
}
