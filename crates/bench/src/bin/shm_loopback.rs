//! E10 — shared-memory ring overhead: the cheapest physical channel the
//! model runs over, measured against every other backend.
//!
//! Runs the Fig. 2-shaped SoC over the in-process queue, the mpsc threaded
//! backend, the TCP loopback socket pair, the shared-memory ring (both the
//! heap-shared and the `/dev/shm` file-backed form), and the reliable layer
//! over the ring, and reports host wall-clock throughput side by side with
//! the *virtual* figures — which must be bit-identical across all of them
//! (the cross-transport conformance suite proves it; this bench records the
//! real-time price, and where the ring sits between mpsc and a socket).
//!
//! Run: `cargo run -p predpkt-bench --release --bin shm_loopback`
//! Pass `--json` to also write `BENCH_shm_loopback.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::loopback::{
    bench_opts, loopback_iterations, maybe_pin_cores, print_loopback_table, run_loopback,
    write_loopback_json,
};
use predpkt_core::{ReliableInner, ShmOptions, TcpOptions, TransportSelect};

fn main() {
    maybe_pin_cores();
    let json = std::env::args().any(|a| a == "--json");
    let quick = std::env::args().any(|a| a == "--quick");
    let (cycles, reps) = loopback_iterations(quick);

    let rows = vec![
        run_loopback("queue", TransportSelect::Queue, cycles, reps),
        run_loopback(
            "threaded",
            TransportSelect::Threaded(bench_opts()),
            cycles,
            reps,
        ),
        run_loopback(
            "tcp",
            TransportSelect::Tcp(TcpOptions::default().threaded(bench_opts())),
            cycles,
            reps,
        ),
        run_loopback(
            "shm",
            TransportSelect::Shm(ShmOptions::default().threaded(bench_opts())),
            cycles,
            reps,
        ),
        run_loopback(
            "shm+file",
            TransportSelect::Shm(ShmOptions::default().threaded(bench_opts()).file_backed()),
            cycles,
            reps,
        ),
        run_loopback(
            "reliable+shm",
            TransportSelect::reliable(ReliableInner::Shm(
                ShmOptions::default().threaded(bench_opts()),
            )),
            cycles,
            reps,
        ),
    ];

    print_loopback_table(
        "Shared-memory ring overhead vs the other backends",
        "ring",
        cycles,
        reps,
        &rows,
    );

    if json {
        write_loopback_json("shm_loopback", cycles, reps, &rows);
    }
}
