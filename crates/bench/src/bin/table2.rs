//! E2 — regenerates the paper's **Table 2** (Performance of ALS).
//!
//! Prints, for each accuracy column: the paper's published row, the closed-form
//! model, and the discrete-event measurement of the actual protocol engine —
//! for the paper-faithful fixed-depth mechanism and for the adaptive-depth
//! mechanism (DESIGN.md §4.5 discusses the differences).
//!
//! Run: `cargo run -p predpkt-bench --release --bin table2 [cycles]`
//! Pass `--json` to also write `BENCH_table2.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{fmt_kcps, fmt_sci, print_row, run_synthetic};
use predpkt_channel::Side;
use predpkt_core::{CoEmuConfig, ModePolicy};
use predpkt_perfmodel::{AnalyticRow, ModelParams};
use predpkt_sim::CostCategory;

const ACCURACIES: [f64; 8] = [1.0, 0.99, 0.96, 0.9, 0.8, 0.6, 0.3, 0.1];

/// Paper Table 2 rows, transcribed.
const PAPER_T_ACC: [f64; 8] = [
    1.0e-7, 1.6e-7, 2.9e-7, 4.9e-7, 8.1e-7, 1.5e-6, 2.4e-6, 3.0e-6,
];
const PAPER_T_STORE: [f64; 8] = [
    4.69e-10, 7.6e-10, 1.6e-9, 3.3e-9, 6.2e-9, 1.2e-8, 2.1e-8, 2.7e-8,
];
const PAPER_T_REST: [f64; 8] = [0.0, 2.9e-10, 1.2e-9, 2.9e-9, 5.7e-9, 1.2e-8, 2.0e-8, 2.6e-8];
const PAPER_T_CH: [f64; 8] = [
    4.3e-7, 6.8e-7, 1.5e-6, 2.9e-6, 5.4e-6, 1.1e-5, 1.8e-5, 2.3e-5,
];
const PAPER_PERF: [f64; 8] = [652e3, 543e3, 363e3, 226e3, 138e3, 76.7e3, 46.1e3, 36.7e3];
const PAPER_RATIO: [f64; 8] = [16.75, 13.97, 9.33, 5.80, 3.56, 1.91, 1.19, 0.94];

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(60_000, 6_000);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();

    println!("== Table 2: Performance of ALS ==");
    println!("(sim 1,000 kcycles/s, acc 10 Mcycles/s, LOB 64, 1,000 rollback vars, iPROVE PCI)\n");

    let header: Vec<String> = ACCURACIES.iter().map(|p| format!("{p:.3}")).collect();
    print_row("Prob.", &header);

    // --- Paper rows ----------------------------------------------------------
    println!("\n-- paper (published) --");
    print_row("Tsim.", ACCURACIES.map(|_| fmt_sci(1.0e-6)).as_ref());
    print_row("Tacc.", PAPER_T_ACC.map(fmt_sci).as_ref());
    print_row("Tstore", PAPER_T_STORE.map(fmt_sci).as_ref());
    print_row("Trest.", PAPER_T_REST.map(fmt_sci).as_ref());
    print_row("Tch.", PAPER_T_CH.map(fmt_sci).as_ref());
    print_row("Perform.", PAPER_PERF.map(fmt_kcps).as_ref());
    print_row("Ratio", PAPER_RATIO.map(|r| format!("{r:.2}")).as_ref());

    let fixed = CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedAls);
    let adaptive = fixed.adaptive(true);
    let params = ModelParams::from_config(&fixed, Side::Accelerator);
    let baseline = params.conventional_perf();

    // --- Closed-form model ----------------------------------------------------
    for (name, is_adaptive) in [
        ("analytic, fixed depth", false),
        ("analytic, adaptive", true),
    ] {
        println!("\n-- {name} --");
        let rows: Vec<AnalyticRow> = ACCURACIES
            .iter()
            .map(|&p| {
                if is_adaptive {
                    AnalyticRow::at_adaptive(&params, p)
                } else {
                    AnalyticRow::at(&params, p)
                }
            })
            .collect();
        print_row(
            "Tsim.",
            &rows.iter().map(|r| fmt_sci(r.t_sim)).collect::<Vec<_>>(),
        );
        print_row(
            "Tacc.",
            &rows.iter().map(|r| fmt_sci(r.t_acc)).collect::<Vec<_>>(),
        );
        print_row(
            "Tstore",
            &rows.iter().map(|r| fmt_sci(r.t_store)).collect::<Vec<_>>(),
        );
        print_row(
            "Trest.",
            &rows
                .iter()
                .map(|r| fmt_sci(r.t_restore))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Tch.",
            &rows
                .iter()
                .map(|r| fmt_sci(r.t_channel))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Perform.",
            &rows
                .iter()
                .map(|r| fmt_kcps(r.performance))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Ratio",
            &rows
                .iter()
                .map(|r| format!("{:.2}", r.ratio))
                .collect::<Vec<_>>(),
        );
    }

    // --- Discrete-event measurement -------------------------------------------
    for (name, config) in [
        ("measured (DES), fixed depth", fixed),
        ("measured (DES), adaptive", adaptive),
    ] {
        println!("\n-- {name}, {cycles} committed cycles per point --");
        let reports: Vec<_> = ACCURACIES
            .iter()
            .map(|&p| run_synthetic(p, config, cycles))
            .collect();
        let variant = if name.contains("adaptive") {
            "adaptive"
        } else {
            "fixed"
        };
        for (p, r) in ACCURACIES.iter().zip(&reports) {
            json_rows.push(vec![
                ("variant", JsonValue::from(variant)),
                ("accuracy", JsonValue::from(*p)),
                ("performance_cps", JsonValue::from(r.performance_cps())),
                ("ratio", JsonValue::from(r.ratio_vs(baseline))),
                (
                    "observed_accuracy",
                    JsonValue::from(r.observed_accuracy().unwrap_or(f64::NAN)),
                ),
            ]);
        }
        print_row(
            "Tsim.",
            &reports
                .iter()
                .map(|r| fmt_sci(r.per_cycle(CostCategory::Simulator)))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Tacc.",
            &reports
                .iter()
                .map(|r| fmt_sci(r.per_cycle(CostCategory::Accelerator)))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Tstore",
            &reports
                .iter()
                .map(|r| fmt_sci(r.per_cycle(CostCategory::StateStore)))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Trest.",
            &reports
                .iter()
                .map(|r| fmt_sci(r.per_cycle(CostCategory::StateRestore)))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Tch.",
            &reports
                .iter()
                .map(|r| fmt_sci(r.per_cycle(CostCategory::Channel)))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Perform.",
            &reports
                .iter()
                .map(|r| fmt_kcps(r.performance_cps()))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Ratio",
            &reports
                .iter()
                .map(|r| format!("{:.2}", r.ratio_vs(baseline)))
                .collect::<Vec<_>>(),
        );
        print_row(
            "observed p",
            &reports
                .iter()
                .map(|r| {
                    r.observed_accuracy()
                        .map_or("-".to_string(), |a| format!("{a:.3}"))
                })
                .collect::<Vec<_>>(),
        );
    }

    println!(
        "\nconventional baseline: {} (paper: 38.9k)  |  E5 abstract claim: \
         gain at p=1.0 = {:.0}% (paper: ~1500%)",
        fmt_kcps(baseline),
        (AnalyticRow::at(&params, 1.0).ratio - 1.0) * 100.0
    );

    if args.json {
        write_bench_json(
            "table2",
            &[
                ("cycles", JsonValue::from(cycles)),
                ("conventional_cps", JsonValue::from(baseline)),
            ],
            &json_rows,
        );
    }
}
