//! E11 — fabric scaling: one co-emulation spread over N domains on a routed
//! full-mesh link fabric.
//!
//! Sweeps the domain count over threaded mesh links (one OS thread per
//! domain, N·(N−1)/2 links) and reports wall time, per-domain committed
//! cycles, and aggregate channel traffic — the cost curve of going from the
//! paper's two domains to a wider fabric. Before the timed sweep, a
//! bit-identity probe checks that a threaded 3-domain fabric commits exactly
//! what the co-operative queue-fabric baseline commits, per domain and per
//! edge.
//!
//! Run: `cargo run -p predpkt-bench --release --bin fabric_sweep [cycles]`
//! Pass `--json` to also write `BENCH_fabric_sweep.json` for tracking, and
//! `--quick` for the reduced-cycle CI configuration.

use std::time::Instant;

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::loopback::bench_opts;
use predpkt_core::{CoEmuConfig, FabricLinkSelect, FabricSession, ModePolicy, SocBlueprint};
use predpkt_workloads::figure2_soc;

/// Domain counts swept (the full mesh grows quadratically in links: 1, 6,
/// 28, 120).
const FULL_SWEEP: &[usize] = &[2, 4, 8, 16];
const QUICK_SWEEP: &[usize] = &[2, 4, 8];
const PROBE_CYCLES: u64 = 120;
const PROBE_DOMAINS: usize = 3;

fn config() -> CoEmuConfig {
    CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
}

/// One fabric run: build, run to `cycles`, return (wall, session).
fn run_fabric(
    blueprint: &SocBlueprint,
    domains: usize,
    link: FabricLinkSelect,
    cycles: u64,
) -> (std::time::Duration, FabricSession) {
    let mut session = FabricSession::from_blueprint(blueprint, domains)
        .config(config())
        .link(link)
        .build()
        .expect("fabric session builds");
    let t0 = Instant::now();
    session
        .run_until_committed(cycles)
        .expect("fabric run completes");
    (t0.elapsed(), session)
}

/// Per-domain and per-edge results of a probe run, for bit-identity
/// comparison across runners.
fn probe_fingerprint(session: &FabricSession, blueprint: &SocBlueprint) -> Vec<u64> {
    let placement = blueprint.placement();
    let mut out = Vec::new();
    for d in 0..session.domains() {
        out.push(session.domain_committed(d));
        out.push(session.domain_ledger(d).total().as_picos());
        out.push(session.domain_channel_stats(d).total_words());
    }
    for e in 0..session.edges().len() {
        out.push(
            session
                .edge_trace(e, |s, a| placement.merge_records(s, a))
                .hash(),
        );
    }
    out
}

/// The bit-identity probe: a threaded 3-domain fabric against the
/// co-operative queue-fabric baseline.
fn probe_bit_identity() -> bool {
    let blueprint = figure2_soc(0);
    let (_, baseline) = run_fabric(
        &blueprint,
        PROBE_DOMAINS,
        FabricLinkSelect::Queue(bench_opts()),
        PROBE_CYCLES,
    );
    let (_, threaded) = run_fabric(
        &blueprint,
        PROBE_DOMAINS,
        FabricLinkSelect::Threaded(bench_opts()),
        PROBE_CYCLES,
    );
    let identical =
        probe_fingerprint(&baseline, &blueprint) == probe_fingerprint(&threaded, &blueprint);
    println!(
        "  bit-identity fabric n={PROBE_DOMAINS} {}",
        if identical {
            "ok"
        } else {
            "DIVERGED (conformance bug!)"
        }
    );
    identical
}

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(400, 120);
    let sweep = if args.quick { QUICK_SWEEP } else { FULL_SWEEP };

    println!("== Fabric sweep: N-domain co-emulation over threaded mesh links ==");
    println!("({cycles} committed cycles per run, full mesh, one thread per domain)\n");
    let identical = probe_bit_identity();

    println!(
        "\n{:>4} {:>6} {:>12} {:>14} {:>14}",
        "n", "links", "wall", "words/domain", "wall/link"
    );
    let mut rows = Vec::new();
    for &n in sweep {
        let blueprint = figure2_soc(0);
        // One untimed warmup run per shape absorbs first-touch costs
        // (thread spawn paths, allocator growth) before the timed run.
        let _ = run_fabric(
            &blueprint,
            n,
            FabricLinkSelect::Threaded(bench_opts()),
            cycles.min(60),
        );
        let (wall, session) = run_fabric(
            &blueprint,
            n,
            FabricLinkSelect::Threaded(bench_opts()),
            cycles,
        );
        let links = n * (n - 1) / 2;
        let total_words = session.channel_stats().total_words();
        let words_per_domain = total_words / n as u64;
        println!(
            "{:>4} {:>6} {:>12.2?} {:>14} {:>14.2?}",
            n,
            links,
            wall,
            words_per_domain,
            wall / links as u32,
        );
        rows.push(vec![
            ("backend", JsonValue::from(format!("n{n}"))),
            ("domains", JsonValue::from(n)),
            ("links", JsonValue::from(links)),
            ("wall_us", JsonValue::from(wall.as_micros() as u64)),
            ("channel_words", JsonValue::from(total_words)),
            ("words_per_domain", JsonValue::from(words_per_domain)),
            (
                "committed_cycles",
                JsonValue::from(session.committed_cycles()),
            ),
        ]);
    }
    println!(
        "\nEvery domain halts at the same transition boundary regardless of N;\n\
         the sweep measures fabric overhead, not protocol divergence."
    );

    if args.json {
        write_bench_json(
            "fabric_sweep",
            &[
                ("cycles", JsonValue::from(cycles)),
                ("trace_identical", JsonValue::from(u64::from(identical))),
            ],
            &rows,
        );
    }
    assert!(identical, "threaded fabric diverged from queue baseline");
}
