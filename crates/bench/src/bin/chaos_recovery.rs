//! E12 — chaos recovery: sessions killed at seeded points, healed by the
//! farm's open-loop re-admission.
//!
//! Every session admitted here is doomed on purpose: its first incarnation
//! runs over a transport armed with a seeded *terminal* fault —
//! `disconnect_after` (the link dies and says so) or `hang_after` (frames
//! are swallowed while the link looks alive) — at a per-session cut point.
//! The farm's [`ReadmitPolicy`] then does the healing: the death (failure or
//! eviction) carries the latest boundary checkpoint out, the respawn closure
//! builds a clean transport, and the session resumes from its cut. The bin
//! asserts every healed session commits **bit-identically** to an
//! uninterrupted direct run, and reports what the chaos cost: heals, backoff
//! wall, and the deterministic recovered-session word count the trend gate
//! pins (bit-stable by construction — a change means the protocol stream
//! moved, not the runner).
//!
//! Run: `cargo run -p predpkt-bench --release --bin chaos_recovery [sessions]`
//! Pass `--json` to also write `BENCH_chaos_recovery.json` for tracking, and
//! `--quick` for the reduced-session CI configuration.

use std::time::{Duration, Instant};

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::loopback::bench_opts;
use predpkt_channel::FaultSpec;
use predpkt_core::{
    AhbDomainModel, CoEmuConfig, EmuSession, ModePolicy, ShmOptions, TcpOptions, TransportSelect,
};
use predpkt_farm::{FarmConfig, ReadmitPolicy, SessionFarm};
use predpkt_workloads::figure2_soc;

const SEED: u64 = 0xc4a0_5bad;
/// Committed-cycle target per session — fixed across modes so the recovered
/// word count the trend gate pins never depends on `--quick`.
const CYCLES: u64 = 120;
const WORKERS: usize = 4;
/// Kill cuts rotate over frame indices that land well inside the run at
/// `CYCLES` (the Fig.2 SoC sends a few dozen physical frames per side).
const CUTS: [u64; 4] = [3, 5, 7, 9];

/// One chaos cell: a transport medium × a terminal-fault flavour.
#[derive(Clone, Copy)]
struct Cell {
    label: &'static str,
    shm: bool,
    hang: bool,
}

const CELLS: [Cell; 4] = [
    Cell {
        label: "tcp+disconnect",
        shm: false,
        hang: false,
    },
    Cell {
        label: "shm+disconnect",
        shm: true,
        hang: false,
    },
    Cell {
        label: "tcp+hang",
        shm: false,
        hang: true,
    },
    Cell {
        label: "shm+hang",
        shm: true,
        hang: true,
    },
];

fn config() -> CoEmuConfig {
    CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
}

/// What the bit-identity check compares between a healed run and the
/// uninterrupted direct run of the same seed.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    trace_hash: u64,
    committed: u64,
    billed_words: u64,
    virtual_time_ps: u64,
}

fn fingerprint(session: &EmuSession<AhbDomainModel>, seed: u64) -> Fingerprint {
    let blueprint = figure2_soc(seed);
    let placement = blueprint.placement();
    Fingerprint {
        trace_hash: session
            .merged_trace(|s, a| placement.merge_records(s, a))
            .hash(),
        committed: session.committed_cycles(),
        billed_words: session.report().billed_words(),
        virtual_time_ps: session.ledger().total().as_picos(),
    }
}

fn direct_baseline(seed: u64) -> Fingerprint {
    let mut session = EmuSession::from_blueprint(&figure2_soc(seed))
        .config(config())
        .build()
        .expect("baseline builds");
    session
        .run_until_committed(CYCLES)
        .expect("baseline completes");
    fingerprint(&session, seed)
}

struct CellRow {
    label: &'static str,
    sessions: usize,
    readmitted: u64,
    gave_up: u64,
    backoff: Duration,
    wall: Duration,
    recovered_words: u64,
    identical: bool,
}

/// Runs one chaos cell: `sessions` doomed-first-incarnation sessions through
/// a healing farm, every heal verified against its direct baseline.
fn run_cell(cell: Cell, sessions: usize, baselines: &[Fingerprint]) -> CellRow {
    let farm = SessionFarm::new(
        FarmConfig::new()
            .workers(WORKERS)
            .slice_steps(64)
            .park_slice(Duration::from_micros(200))
            .deadlock_timeout(Duration::from_millis(300))
            .checkpoint_evictions(true)
            .keep_sessions(true)
            .readmit(
                ReadmitPolicy::new()
                    .max_retries(3)
                    .base_delay(Duration::from_millis(1)),
            ),
    )
    .expect("farm builds");

    let t0 = Instant::now();
    let mut ids = Vec::new();
    for i in 0..sessions {
        let seed = i as u64;
        let cut = CUTS[i % CUTS.len()];
        let fault_seed = SEED ^ seed;
        let mut incarnation = 0u32;
        let id = farm
            .submit_healable(move || {
                incarnation += 1;
                // Only the first incarnation is doomed; every respawn gets a
                // clean link — re-arming the same terminal plan would march
                // the resumed frame cursor straight back into the same cut.
                let doomed = incarnation == 1;
                let spec = if cell.hang {
                    FaultSpec::hang_after(fault_seed, cut)
                } else {
                    FaultSpec::disconnect_after(fault_seed, cut)
                };
                let transport = if cell.shm {
                    let opts = ShmOptions::default().threaded(bench_opts());
                    let opts = if doomed { opts.fault(spec) } else { opts };
                    TransportSelect::Shm(opts)
                } else {
                    let opts = TcpOptions::default().threaded(bench_opts());
                    let opts = if doomed { opts.fault(spec) } else { opts };
                    TransportSelect::Tcp(opts)
                };
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(CYCLES))
            })
            .expect("healable admitted");
        ids.push((seed, id));
    }
    let report = farm.join();
    let wall = t0.elapsed();

    let mut recovered_words = 0u64;
    let mut identical = true;
    for (seed, id) in ids {
        let result = report.result(id).expect("session reported");
        assert!(
            result.outcome.is_completed(),
            "{}: session seed {seed} did not heal: {}",
            cell.label,
            result.outcome
        );
        let session = result.session.as_ref().expect("keep_sessions retains it");
        let got = fingerprint(session, seed);
        identical &= got == baselines[seed as usize];
        recovered_words += got.billed_words;
    }
    assert!(
        report.stats.readmitted >= sessions as u64,
        "{}: every session was doomed, so every session must have healed \
         at least once: {}",
        cell.label,
        report.stats
    );

    CellRow {
        label: cell.label,
        sessions,
        readmitted: report.stats.readmitted,
        gave_up: report.stats.gave_up,
        backoff: report.stats.backoff,
        wall,
        recovered_words,
        identical,
    }
}

fn main() {
    let args = BenchArgs::parse();
    // The positional override counts *sessions per cell* here, not cycles.
    let sessions = args.cycles(6, 3) as usize;

    println!("== Chaos recovery: doomed sessions healed by farm re-admission ==");
    println!(
        "({sessions} sessions per cell, {CYCLES} committed cycles each, kill \
         cuts {CUTS:?}, seed {SEED:#x})\n"
    );

    let baselines: Vec<Fingerprint> = (0..sessions as u64).map(direct_baseline).collect();

    let mut rows = Vec::new();
    println!(
        "{:>16} {:>8} {:>10} {:>8} {:>11} {:>11} {:>12} {:>9}",
        "fault", "sessions", "readmitted", "gave_up", "backoff", "wall", "recov words", "identical"
    );
    for cell in CELLS {
        let row = run_cell(cell, sessions, &baselines);
        println!(
            "{:>16} {:>8} {:>10} {:>8} {:>11} {:>11} {:>12} {:>9}",
            row.label,
            row.sessions,
            row.readmitted,
            row.gave_up,
            format!("{:.1?}", row.backoff),
            format!("{:.1?}", row.wall),
            row.recovered_words,
            if row.identical { "ok" } else { "DIVERGED" }
        );
        rows.push(row);
    }

    println!(
        "\nevery session above was killed mid-run by a seeded terminal fault and\n\
         resumed from its latest boundary checkpoint on a fresh link; the healed\n\
         commits are bit-identical to uninterrupted runs, so the recovered word\n\
         count is deterministic — the trend gate pins it per cell."
    );

    let identical = rows.iter().all(|r| r.identical);
    if args.json {
        let json_rows: Vec<Vec<(&str, JsonValue)>> = rows
            .iter()
            .map(|r| {
                vec![
                    ("fault", JsonValue::from(r.label)),
                    ("sessions", JsonValue::from(r.sessions)),
                    ("readmitted", JsonValue::from(r.readmitted)),
                    ("gave_up", JsonValue::from(r.gave_up)),
                    ("backoff_us", JsonValue::from(r.backoff.as_micros() as u64)),
                    ("wall_us", JsonValue::from(r.wall.as_micros() as u64)),
                    ("recovered_words", JsonValue::from(r.recovered_words)),
                ]
            })
            .collect();
        write_bench_json(
            "chaos_recovery",
            &[
                ("sessions_per_cell", JsonValue::from(sessions)),
                ("cycles", JsonValue::from(CYCLES)),
                ("trace_identical", JsonValue::from(u64::from(identical))),
            ],
            &json_rows,
        );
    }
    assert!(identical, "a healed run diverged from its direct baseline");
}
