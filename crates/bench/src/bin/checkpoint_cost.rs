//! C1 — checkpoint cost: blob size and save/restore wall time vs session size.
//!
//! A whole-session checkpoint is the unit of farm eviction and live
//! migration, so its cost curve matters twice: the blob size is what crosses
//! the wire, and the save/restore wall is what the farm pays at every
//! auto-checkpoint cut. This bin sweeps the cut point across a run (the blob
//! grows with the committed trace), measures both engine layouts (the
//! cooperative queue engine's 4 sections, the endpoint-backed TCP engine's 6
//! per-side sections), and proves every blob is *useful*: a twin restored
//! from it and run to the target commits bit-identically to the donor run
//! straight through.
//!
//! Run: `cargo run -p predpkt-bench --release --bin checkpoint_cost [cycles]`
//! Pass `--json` to also write `BENCH_checkpoint_cost.json` for tracking
//! (the trend gate holds `blob_bytes` flat — size is deterministic, so any
//! growth is a real format or state change), and `--quick` for the
//! reduced-iteration CI configuration.

use std::time::{Duration, Instant};

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_core::{
    AhbDomainModel, CoEmuConfig, EmuSession, ModePolicy, SessionCheckpoint, TcpOptions,
    ThreadedOpts, TransportSelect,
};
use predpkt_workloads::figure2_soc;

const SEED: u64 = 11;

fn config() -> CoEmuConfig {
    CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
}

fn snappy() -> ThreadedOpts {
    ThreadedOpts {
        poll_interval: Duration::from_micros(500),
        deadlock_timeout: Duration::from_secs(10),
    }
}

fn backend_for(name: &str) -> TransportSelect {
    match name {
        "queue" => TransportSelect::Queue,
        "tcp" => TransportSelect::Tcp(TcpOptions::default().threaded(snappy())),
        other => panic!("unknown backend {other}"),
    }
}

fn build(name: &str) -> EmuSession<AhbDomainModel> {
    EmuSession::from_blueprint(&figure2_soc(SEED))
        .config(config())
        .transport(backend_for(name))
        .build()
        .unwrap_or_else(|e| panic!("{name}: session builds: {e}"))
}

/// Trace hash + committed cycles — the bit-identity fingerprint.
fn fingerprint(session: &EmuSession<AhbDomainModel>) -> (u64, u64) {
    let blueprint = figure2_soc(SEED);
    let placement = blueprint.placement();
    let trace = session.merged_trace(|s, a| placement.merge_records(s, a));
    (trace.hash(), session.committed_cycles())
}

fn best_us(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(2_000, 400);
    let reps = if args.quick { 10 } else { 50 };
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();
    let mut all_identical = true;

    // The cut sweep: three session sizes on the cooperative queue engine
    // (blob growth vs committed trace length) plus the endpoint-backed TCP
    // engine at the midpoint (the per-side section layout).
    let sweep = [
        ("queue", "1/4", cycles / 4),
        ("queue", "1/2", cycles / 2),
        ("queue", "3/4", cycles * 3 / 4),
        ("tcp", "1/2", cycles / 2),
    ];

    println!("== Checkpoint cost vs session size (target = {cycles} cycles) ==\n");
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "backend", "cut", "words", "bytes", "save_us", "restore_us", "identical"
    );
    for (name, frac, cut) in sweep {
        // Donor: halt at the cut boundary, checkpoint there, then run
        // straight through to the target.
        let mut donor = build(name);
        donor
            .run_until_committed(cut)
            .unwrap_or_else(|e| panic!("{name}: donor reaches the cut: {e}"));
        let ckpt = donor
            .checkpoint()
            .unwrap_or_else(|e| panic!("{name}: checkpoint at the cut: {e}"));
        let blob = ckpt.to_bytes();

        // Twin: decode the blob, restore, and measure the wall costs while
        // it stands at the cut — save = one consistent cut serialized to
        // its wire blob, restore = decode plus a full state rewind onto a
        // live session.
        let decoded = SessionCheckpoint::from_bytes(&blob)
            .unwrap_or_else(|e| panic!("{name}: blob decodes: {e}"));
        let mut twin = build(name);
        twin.restore(&decoded)
            .unwrap_or_else(|e| panic!("{name}: blob restores: {e}"));
        let save_us = best_us(reps, || {
            let c = twin.checkpoint().expect("save at a boundary");
            std::hint::black_box(c.to_bytes());
        });
        let restore_us = best_us(reps, || {
            let c = SessionCheckpoint::from_bytes(&blob).expect("decode");
            twin.restore(&c).expect("restore");
        });

        // The identity probe: both finish the run; same committed outcome.
        donor
            .run_until_committed(cycles)
            .unwrap_or_else(|e| panic!("{name}: donor completes: {e}"));
        twin.run_until_committed(cycles)
            .unwrap_or_else(|e| panic!("{name}: twin completes: {e}"));
        let identical = fingerprint(&twin) == fingerprint(&donor);
        all_identical &= identical;

        println!(
            "{name:>12} {:>8} {:>10} {:>10} {save_us:>12.1} {restore_us:>12.1} {identical:>10}",
            decoded.committed_cycles(),
            blob.len() / 4,
            blob.len(),
        );
        json_rows.push(vec![
            ("backend", JsonValue::from(format!("{name}@{frac}"))),
            ("cut_cycles", JsonValue::from(decoded.committed_cycles())),
            ("blob_words", JsonValue::from(blob.len() / 4)),
            ("blob_bytes", JsonValue::from(blob.len())),
            ("save_us", JsonValue::from(save_us)),
            ("restore_us", JsonValue::from(restore_us)),
            ("trace_identical", JsonValue::from(u64::from(identical))),
        ]);
    }
    assert!(
        all_identical,
        "a restored twin diverged from its donor — checkpoint/restore is broken"
    );
    println!(
        "\ntakeaway: the blob is session state plus committed history — it grows\n\
         with the trace length while save/restore stay a memcpy-class cost, so\n\
         frequent auto-checkpoint cuts are cheap in time and linear in space."
    );

    if args.json {
        write_bench_json(
            "checkpoint_cost",
            &[
                ("cycles", JsonValue::from(cycles)),
                ("reps", JsonValue::from(reps as u64)),
                ("trace_identical", JsonValue::from(u64::from(all_identical))),
            ],
            &json_rows,
        );
    }
}
