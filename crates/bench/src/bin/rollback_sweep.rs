//! A2 — ablation: rollback-variable count (snapshot/restore cost).
//!
//! The paper fixes 1,000 rollback variables; this sweep shows when state
//! store/restore starts to matter for each domain's snapshot technology
//! (hardware shadow registers at 0.03 ns/var vs simulator memcpy at 10 ns/var).
//!
//! Run: `cargo run -p predpkt-bench --release --bin rollback_sweep [cycles]`
//! Pass `--json` to also write `BENCH_rollback_sweep.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{fmt_kcps, run_synthetic};
use predpkt_core::{CoEmuConfig, ModePolicy};
use predpkt_sim::CostCategory;

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(30_000, 3_000);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();

    println!("== Rollback-variable sweep (p = 0.9) ==\n");
    for (name, policy) in [
        (
            "ALS (accelerator leads, 0.03 ns/var shadow copy)",
            ModePolicy::ForcedAls,
        ),
        (
            "SLA (simulator leads, 10 ns/var memcpy)",
            ModePolicy::ForcedSla,
        ),
    ] {
        println!("{name}:");
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "vars", "Tstore", "Trest.", "Perform."
        );
        for vars in [10usize, 100, 1_000, 10_000, 100_000] {
            let config = CoEmuConfig::paper_defaults()
                .policy(policy)
                .rollback_vars(Some(vars));
            let report = run_synthetic(0.9, config, cycles);
            json_rows.push(vec![
                (
                    "policy",
                    JsonValue::from(if name.starts_with("ALS") {
                        "als"
                    } else {
                        "sla"
                    }),
                ),
                ("vars", JsonValue::from(vars)),
                (
                    "t_store",
                    JsonValue::from(report.per_cycle(CostCategory::StateStore)),
                ),
                (
                    "t_restore",
                    JsonValue::from(report.per_cycle(CostCategory::StateRestore)),
                ),
                ("performance_cps", JsonValue::from(report.performance_cps())),
            ]);
            println!(
                "{vars:>10} {:>12.2e} {:>12.2e} {:>12}",
                report.per_cycle(CostCategory::StateStore),
                report.per_cycle(CostCategory::StateRestore),
                fmt_kcps(report.performance_cps())
            );
        }
        println!();
    }
    println!(
        "takeaway: hardware shadow-copy snapshots are free up to ~100k variables;\n\
         simulator-side memcpy snapshots erode the SLA gain past ~10k variables."
    );

    if args.json {
        write_bench_json(
            "rollback_sweep",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
