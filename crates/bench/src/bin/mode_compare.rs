//! A4 — ablation: operating modes on *real* SoC workloads with *real*
//! predictors (no synthetic accuracy knob): conservative vs forced SLA/ALS vs
//! dynamic (Auto) leader election, reporting emergent prediction accuracy and
//! channel-access reduction.
//!
//! Run: `cargo run -p predpkt-bench --release --bin mode_compare [cycles]`
//! Pass `--json` to also write `BENCH_mode_compare.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::fmt_kcps;
use predpkt_core::{CoEmuConfig, CoEmulator, ModePolicy, SocBlueprint};
use predpkt_workloads::{dma_offload_soc, figure2_soc, irq_driven_soc, stream_soc};

fn run(blueprint: &SocBlueprint, policy: ModePolicy, cycles: u64) -> predpkt_core::PerfReport {
    let config = CoEmuConfig::paper_defaults()
        .policy(policy)
        .rollback_vars(None) // bill actual snapshot sizes
        .carry(true)
        .adaptive(true);
    let mut coemu = CoEmulator::from_blueprint(blueprint, config).expect("valid blueprint");
    coemu.run_until_committed(cycles).expect("run completes");
    coemu.report()
}

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(3_000, 500);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();

    println!("== Operating-mode comparison on real workloads (real predictors) ==");
    println!("(adaptive depth + head-carry on; rollback cost = actual snapshot size)\n");
    let workloads: Vec<(&str, SocBlueprint)> = vec![
        ("figure2 (mixed)", figure2_soc(42)),
        ("dma_offload", dma_offload_soc(192)),
        ("irq_driven", irq_driven_soc(16)),
        ("fifo_stream", stream_soc(3)),
    ];
    for (name, blueprint) in workloads {
        println!("{name}:");
        println!(
            "  {:<14} {:>10} {:>8} {:>12} {:>12} {:>10}",
            "mode", "perf", "gain", "acc/cycle", "observed p", "rollbacks"
        );
        let base = run(&blueprint, ModePolicy::Conservative, cycles);
        for (mode_name, policy) in [
            ("conservative", ModePolicy::Conservative),
            ("forced SLA", ModePolicy::ForcedSla),
            ("forced ALS", ModePolicy::ForcedAls),
            ("auto", ModePolicy::Auto),
        ] {
            let report = run(&blueprint, policy, cycles);
            json_rows.push(vec![
                ("workload", JsonValue::from(name)),
                ("mode", JsonValue::from(mode_name)),
                ("performance_cps", JsonValue::from(report.performance_cps())),
                (
                    "gain",
                    JsonValue::from(report.performance_cps() / base.performance_cps()),
                ),
                (
                    "accesses_per_cycle",
                    JsonValue::from(report.accesses_per_cycle()),
                ),
                (
                    "observed_accuracy",
                    JsonValue::from(report.observed_accuracy().unwrap_or(f64::NAN)),
                ),
                (
                    "rollbacks",
                    JsonValue::from(report.sim_stats().rollbacks + report.acc_stats().rollbacks),
                ),
            ]);
            println!(
                "  {:<14} {:>10} {:>7.2}x {:>12.3} {:>12} {:>10}",
                mode_name,
                fmt_kcps(report.performance_cps()),
                report.performance_cps() / base.performance_cps(),
                report.accesses_per_cycle(),
                report
                    .observed_accuracy()
                    .map_or("-".into(), |a| format!("{a:.3}")),
                report.sim_stats().rollbacks + report.acc_stats().rollbacks,
            );
        }
        println!();
    }
    println!(
        "auto mode follows the data-flow source per transition (the paper's dynamic\n\
         SLA/ALS/conservative decision, problem #4 in §3)."
    );

    if args.json {
        write_bench_json(
            "mode_compare",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
