//! E6 — the conventional (cycle-by-cycle) baselines: 38.9 kcycles/s at
//! sim=1000k and 28.8 kcycles/s at sim=100k.
//!
//! Run: `cargo run -p predpkt-bench --release --bin conventional_baseline [cycles]`
//! Pass `--json` to also write `BENCH_conventional_baseline.json` for
//! tracking, and `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{fmt_kcps, run_synthetic};
use predpkt_channel::Side;
use predpkt_core::{CoEmuConfig, ModePolicy};
use predpkt_perfmodel::ModelParams;
use predpkt_sim::Frequency;

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(5_000, 1_000);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();
    println!("== Conventional co-emulation baselines ==\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>14}",
        "sim speed", "measured", "analytic", "paper", "accesses/cyc"
    );
    for (sim_k, paper) in [(100u64, "28.8k"), (1_000, "38.9k")] {
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::Conservative)
            .sim_speed(Frequency::from_kcycles_per_sec(sim_k));
        let report = run_synthetic(1.0, config, cycles);
        let params = ModelParams::from_config(&config, Side::Accelerator);
        json_rows.push(vec![
            ("sim_kcps", JsonValue::from(sim_k)),
            ("measured_cps", JsonValue::from(report.performance_cps())),
            ("analytic_cps", JsonValue::from(params.conventional_perf())),
            (
                "accesses_per_cycle",
                JsonValue::from(report.accesses_per_cycle()),
            ),
        ]);
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>14.2}",
            format!("{sim_k}k"),
            fmt_kcps(report.performance_cps()),
            fmt_kcps(params.conventional_perf()),
            paper,
            report.accesses_per_cycle()
        );
    }
    println!(
        "\nevery conventional cycle costs two channel accesses; at 12.2 us startup\n\
         each, the channel alone caps co-emulation at ~41 kcycles/s regardless of\n\
         simulator or accelerator speed."
    );

    if args.json {
        write_bench_json(
            "conventional_baseline",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
