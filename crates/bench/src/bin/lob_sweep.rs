//! A1 — ablation: LOB depth beyond the paper's {8, 64}.
//!
//! Deep LOBs amortize channel startup but waste more speculation per failure;
//! the optimum shifts with prediction accuracy (the paper's Figure 4 hints at
//! this with its two depths; here is the full surface).
//!
//! Run: `cargo run -p predpkt-bench --release --bin lob_sweep [cycles]`

use predpkt_bench::{fmt_kcps, run_synthetic};
use predpkt_core::{CoEmuConfig, ModePolicy};

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let depths = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let accuracies = [1.0, 0.99, 0.95, 0.9, 0.7, 0.5];

    println!("== LOB depth sweep (ALS, sim=1000k) — performance by depth x accuracy ==\n");
    print!("{:<8}", "depth");
    for p in accuracies {
        print!("{p:>10.2}");
    }
    println!();
    let mut best: Vec<(f64, usize, f64)> = accuracies.iter().map(|&p| (p, 0, 0.0)).collect();
    for d in depths {
        print!("{d:<8}");
        for (i, &p) in accuracies.iter().enumerate() {
            let config = CoEmuConfig::paper_defaults()
                .policy(ModePolicy::ForcedAls)
                .try_lob_depth(d)
                .expect("depth is non-zero");
            let perf = run_synthetic(p, config, cycles).performance_cps();
            if perf > best[i].2 {
                best[i] = (p, d, perf);
            }
            print!("{:>10}", fmt_kcps(perf));
        }
        println!();
    }
    println!("\nbest depth per accuracy:");
    for (p, d, perf) in best {
        println!("  p={p:<5} -> depth {d:<4} ({})", fmt_kcps(perf));
    }
    println!("\nadaptive depth picks this trade-off automatically:");
    for &p in &accuracies {
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::ForcedAls)
            .try_lob_depth(256)
            .expect("depth is non-zero")
            .adaptive(true);
        let perf = run_synthetic(p, config, cycles).performance_cps();
        println!("  p={p:<5} -> {}", fmt_kcps(perf));
    }
}
