//! A1 — ablation: LOB depth beyond the paper's {8, 64}.
//!
//! Deep LOBs amortize channel startup but waste more speculation per failure;
//! the optimum shifts with prediction accuracy (the paper's Figure 4 hints at
//! this with its two depths; here is the full surface).
//!
//! Run: `cargo run -p predpkt-bench --release --bin lob_sweep [cycles]`
//! Pass `--json` to also write `BENCH_lob_sweep.json` for tracking, and
//! `--quick` for the reduced-iteration CI configuration.

use predpkt_bench::args::{write_bench_json, BenchArgs, JsonValue};
use predpkt_bench::{fmt_kcps, run_synthetic};
use predpkt_core::{CoEmuConfig, ModePolicy};

fn main() {
    let args = BenchArgs::parse();
    let cycles = args.cycles(30_000, 3_000);
    let mut json_rows: Vec<Vec<(&str, JsonValue)>> = Vec::new();
    let depths = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let accuracies = [1.0, 0.99, 0.95, 0.9, 0.7, 0.5];

    println!("== LOB depth sweep (ALS, sim=1000k) — performance by depth x accuracy ==\n");
    print!("{:<8}", "depth");
    for p in accuracies {
        print!("{p:>10.2}");
    }
    println!();
    let mut best: Vec<(f64, usize, f64)> = accuracies.iter().map(|&p| (p, 0, 0.0)).collect();
    for d in depths {
        print!("{d:<8}");
        for (i, &p) in accuracies.iter().enumerate() {
            let config = CoEmuConfig::paper_defaults()
                .policy(ModePolicy::ForcedAls)
                .try_lob_depth(d)
                .expect("depth is non-zero");
            let perf = run_synthetic(p, config, cycles).performance_cps();
            json_rows.push(vec![
                ("depth", JsonValue::from(d)),
                ("accuracy", JsonValue::from(p)),
                ("adaptive", JsonValue::from(0u64)),
                ("performance_cps", JsonValue::from(perf)),
            ]);
            if perf > best[i].2 {
                best[i] = (p, d, perf);
            }
            print!("{:>10}", fmt_kcps(perf));
        }
        println!();
    }
    println!("\nbest depth per accuracy:");
    for (p, d, perf) in best {
        println!("  p={p:<5} -> depth {d:<4} ({})", fmt_kcps(perf));
    }
    println!("\nadaptive depth picks this trade-off automatically:");
    for &p in &accuracies {
        let config = CoEmuConfig::paper_defaults()
            .policy(ModePolicy::ForcedAls)
            .try_lob_depth(256)
            .expect("depth is non-zero")
            .adaptive(true);
        let perf = run_synthetic(p, config, cycles).performance_cps();
        json_rows.push(vec![
            ("depth", JsonValue::from(256usize)),
            ("accuracy", JsonValue::from(p)),
            ("adaptive", JsonValue::from(1u64)),
            ("performance_cps", JsonValue::from(perf)),
        ]);
        println!("  p={p:<5} -> {}", fmt_kcps(perf));
    }

    if args.json {
        write_bench_json(
            "lob_sweep",
            &[("cycles", JsonValue::from(cycles))],
            &json_rows,
        );
    }
}
