//! A minimal, dependency-free micro-benchmark harness.
//!
//! The bench targets under `benches/` are plain `harness = false` binaries
//! built on this module: each case is warmed up, then timed over enough
//! iterations to fill a measurement window, and reported as ns/iter plus an
//! optional element-throughput figure. Pass `--quick` (or set the
//! `PREDPKT_BENCH_QUICK` environment variable) to shrink the windows for
//! smoke runs — CI builds the benches but does not run them.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark group: prints a header, then a line per case.
pub struct BenchGroup {
    name: String,
    warmup: Duration,
    window: Duration,
    /// Elements processed per iteration (for throughput lines).
    elements: Option<u64>,
}

impl BenchGroup {
    /// Creates a group, honouring `--quick` / `PREDPKT_BENCH_QUICK`.
    pub fn new(name: &str) -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("PREDPKT_BENCH_QUICK").is_some();
        let (warmup, window) = if quick {
            (Duration::from_millis(20), Duration::from_millis(100))
        } else {
            (Duration::from_millis(300), Duration::from_secs(2))
        };
        println!("== {name} ==");
        BenchGroup {
            name: name.to_string(),
            warmup,
            window,
            elements: None,
        }
    }

    /// Sets the per-iteration element count used for throughput reporting.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Times `f`, printing mean ns/iter (and elements/s when configured).
    pub fn bench<R>(&mut self, case: &str, mut f: impl FnMut() -> R) -> &mut Self {
        // Warm up and estimate a single-iteration time.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est = self.warmup.as_nanos() as u64 / warm_iters.max(1);
        let iters = (self.window.as_nanos() as u64 / est.max(1)).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        match self.elements {
            Some(elements) => {
                let eps = elements as f64 / (ns_per_iter / 1e9);
                println!(
                    "{:<40} {:>14.0} ns/iter  {:>12.2} Melem/s  ({iters} iters)",
                    format!("{}::{case}", self.name),
                    ns_per_iter,
                    eps / 1e6,
                );
            }
            None => {
                println!(
                    "{:<40} {:>14.0} ns/iter  ({iters} iters)",
                    format!("{}::{case}", self.name),
                    ns_per_iter,
                );
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("PREDPKT_BENCH_QUICK", "1");
        let mut g = BenchGroup::new("smoke");
        g.throughput_elements(10).bench("noop", || 1 + 1);
    }
}
