//! Shared CLI handling and `BENCH_*.json` emission for the bench binaries.
//!
//! Every bin accepts the same surface: `--quick` (the reduced-iteration
//! configuration CI's bench-artifacts job runs), `--json` (also write
//! `BENCH_<name>.json` in the working directory), and an optional positional
//! cycle count that overrides both presets. One parser keeps the flags — and
//! the JSON schema the trend gate consumes — identical across bins.

use std::fmt;

/// The parsed common arguments.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchArgs {
    /// Write a `BENCH_<name>.json` artifact next to the table.
    pub json: bool,
    /// Run the reduced-iteration CI configuration.
    pub quick: bool,
    /// Positional cycle-count override, if one was given.
    pub cycles_override: Option<u64>,
}

impl BenchArgs {
    /// Parses `std::env::args()`: `--json` and `--quick` flags in any order,
    /// plus at most one positional integer (a cycle-count override).
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--json" => args.json = true,
                "--quick" => args.quick = true,
                other => {
                    if let Ok(n) = other.parse() {
                        args.cycles_override = Some(n);
                    }
                }
            }
        }
        args
    }

    /// The committed-cycle count to run: the positional override if given,
    /// else `quick` under `--quick`, else `full`.
    pub fn cycles(&self, full: u64, quick: u64) -> u64 {
        self.cycles_override
            .unwrap_or(if self.quick { quick } else { full })
    }
}

/// A JSON scalar for [`write_bench_json`]. Non-finite floats render as
/// `null` (JSON has no NaN), which the trend gate treats as "skip this row".
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered with enough precision for trend comparisons).
    F64(f64),
    /// A string (quoted; quotes and backslashes escaped).
    Str(String),
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::U64(v) => write!(f, "{v}"),
            JsonValue::F64(v) if v.is_finite() => write!(f, "{v:.6}"),
            JsonValue::F64(_) => write!(f, "null"),
            JsonValue::Str(s) => {
                write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
            }
        }
    }
}

/// Writes `BENCH_<bench_name>.json` in the working directory (the repo-root
/// layout CI's bench-artifacts job validates and uploads): a `bench` field,
/// the `meta` key/values, and a `rows` array of flat objects.
pub fn write_bench_json(
    bench_name: &str,
    meta: &[(&str, JsonValue)],
    rows: &[Vec<(&str, JsonValue)>],
) {
    let mut out = format!("{{\n  \"bench\": \"{bench_name}\",\n");
    for (key, value) in meta {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let fields: Vec<String> = row
            .iter()
            .map(|(key, value)| format!("\"{key}\": {value}"))
            .collect();
        out.push_str(&format!(
            "    {{{}}}{}\n",
            fields.join(", "),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = format!("BENCH_{bench_name}.json");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_prefers_override_then_quick() {
        let mut args = BenchArgs {
            json: false,
            quick: false,
            cycles_override: None,
        };
        assert_eq!(args.cycles(1000, 100), 1000);
        args.quick = true;
        assert_eq!(args.cycles(1000, 100), 100);
        args.cycles_override = Some(42);
        assert_eq!(args.cycles(1000, 100), 42);
    }

    #[test]
    fn json_values_render_as_json() {
        assert_eq!(JsonValue::from(7u64).to_string(), "7");
        assert_eq!(JsonValue::from(0.5f64).to_string(), "0.500000");
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from("a\"b").to_string(), "\"a\\\"b\"");
    }
}
