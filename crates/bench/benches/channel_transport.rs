//! Host-side throughput of the channel transports (queue vs lossy vs
//! real-thread endpoints).

use predpkt_bench::micro::BenchGroup;
use predpkt_channel::{
    ChannelCostModel, CostedChannel, FaultSpec, LossyTransport, Packet, PacketTag, Side,
    ThreadedTransport, Transport,
};

fn main() {
    let mut group = BenchGroup::new("channel_transport");
    group.throughput_elements(1_000);

    group.bench("queue_1k_roundtrips", || {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        for i in 0..1_000u32 {
            ch.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i; 4]),
            );
            let got = ch.recv(Side::Accelerator).expect("delivered");
            ch.send(Side::Accelerator, got);
            std::hint::black_box(ch.recv(Side::Simulator).expect("delivered"));
        }
        ch.stats().total_accesses()
    });

    group.bench("lossy_faultless_1k_roundtrips", || {
        let mut ch = CostedChannel::with_transport(
            LossyTransport::over_queue(FaultSpec::none(7)),
            ChannelCostModel::iprove_pci(),
        );
        for i in 0..1_000u32 {
            ch.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i; 4]),
            );
            let got = ch.recv(Side::Accelerator).expect("delivered");
            ch.send(Side::Accelerator, got);
            std::hint::black_box(ch.recv(Side::Simulator).expect("delivered"));
        }
        ch.stats().total_accesses()
    });

    group.bench("threaded_1k_roundtrips", || {
        let (mut sim, mut acc) = ThreadedTransport::pair();
        let worker = std::thread::spawn(move || {
            for _ in 0..1_000 {
                let p = acc.recv_blocking().expect("peer alive");
                acc.send(Side::Accelerator, p);
            }
        });
        for i in 0..1_000u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i; 4]),
            );
            std::hint::black_box(sim.recv_blocking().expect("peer alive"));
        }
        worker.join().expect("worker exits");
    });
}
