//! Host-side throughput of the channel transports (queue vs crossbeam).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use predpkt_channel::{
    ChannelCostModel, CostedChannel, Packet, PacketTag, Side, ThreadedTransport,
};

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_transport");
    group.throughput(Throughput::Elements(1_000));

    group.bench_function("queue_1k_roundtrips", |b| {
        b.iter(|| {
            let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
            for i in 0..1_000u32 {
                ch.send(Side::Simulator, Packet::new(PacketTag::CycleOutputs, vec![i; 4]));
                let got = ch.recv(Side::Accelerator).expect("delivered");
                ch.send(Side::Accelerator, got);
                std::hint::black_box(ch.recv(Side::Simulator).expect("delivered"));
            }
            std::hint::black_box(ch.stats().total_accesses())
        })
    });

    group.bench_function("threaded_1k_roundtrips", |b| {
        b.iter(|| {
            let (sim, acc) = ThreadedTransport::pair(ChannelCostModel::iprove_pci());
            let worker = std::thread::spawn(move || {
                for _ in 0..1_000 {
                    let p = acc.recv_blocking().expect("peer alive");
                    acc.send(p).expect("peer alive");
                }
            });
            for i in 0..1_000u32 {
                sim.send(Packet::new(PacketTag::CycleOutputs, vec![i; 4]))
                    .expect("peer alive");
                std::hint::black_box(sim.recv_blocking().expect("peer alive"));
            }
            worker.join().expect("worker exits");
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_transports
}
criterion_main!(benches);
