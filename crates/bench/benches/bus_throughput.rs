//! Host-side throughput of the golden AHB bus (cycles simulated per second of
//! wall time) under the Fig. 2 SoC.

use predpkt_bench::micro::BenchGroup;
use predpkt_workloads::figure2_soc;

fn main() {
    let mut group = BenchGroup::new("bus_throughput");
    group.throughput_elements(2_000);

    let blueprint = figure2_soc(42);
    group.bench("figure2_golden_2k_cycles", || {
        let mut bus = blueprint.build_golden().expect("valid blueprint");
        bus.run(2_000);
        bus.trace().hash()
    });

    // The split domain models driven directly in conservative lockstep
    // (no channel, no checker): the raw evaluation loop.
    group.bench("figure2_domains_lockstep_2k_cycles", || {
        use predpkt_core::{DomainModel, TickKind};
        let (mut sim, mut acc) = blueprint.build_pair().expect("valid blueprint");
        for _ in 0..2_000 {
            let s = sim.local_outputs();
            let a = acc.local_outputs();
            sim.tick(&a, TickKind::Actual);
            acc.tick(&s, TickKind::Actual);
        }
        sim.cycle()
    });
}
