//! Host-side throughput of the golden AHB bus (cycles simulated per second of
//! wall time) under the Fig. 2 SoC.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use predpkt_workloads::figure2_soc;

fn bench_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_throughput");
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("figure2_golden_2k_cycles", |b| {
        let blueprint = figure2_soc(42);
        b.iter(|| {
            let mut bus = blueprint.build_golden().expect("valid blueprint");
            bus.run(2_000);
            std::hint::black_box(bus.trace().hash())
        });
    });
    group.bench_function("figure2_domains_lockstep_2k_cycles", |b| {
        // The split domain models driven directly in conservative lockstep
        // (no channel, no checker): the raw evaluation loop.
        let blueprint = figure2_soc(42);
        b.iter(|| {
            use predpkt_core::{DomainModel, TickKind};
            let (mut sim, mut acc) = blueprint.build_pair().expect("valid blueprint");
            for _ in 0..2_000 {
                let s = sim.local_outputs();
                let a = acc.local_outputs();
                sim.tick(&a, TickKind::Actual);
                acc.tick(&s, TickKind::Actual);
            }
            std::hint::black_box(sim.cycle())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bus
}
criterion_main!(benches);
