//! Host-side cost of the frame codec hot path: allocation-free encode
//! (`Packet::encode_into` + reused scratch) vs the allocating `to_wire`,
//! borrowed decode (`PacketView`) vs owned `from_wire`, the incremental
//! `FrameDecoder`, batch-vs-single-frame TCP socket writes and shm ring
//! publications, and the reliable layer's buffer-pool hit rate — the figures
//! behind the zero-copy/batching claims, measurable in-repo alongside
//! `channel_transport.rs`.

use predpkt_bench::micro::BenchGroup;
use predpkt_channel::{
    tcp, ChannelCostModel, Packet, PacketTag, PacketView, QueueTransport, ReliableConfig,
    ReliableTransport, ShmTransport, Side, TcpTransport, Transport, WaitTransport,
};
use std::hint::black_box;
use std::time::Duration;

const FRAMES: u64 = 256;

fn packets() -> Vec<Packet> {
    (0..FRAMES as u32)
        .map(|i| {
            Packet::new(
                PacketTag::ALL[i as usize % PacketTag::ALL.len()],
                (0..(i % 24)).map(|w| w ^ i).collect(),
            )
        })
        .collect()
}

fn main() {
    let packets = packets();

    let mut group = BenchGroup::new("frame_codec");
    group.throughput_elements(FRAMES);

    group.bench("encode_to_wire_alloc_per_frame", || {
        let mut words = 0u64;
        for p in &packets {
            words += black_box(p.to_wire()).len() as u64;
        }
        words
    });

    let mut scratch = Vec::new();
    group.bench("encode_into_reused_scratch", || {
        let mut words = 0u64;
        for p in &packets {
            scratch.clear();
            p.encode_into(&mut scratch);
            words += black_box(&scratch).len() as u64;
        }
        words
    });

    let wires: Vec<Vec<u32>> = packets.iter().map(|p| p.to_wire()).collect();
    group.bench("decode_from_wire_owned", || {
        let mut words = 0u64;
        for w in &wires {
            words += black_box(Packet::from_wire(w).expect("valid")).wire_words();
        }
        words
    });
    group.bench("decode_packet_view_borrowed", || {
        let mut words = 0u64;
        for w in &wires {
            words += black_box(PacketView::parse(w).expect("valid")).wire_words();
        }
        words
    });

    let mut stream = Vec::new();
    for p in &packets {
        tcp::write_frame(&mut stream, p).expect("vec write");
    }
    group.bench("frame_decoder_stream", || {
        let mut dec = tcp::FrameDecoder::new();
        let mut n = 0u64;
        for chunk in stream.chunks(4096) {
            dec.push(chunk);
            while let Some(p) = dec.next_frame().expect("well-formed") {
                n += black_box(p).wire_words();
            }
        }
        n
    });

    // Physical path: one write per frame vs one write per batch.
    let drain_all = |end: &mut predpkt_channel::TcpEndpoint| {
        let mut got = Vec::new();
        while got.len() < FRAMES as usize {
            assert!(end.wait_for_packet(Duration::from_secs(10)));
            end.drain(Side::Accelerator, &mut got);
        }
        got.len() as u64
    };
    let (mut sim, mut acc) = TcpTransport::loopback_pair().expect("loopback");
    group.bench("tcp_single_frame_writes", || {
        for p in &packets {
            sim.send_ref(Side::Simulator, p);
        }
        drain_all(&mut acc)
    });
    let (mut sim, mut acc) = TcpTransport::loopback_pair().expect("loopback");
    group.bench("tcp_batched_single_write", || {
        sim.send_batch_ref(Side::Simulator, &mut packets.iter());
        drain_all(&mut acc)
    });

    let (mut sim, mut acc) = ShmTransport::pair_with_capacity(1 << 16);
    let mut sink = Vec::new();
    group.bench("shm_single_frame_publishes", || {
        for p in &packets {
            sim.send_ref(Side::Simulator, p);
        }
        sink.clear();
        acc.drain(Side::Accelerator, &mut sink);
        sink.len() as u64
    });
    let (mut sim, mut acc) = ShmTransport::pair_with_capacity(1 << 16);
    group.bench("shm_batched_publishes", || {
        sim.send_batch_ref(Side::Simulator, &mut packets.iter());
        sink.clear();
        acc.drain(Side::Accelerator, &mut sink);
        sink.len() as u64
    });

    // The reliable layer's pooled framing: after warm-up the hot path runs
    // off the free list (hit rate ~1), i.e. no per-packet allocation.
    let mut reliable = ReliableTransport::new(
        QueueTransport::new(),
        ReliableConfig::default(),
        ChannelCostModel::iprove_pci(),
    );
    group.bench("reliable_pooled_roundtrips", || {
        for p in packets.iter().take(32) {
            reliable.send(Side::Simulator, p.clone());
        }
        let mut got = 0u64;
        while got < 32 {
            if reliable.recv(Side::Accelerator).is_some() {
                got += 1;
            }
            let _ = reliable.recv(Side::Simulator);
        }
        got
    });
    let pool = reliable.pool_stats();
    println!(
        "reliable pool: {} hits / {} misses (hit rate {:.4}) — steady state is allocation-free",
        pool.hits,
        pool.misses,
        pool.hit_rate().unwrap_or(0.0)
    );
    assert!(
        pool.hit_rate().unwrap_or(0.0) > 0.95,
        "pool hit rate regressed: {:?}",
        pool
    );
}
