//! Save/restore throughput of the rollback snapshot machinery — the host-side
//! cost behind the paper's `Tstore`/`Trestore` virtual-time rows.

use criterion::{criterion_group, criterion_main, Criterion};
use predpkt_core::DomainModel;
use predpkt_sim::{restore_from_vec, save_to_vec};
use predpkt_workloads::figure2_soc;

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    let blueprint = figure2_soc(42);
    let (mut sim, mut acc) = blueprint.build_pair().expect("valid blueprint");
    // Age the domains so the snapshots carry realistic state.
    use predpkt_core::TickKind;
    for _ in 0..500 {
        let s = sim.local_outputs();
        let a = acc.local_outputs();
        sim.tick(&a, TickKind::Actual);
        acc.tick(&s, TickKind::Actual);
    }
    let state = save_to_vec(&sim);
    println!("simulator-domain snapshot: {} words", state.len());

    group.bench_function("save_sim_domain", |b| {
        b.iter(|| std::hint::black_box(save_to_vec(&sim)))
    });
    group.bench_function("restore_sim_domain", |b| {
        b.iter(|| {
            restore_from_vec(&mut sim, &state).expect("restore succeeds");
            std::hint::black_box(sim.cycle())
        })
    });
    group.bench_function("save_acc_domain", |b| {
        b.iter(|| std::hint::black_box(save_to_vec(&acc)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_snapshot
}
criterion_main!(benches);
