//! Save/restore throughput of the rollback snapshot machinery — the host-side
//! cost behind the paper's `Tstore`/`Trestore` virtual-time rows.

use predpkt_bench::micro::BenchGroup;
use predpkt_core::{DomainModel, TickKind};
use predpkt_sim::{restore_from_vec, save_to_vec};
use predpkt_workloads::figure2_soc;

fn main() {
    let mut group = BenchGroup::new("snapshot");
    let blueprint = figure2_soc(42);
    let (mut sim, mut acc) = blueprint.build_pair().expect("valid blueprint");
    // Age the domains so the snapshots carry realistic state.
    for _ in 0..500 {
        let s = sim.local_outputs();
        let a = acc.local_outputs();
        sim.tick(&a, TickKind::Actual);
        acc.tick(&s, TickKind::Actual);
    }
    let state = save_to_vec(&sim);
    println!("simulator-domain snapshot: {} words", state.len());

    group.bench("save_sim_domain", || save_to_vec(&sim));
    group.bench("restore_sim_domain", || {
        restore_from_vec(&mut sim, &state).expect("restore succeeds");
        sim.cycle()
    });
    group.bench("save_acc_domain", || save_to_vec(&acc));
}
