//! Host-side throughput of the full co-emulation engine by operating mode and
//! transport backend — how much the optimistic machinery itself costs per
//! committed cycle.

use predpkt_bench::micro::BenchGroup;
use predpkt_core::{CoEmuConfig, EmuSession, ModePolicy, ThreadedOpts, TransportSelect};
use predpkt_workloads::{figure2_soc, SyntheticSoc};

fn main() {
    let mut group = BenchGroup::new("coemu_modes");
    group.throughput_elements(2_000);

    let blueprint = figure2_soc(42);
    for (name, policy) in [
        ("conservative", ModePolicy::Conservative),
        ("forced_als", ModePolicy::ForcedAls),
        ("auto", ModePolicy::Auto),
    ] {
        let config = CoEmuConfig::paper_defaults()
            .policy(policy)
            .rollback_vars(None)
            .carry(true)
            .adaptive(true);
        group.bench(&format!("figure2_{name}_2k"), || {
            let mut session = EmuSession::from_blueprint(&blueprint)
                .config(config)
                .build()
                .expect("valid blueprint");
            session.run_until_committed(2_000).expect("runs");
            session.committed_cycles()
        });
    }

    let config = CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedAls);
    group.bench("synthetic_als_p099_2k", || {
        let mut session = SyntheticSoc::als(0.99, 7)
            .session()
            .config(config)
            .build()
            .expect("builds");
        session.run_until_committed(2_000).expect("runs");
        session.committed_cycles()
    });

    group.bench("synthetic_als_p099_2k_threaded", || {
        let mut session = SyntheticSoc::als(0.99, 7)
            .session()
            .config(config)
            .transport(TransportSelect::Threaded(ThreadedOpts::default()))
            .build()
            .expect("builds");
        session.run_until_committed(2_000).expect("runs");
        session.committed_cycles()
    });
}
