//! Host-side throughput of the full co-emulation engine by operating mode —
//! how much the optimistic machinery itself costs per committed cycle.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use predpkt_core::{CoEmuConfig, CoEmulator, ModePolicy};
use predpkt_workloads::{figure2_soc, SyntheticSoc};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("coemu_modes");
    group.throughput(Throughput::Elements(2_000));
    for (name, policy) in [
        ("conservative", ModePolicy::Conservative),
        ("forced_als", ModePolicy::ForcedAls),
        ("auto", ModePolicy::Auto),
    ] {
        group.bench_function(format!("figure2_{name}_2k"), |b| {
            let blueprint = figure2_soc(42);
            let config = CoEmuConfig::paper_defaults()
                .policy(policy)
                .rollback_vars(None)
                .carry(true)
                .adaptive(true);
            b.iter(|| {
                let mut coemu =
                    CoEmulator::from_blueprint(&blueprint, config).expect("valid blueprint");
                coemu.run_until_committed(2_000).expect("runs");
                std::hint::black_box(coemu.committed_cycles())
            });
        });
    }
    group.bench_function("synthetic_als_p099_2k", |b| {
        let config = CoEmuConfig::paper_defaults().policy(ModePolicy::ForcedAls);
        b.iter(|| {
            let (sim, acc) = SyntheticSoc::als(0.99, 7).build();
            let mut coemu = CoEmulator::new(sim, acc, config);
            coemu.run_until_committed(2_000).expect("runs");
            std::hint::black_box(coemu.committed_cycles())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_modes
}
criterion_main!(benches);
