//! Encode/decode throughput of the delta packetizer on LOB-flush-shaped data.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use predpkt_predict::{decode_block, encode_block};

fn burst_entries(n: u32, width: usize, churn: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let mut e = vec![7u32; width];
            for w in e.iter_mut().take(churn) {
                *w = i;
            }
            e
        })
        .collect()
}

fn bench_packetizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("packetizer");
    for (name, entries) in [
        ("64x8_stable", burst_entries(64, 8, 1)),
        ("64x8_churny", burst_entries(64, 8, 6)),
        ("256x16_stable", burst_entries(256, 16, 2)),
    ] {
        let words: u64 = entries.iter().map(|e| e.len() as u64).sum();
        group.throughput(Throughput::Elements(words));
        group.bench_function(format!("encode_{name}"), |b| {
            b.iter(|| std::hint::black_box(encode_block(&entries)))
        });
        let wire = encode_block(&entries);
        group.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| std::hint::black_box(decode_block(&wire).expect("valid block")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_packetizer
}
criterion_main!(benches);
