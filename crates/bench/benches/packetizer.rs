//! Encode/decode throughput of the delta packetizer on LOB-flush-shaped data.

use predpkt_bench::micro::BenchGroup;
use predpkt_predict::{decode_block, encode_block};

fn burst_entries(n: u32, width: usize, churn: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let mut e = vec![7u32; width];
            for w in e.iter_mut().take(churn) {
                *w = i;
            }
            e
        })
        .collect()
}

fn main() {
    let mut group = BenchGroup::new("packetizer");
    for (name, entries) in [
        ("64x8_stable", burst_entries(64, 8, 1)),
        ("64x8_churny", burst_entries(64, 8, 6)),
        ("256x16_stable", burst_entries(256, 16, 2)),
    ] {
        let words: u64 = entries.iter().map(|e| e.len() as u64).sum();
        group.throughput_elements(words);
        group.bench(&format!("encode_{name}"), || encode_block(&entries));
        let wire = encode_block(&entries);
        group.bench(&format!("decode_{name}"), || {
            decode_block(&wire).expect("valid block")
        });
    }
}
