//! Farm stress suite: scheduling at scale must never change what a session
//! commits, and one bad session must never take the pool down with it.
//!
//! * A thousand mixed-transport sessions multiplexed over four workers commit
//!   bit-identically to direct (unfarmed) runs of the same sessions — the
//!   conformance ledger checks, through the farm.
//! * A wedged peer (every frame dropped on the socket path) is evicted after
//!   the deadlock window while normal sessions keep completing.
//! * Saturation is a typed refusal, cancellation lands, and a panicking
//!   session is contained to its own result.
//! * Churning many socket-backed sessions through a small pool keeps file
//!   descriptors and thread counts bounded: sessions never spawn threads.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use predpkt_channel::{ChannelStats, FaultSpec};
use predpkt_core::{
    AhbDomainModel, CoEmuConfig, EmuSession, ModePolicy, ShmOptions, TcpOptions, ThreadedOpts,
    TransportSelect,
};
use predpkt_farm::{FarmConfig, FarmError, ReadmitPolicy, SessionFarm, SessionOutcome};
use predpkt_sim::{SimError, VirtualTime};
use predpkt_workloads::figure2_soc;

const CYCLES: u64 = 120;

fn config() -> CoEmuConfig {
    CoEmuConfig::paper_defaults()
        .policy(ModePolicy::Auto)
        .rollback_vars(None)
}

/// Fine-grained polling knobs (matching the core conformance suite) so
/// blocked-domain wakeups stay snappy on loaded CI hosts.
fn snappy() -> ThreadedOpts {
    ThreadedOpts {
        poll_interval: Duration::from_micros(500),
        deadlock_timeout: Duration::from_secs(10),
    }
}

/// The mixed-transport rotation the ISSUE asks for: queue, shm, tcp.
fn transport_for(i: usize) -> TransportSelect {
    match i % 3 {
        0 => TransportSelect::Queue,
        1 => TransportSelect::Shm(ShmOptions::default().threaded(snappy())),
        _ => TransportSelect::Tcp(TcpOptions::default().threaded(snappy())),
    }
}

/// The conformance ledger fields a farm run is compared on.
#[derive(Debug, PartialEq)]
struct Observed {
    trace_hash: u64,
    committed: u64,
    channel: ChannelStats,
    ledger_total: VirtualTime,
    billed_words: u64,
}

fn observe(session: &EmuSession<AhbDomainModel>, seed: u64) -> Observed {
    let blueprint = figure2_soc(seed);
    let placement = blueprint.placement();
    let trace = session.merged_trace(|s, a| placement.merge_records(s, a));
    Observed {
        trace_hash: trace.hash(),
        committed: session.committed_cycles(),
        channel: session.channel_stats(),
        ledger_total: session.ledger().total(),
        billed_words: session.report().billed_words(),
    }
}

/// The direct (unfarmed) baseline for one seed, over the deterministic queue
/// transport — what *every* transport must commit, farm or no farm.
fn direct_baseline(seed: u64) -> Observed {
    let mut session = EmuSession::from_blueprint(&figure2_soc(seed))
        .config(config())
        .transport(TransportSelect::Queue)
        .build()
        .expect("baseline builds");
    session
        .run_until_committed(CYCLES)
        .expect("baseline completes");
    observe(&session, seed)
}

#[cfg(target_os = "linux")]
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(usize::MAX)
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(usize::MAX)
}

/// Spin until the farm has no outstanding sessions (bounded by `limit`).
fn drain(farm: &SessionFarm<AhbDomainModel>, limit: Duration) {
    let deadline = Instant::now() + limit;
    while farm.outstanding() > 0 {
        assert!(
            Instant::now() < deadline,
            "farm failed to drain in {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The tentpole property end-to-end: one thousand sessions, three transports,
/// four workers, and every single one commits exactly what its direct run
/// commits.
#[test]
fn thousand_mixed_sessions_match_direct_runs() {
    const SESSIONS: usize = 999;
    const SEEDS: u64 = 16;
    let baselines: Vec<Observed> = (0..SEEDS).map(direct_baseline).collect();

    let farm = SessionFarm::new(
        FarmConfig::new()
            .workers(4)
            .capacity(SESSIONS)
            .slice_steps(64)
            .keep_sessions(true),
    )
    .expect("farm builds");
    let mut seed_of = HashMap::new();
    for i in 0..SESSIONS {
        let seed = i as u64 % SEEDS;
        let transport = transport_for(i);
        let id = farm
            .submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(CYCLES))
            })
            .expect("capacity covers every session");
        seed_of.insert(id, seed);
    }
    let report = farm.join();

    assert_eq!(report.stats.submitted, SESSIONS as u64);
    assert_eq!(
        report.stats.completed, SESSIONS as u64,
        "every session completes: {}",
        report.stats
    );
    assert_eq!(report.results.len(), SESSIONS);
    for result in &report.results {
        assert!(
            result.outcome.is_completed(),
            "session {} ended {}",
            result.id,
            result.outcome
        );
        let seed = seed_of[&result.id];
        let session = result.session.as_ref().expect("keep_sessions retains it");
        assert_eq!(
            baselines[seed as usize],
            observe(session, seed),
            "session {} (seed {seed}) diverged from its direct run",
            result.id
        );
    }
    assert!(report.stats.sessions_per_sec > 0.0);
    let p50 = report
        .stats
        .p50_latency
        .expect("completed sessions have a p50");
    let p99 = report
        .stats
        .p99_latency
        .expect("completed sessions have a p99");
    assert!(p99 >= p50);
    assert!(report.stats.pool_occupancy > 0.0 && report.stats.pool_occupancy <= 1.0);
}

/// A farm drained without a single completed session has *no* latency
/// percentiles — the stats must say so explicitly (`None`, rendered as JSON
/// null by the bench emitter) instead of faking a zero or dividing into a
/// NaN.
#[test]
fn empty_farm_reports_absent_percentiles_not_nan() {
    let farm: SessionFarm<predpkt_core::AhbDomainModel> =
        SessionFarm::new(FarmConfig::new().workers(2)).expect("farm builds");
    let report = farm.join();
    assert_eq!(report.stats.submitted, 0);
    assert_eq!(report.stats.completed, 0);
    assert_eq!(report.stats.p50_latency, None);
    assert_eq!(report.stats.p99_latency, None);
    assert!(
        report.stats.sessions_per_sec.is_finite(),
        "throughput over zero sessions must stay finite"
    );
    assert!(
        report.stats.pool_occupancy.is_finite(),
        "occupancy over an idle pool must stay finite"
    );
    // The roll-up must also render without panicking or printing NaN.
    let rendered = report.stats.to_string();
    assert!(
        rendered.contains("n/a"),
        "absent percentiles render as n/a: {rendered}"
    );
    assert!(
        !rendered.contains("NaN"),
        "stats must never display NaN: {rendered}"
    );
}

/// A peer that drops every frame wedges its session, not the pool: the farm
/// parks it, evicts it after the deadlock window, and the normal sessions
/// sharing the pool all complete.
#[test]
fn wedged_peer_is_evicted_and_does_not_stall_the_pool() {
    let farm = SessionFarm::new(
        FarmConfig::new()
            .workers(2)
            .slice_steps(64)
            .park_slice(Duration::from_micros(200))
            .deadlock_timeout(Duration::from_millis(300)),
    )
    .expect("farm builds");
    let wedged = farm
        .submit(move || {
            Ok(EmuSession::from_blueprint(&figure2_soc(7))
                .config(config())
                .transport(TransportSelect::Tcp(
                    TcpOptions::default()
                        .threaded(snappy())
                        .fault(FaultSpec::drops(42, 1.0)),
                ))
                .build()?
                .into_sliced(CYCLES))
        })
        .expect("wedged session admitted");
    let mut normal = Vec::new();
    for i in 0..20 {
        let seed = i as u64;
        let transport = transport_for(i);
        let id = farm
            .submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(CYCLES))
            })
            .expect("normal session admitted");
        normal.push(id);
    }
    let report = farm.join();
    let wedged_result = report.result(wedged).expect("wedged session reported");
    assert!(
        matches!(wedged_result.outcome, SessionOutcome::Evicted { .. }),
        "wedged session should be evicted, ended {}",
        wedged_result.outcome
    );
    for id in normal {
        let r = report.result(id).expect("normal session reported");
        assert!(
            r.outcome.is_completed(),
            "session {id} stalled behind the wedged peer: {}",
            r.outcome
        );
    }
    assert_eq!(report.stats.evicted, 1);
    assert_eq!(report.stats.completed, 20);
    assert!(report.stats.parked_events > 0, "the wedge must have parked");
}

/// Admission control: a full farm refuses with the typed `Saturated` error
/// (the caller sheds or retries — nothing queues unbounded), and a cancelled
/// session reports `Cancelled` without running.
#[test]
fn saturation_is_typed_and_cancellation_lands() {
    let farm: SessionFarm<AhbDomainModel> = SessionFarm::new(
        FarmConfig::new()
            .workers(1)
            .capacity(4)
            .start_paused(true)
            .keep_sessions(true),
    )
    .expect("farm builds");
    let mut ids = Vec::new();
    for i in 0..4 {
        let seed = i as u64;
        ids.push(
            farm.submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .build()?
                    .into_sliced(CYCLES))
            })
            .expect("within capacity"),
        );
    }
    let refused = farm.submit(|| {
        Ok(EmuSession::from_blueprint(&figure2_soc(0))
            .config(config())
            .build()?
            .into_sliced(CYCLES))
    });
    match refused {
        Err(FarmError::Saturated { capacity }) => assert_eq!(capacity, 4),
        other => panic!("expected Saturated, got {other:?}"),
    }
    farm.cancel(ids[2]);
    farm.resume();
    let report = farm.join();
    let cancelled = report.result(ids[2]).expect("cancelled session reported");
    assert!(
        matches!(cancelled.outcome, SessionOutcome::Cancelled),
        "cancel before scheduling must land, ended {}",
        cancelled.outcome
    );
    assert!(
        cancelled.session.is_none(),
        "a session cancelled before its first slice was never built"
    );
    for &id in &[ids[0], ids[1], ids[3]] {
        assert!(report.result(id).expect("reported").outcome.is_completed());
    }
    assert_eq!(report.stats.cancelled, 1);
    assert_eq!(report.stats.completed, 3);
}

/// A panicking session (here: the build closure itself) is contained — its
/// result says `Panicked`, its worker survives, every other session runs.
#[test]
fn a_panicking_session_is_contained_to_its_result() {
    let farm = SessionFarm::new(FarmConfig::new().workers(2)).expect("farm builds");
    let bomb = farm
        .submit(|| -> Result<_, predpkt_core::SessionError> {
            panic!("session bomb");
        })
        .expect("admitted");
    let mut normal = Vec::new();
    for i in 0..8 {
        let seed = i as u64;
        normal.push(
            farm.submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .build()?
                    .into_sliced(CYCLES))
            })
            .expect("admitted"),
        );
    }
    let report = farm.join();
    match &report.result(bomb).expect("reported").outcome {
        SessionOutcome::Panicked(msg) => assert!(msg.contains("session bomb")),
        other => panic!("expected Panicked, got {other}"),
    }
    for id in normal {
        assert!(report.result(id).expect("reported").outcome.is_completed());
    }
    assert_eq!(report.stats.panicked, 1);
    assert_eq!(report.stats.completed, 8);
}

/// Cancelling sessions mid-run (not merely mid-queue) frees their slots
/// without disturbing the survivors.
#[test]
fn mid_run_cancellation_does_not_stall_others() {
    let farm = SessionFarm::new(FarmConfig::new().workers(2).slice_steps(4)).expect("farm builds");
    let mut ids = Vec::new();
    for i in 0..10 {
        let seed = i as u64;
        let transport = transport_for(i);
        ids.push(
            farm.submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(600))
            })
            .expect("admitted"),
        );
    }
    std::thread::sleep(Duration::from_millis(5));
    for &id in ids.iter().step_by(2) {
        farm.cancel(id);
    }
    let report = farm.join();
    for (i, &id) in ids.iter().enumerate() {
        let r = report.result(id).expect("reported");
        if i % 2 == 0 {
            assert!(
                matches!(
                    r.outcome,
                    SessionOutcome::Cancelled | SessionOutcome::Completed
                ),
                "session {id}: cancel raced completion but must not fail: {}",
                r.outcome
            );
        } else {
            assert!(r.outcome.is_completed(), "session {id} ended {}", r.outcome);
        }
    }
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.stats.evicted, 0);
}

/// The resource story: churning 64 socket/ring sessions through a two-worker
/// farm leaves file descriptors flat and never grows the thread count —
/// sessions cost sockets while alive and *zero threads ever*.
#[cfg(target_os = "linux")]
#[test]
fn churn_keeps_fds_and_threads_bounded() {
    let fds_before = open_fds();
    let threads_before = thread_count();
    let farm = SessionFarm::new(FarmConfig::new().workers(2).capacity(8)).expect("farm builds");
    let mut max_threads = 0;
    for wave in 0..8 {
        for i in 0..8 {
            let seed = (wave * 8 + i) as u64;
            let transport = if i % 2 == 0 {
                TransportSelect::Tcp(TcpOptions::default().threaded(snappy()))
            } else {
                TransportSelect::Shm(ShmOptions::default().threaded(snappy()).file_backed())
            };
            farm.submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(40))
            })
            .expect("wave fits capacity");
        }
        drain(&farm, Duration::from_secs(30));
        max_threads = max_threads.max(thread_count());
    }
    let report = farm.join();
    assert_eq!(report.stats.completed, 64);

    // Two farm workers plus slack for the test harness's own sibling test
    // threads; 64 thread-per-session runs would have needed 128.
    assert!(
        max_threads <= threads_before + 2 + 8,
        "thread count grew with session count: {threads_before} -> {max_threads}"
    );
    let fds_after = open_fds();
    assert!(
        fds_after <= fds_before + 8,
        "descriptor churn leaked: {fds_before} -> {fds_after}"
    );
}

/// Satellite fix: a session that *fails* (not merely wedges) carries its
/// last boundary cut out in [`SessionOutcome::Failed`], exactly like an
/// eviction does — a transport that died mid-run loses nothing past the
/// latest checkpoint. The cut restores into a clean twin that lands on the
/// straight-through baseline.
#[test]
fn failed_session_carries_its_last_cut() {
    const SEED: u64 = 5;
    // Frames before the link severs — far enough in that boundaries have
    // passed, early enough that the session cannot finish.
    const CUT: u64 = 8;
    let farm: SessionFarm<AhbDomainModel> = SessionFarm::new(
        FarmConfig::new()
            .workers(1)
            .slice_steps(64)
            .checkpoint_evictions(true),
    )
    .expect("farm builds");
    let id = farm
        .submit(move || {
            Ok(EmuSession::from_blueprint(&figure2_soc(SEED))
                .config(config())
                .transport(TransportSelect::Tcp(
                    TcpOptions::default()
                        .threaded(snappy())
                        .fault(FaultSpec::disconnect_after(9, CUT)),
                ))
                .build()?
                .into_sliced(CYCLES))
        })
        .expect("admitted");
    let report = farm.join();
    let result = report.result(id).expect("reported");
    let SessionOutcome::Failed {
        error,
        checkpoint: Some(ckpt),
    } = &result.outcome
    else {
        panic!(
            "expected a checkpoint-carrying failure, got {}",
            result.outcome
        );
    };
    assert!(
        matches!(error, SimError::Deadlock { .. }),
        "a severed bare link dies of starvation: {error}"
    );
    assert!(
        ckpt.committed_cycles() > 0 && ckpt.committed_cycles() < CYCLES,
        "the kill must land mid-run for this test to mean anything \
         (committed {} of {CYCLES}); retune CUT",
        ckpt.committed_cycles()
    );
    assert_eq!(report.stats.failed, 1);

    let mut twin = EmuSession::from_blueprint(&figure2_soc(SEED))
        .config(config())
        .transport(TransportSelect::Tcp(
            TcpOptions::default().threaded(snappy()),
        ))
        .build()
        .expect("twin builds");
    twin.restore(ckpt.as_ref())
        .expect("checkpoint restores into the twin");
    twin.run_until_committed(CYCLES).expect("twin completes");
    assert_eq!(observe(&twin, SEED), direct_baseline(SEED));
}

/// The self-healing tentpole, failure path: a healable session whose socket
/// link severs mid-run is auto-readmitted — rebuilt on a fresh transport
/// after its backoff, resumed from its last cut — and completes
/// bit-identically to its direct run, while a dozen live sessions sharing
/// the pool are untouched. The death never shows in the final outcomes;
/// only the `readmitted` counter records the heal.
#[test]
fn severed_link_session_heals_in_place_without_stalling_live_sessions() {
    const SEED: u64 = 5;
    const CUT: u64 = 8;
    let farm = SessionFarm::new(
        FarmConfig::new()
            .workers(2)
            .slice_steps(64)
            .park_slice(Duration::from_micros(200))
            .deadlock_timeout(Duration::from_millis(300))
            .checkpoint_evictions(true)
            .keep_sessions(true)
            .readmit(
                ReadmitPolicy::new()
                    .max_retries(3)
                    .base_delay(Duration::from_millis(1)),
            ),
    )
    .expect("farm builds");
    let mut incarnation = 0u32;
    let healable = farm
        .submit_healable(move || {
            incarnation += 1;
            // First incarnation is doomed; every respawn gets a clean link.
            let opts = TcpOptions::default().threaded(snappy());
            let opts = if incarnation == 1 {
                opts.fault(FaultSpec::disconnect_after(9, CUT))
            } else {
                opts
            };
            Ok(EmuSession::from_blueprint(&figure2_soc(SEED))
                .config(config())
                .transport(TransportSelect::Tcp(opts))
                .build()?
                .into_sliced(CYCLES))
        })
        .expect("healable admitted");
    let mut live = Vec::new();
    for i in 0..12 {
        let seed = i as u64;
        let transport = transport_for(i);
        live.push(
            farm.submit(move || {
                Ok(EmuSession::from_blueprint(&figure2_soc(seed))
                    .config(config())
                    .transport(transport)
                    .build()?
                    .into_sliced(CYCLES))
            })
            .expect("live session admitted"),
        );
    }
    let report = farm.join();
    let healed = report.result(healable).expect("healable reported");
    assert!(
        healed.outcome.is_completed(),
        "the healed session must complete, ended {}",
        healed.outcome
    );
    let session = healed.session.as_ref().expect("keep_sessions retains it");
    assert_eq!(
        observe(session, SEED),
        direct_baseline(SEED),
        "the healed run diverged from its direct run"
    );
    assert_eq!(
        report.stats.readmitted, 1,
        "exactly one heal: {}",
        report.stats
    );
    assert_eq!(report.stats.gave_up, 0);
    assert_eq!(report.stats.failed, 0, "the death was healed, not recorded");
    assert!(report.stats.backoff >= Duration::from_millis(1));
    for (i, id) in live.into_iter().enumerate() {
        let r = report.result(id).expect("live session reported");
        assert!(
            r.outcome.is_completed(),
            "live session {id} was perturbed by the heal: {}",
            r.outcome
        );
        let seed = i as u64;
        let session = r.session.as_ref().expect("keep_sessions retains it");
        assert_eq!(
            observe(session, seed),
            direct_baseline(seed),
            "live session {id} (seed {seed}) diverged"
        );
    }
}

/// The self-healing tentpole, eviction path: a link that *hangs* (frames
/// swallowed, link looks alive) wedges its session into the parked set; the
/// eviction sweep pulls it with its cut, the re-admission policy heals it on
/// a fresh link, and the final outcomes show a completed session — zero
/// evictions — with the heal visible only in the counters.
#[test]
fn wedged_link_session_heals_through_the_eviction_path() {
    const SEED: u64 = 11;
    const CUT: u64 = 8;
    let farm = SessionFarm::new(
        FarmConfig::new()
            .workers(2)
            .slice_steps(64)
            .park_slice(Duration::from_micros(200))
            .deadlock_timeout(Duration::from_millis(300))
            .checkpoint_evictions(true)
            .keep_sessions(true)
            .readmit(
                ReadmitPolicy::new()
                    .max_retries(3)
                    .base_delay(Duration::from_millis(1)),
            ),
    )
    .expect("farm builds");
    let mut incarnation = 0u32;
    let healable = farm
        .submit_healable(move || {
            incarnation += 1;
            let opts = TcpOptions::default().threaded(snappy());
            let opts = if incarnation == 1 {
                opts.fault(FaultSpec::hang_after(13, CUT))
            } else {
                opts
            };
            Ok(EmuSession::from_blueprint(&figure2_soc(SEED))
                .config(config())
                .transport(TransportSelect::Tcp(opts))
                .build()?
                .into_sliced(CYCLES))
        })
        .expect("healable admitted");
    let report = farm.join();
    let healed = report.result(healable).expect("healable reported");
    assert!(
        healed.outcome.is_completed(),
        "the healed session must complete, ended {}",
        healed.outcome
    );
    let session = healed.session.as_ref().expect("keep_sessions retains it");
    assert_eq!(observe(session, SEED), direct_baseline(SEED));
    assert_eq!(report.stats.readmitted, 1, "one heal: {}", report.stats);
    assert_eq!(
        report.stats.evicted, 0,
        "the eviction was healed, not recorded"
    );
    assert!(
        report.stats.parked_events > 0,
        "the hung link must have parked before evicting"
    );
}

/// The retry budget is a hard bound and giving up is never silent: a session
/// whose every incarnation severs immediately burns its budget, lands as a
/// final `Failed` outcome, and the roll-up counts both the heals attempted
/// and the surrender.
#[test]
fn exhausted_heal_budget_is_counted_never_silent() {
    let farm: SessionFarm<AhbDomainModel> = SessionFarm::new(
        FarmConfig::new()
            .workers(1)
            .slice_steps(64)
            .checkpoint_evictions(true)
            .readmit(
                ReadmitPolicy::new()
                    .max_retries(2)
                    .base_delay(Duration::from_micros(100)),
            ),
    )
    .expect("farm builds");
    let id = farm
        .submit_healable(move || {
            // Doomed every time: the link dies on the first frame.
            Ok(EmuSession::from_blueprint(&figure2_soc(3))
                .config(config())
                .transport(TransportSelect::Tcp(
                    TcpOptions::default()
                        .threaded(snappy())
                        .fault(FaultSpec::disconnect_after(7, 1)),
                ))
                .build()?
                .into_sliced(CYCLES))
        })
        .expect("admitted");
    let report = farm.join();
    let result = report.result(id).expect("reported");
    assert!(
        matches!(result.outcome, SessionOutcome::Failed { .. }),
        "the surrendered session keeps its real outcome, got {}",
        result.outcome
    );
    assert_eq!(report.stats.readmitted, 2, "budget spent: {}", report.stats);
    assert_eq!(
        report.stats.gave_up, 1,
        "surrender counted: {}",
        report.stats
    );
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.stats.completed, 0);
}

/// A healable session needs a policy to heal under: a farm built without
/// [`FarmConfig::readmit`] refuses `submit_healable` with a typed error.
#[test]
fn submit_healable_without_a_policy_is_refused() {
    let farm: SessionFarm<AhbDomainModel> =
        SessionFarm::new(FarmConfig::new().workers(1)).expect("farm builds");
    let refused = farm.submit_healable(
        || -> Result<predpkt_farm::SlicedSession<AhbDomainModel>, predpkt_core::SessionError> {
            unreachable!("never scheduled")
        },
    );
    match refused {
        Err(FarmError::Config(e)) => assert!(
            e.to_string().contains("readmit"),
            "the refusal names the missing knob: {e}"
        ),
        other => panic!("expected Config refusal, got {other:?}"),
    }
    farm.join();
}

/// Checkpoint-carrying eviction, end to end: a session that commits a clean
/// prefix and then wedges (a rare seeded drop on the plain socket path —
/// no reliability layer, so the first lost frame is fatal) is evicted
/// *with* its last consistent cut. Restoring that cut into a clean twin
/// and running to the target commits exactly what a straight clean run
/// commits — the evicted work is carried forward, not lost.
#[test]
fn eviction_checkpoint_readmits_into_a_twin() {
    const SEED: u64 = 3;
    // Chosen so the first seeded drop lands mid-run: the session wedges
    // with a clean committed prefix behind it (the fault stream is a pure
    // function of this seed, so the wedge point is stable).
    const FAULT_SEED: u64 = 10;
    const DROP_RATE: f64 = 0.02;

    let farm: SessionFarm<AhbDomainModel> = SessionFarm::new(
        FarmConfig::new()
            .workers(1)
            .slice_steps(8)
            .park_slice(Duration::from_micros(200))
            .deadlock_timeout(Duration::from_millis(300))
            .checkpoint_evictions(true),
    )
    .expect("farm builds");
    let id = farm
        .submit(move || {
            Ok(EmuSession::from_blueprint(&figure2_soc(SEED))
                .config(config())
                .transport(TransportSelect::Tcp(
                    TcpOptions::default()
                        .threaded(snappy())
                        .fault(FaultSpec::drops(FAULT_SEED, DROP_RATE)),
                ))
                .build()?
                .into_sliced(CYCLES))
        })
        .expect("admitted");
    let report = farm.join();
    let result = report.result(id).expect("reported");
    let SessionOutcome::Evicted {
        checkpoint: Some(ckpt),
    } = &result.outcome
    else {
        panic!(
            "expected a checkpoint-carrying eviction, got {}",
            result.outcome
        );
    };
    assert!(
        ckpt.committed_cycles() > 0 && ckpt.committed_cycles() < CYCLES,
        "the wedge must land mid-run for this test to mean anything \
         (committed {} of {CYCLES}); retune the fault seed/rate",
        ckpt.committed_cycles()
    );
    assert_eq!(report.stats.evicted, 1);

    // Re-admit the cut into a clean twin on the same (fault-free) backend.
    // Everything the wedged run committed before its first drop was clean,
    // so the twin must land exactly on the straight-through baseline.
    let mut twin = EmuSession::from_blueprint(&figure2_soc(SEED))
        .config(config())
        .transport(TransportSelect::Tcp(
            TcpOptions::default().threaded(snappy()),
        ))
        .build()
        .expect("twin builds");
    twin.restore(ckpt.as_ref())
        .expect("checkpoint restores into the twin");
    assert_eq!(twin.committed_cycles(), ckpt.committed_cycles());
    twin.run_until_committed(CYCLES).expect("twin completes");
    assert_eq!(observe(&twin, SEED), direct_baseline(SEED));
}
