//! The worker pool, run queue, and readiness poller.
//!
//! One mutex-guarded [`State`] holds the run queue, the parked set, and the
//! results; a single condition variable wakes idle workers. At any moment at
//! most one worker is the *poller*: it takes the whole parked set out of the
//! lock and parks on it with [`PollSet::wait_any`] — the generalized
//! spin-then-park ladder the shm transport uses for one endpoint, applied to
//! N sessions at once. Everything else is plain queue discipline.

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use predpkt_channel::{PollReady, PollSet, Readiness};
use predpkt_core::{DomainModel, SessionCheckpoint, SessionError, SliceStatus, SlicedSession};

use crate::config::{FarmConfig, FarmError};
use crate::stats::{percentile, FarmReport, FarmResult, FarmStats, SessionOutcome};

/// Handle identifying one admitted session, returned by
/// [`SessionFarm::submit`] and echoed in its [`FarmResult`].
pub type SessionId = u64;

type BuildFn<M> = Box<dyn FnOnce() -> Result<SlicedSession<M>, SessionError> + Send>;

/// Sessions are admitted *unbuilt*: the build closure runs on the worker that
/// first schedules the session, so ten thousand queued sessions do not mean
/// ten thousand open socket pairs before the first slice runs.
enum JobState<M: DomainModel + Send + 'static> {
    Unbuilt(BuildFn<M>),
    Built(Box<SlicedSession<M>>),
}

struct Job<M: DomainModel + Send + 'static> {
    id: SessionId,
    submitted: Instant,
    state: JobState<M>,
}

/// A parked session: blocked on its medium, costing zero threads.
struct Parked<M: DomainModel + Send + 'static> {
    job: Job<M>,
    idle_since: Instant,
}

impl<M: DomainModel + Send + 'static> PollReady for Parked<M> {
    fn readiness(&mut self) -> Readiness {
        match &mut self.job.state {
            JobState::Built(s) => s.readiness(),
            // Unreachable: only built sessions ever park.
            JobState::Unbuilt(_) => Readiness::Ready,
        }
    }
}

struct State<M: DomainModel + Send + 'static> {
    runnable: VecDeque<Job<M>>,
    parked: Vec<Parked<M>>,
    results: Vec<FarmResult<M>>,
    cancelled: HashSet<SessionId>,
    /// Sessions admitted and not yet resolved (runnable + parked + executing).
    outstanding: usize,
    submitted: u64,
    parked_events: u64,
    busy_ns: u64,
    paused: bool,
    closing: bool,
    poller_active: bool,
}

struct Shared<M: DomainModel + Send + 'static> {
    state: Mutex<State<M>>,
    work: Condvar,
    cfg: FarmConfig,
}

/// What one scheduling turn did with a job (computed outside the lock).
enum Turn<M: DomainModel + Send + 'static> {
    Working(Job<M>),
    Idle(Job<M>),
    Finished {
        id: SessionId,
        submitted: Instant,
        outcome: SessionOutcome,
        session: Option<Box<SlicedSession<M>>>,
    },
}

/// An event-driven server multiplexing many co-emulation sessions over a
/// fixed worker pool. See the [crate docs](crate) for the model and a worked
/// example.
pub struct SessionFarm<M: DomainModel + Send + 'static> {
    shared: Arc<Shared<M>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    started: Instant,
}

impl<M: DomainModel + Send + 'static> SessionFarm<M> {
    /// Validates `config` and spawns the worker pool. This is the only place
    /// the farm creates threads — session count never changes thread count.
    pub fn new(config: FarmConfig) -> Result<Self, FarmError> {
        config.validate()?;
        let workers = config.workers;
        let paused = config.start_paused;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                runnable: VecDeque::new(),
                parked: Vec::new(),
                results: Vec::new(),
                cancelled: HashSet::new(),
                outstanding: 0,
                submitted: 0,
                parked_events: 0,
                busy_ns: 0,
                paused,
                closing: false,
                poller_active: false,
            }),
            work: Condvar::new(),
            cfg: config,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("predpkt-farm-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn farm worker");
            handles.push(handle);
        }
        Ok(SessionFarm {
            shared,
            workers: handles,
            next_id: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// Admits one session. The closure builds the [`SlicedSession`] on the
    /// worker that first schedules it — compose it from the usual pieces
    /// (blueprint, [`CoEmuConfig`](predpkt_core::CoEmuConfig),
    /// [`TransportSelect`](predpkt_core::TransportSelect), predictor suite)
    /// and call [`EmuSession::into_sliced`](predpkt_core::EmuSession).
    ///
    /// # Errors
    ///
    /// [`FarmError::Saturated`] when [`capacity`](FarmConfig::capacity)
    /// sessions are already outstanding; [`FarmError::Closed`] once
    /// [`join`](Self::join) has begun.
    pub fn submit<F>(&self, build: F) -> Result<SessionId, FarmError>
    where
        F: FnOnce() -> Result<SlicedSession<M>, SessionError> + Send + 'static,
    {
        self.admit(JobState::Unbuilt(Box::new(build)))
    }

    /// Admits an already-built session. Prefer [`submit`](Self::submit) when
    /// queueing many: an unbuilt session holds no transport resources while
    /// it waits.
    pub fn submit_session(&self, session: SlicedSession<M>) -> Result<SessionId, FarmError> {
        self.admit(JobState::Built(Box::new(session)))
    }

    fn admit(&self, state: JobState<M>) -> Result<SessionId, FarmError> {
        let mut guard = self.lock();
        if guard.closing {
            return Err(FarmError::Closed);
        }
        if guard.outstanding >= self.shared.cfg.capacity {
            return Err(FarmError::Saturated {
                capacity: self.shared.cfg.capacity,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        guard.outstanding += 1;
        guard.submitted += 1;
        guard.runnable.push_back(Job {
            id,
            submitted: Instant::now(),
            state,
        });
        drop(guard);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Requests cancellation of one session. Takes effect the next time the
    /// scheduler touches it (pop, park sweep, or poller wake); a session
    /// mid-slice finishes its slice first. Completed sessions are unaffected.
    pub fn cancel(&self, id: SessionId) {
        self.lock().cancelled.insert(id);
        self.shared.work.notify_all();
    }

    /// Unpauses a farm built with [`start_paused`](FarmConfig::start_paused).
    pub fn resume(&self) {
        self.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Sessions admitted and not yet resolved.
    pub fn outstanding(&self) -> usize {
        self.lock().outstanding
    }

    /// Closes admission, drains every outstanding session, joins the worker
    /// pool, and returns the [`FarmReport`]. A paused farm is resumed first —
    /// join never deadlocks on admitted work.
    pub fn join(self) -> FarmReport<M> {
        {
            let mut guard = self.lock();
            guard.closing = true;
            guard.paused = false;
        }
        self.shared.work.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
        let wall = self.started.elapsed();
        let mut state = self.shared.state.lock().unwrap();
        let results = std::mem::take(&mut state.results);
        let mut stats = FarmStats {
            submitted: state.submitted,
            completed: 0,
            failed: 0,
            build_failed: 0,
            panicked: 0,
            evicted: 0,
            cancelled: 0,
            parked_events: state.parked_events,
            workers: self.shared.cfg.workers,
            wall,
            sessions_per_sec: 0.0,
            p50_latency: None,
            p99_latency: None,
            pool_occupancy: 0.0,
        };
        let mut latencies = Vec::new();
        for r in &results {
            match &r.outcome {
                SessionOutcome::Completed => {
                    stats.completed += 1;
                    latencies.push(r.latency);
                }
                SessionOutcome::Failed(_) => stats.failed += 1,
                SessionOutcome::BuildFailed(_) => stats.build_failed += 1,
                SessionOutcome::Panicked(_) => stats.panicked += 1,
                SessionOutcome::Evicted { .. } => stats.evicted += 1,
                SessionOutcome::Cancelled => stats.cancelled += 1,
            }
        }
        latencies.sort_unstable();
        stats.p50_latency = percentile(&latencies, 0.50);
        stats.p99_latency = percentile(&latencies, 0.99);
        if !wall.is_zero() {
            stats.sessions_per_sec = stats.completed as f64 / wall.as_secs_f64();
            let pool_ns = self.shared.cfg.workers as u128 * wall.as_nanos();
            stats.pool_occupancy = state.busy_ns as f64 / pool_ns as f64;
        }
        FarmReport { results, stats }
    }

    fn lock(&self) -> MutexGuard<'_, State<M>> {
        self.shared.state.lock().unwrap()
    }
}

fn worker_loop<M: DomainModel + Send + 'static>(shared: &Shared<M>) {
    // Parked sessions can hide syscall-backed probes (TCP), so the poller
    // uses the gentler syscall tuning rather than the shared-memory one.
    let poll_set = PollSet::syscall_probes();
    loop {
        let mut state = shared.state.lock().unwrap();
        loop {
            if state.closing && state.outstanding == 0 {
                shared.work.notify_all();
                return;
            }
            // `closing` overrides `paused` so join() always drains.
            let active = !state.paused || state.closing;
            let can_run = active && !state.runnable.is_empty();
            let can_poll = active && !state.parked.is_empty() && !state.poller_active;
            if can_run || can_poll {
                break;
            }
            state = shared
                .work
                .wait_timeout(state, shared.cfg.park_slice)
                .unwrap()
                .0;
        }
        if let Some(job) = state.runnable.pop_front() {
            if state.cancelled.remove(&job.id) {
                finish(
                    shared,
                    &mut state,
                    job.id,
                    job.submitted,
                    SessionOutcome::Cancelled,
                    match job.state {
                        JobState::Built(s) => Some(*s),
                        JobState::Unbuilt(_) => None,
                    },
                );
                continue;
            }
            drop(state);
            let slice_start = Instant::now();
            let turn = run_turn(job, &shared.cfg);
            let busy = slice_start.elapsed().as_nanos() as u64;
            let mut state = shared.state.lock().unwrap();
            state.busy_ns += busy;
            match turn {
                Turn::Working(job) => {
                    state.runnable.push_back(job);
                    drop(state);
                    shared.work.notify_one();
                }
                Turn::Idle(job) => {
                    state.parked.push(Parked {
                        job,
                        idle_since: Instant::now(),
                    });
                    state.parked_events += 1;
                    drop(state);
                    // Wake a free worker to take up poller duty.
                    shared.work.notify_one();
                }
                Turn::Finished {
                    id,
                    submitted,
                    outcome,
                    session,
                } => finish(
                    shared,
                    &mut state,
                    id,
                    submitted,
                    outcome,
                    session.map(|s| *s),
                ),
            }
        } else {
            poll_parked(shared, state, &poll_set);
        }
    }
}

/// One scheduling turn for one job, run outside the farm lock. Panics in the
/// build closure or the slice are contained here: the worker reports them as
/// a [`SessionOutcome::Panicked`] result and keeps serving other sessions.
fn run_turn<M: DomainModel + Send + 'static>(job: Job<M>, cfg: &FarmConfig) -> Turn<M> {
    let Job {
        id,
        submitted,
        state,
    } = job;
    let mut session = match state {
        JobState::Built(s) => s,
        JobState::Unbuilt(build) => match catch_unwind(AssertUnwindSafe(build)) {
            Ok(Ok(s)) => Box::new(s),
            Ok(Err(e)) => {
                return Turn::Finished {
                    id,
                    submitted,
                    outcome: SessionOutcome::BuildFailed(e),
                    session: None,
                }
            }
            Err(panic) => {
                return Turn::Finished {
                    id,
                    submitted,
                    outcome: SessionOutcome::Panicked(panic_message(panic)),
                    session: None,
                }
            }
        },
    };
    if cfg.checkpoint_evictions {
        // Stash a checkpoint at each committed boundary so an eviction can
        // hand the last consistent cut back instead of dropping the work.
        session.set_auto_checkpoint(true);
    }
    match catch_unwind(AssertUnwindSafe(|| session.run_slice(cfg.slice_steps))) {
        Ok(Ok(SliceStatus::Done)) => Turn::Finished {
            id,
            submitted,
            outcome: SessionOutcome::Completed,
            session: Some(session),
        },
        Ok(Ok(SliceStatus::Working)) => Turn::Working(Job {
            id,
            submitted,
            state: JobState::Built(session),
        }),
        Ok(Ok(SliceStatus::Idle)) => Turn::Idle(Job {
            id,
            submitted,
            state: JobState::Built(session),
        }),
        Ok(Err(e)) => Turn::Finished {
            id,
            submitted,
            outcome: SessionOutcome::Failed(e),
            session: Some(session),
        },
        // A session that panicked mid-slice is in an unknown state; drop it.
        Err(panic) => Turn::Finished {
            id,
            submitted,
            outcome: SessionOutcome::Panicked(panic_message(panic)),
            session: None,
        },
    }
}

/// The poller turn: claim the whole parked set, park on it as one readiness
/// poll-set, and act on whatever the sweep surfaced — wake the session whose
/// endpoints turned actionable, evict the ones parked past the deadlock
/// window, cancel the ones asked to die while parked.
fn poll_parked<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    mut state: MutexGuard<'_, State<M>>,
    poll_set: &PollSet,
) {
    state.poller_active = true;
    let mut batch: Vec<Parked<M>> = std::mem::take(&mut state.parked);
    drop(state);

    let hit = poll_set.wait_any(&mut batch, shared.cfg.park_slice);
    let now = Instant::now();
    let woken = hit.map(|(idx, _)| batch.swap_remove(idx));
    let mut expired = Vec::new();
    let mut i = 0;
    while i < batch.len() {
        if now.duration_since(batch[i].idle_since) >= shared.cfg.deadlock_timeout {
            expired.push(batch.swap_remove(i));
        } else {
            i += 1;
        }
    }

    let mut state = shared.state.lock().unwrap();
    state.poller_active = false;
    // New sessions may have parked while we held the batch out of the lock.
    state.parked.extend(batch);
    let mut cancelled = Vec::new();
    let mut j = 0;
    while j < state.parked.len() {
        let id = state.parked[j].job.id;
        if state.cancelled.remove(&id) {
            cancelled.push(state.parked.swap_remove(j));
        } else {
            j += 1;
        }
    }
    if let Some(p) = woken {
        if state.cancelled.remove(&p.job.id) {
            cancelled.push(p);
        } else {
            state.runnable.push_back(p.job);
        }
    }
    for mut p in expired {
        let outcome = if state.cancelled.remove(&p.job.id) {
            SessionOutcome::Cancelled
        } else {
            SessionOutcome::Evicted {
                checkpoint: take_checkpoint(&mut p),
            }
        };
        resolve_parked(shared, &mut state, p, outcome);
    }
    for p in cancelled {
        resolve_parked(shared, &mut state, p, SessionOutcome::Cancelled);
    }
    drop(state);
    shared.work.notify_all();
}

/// Pulls the evicted session's last boundary checkpoint (stashed by the
/// auto-checkpoint hook when [`FarmConfig::checkpoint_evictions`] is on; the
/// session itself may still be wedged mid-burst past that boundary).
fn take_checkpoint<M: DomainModel + Send + 'static>(
    p: &mut Parked<M>,
) -> Option<Box<SessionCheckpoint>> {
    match &mut p.job.state {
        JobState::Built(s) => s.take_latest_checkpoint(),
        JobState::Unbuilt(_) => None,
    }
}

fn resolve_parked<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    state: &mut State<M>,
    parked: Parked<M>,
    outcome: SessionOutcome,
) {
    let session = match parked.job.state {
        JobState::Built(s) => Some(*s),
        JobState::Unbuilt(_) => None,
    };
    finish(
        shared,
        state,
        parked.job.id,
        parked.job.submitted,
        outcome,
        session,
    );
}

fn finish<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    state: &mut State<M>,
    id: SessionId,
    submitted: Instant,
    outcome: SessionOutcome,
    session: Option<SlicedSession<M>>,
) {
    let session = if shared.cfg.keep_sessions {
        session.map(SlicedSession::into_session)
    } else {
        None
    };
    state.results.push(FarmResult {
        id,
        outcome,
        latency: submitted.elapsed(),
        session,
    });
    state.outstanding -= 1;
    if state.closing && state.outstanding == 0 {
        shared.work.notify_all();
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
