//! The worker pool, run queue, and readiness poller.
//!
//! One mutex-guarded [`State`] holds the run queue, the parked set, and the
//! results; a single condition variable wakes idle workers. At any moment at
//! most one worker is the *poller*: it takes the whole parked set out of the
//! lock and parks on it with [`PollSet::wait_any`] — the generalized
//! spin-then-park ladder the shm transport uses for one endpoint, applied to
//! N sessions at once. Everything else is plain queue discipline.

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use predpkt_channel::{PollReady, PollSet, Readiness};
use predpkt_core::{DomainModel, SessionCheckpoint, SessionError, SliceStatus, SlicedSession};

use crate::config::{FarmConfig, FarmError};
use crate::stats::{percentile, FarmReport, FarmResult, FarmStats, SessionOutcome};

/// Handle identifying one admitted session, returned by
/// [`SessionFarm::submit`] and echoed in its [`FarmResult`].
pub type SessionId = u64;

type BuildFn<M> = Box<dyn FnOnce() -> Result<SlicedSession<M>, SessionError> + Send>;
type RespawnFn<M> = Box<dyn FnMut() -> Result<SlicedSession<M>, SessionError> + Send>;

/// The self-healing hook a [`submit_healable`](SessionFarm::submit_healable)
/// job carries for its whole life: a reusable builder producing a fresh
/// incarnation of the session (fresh sockets, fresh rings, fresh injector
/// state), plus the count of re-admissions already spent against the
/// [`ReadmitPolicy`](crate::ReadmitPolicy) budget.
struct Heal<M: DomainModel + Send + 'static> {
    respawn: RespawnFn<M>,
    retries: u32,
}

/// Sessions are admitted *unbuilt*: the build closure runs on the worker that
/// first schedules the session, so ten thousand queued sessions do not mean
/// ten thousand open socket pairs before the first slice runs.
enum JobState<M: DomainModel + Send + 'static> {
    Unbuilt(BuildFn<M>),
    Built(Box<SlicedSession<M>>),
    /// (Re)build via the job's [`Heal`] closure — the healable twin of
    /// `Unbuilt`, usable any number of times.
    Respawn,
}

struct Job<M: DomainModel + Send + 'static> {
    id: SessionId,
    submitted: Instant,
    state: JobState<M>,
    /// The self-healing hook, present for `submit_healable` jobs.
    heal: Option<Heal<M>>,
    /// A checkpoint to restore right after the next (re)build — the cut the
    /// previous incarnation died carrying.
    resume: Option<Box<SessionCheckpoint>>,
}

/// A death the re-admission policy accepted, waiting out its backoff delay.
/// Promoted back onto the run queue once `due` passes.
struct PendingReadmit<M: DomainModel + Send + 'static> {
    id: SessionId,
    submitted: Instant,
    due: Instant,
    resume: Option<Box<SessionCheckpoint>>,
    heal: Heal<M>,
}

/// A parked session: blocked on its medium, costing zero threads.
struct Parked<M: DomainModel + Send + 'static> {
    job: Job<M>,
    idle_since: Instant,
}

impl<M: DomainModel + Send + 'static> PollReady for Parked<M> {
    fn readiness(&mut self) -> Readiness {
        match &mut self.job.state {
            JobState::Built(s) => s.readiness(),
            // Unreachable: only built sessions ever park.
            JobState::Unbuilt(_) | JobState::Respawn => Readiness::Ready,
        }
    }
}

struct State<M: DomainModel + Send + 'static> {
    runnable: VecDeque<Job<M>>,
    parked: Vec<Parked<M>>,
    /// Healable deaths waiting out their backoff; still `outstanding`.
    pending_readmits: Vec<PendingReadmit<M>>,
    results: Vec<FarmResult<M>>,
    cancelled: HashSet<SessionId>,
    /// Sessions admitted and not yet resolved (runnable + parked + executing
    /// + waiting out a re-admission backoff).
    outstanding: usize,
    submitted: u64,
    parked_events: u64,
    readmitted: u64,
    gave_up: u64,
    /// Cumulative scheduled backoff delay across all re-admissions.
    backoff_ns: u64,
    busy_ns: u64,
    paused: bool,
    closing: bool,
    poller_active: bool,
}

struct Shared<M: DomainModel + Send + 'static> {
    state: Mutex<State<M>>,
    work: Condvar,
    cfg: FarmConfig,
}

/// What one scheduling turn did with a job (computed outside the lock).
enum Turn<M: DomainModel + Send + 'static> {
    Working(Job<M>),
    Idle(Job<M>),
    Finished {
        id: SessionId,
        submitted: Instant,
        outcome: SessionOutcome,
        session: Option<Box<SlicedSession<M>>>,
        /// Returned so the scheduler can re-admit a healable death.
        heal: Option<Heal<M>>,
    },
}

/// An event-driven server multiplexing many co-emulation sessions over a
/// fixed worker pool. See the [crate docs](crate) for the model and a worked
/// example.
pub struct SessionFarm<M: DomainModel + Send + 'static> {
    shared: Arc<Shared<M>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    started: Instant,
}

impl<M: DomainModel + Send + 'static> SessionFarm<M> {
    /// Validates `config` and spawns the worker pool. This is the only place
    /// the farm creates threads — session count never changes thread count.
    pub fn new(config: FarmConfig) -> Result<Self, FarmError> {
        config.validate()?;
        let workers = config.workers;
        let paused = config.start_paused;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                runnable: VecDeque::new(),
                parked: Vec::new(),
                pending_readmits: Vec::new(),
                results: Vec::new(),
                cancelled: HashSet::new(),
                outstanding: 0,
                submitted: 0,
                parked_events: 0,
                readmitted: 0,
                gave_up: 0,
                backoff_ns: 0,
                busy_ns: 0,
                paused,
                closing: false,
                poller_active: false,
            }),
            work: Condvar::new(),
            cfg: config,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("predpkt-farm-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn farm worker");
            handles.push(handle);
        }
        Ok(SessionFarm {
            shared,
            workers: handles,
            next_id: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// Admits one session. The closure builds the [`SlicedSession`] on the
    /// worker that first schedules it — compose it from the usual pieces
    /// (blueprint, [`CoEmuConfig`](predpkt_core::CoEmuConfig),
    /// [`TransportSelect`](predpkt_core::TransportSelect), predictor suite)
    /// and call [`EmuSession::into_sliced`](predpkt_core::EmuSession).
    ///
    /// # Errors
    ///
    /// [`FarmError::Saturated`] when [`capacity`](FarmConfig::capacity)
    /// sessions are already outstanding; [`FarmError::Closed`] once
    /// [`join`](Self::join) has begun.
    pub fn submit<F>(&self, build: F) -> Result<SessionId, FarmError>
    where
        F: FnOnce() -> Result<SlicedSession<M>, SessionError> + Send + 'static,
    {
        self.admit(JobState::Unbuilt(Box::new(build)), None)
    }

    /// Admits an already-built session. Prefer [`submit`](Self::submit) when
    /// queueing many: an unbuilt session holds no transport resources while
    /// it waits.
    pub fn submit_session(&self, session: SlicedSession<M>) -> Result<SessionId, FarmError> {
        self.admit(JobState::Built(Box::new(session)), None)
    }

    /// Admits a **self-healing** session: `respawn` builds a fresh
    /// incarnation (fresh transport — new sockets, new rings, new injector
    /// state) every time it is called, and the farm calls it again after
    /// each death the configured [`ReadmitPolicy`](crate::ReadmitPolicy)
    /// accepts, restoring the latest boundary checkpoint the dead
    /// incarnation carried before running on. The session keeps its
    /// [`SessionId`] across incarnations; its [`FarmResult`] reflects the
    /// final outcome and its latency spans admission to that outcome,
    /// healing delays included.
    ///
    /// Deaths eligible for healing are transport-shaped: an emulation
    /// failure ([`SessionOutcome::Failed`]) or an eviction after wedging
    /// ([`SessionOutcome::Evicted`](crate::SessionOutcome::Evicted)). Build
    /// failures, panics, and cancellations are final. Combine with
    /// [`checkpoint_evictions`](FarmConfig::checkpoint_evictions) so the
    /// dead incarnation carries a cut — without it healing restarts from
    /// cycle zero.
    ///
    /// # Errors
    ///
    /// Those of [`submit`](Self::submit), plus [`FarmError::Config`] when
    /// the farm was built without [`FarmConfig::readmit`] — a healable
    /// session with no policy to heal it under is a contradiction.
    pub fn submit_healable<F>(&self, respawn: F) -> Result<SessionId, FarmError>
    where
        F: FnMut() -> Result<SlicedSession<M>, SessionError> + Send + 'static,
    {
        if self.shared.cfg.readmit.is_none() {
            return Err(FarmError::Config(predpkt_channel::KnobError::new(
                "readmit",
                "submit_healable needs a ReadmitPolicy (FarmConfig::readmit)",
            )));
        }
        self.admit(
            JobState::Respawn,
            Some(Heal {
                respawn: Box::new(respawn),
                retries: 0,
            }),
        )
    }

    fn admit(&self, state: JobState<M>, heal: Option<Heal<M>>) -> Result<SessionId, FarmError> {
        let mut guard = self.lock();
        if guard.closing {
            return Err(FarmError::Closed);
        }
        if guard.outstanding >= self.shared.cfg.capacity {
            return Err(FarmError::Saturated {
                capacity: self.shared.cfg.capacity,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        guard.outstanding += 1;
        guard.submitted += 1;
        guard.runnable.push_back(Job {
            id,
            submitted: Instant::now(),
            state,
            heal,
            resume: None,
        });
        drop(guard);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Requests cancellation of one session. Takes effect the next time the
    /// scheduler touches it (pop, park sweep, or poller wake); a session
    /// mid-slice finishes its slice first. Completed sessions are unaffected.
    pub fn cancel(&self, id: SessionId) {
        self.lock().cancelled.insert(id);
        self.shared.work.notify_all();
    }

    /// Unpauses a farm built with [`start_paused`](FarmConfig::start_paused).
    pub fn resume(&self) {
        self.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Sessions admitted and not yet resolved.
    pub fn outstanding(&self) -> usize {
        self.lock().outstanding
    }

    /// Closes admission, drains every outstanding session, joins the worker
    /// pool, and returns the [`FarmReport`]. A paused farm is resumed first —
    /// join never deadlocks on admitted work.
    pub fn join(self) -> FarmReport<M> {
        {
            let mut guard = self.lock();
            guard.closing = true;
            guard.paused = false;
        }
        self.shared.work.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
        let wall = self.started.elapsed();
        let mut state = self.shared.state.lock().unwrap();
        let results = std::mem::take(&mut state.results);
        let mut stats = FarmStats {
            submitted: state.submitted,
            completed: 0,
            failed: 0,
            build_failed: 0,
            panicked: 0,
            evicted: 0,
            cancelled: 0,
            readmitted: state.readmitted,
            gave_up: state.gave_up,
            backoff: std::time::Duration::from_nanos(state.backoff_ns),
            parked_events: state.parked_events,
            workers: self.shared.cfg.workers,
            wall,
            sessions_per_sec: 0.0,
            p50_latency: None,
            p99_latency: None,
            pool_occupancy: 0.0,
        };
        let mut latencies = Vec::new();
        for r in &results {
            match &r.outcome {
                SessionOutcome::Completed => {
                    stats.completed += 1;
                    latencies.push(r.latency);
                }
                SessionOutcome::Failed { .. } => stats.failed += 1,
                SessionOutcome::BuildFailed(_) => stats.build_failed += 1,
                SessionOutcome::Panicked(_) => stats.panicked += 1,
                SessionOutcome::Evicted { .. } => stats.evicted += 1,
                SessionOutcome::Cancelled => stats.cancelled += 1,
            }
        }
        latencies.sort_unstable();
        stats.p50_latency = percentile(&latencies, 0.50);
        stats.p99_latency = percentile(&latencies, 0.99);
        if !wall.is_zero() {
            stats.sessions_per_sec = stats.completed as f64 / wall.as_secs_f64();
            let pool_ns = self.shared.cfg.workers as u128 * wall.as_nanos();
            stats.pool_occupancy = state.busy_ns as f64 / pool_ns as f64;
        }
        FarmReport { results, stats }
    }

    fn lock(&self) -> MutexGuard<'_, State<M>> {
        self.shared.state.lock().unwrap()
    }
}

fn worker_loop<M: DomainModel + Send + 'static>(shared: &Shared<M>) {
    // Parked sessions can hide syscall-backed probes (TCP), so the poller
    // uses the gentler syscall tuning rather than the shared-memory one.
    let poll_set = PollSet::syscall_probes();
    loop {
        let mut state = shared.state.lock().unwrap();
        loop {
            if state.closing && state.outstanding == 0 {
                shared.work.notify_all();
                return;
            }
            // `closing` overrides `paused` so join() always drains.
            let active = !state.paused || state.closing;
            if active {
                promote_due_readmits(&mut state);
            }
            let can_run = active && !state.runnable.is_empty();
            let can_poll = active && !state.parked.is_empty() && !state.poller_active;
            if can_run || can_poll {
                break;
            }
            // The park-slice timeout doubles as the re-admission clock: a
            // backoff delay expires within one slice of its due time.
            state = shared
                .work
                .wait_timeout(state, shared.cfg.park_slice)
                .unwrap()
                .0;
        }
        if let Some(job) = state.runnable.pop_front() {
            if state.cancelled.remove(&job.id) {
                finish(
                    shared,
                    &mut state,
                    job.id,
                    job.submitted,
                    SessionOutcome::Cancelled,
                    match job.state {
                        JobState::Built(s) => Some(*s),
                        JobState::Unbuilt(_) | JobState::Respawn => None,
                    },
                );
                continue;
            }
            drop(state);
            let slice_start = Instant::now();
            let turn = run_turn(job, &shared.cfg);
            let busy = slice_start.elapsed().as_nanos() as u64;
            let mut state = shared.state.lock().unwrap();
            state.busy_ns += busy;
            match turn {
                Turn::Working(job) => {
                    state.runnable.push_back(job);
                    drop(state);
                    shared.work.notify_one();
                }
                Turn::Idle(job) => {
                    state.parked.push(Parked {
                        job,
                        idle_since: Instant::now(),
                    });
                    state.parked_events += 1;
                    drop(state);
                    // Wake a free worker to take up poller duty.
                    shared.work.notify_one();
                }
                Turn::Finished {
                    id,
                    submitted,
                    outcome,
                    session,
                    heal,
                } => settle(
                    shared,
                    &mut state,
                    id,
                    submitted,
                    outcome,
                    session.map(|s| *s),
                    heal,
                ),
            }
        } else {
            poll_parked(shared, state, &poll_set);
        }
    }
}

/// Moves every pending re-admission whose backoff has expired back onto the
/// run queue (as a respawn job carrying its predecessor's cut). Idempotent
/// under the lock — every waking worker may call it.
fn promote_due_readmits<M: DomainModel + Send + 'static>(state: &mut State<M>) {
    let now = Instant::now();
    let mut i = 0;
    while i < state.pending_readmits.len() {
        if state.pending_readmits[i].due <= now {
            let p = state.pending_readmits.swap_remove(i);
            state.runnable.push_back(Job {
                id: p.id,
                submitted: p.submitted,
                state: JobState::Respawn,
                heal: Some(p.heal),
                resume: p.resume,
            });
        } else {
            i += 1;
        }
    }
}

/// Routes a finished turn: healable deaths the [`ReadmitPolicy`] accepts are
/// scheduled for re-admission (no result recorded — the session is still
/// outstanding); everything else lands as the session's final outcome. A
/// death the policy declines is counted in `gave_up` and then recorded — a
/// refused heal is never silent.
#[allow(clippy::too_many_arguments)]
fn settle<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    state: &mut State<M>,
    id: SessionId,
    submitted: Instant,
    outcome: SessionOutcome,
    session: Option<SlicedSession<M>>,
    heal: Option<Heal<M>>,
) {
    let healable = matches!(
        outcome,
        SessionOutcome::Failed { .. } | SessionOutcome::Evicted { .. }
    );
    if let (Some(mut heal), Some(policy), true) = (heal, shared.cfg.readmit, healable) {
        if state.cancelled.remove(&id) {
            finish(
                shared,
                state,
                id,
                submitted,
                SessionOutcome::Cancelled,
                session,
            );
            return;
        }
        if heal.retries >= policy.max_retries
            || state.pending_readmits.len() >= policy.max_outstanding
        {
            state.gave_up += 1;
            finish(shared, state, id, submitted, outcome, session);
            return;
        }
        let resume = match outcome {
            SessionOutcome::Failed { checkpoint, .. } => checkpoint,
            SessionOutcome::Evicted { checkpoint } => checkpoint,
            _ => unreachable!("healable outcomes carry the checkpoint"),
        };
        let delay = policy.delay_for(heal.retries);
        heal.retries += 1;
        state.readmitted += 1;
        state.backoff_ns += delay.as_nanos() as u64;
        // The dead incarnation's transport-scoped remains drop here; the
        // respawn closure builds the fresh one when the retry comes due.
        drop(session);
        state.pending_readmits.push(PendingReadmit {
            id,
            submitted,
            due: Instant::now() + delay,
            resume,
            heal,
        });
        return;
    }
    finish(shared, state, id, submitted, outcome, session);
}

/// One scheduling turn for one job, run outside the farm lock. Panics in the
/// build closure or the slice are contained here: the worker reports them as
/// a [`SessionOutcome::Panicked`] result and keeps serving other sessions.
fn run_turn<M: DomainModel + Send + 'static>(job: Job<M>, cfg: &FarmConfig) -> Turn<M> {
    let Job {
        id,
        submitted,
        state,
        mut heal,
        mut resume,
    } = job;
    let mut session = match state {
        JobState::Built(s) => s,
        JobState::Unbuilt(build) => match catch_unwind(AssertUnwindSafe(build)) {
            Ok(Ok(s)) => Box::new(s),
            Ok(Err(e)) => {
                return Turn::Finished {
                    id,
                    submitted,
                    outcome: SessionOutcome::BuildFailed(e),
                    session: None,
                    heal,
                }
            }
            Err(panic) => {
                return Turn::Finished {
                    id,
                    submitted,
                    outcome: SessionOutcome::Panicked(panic_message(panic)),
                    session: None,
                    heal,
                }
            }
        },
        JobState::Respawn => {
            let respawn = heal
                .as_mut()
                .map(|h| &mut h.respawn)
                .expect("respawn jobs carry their heal hook");
            match catch_unwind(AssertUnwindSafe(respawn)) {
                Ok(Ok(s)) => Box::new(s),
                Ok(Err(e)) => {
                    return Turn::Finished {
                        id,
                        submitted,
                        outcome: SessionOutcome::BuildFailed(e),
                        session: None,
                        heal,
                    }
                }
                Err(panic) => {
                    return Turn::Finished {
                        id,
                        submitted,
                        outcome: SessionOutcome::Panicked(panic_message(panic)),
                        session: None,
                        heal,
                    }
                }
            }
        }
    };
    if let Some(ckpt) = resume.take() {
        // A re-admitted incarnation rewinds onto its predecessor's cut
        // before its first slice. A rejected cut is a build failure — the
        // fresh session never ran, and retrying a deterministic rejection
        // would loop, so it is final.
        if let Err(e) = session.restore(&ckpt) {
            return Turn::Finished {
                id,
                submitted,
                outcome: SessionOutcome::BuildFailed(e.into()),
                session: None,
                heal,
            };
        }
    }
    if cfg.checkpoint_evictions {
        // Stash a checkpoint at each committed boundary so an eviction can
        // hand the last consistent cut back instead of dropping the work.
        session.set_auto_checkpoint(true);
    }
    match catch_unwind(AssertUnwindSafe(|| session.run_slice(cfg.slice_steps))) {
        Ok(Ok(SliceStatus::Done)) => Turn::Finished {
            id,
            submitted,
            outcome: SessionOutcome::Completed,
            session: Some(session),
            heal,
        },
        Ok(Ok(SliceStatus::Working)) => Turn::Working(Job {
            id,
            submitted,
            state: JobState::Built(session),
            heal,
            resume: None,
        }),
        Ok(Ok(SliceStatus::Idle)) => Turn::Idle(Job {
            id,
            submitted,
            state: JobState::Built(session),
            heal,
            resume: None,
        }),
        Ok(Err(e)) => Turn::Finished {
            id,
            submitted,
            // A failed session carries its last cut out exactly like an
            // evicted one: a transport that died mid-run loses nothing
            // past the latest boundary checkpoint.
            outcome: SessionOutcome::Failed {
                error: e,
                checkpoint: session.take_latest_checkpoint(),
            },
            session: Some(session),
            heal,
        },
        // A session that panicked mid-slice is in an unknown state; drop it.
        Err(panic) => Turn::Finished {
            id,
            submitted,
            outcome: SessionOutcome::Panicked(panic_message(panic)),
            session: None,
            heal,
        },
    }
}

/// The poller turn: claim the whole parked set, park on it as one readiness
/// poll-set, and act on whatever the sweep surfaced — wake the session whose
/// endpoints turned actionable, evict the ones parked past the deadlock
/// window, cancel the ones asked to die while parked.
fn poll_parked<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    mut state: MutexGuard<'_, State<M>>,
    poll_set: &PollSet,
) {
    state.poller_active = true;
    let mut batch: Vec<Parked<M>> = std::mem::take(&mut state.parked);
    drop(state);

    let hit = poll_set.wait_any(&mut batch, shared.cfg.park_slice);
    let now = Instant::now();
    let woken = hit.map(|(idx, _)| batch.swap_remove(idx));
    let mut expired = Vec::new();
    let mut i = 0;
    while i < batch.len() {
        if now.duration_since(batch[i].idle_since) >= shared.cfg.deadlock_timeout {
            expired.push(batch.swap_remove(i));
        } else {
            i += 1;
        }
    }

    let mut state = shared.state.lock().unwrap();
    state.poller_active = false;
    // New sessions may have parked while we held the batch out of the lock.
    state.parked.extend(batch);
    let mut cancelled = Vec::new();
    let mut j = 0;
    while j < state.parked.len() {
        let id = state.parked[j].job.id;
        if state.cancelled.remove(&id) {
            cancelled.push(state.parked.swap_remove(j));
        } else {
            j += 1;
        }
    }
    if let Some(p) = woken {
        if state.cancelled.remove(&p.job.id) {
            cancelled.push(p);
        } else {
            state.runnable.push_back(p.job);
        }
    }
    for mut p in expired {
        let outcome = if state.cancelled.remove(&p.job.id) {
            SessionOutcome::Cancelled
        } else {
            SessionOutcome::Evicted {
                checkpoint: take_checkpoint(&mut p),
            }
        };
        resolve_parked(shared, &mut state, p, outcome);
    }
    for p in cancelled {
        resolve_parked(shared, &mut state, p, SessionOutcome::Cancelled);
    }
    drop(state);
    shared.work.notify_all();
}

/// Pulls the evicted session's last boundary checkpoint (stashed by the
/// auto-checkpoint hook when [`FarmConfig::checkpoint_evictions`] is on; the
/// session itself may still be wedged mid-burst past that boundary).
fn take_checkpoint<M: DomainModel + Send + 'static>(
    p: &mut Parked<M>,
) -> Option<Box<SessionCheckpoint>> {
    match &mut p.job.state {
        JobState::Built(s) => s.take_latest_checkpoint(),
        JobState::Unbuilt(_) | JobState::Respawn => None,
    }
}

fn resolve_parked<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    state: &mut State<M>,
    parked: Parked<M>,
    outcome: SessionOutcome,
) {
    let heal = parked.job.heal;
    let session = match parked.job.state {
        JobState::Built(s) => Some(*s),
        JobState::Unbuilt(_) | JobState::Respawn => None,
    };
    settle(
        shared,
        state,
        parked.job.id,
        parked.job.submitted,
        outcome,
        session,
        heal,
    );
}

fn finish<M: DomainModel + Send + 'static>(
    shared: &Shared<M>,
    state: &mut State<M>,
    id: SessionId,
    submitted: Instant,
    outcome: SessionOutcome,
    session: Option<SlicedSession<M>>,
) {
    let session = if shared.cfg.keep_sessions {
        session.map(SlicedSession::into_session)
    } else {
        None
    };
    state.results.push(FarmResult {
        id,
        outcome,
        latency: submitted.elapsed(),
        session,
    });
    state.outstanding -= 1;
    if state.closing && state.outstanding == 0 {
        shared.work.notify_all();
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
