//! Farm sizing and scheduling knobs, plus the admission-control error type.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use predpkt_channel::KnobError;

/// Sizing and scheduling knobs for a [`SessionFarm`](crate::SessionFarm).
///
/// The defaults run a small pool suitable for tests; servers should size
/// [`workers`](Self::workers) to the machine and [`capacity`](Self::capacity)
/// to the memory/fd budget they are willing to commit to in-flight sessions.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    pub(crate) workers: usize,
    pub(crate) capacity: usize,
    pub(crate) slice_steps: u32,
    pub(crate) park_slice: Duration,
    pub(crate) deadlock_timeout: Duration,
    pub(crate) keep_sessions: bool,
    pub(crate) start_paused: bool,
    pub(crate) checkpoint_evictions: bool,
    pub(crate) readmit: Option<ReadmitPolicy>,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            workers: 4,
            capacity: 1024,
            slice_steps: 1024,
            park_slice: Duration::from_micros(200),
            deadlock_timeout: Duration::from_secs(5),
            keep_sessions: false,
            start_paused: false,
            checkpoint_evictions: false,
            readmit: None,
        }
    }
}

/// Re-admission knobs for self-healing sessions (see
/// [`SessionFarm::submit_healable`](crate::SessionFarm::submit_healable)).
///
/// When a healable session dies — a transport failure surfaced as
/// [`SessionOutcome::Failed`](crate::SessionOutcome::Failed), or an eviction
/// after wedging — the farm schedules a retry instead of recording the
/// death: after an exponential-backoff delay it rebuilds the session on a
/// **fresh** transport (the respawn closure), restores the latest boundary
/// checkpoint the dead incarnation carried out, and runs on. The budget is
/// bounded twice over: per session by [`max_retries`](Self::max_retries),
/// and farm-wide by [`max_outstanding`](Self::max_outstanding) deaths
/// waiting out their backoff at once. A death the policy declines to retry
/// is **never silent** — it lands as the session's final outcome and counts
/// in [`FarmStats::gave_up`](crate::FarmStats::gave_up).
#[derive(Debug, Clone, Copy)]
pub struct ReadmitPolicy {
    pub(crate) max_retries: u32,
    pub(crate) base_delay: Duration,
    pub(crate) max_delay: Duration,
    pub(crate) max_outstanding: usize,
}

impl Default for ReadmitPolicy {
    fn default() -> Self {
        ReadmitPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            max_outstanding: 32,
        }
    }
}

impl ReadmitPolicy {
    /// The default policy (3 retries, 1ms–100ms exponential backoff, 32
    /// outstanding re-admissions).
    pub fn new() -> Self {
        ReadmitPolicy::default()
    }

    /// Times one session may be re-admitted before the farm gives up on it.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Delay before the first re-admission; each subsequent retry of the
    /// same session doubles it (capped at [`max_delay`](Self::max_delay)).
    /// Zero means immediate re-admission.
    pub fn base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// Ceiling on the per-retry backoff delay.
    pub fn max_delay(mut self, delay: Duration) -> Self {
        self.max_delay = delay;
        self
    }

    /// Farm-wide cap on deaths waiting out their backoff at once; a death
    /// arriving past the cap is given up immediately (and counted).
    pub fn max_outstanding(mut self, cap: usize) -> Self {
        self.max_outstanding = cap;
        self
    }

    /// The backoff delay before retry number `retries` (0-based):
    /// `base_delay * 2^retries`, capped at `max_delay`.
    pub(crate) fn delay_for(&self, retries: u32) -> Duration {
        let factor = 1u32.checked_shl(retries).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .unwrap_or(self.max_delay)
            .min(self.max_delay)
    }

    pub(crate) fn validate(&self) -> Result<(), KnobError> {
        if self.max_retries == 0 {
            return Err(KnobError::new(
                "readmit.max_retries",
                "a zero-retry policy can never re-admit; drop the policy instead",
            ));
        }
        if self.max_outstanding == 0 {
            return Err(KnobError::new(
                "readmit.max_outstanding",
                "a zero-slot re-admission queue gives up on every death",
            ));
        }
        if self.max_delay < self.base_delay {
            return Err(KnobError::new(
                "readmit.max_delay",
                format!(
                    "backoff ceiling below its base ({:?} < {:?})",
                    self.max_delay, self.base_delay
                ),
            ));
        }
        Ok(())
    }
}

impl FarmConfig {
    /// The default configuration (4 workers, 1024-session capacity).
    pub fn new() -> Self {
        FarmConfig::default()
    }

    /// Number of worker threads in the fixed pool. This is the farm's *only*
    /// source of threads — sessions never get their own.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Maximum sessions outstanding (runnable + parked + executing) before
    /// [`submit`](crate::SessionFarm::submit) refuses with
    /// [`FarmError::Saturated`].
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Scheduling rounds a session may consume per slice before it yields the
    /// worker — the farm's time-slice, in the same granularity the sliced
    /// runner steps (one round ≈ one step of each domain).
    pub fn slice_steps(mut self, steps: u32) -> Self {
        self.slice_steps = steps;
        self
    }

    /// How long the poller parks on the readiness poll-set per sweep, and the
    /// idle workers' condition-variable re-check interval.
    pub fn park_slice(mut self, slice: Duration) -> Self {
        self.park_slice = slice;
        self
    }

    /// How long a session may stay parked without its endpoints turning
    /// actionable before the farm gives up on it and reports
    /// [`SessionOutcome::Evicted`](crate::SessionOutcome::Evicted). This is
    /// the farm-side analogue of the blocking runner's deadlock timeout: a
    /// wedged peer costs one eviction, never a worker.
    pub fn deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.deadlock_timeout = timeout;
        self
    }

    /// Keep each finished [`EmuSession`](predpkt_core::EmuSession) in its
    /// [`FarmResult`](crate::FarmResult) so the caller can harvest reports,
    /// traces, and ledgers. Off by default: ten thousand retained sessions
    /// means ten thousand sets of sockets and rings held until
    /// [`join`](crate::SessionFarm::join).
    pub fn keep_sessions(mut self, keep: bool) -> Self {
        self.keep_sessions = keep;
        self
    }

    /// Checkpoint sessions at each committed boundary they pass, so that an
    /// eviction carries the last consistent cut out in
    /// [`SessionOutcome::Evicted`](crate::SessionOutcome::Evicted) instead of
    /// dropping the session's progress. The checkpoint can be re-admitted to
    /// this farm (or migrated to another host) via
    /// [`EmuSession::restore`](predpkt_core::EmuSession::restore). Off by
    /// default: each checkpoint copies the session's full state, which is
    /// wasted work for farms that treat wedged sessions as disposable.
    pub fn checkpoint_evictions(mut self, enabled: bool) -> Self {
        self.checkpoint_evictions = enabled;
        self
    }

    /// Arms self-healing re-admission: sessions admitted through
    /// [`submit_healable`](crate::SessionFarm::submit_healable) that die of
    /// a transport failure or eviction are rebuilt on a fresh transport and
    /// resumed from their latest boundary checkpoint, under `policy`'s
    /// backoff schedule and budgets. Combine with
    /// [`checkpoint_evictions`](Self::checkpoint_evictions) — without it the
    /// dead session carries no cut and healing restarts from cycle zero.
    pub fn readmit(mut self, policy: ReadmitPolicy) -> Self {
        self.readmit = Some(policy);
        self
    }

    /// Start with the scheduler paused: sessions are admitted (and counted
    /// against capacity) but none execute until
    /// [`resume`](crate::SessionFarm::resume). Deterministic
    /// saturation/cancellation tests want this; servers do not.
    pub fn start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), KnobError> {
        if self.workers == 0 {
            return Err(KnobError::new("workers", "need at least one worker thread"));
        }
        if self.capacity == 0 {
            return Err(KnobError::new(
                "capacity",
                "a zero-capacity farm can never admit a session",
            ));
        }
        if self.slice_steps == 0 {
            return Err(KnobError::new(
                "slice_steps",
                "a zero-round slice cannot make progress",
            ));
        }
        if self.park_slice.is_zero() {
            return Err(KnobError::new(
                "park_slice",
                "the poller needs a non-zero park interval",
            ));
        }
        if self.deadlock_timeout < self.park_slice {
            return Err(KnobError::new(
                "deadlock_timeout",
                format!(
                    "must cover at least one park slice ({:?} < {:?})",
                    self.deadlock_timeout, self.park_slice
                ),
            ));
        }
        if let Some(policy) = &self.readmit {
            policy.validate()?;
        }
        Ok(())
    }
}

/// Why the farm refused a request.
#[derive(Debug)]
pub enum FarmError {
    /// The admission queue is full: `capacity` sessions are already
    /// outstanding. Shed load or retry after some complete — the farm never
    /// queues without bound.
    Saturated {
        /// The configured [`FarmConfig::capacity`] that was hit.
        capacity: usize,
    },
    /// [`join`](crate::SessionFarm::join) has begun; the farm no longer
    /// admits sessions.
    Closed,
    /// The [`FarmConfig`] failed validation.
    Config(KnobError),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Saturated { capacity } => {
                write!(f, "farm saturated: {capacity} sessions already outstanding")
            }
            FarmError::Closed => write!(f, "farm is closed to new sessions"),
            FarmError::Config(e) => write!(f, "invalid farm config: {e}"),
        }
    }
}

impl Error for FarmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FarmError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KnobError> for FarmError {
    fn from(e: KnobError) -> Self {
        FarmError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(FarmConfig::new().validate().is_ok());
    }

    #[test]
    fn zero_workers_is_rejected() {
        let err = FarmConfig::new().workers(0).validate().unwrap_err();
        assert!(err.to_string().contains("workers"));
    }

    #[test]
    fn readmit_policy_validates_through_the_farm_config() {
        assert!(FarmConfig::new()
            .readmit(ReadmitPolicy::new())
            .validate()
            .is_ok());
        let err = FarmConfig::new()
            .readmit(ReadmitPolicy::new().max_retries(0))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("max_retries"));
        let err = FarmConfig::new()
            .readmit(
                ReadmitPolicy::new()
                    .base_delay(Duration::from_millis(50))
                    .max_delay(Duration::from_millis(1)),
            )
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("max_delay"));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ReadmitPolicy::new()
            .base_delay(Duration::from_millis(2))
            .max_delay(Duration::from_millis(12));
        assert_eq!(policy.delay_for(0), Duration::from_millis(2));
        assert_eq!(policy.delay_for(1), Duration::from_millis(4));
        assert_eq!(policy.delay_for(2), Duration::from_millis(8));
        assert_eq!(policy.delay_for(3), Duration::from_millis(12));
        assert_eq!(policy.delay_for(60), Duration::from_millis(12));
    }

    #[test]
    fn deadlock_timeout_must_cover_a_park_slice() {
        let err = FarmConfig::new()
            .park_slice(Duration::from_millis(10))
            .deadlock_timeout(Duration::from_millis(1))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("deadlock_timeout"));
    }
}
