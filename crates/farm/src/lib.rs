//! # predpkt-farm — a session server for co-emulation at scale
//!
//! Every transport backend in this workspace runs one co-emulation *session*:
//! two domains, two channel endpoints, and (for the socket-like media) two
//! dedicated threads parked in `wait_for_packet` whenever their side has
//! nothing to do. That shape is right for a single long-running emulation and
//! wrong for a *server* — regression farms, parameter sweeps, and CI matrices
//! want thousands of short sessions in flight at once, and thousands of
//! sessions times two threads each is a thread-per-connection server wearing a
//! co-emulation costume.
//!
//! This crate is the event-driven alternative. A [`SessionFarm`] owns a fixed
//! pool of worker threads (workers ≪ sessions) and multiplexes every admitted
//! session over it:
//!
//! * Sessions run as [`SlicedSession`]s — bounded co-operative slices instead
//!   of blocking runs, so a worker never commits to a session for longer than
//!   one slice ([`FarmConfig::slice_steps`] scheduling rounds).
//! * A session that goes [`Idle`](predpkt_core::SliceStatus::Idle) — blocked
//!   on its transport medium with nothing deliverable — is **parked**: it
//!   costs zero threads until one worker, acting as the *poller*, observes
//!   data (or death) on its endpoints through the
//!   [`PollSet`](predpkt_channel::PollSet) readiness machinery and moves it
//!   back to the run queue.
//! * Admission is bounded: past [`FarmConfig::capacity`] outstanding sessions,
//!   [`SessionFarm::submit`] refuses with [`FarmError::Saturated`] instead of
//!   queueing without limit — the caller decides whether to retry, shed, or
//!   block, exactly like the retry-budget knob on the reliable transport.
//! * Sessions are isolated: a session that panics, fails, or wedges (parked
//!   past [`FarmConfig::deadlock_timeout`] without its endpoints turning
//!   readable) is reported — [`SessionOutcome::Panicked`] /
//!   [`Failed`](SessionOutcome::Failed) / [`Evicted`](SessionOutcome::Evicted)
//!   — and its worker moves on. A wedged peer never stalls the pool.
//! * Sessions can **self-heal**: one admitted through
//!   [`SessionFarm::submit_healable`] under a [`ReadmitPolicy`] is, after a
//!   transport death (failure or eviction), rebuilt on a fresh transport
//!   after an exponential-backoff delay and resumed from the latest boundary
//!   checkpoint its dead incarnation carried out — open-loop re-admission
//!   with a bounded retry budget; a death the policy declines is counted in
//!   [`FarmStats::gave_up`], never dropped silently.
//!
//! [`SessionFarm::join`] drains the farm and returns a [`FarmReport`]: one
//! [`FarmResult`] per session (optionally carrying the finished
//! [`EmuSession`](predpkt_core::EmuSession) for reports, traces, and ledgers)
//! plus farm-level [`FarmStats`] — sessions/sec, p50/p99 session latency,
//! pool occupancy, park and eviction counts.
//!
//! Scheduling never changes committed results: a farm-scheduled session
//! commits bit-identical traces, channel statistics, and time ledgers to the
//! same session run directly — the cross-transport conformance suite holds
//! slice-for-slice (see `tests/farm_stress.rs`).
//!
//! ```
//! use predpkt_core::{EmuSession, Side, SocBlueprint};
//! use predpkt_ahb::engine::BusOp;
//! use predpkt_ahb::masters::TrafficGenMaster;
//! use predpkt_ahb::slaves::MemorySlave;
//! use predpkt_farm::{FarmConfig, SessionFarm};
//!
//! let farm = SessionFarm::new(FarmConfig::new().workers(2).keep_sessions(true))?;
//! for seed in 0..16u64 {
//!     farm.submit(move || {
//!         let blueprint = SocBlueprint::new()
//!             .master(Side::Accelerator, move || {
//!                 Box::new(
//!                     TrafficGenMaster::from_ops(vec![BusOp::write_single(0x40, seed as u32)])
//!                         .looping(),
//!                 )
//!             })
//!             .slave(Side::Simulator, 0x0, 0x1000, || Box::new(MemorySlave::new(0x1000, 0)));
//!         Ok(EmuSession::from_blueprint(&blueprint).build()?.into_sliced(100))
//!     })?;
//! }
//! let report = farm.join();
//! assert_eq!(report.stats.completed, 16);
//! for result in &report.results {
//!     let session = result.session.as_ref().expect("keep_sessions(true)");
//!     assert!(session.report().billed_words() > 0);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod farm;
mod stats;

pub use config::{FarmConfig, FarmError, ReadmitPolicy};
pub use farm::{SessionFarm, SessionId};
pub use stats::{FarmReport, FarmResult, FarmStats, SessionOutcome};

pub use predpkt_core::{SliceStatus, SlicedSession};
