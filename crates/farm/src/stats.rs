//! Per-session outcomes and farm-level statistics.

use std::fmt;
use std::time::Duration;

use predpkt_core::{DomainModel, EmuSession, SessionError};
use predpkt_sim::SimError;

use crate::farm::SessionId;

/// How one admitted session ended.
#[derive(Debug)]
pub enum SessionOutcome {
    /// The session reached its committed-cycle target.
    Completed,
    /// The session surfaced an emulation error (deadlock on a dead medium,
    /// retry-budget exhaustion, rollback-depth overflow, …).
    Failed {
        /// The emulation error that killed the session.
        error: SimError,
        /// The session's last boundary checkpoint, when the farm was
        /// configured with
        /// [`checkpoint_evictions`](crate::FarmConfig::checkpoint_evictions)
        /// and the session reached at least one committed boundary before
        /// dying. A failed session is as re-admittable as an evicted one —
        /// a transport that died mid-run loses nothing past the last cut.
        checkpoint: Option<Box<predpkt_core::SessionCheckpoint>>,
    },
    /// The session's build closure returned an error before a single slice
    /// ran — bad blueprint, unroutable address map, transport setup failure.
    BuildFailed(SessionError),
    /// The session (or its build closure) panicked. The panic was contained
    /// to this session; the worker that caught it kept serving others.
    Panicked(String),
    /// The session sat parked past the farm's deadlock window without its
    /// endpoints ever turning actionable — a wedged peer, from the farm's
    /// point of view — and was removed to keep the pool healthy.
    Evicted {
        /// The session's last boundary checkpoint, when the farm was
        /// configured with
        /// [`checkpoint_evictions`](crate::FarmConfig::checkpoint_evictions)
        /// and the session reached at least one committed boundary before
        /// wedging. Re-admitting it elsewhere via
        /// [`EmuSession::restore`](predpkt_core::EmuSession::restore) resumes
        /// the run from that boundary instead of losing the work.
        checkpoint: Option<Box<predpkt_core::SessionCheckpoint>>,
    },
    /// The session was cancelled via [`cancel`](crate::SessionFarm::cancel)
    /// before it completed.
    Cancelled,
}

impl SessionOutcome {
    /// True for [`SessionOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed)
    }
}

impl fmt::Display for SessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionOutcome::Completed => write!(f, "completed"),
            SessionOutcome::Failed { error, checkpoint } => match checkpoint {
                Some(c) => write!(
                    f,
                    "failed: {error} (checkpoint at cycle {})",
                    c.committed_cycles()
                ),
                None => write!(f, "failed: {error}"),
            },
            SessionOutcome::BuildFailed(e) => write!(f, "build failed: {e}"),
            SessionOutcome::Panicked(msg) => write!(f, "panicked: {msg}"),
            SessionOutcome::Evicted { checkpoint } => match checkpoint {
                Some(c) => write!(
                    f,
                    "evicted (parked past deadlock window; checkpoint at cycle {})",
                    c.committed_cycles()
                ),
                None => write!(f, "evicted (parked past deadlock window)"),
            },
            SessionOutcome::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// The farm's record of one admitted session.
#[derive(Debug)]
pub struct FarmResult<M: DomainModel + Send + 'static> {
    /// The handle [`submit`](crate::SessionFarm::submit) returned.
    pub id: SessionId,
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Wall-clock time from admission to the outcome being recorded —
    /// queueing and parked time included, because that is what a caller
    /// waiting on the session experienced.
    pub latency: Duration,
    /// The finished session, when the farm was configured with
    /// [`keep_sessions`](crate::FarmConfig::keep_sessions). Present for
    /// completed, failed, and evicted sessions whose build succeeded.
    pub session: Option<EmuSession<M>>,
}

/// Farm-level statistics computed at [`join`](crate::SessionFarm::join).
#[derive(Debug, Clone)]
pub struct FarmStats {
    /// Sessions admitted over the farm's lifetime.
    pub submitted: u64,
    /// Sessions that reached their target.
    pub completed: u64,
    /// Sessions that surfaced an emulation error.
    pub failed: u64,
    /// Sessions whose build closure failed.
    pub build_failed: u64,
    /// Sessions that panicked (contained per session).
    pub panicked: u64,
    /// Sessions evicted after parking past the deadlock window.
    pub evicted: u64,
    /// Sessions cancelled before completion.
    pub cancelled: u64,
    /// Deaths healed by re-admission: a failed or evicted healable session
    /// rebuilt on a fresh transport and resumed from its last cut (see
    /// [`ReadmitPolicy`](crate::ReadmitPolicy)). One session retried twice
    /// counts twice.
    pub readmitted: u64,
    /// Deaths the re-admission policy declined to retry — per-session retry
    /// budget exhausted or the farm-wide outstanding cap hit. Each one also
    /// landed as a final failed/evicted outcome; this counter exists so
    /// degraded operation is visible at the roll-up, never silent.
    pub gave_up: u64,
    /// Cumulative backoff delay scheduled across all re-admissions — the
    /// wall-clock price of healing (time sessions spent waiting to retry,
    /// not counting the rebuild itself).
    pub backoff: Duration,
    /// Times any session was parked on the readiness poll-set.
    pub parked_events: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Wall-clock time from farm construction to drain.
    pub wall: Duration,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Median admission-to-completion latency over completed sessions;
    /// `None` when no session completed (a percentile over an empty set has
    /// no value — reporting zero here would fake an infinitely fast farm).
    pub p50_latency: Option<Duration>,
    /// 99th-percentile admission-to-completion latency over completed
    /// sessions; `None` when no session completed.
    pub p99_latency: Option<Duration>,
    /// Fraction of the pool's total thread-time spent executing session
    /// slices (1.0 = every worker busy the whole run).
    pub pool_occupancy: f64,
}

impl fmt::Display for FarmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions over {} workers in {:.1?}: {:.0} sessions/sec, \
             p50 {} / p99 {}, occupancy {:.0}%, {} parked, {} evicted, \
             {} readmitted ({} gave up, {:.1?} backoff)",
            self.completed,
            self.workers,
            self.wall,
            self.sessions_per_sec,
            fmt_latency(self.p50_latency),
            fmt_latency(self.p99_latency),
            self.pool_occupancy * 100.0,
            self.parked_events,
            self.evicted,
            self.readmitted,
            self.gave_up,
            self.backoff,
        )
    }
}

/// Everything [`join`](crate::SessionFarm::join) hands back: one
/// [`FarmResult`] per admitted session plus the [`FarmStats`] roll-up.
#[derive(Debug)]
pub struct FarmReport<M: DomainModel + Send + 'static> {
    /// Per-session results, in completion order.
    pub results: Vec<FarmResult<M>>,
    /// The farm-level roll-up.
    pub stats: FarmStats,
}

impl<M: DomainModel + Send + 'static> FarmReport<M> {
    /// The result for one session handle, if it was admitted.
    pub fn result(&self, id: SessionId) -> Option<&FarmResult<M>> {
        self.results.iter().find(|r| r.id == id)
    }
}

/// `values` must be sorted ascending; `q` in `[0, 1]` (nearest-rank).
/// `None` for an empty set: a percentile of nothing is not zero, and
/// downstream consumers (the bench JSON) must render it as an explicit
/// null, never a NaN or a fake fast number.
pub(crate) fn percentile(values: &[Duration], q: f64) -> Option<Duration> {
    if values.is_empty() {
        return None;
    }
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    Some(values[rank - 1])
}

/// Renders an optional latency for [`FarmStats`]'s `Display` ("n/a" when no
/// session completed).
fn fmt_latency(latency: Option<Duration>) -> String {
    match latency {
        Some(d) => format!("{d:.1?}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&v, 0.50), Some(Duration::from_micros(50)));
        assert_eq!(percentile(&v, 0.99), Some(Duration::from_micros(99)));
        assert_eq!(percentile(&v, 1.0), Some(Duration::from_micros(100)));
    }

    #[test]
    fn percentile_of_nothing_is_explicitly_absent() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[], 0.99), None);
    }
}
