//! TCP socket transport: a per-side endpoint over `std::net::TcpStream`.
//!
//! The paper's channel is a *physical* link (PCI between host and iPROVE);
//! every other backend in this crate is in-process, so the cost model has
//! never been exercised over a real wire. [`TcpEndpoint`] closes that gap: it
//! carries [`Packet`]s over a real TCP stream with a length-prefixed frame
//! encoding, so a session's two domains can live in different processes or on
//! different hosts (remote accelerator farms). TCP guarantees ordered,
//! lossless delivery of *bytes*; the frame codec restores packet boundaries,
//! and anything the link itself cannot guarantee (process crashes, half-open
//! connections) surfaces as a typed [`FrameError`] or as starvation the
//! session layer detects — compose with
//! [`ReliableTransport`](crate::ReliableTransport) when the link must also
//! absorb injected faults.
//!
//! ## Wire format
//!
//! Each packet becomes one frame:
//!
//! ```text
//! [u32 LE: n = wire words] [n × u32 LE: tag word, payload words...]
//! ```
//!
//! `n` counts the tag word plus the payload, exactly [`Packet::wire_words`] —
//! so the bytes on the wire mirror what the
//! [`ChannelCostModel`](crate::ChannelCostModel) bills. A length prefix of zero, a prefix above
//! [`MAX_FRAME_WORDS`], an unknown tag word, or a stream that ends mid-frame
//! are all rejected as typed errors, never panics.
//!
//! ## Endpoints
//!
//! [`TcpEndpoint`] implements [`Transport`] and [`WaitTransport`] for *its own
//! side*, exactly like [`ThreadedEndpoint`](crate::ThreadedEndpoint), so it
//! slots into the same per-side [`CostedChannel`](crate::CostedChannel) +
//! session runner machinery. Obtain endpoints three ways:
//!
//! * [`TcpTransport::loopback_pair`] — an ephemeral localhost pair for
//!   in-process sessions and tests (no fixed port, so parallel test runs
//!   cannot collide);
//! * [`TcpEndpoint::listen`] — bind an address and accept one peer
//!   (conventionally the accelerator farm side);
//! * [`TcpEndpoint::connect`] — dial a listening peer (conventionally the
//!   simulator side).
//!
//! Dropping an endpoint shuts the socket down in both directions, so a peer
//! blocked in [`WaitTransport::wait_for_packet`] wakes up promptly instead of
//! deadlocking on teardown.

use crate::cost::Side;
use crate::knob::KnobError;
use crate::message::{Packet, PacketTag};
use crate::transport::{Transport, WaitTransport};
use predpkt_sim::SplitMix64;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Upper bound on the length prefix of one frame, in wire words (4 MiB of
/// payload). The protocol's largest messages are LOB bursts of a few hundred
/// words; a prefix beyond this bound is a corrupted or hostile stream, not a
/// packet, and is rejected before any allocation is attempted.
pub const MAX_FRAME_WORDS: u32 = 1 << 20;

/// How long one frame write may block before the endpoint gives the stream
/// up as dead. Loopback and healthy remote links drain small frames in
/// microseconds; only a peer that holds the connection open without reading
/// (filling the kernel send buffer) ever reaches this.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Backoff schedule for [`TcpEndpoint::reconnect`]: a bounded budget of
/// connect attempts spaced by exponential backoff with seeded jitter.
///
/// The delay before retry *k* (zero-based) is drawn uniformly from
/// `[d/2, d)` where `d = min(base_delay << k, max_delay)` — the classic
/// half-jittered exponential ramp, so a fleet of healing sessions does not
/// dial a recovering peer in lockstep. The jitter stream is seeded
/// ([`jitter_seed`](Self::jitter_seed)), so a given policy retries on a
/// reproducible schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Connect attempts before [`reconnect`](TcpEndpoint::reconnect) gives
    /// up with a typed [`ConnectRetryError`]. Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry (doubled each further retry).
    pub base_delay: Duration,
    /// Ceiling the exponential ramp saturates at.
    pub max_delay: Duration,
    /// Seed for the jitter stream; identical seeds reproduce identical retry
    /// schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Five attempts, 10 ms initial backoff, 1 s ceiling.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// Overrides the connect-attempt budget.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Overrides the initial backoff delay.
    pub fn base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// Overrides the backoff ceiling.
    pub fn max_delay(mut self, delay: Duration) -> Self {
        self.max_delay = delay;
        self
    }

    /// Overrides the jitter seed.
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Checks the policy is usable.
    ///
    /// # Errors
    ///
    /// Returns a [`KnobError`] naming the offending knob: a zero attempt
    /// budget, or a ceiling below the initial delay.
    pub fn validate(&self) -> Result<(), KnobError> {
        if self.max_attempts == 0 {
            return Err(KnobError::new(
                "max_attempts",
                "must allow at least one connect attempt",
            ));
        }
        if self.max_delay < self.base_delay {
            return Err(KnobError::new(
                "max_delay",
                format!(
                    "ceiling {:?} is below the initial delay {:?}",
                    self.max_delay, self.base_delay
                ),
            ));
        }
        Ok(())
    }

    /// The jittered backoff before zero-based retry `attempt`, consuming one
    /// draw from `rng`.
    fn delay_for(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let ramp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let nanos = ramp.as_nanos().min(u64::MAX as u128) as u64;
        let jittered = nanos / 2 + ((nanos as f64 / 2.0) * rng.unit_f64()) as u64;
        Duration::from_nanos(jittered)
    }
}

/// [`TcpEndpoint::reconnect`] burned its whole connect-attempt budget.
#[derive(Debug)]
pub struct ConnectRetryError {
    /// Connect attempts made (the policy's full budget).
    pub attempts: u32,
    /// Wall-clock time spent dialing and backing off.
    pub elapsed: Duration,
    /// The error the final attempt failed with.
    pub last: io::Error,
}

impl fmt::Display for ConnectRetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reconnect gave up after {} attempts over {:?}: {}",
            self.attempts, self.elapsed, self.last
        )
    }
}

impl Error for ConnectRetryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.last)
    }
}

/// Why a TCP frame could not be decoded (or a stream operation failed).
///
/// Every malformed input — short read, oversized or zero length prefix,
/// unknown tag word — maps to a variant here; the codec never panics on wire
/// data.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended (or was cut) in the middle of a frame.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_WORDS`].
    Oversized {
        /// The rejected word count.
        words: u32,
    },
    /// The length prefix was zero — a frame must at least carry its tag word.
    Empty,
    /// The first word decoded to no known [`PacketTag`].
    UnknownTag {
        /// The rejected tag word.
        word: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Closed => f.write_str("peer closed the connection"),
            FrameError::Truncated { missing } => {
                write!(f, "stream ended mid-frame ({missing} bytes missing)")
            }
            FrameError::Oversized { words } => write!(
                f,
                "length prefix {words} exceeds the {MAX_FRAME_WORDS}-word frame bound"
            ),
            FrameError::Empty => f.write_str("zero-length frame (a frame must carry its tag word)"),
            FrameError::UnknownTag { word } => {
                write!(f, "unknown packet tag {word:#010x}")
            }
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Appends `packet` as one length-prefixed frame (prefix, tag word, payload
/// words, all little-endian) to `out` — the allocation-free encoder the
/// endpoint's batch path is built on: callers reuse one scratch buffer for
/// any number of frames and issue a single write.
pub fn encode_frame_into(out: &mut Vec<u8>, packet: &Packet) {
    let words = packet.wire_words() as u32;
    out.reserve(4 * (words as usize + 1));
    out.extend_from_slice(&words.to_le_bytes());
    out.extend_from_slice(&packet.tag().encode().to_le_bytes());
    for word in packet.payload() {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Serializes `packet` as one length-prefixed frame into `w`.
///
/// # Errors
///
/// Propagates the writer's I/O errors; the frame is written with a single
/// `write_all`, so short writes surface rather than corrupt the stream.
pub fn write_frame(w: &mut impl Write, packet: &Packet) -> io::Result<()> {
    let mut bytes = Vec::new();
    encode_frame_into(&mut bytes, packet);
    w.write_all(&bytes)
}

/// Reads one length-prefixed frame from `r`, blocking until it is complete.
///
/// This is the two-process building block ([`TcpEndpoint`] uses the
/// incremental [`FrameDecoder`] instead so non-blocking polls never lose
/// partial frames).
///
/// # Errors
///
/// [`FrameError::Closed`] on EOF at a frame boundary, [`FrameError::Truncated`]
/// on EOF inside one, and the codec errors for malformed prefixes or tags.
pub fn read_frame(r: &mut impl Read) -> Result<Packet, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: prefix.len() - got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let words = u32::from_le_bytes(prefix);
    let body_len = frame_body_len(words)?;
    let mut body = vec![0u8; body_len];
    let mut got = 0;
    while got < body_len {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: body_len - got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    decode_body(&body)
}

/// Validates a length prefix and returns the frame body size in bytes.
fn frame_body_len(words: u32) -> Result<usize, FrameError> {
    if words == 0 {
        return Err(FrameError::Empty);
    }
    if words > MAX_FRAME_WORDS {
        return Err(FrameError::Oversized { words });
    }
    Ok(words as usize * 4)
}

/// Decodes a complete frame body (tag word + payload words, little-endian).
fn decode_body(body: &[u8]) -> Result<Packet, FrameError> {
    debug_assert!(body.len() >= 4 && body.len() % 4 == 0);
    let word_at = |i: usize| u32::from_le_bytes(body[4 * i..4 * i + 4].try_into().unwrap());
    let tag_word = word_at(0);
    let tag = PacketTag::decode(tag_word).ok_or(FrameError::UnknownTag { word: tag_word })?;
    let payload = (1..body.len() / 4).map(word_at).collect();
    Ok(Packet::new(tag, payload))
}

/// Incremental frame decoder: feed it byte chunks as they arrive (in whatever
/// sizes the socket delivers) and pull complete packets out. Partial frames
/// stay buffered across calls, so non-blocking reads never lose data.
///
/// # Example
///
/// ```
/// use predpkt_channel::{tcp, Packet, PacketTag};
/// let mut bytes = Vec::new();
/// tcp::write_frame(&mut bytes, &Packet::new(PacketTag::Burst, vec![1, 2])).unwrap();
/// let mut dec = tcp::FrameDecoder::new();
/// dec.push(&bytes[..3]); // arbitrary split
/// assert!(dec.next_frame().unwrap().is_none(), "frame incomplete");
/// dec.push(&bytes[3..]);
/// let p = dec.next_frame().unwrap().unwrap();
/// assert_eq!(p.tag(), PacketTag::Burst);
/// assert_eq!(p.payload(), &[1, 2]);
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Flat receive buffer; bytes before `pos` are already consumed. The
    /// consumed prefix is compacted away opportunistically (cheap `memmove`
    /// amortized over many frames) rather than per frame — the decode path
    /// itself performs no per-frame buffer shuffling or intermediate copies.
    buf: Vec<u8>,
    pos: usize,
}

/// Compact the decoder's consumed prefix once it exceeds this many bytes.
const DECODER_COMPACT_BYTES: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= DECODER_COMPACT_BYTES {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The undecoded bytes.
    fn available(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// True when buffered bytes form part of an unfinished frame — an EOF in
    /// this state is a truncation, not a clean close.
    pub fn is_mid_frame(&self) -> bool {
        !self.available().is_empty()
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered_bytes(&self) -> usize {
        self.available().len()
    }

    /// Bytes still owed before the partially buffered frame completes (0 at
    /// a frame boundary, or when the buffered prefix is itself malformed —
    /// [`next_frame`](Self::next_frame) surfaces the typed error for that).
    pub fn missing_bytes(&self) -> usize {
        let avail = self.available();
        if avail.is_empty() {
            return 0;
        }
        if avail.len() < 4 {
            return 4 - avail.len();
        }
        let words = u32::from_le_bytes(avail[..4].try_into().unwrap());
        match frame_body_len(words) {
            Ok(body_len) => (4 + body_len).saturating_sub(avail.len()),
            Err(_) => 0,
        }
    }

    /// Decodes the next complete frame, `Ok(None)` when more bytes are
    /// needed. The frame body is decoded straight out of the receive buffer —
    /// no intermediate byte copy.
    ///
    /// # Errors
    ///
    /// The codec's [`FrameError`]s for malformed prefixes or tag words.
    /// Errors are **sticky**: the offending bytes are not consumed, so every
    /// subsequent call reports the same error again (and frames behind it
    /// stay unreachable). The decoder deliberately does not resynchronize —
    /// a corrupted length-prefixed stream has no recoverable framing — so
    /// the caller must treat the first error as fatal and tear the
    /// connection down.
    pub fn next_frame(&mut self) -> Result<Option<Packet>, FrameError> {
        let avail = self.available();
        if avail.len() < 4 {
            return Ok(None);
        }
        let words = u32::from_le_bytes(avail[..4].try_into().unwrap());
        let body_len = frame_body_len(words)?;
        if avail.len() < 4 + body_len {
            return Ok(None);
        }
        let packet = decode_body(&avail[4..4 + body_len])?;
        self.pos += 4 + body_len;
        Ok(Some(packet))
    }
}

/// Constructor for TCP channel endpoints (the socket sibling of
/// [`ThreadedTransport`](crate::ThreadedTransport)).
#[derive(Debug)]
pub struct TcpTransport;

impl TcpTransport {
    /// Creates a connected localhost pair over an ephemeral port: the
    /// simulator endpoint dials, the accelerator endpoint is accepted. No
    /// fixed port is involved, so concurrent test runs cannot collide on
    /// address allocation.
    ///
    /// # Errors
    ///
    /// Any socket-layer failure binding, connecting, or accepting.
    pub fn loopback_pair() -> io::Result<(TcpEndpoint, TcpEndpoint)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let sim_stream = TcpStream::connect(addr)?;
        let (acc_stream, _) = listener.accept()?;
        Ok((
            TcpEndpoint::from_stream(sim_stream, Side::Simulator)?,
            TcpEndpoint::from_stream(acc_stream, Side::Accelerator)?,
        ))
    }
}

/// One side's endpoint of a TCP channel; `Send`, so it moves to its domain's
/// thread (or lives in its domain's process). Implements [`Transport`] and
/// [`WaitTransport`] for the side it belongs to.
#[derive(Debug)]
pub struct TcpEndpoint {
    side: Side,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Decoded packets awaiting [`Transport::recv`].
    ready: VecDeque<Packet>,
    /// Sticky first failure: once the stream is corrupt or gone, the endpoint
    /// delivers nothing further (starvation, detected upstream) and reports
    /// the cause here.
    error: Option<FrameError>,
    /// The peer closed its write half cleanly.
    peer_closed: bool,
    /// Reused frame-encoding scratch: sends serialize into this buffer and
    /// issue one `write_all`, so the steady-state send path performs no heap
    /// allocation and a batch of frames costs one syscall.
    wbuf: Vec<u8>,
    /// Frames vs physical writes issued (the batching win, measured).
    io_stats: crate::transport::BatchStats,
}

impl TcpEndpoint {
    /// Dials a listening peer. `side` is the domain this endpoint serves —
    /// conventionally the simulator dials the accelerator farm.
    ///
    /// # Errors
    ///
    /// Any socket-layer connect failure.
    pub fn connect(addr: impl ToSocketAddrs, side: Side) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?, side)
    }

    /// Binds `addr` and accepts exactly one peer connection.
    ///
    /// # Errors
    ///
    /// Any socket-layer bind or accept failure.
    pub fn listen(addr: impl ToSocketAddrs, side: Side) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream, side)
    }

    /// Wraps an already-connected stream. `TCP_NODELAY` is enabled: the
    /// protocol exchanges small latency-sensitive frames, the workload
    /// Nagle's algorithm punishes hardest. Writes carry a generous
    /// [`WRITE_TIMEOUT`]: a peer that keeps the connection open but stops
    /// reading (wedged or stopped process) would otherwise block the sender
    /// forever inside `send` — past the timeout the endpoint records a
    /// sticky error and the session layer detects the starvation instead.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn from_stream(stream: TcpStream, side: Side) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        Ok(TcpEndpoint {
            side,
            stream,
            decoder: FrameDecoder::new(),
            ready: VecDeque::new(),
            error: None,
            peer_closed: false,
            wbuf: Vec::new(),
            io_stats: crate::transport::BatchStats::default(),
        })
    }

    /// Replaces a dead (or dying) connection with a freshly dialed one,
    /// retrying under `policy`'s exponential-backoff schedule with seeded
    /// jitter until a connect succeeds or the attempt budget is gone.
    ///
    /// On success every link-scoped field is reset — sticky error, peer-EOF
    /// flag, decoder, and any packets decoded from the old connection (the
    /// old link's in-flight state is abandoned; a
    /// [`ReliableTransport`](crate::ReliableTransport) layered above heals it
    /// by re-arming its retransmission window on restore). Cumulative
    /// [`batch_stats`](Transport::batch_stats) survive: they describe the
    /// endpoint's lifetime, not one connection. The old socket is shut down
    /// both ways so a peer blocked on it wakes promptly.
    ///
    /// # Errors
    ///
    /// A typed [`ConnectRetryError`] carrying the attempt count, the
    /// wall-clock spent, and the final attempt's I/O error. The endpoint is
    /// left on its old (dead) stream in that case, so the failure mode is
    /// "still dead", never "half-connected".
    pub fn reconnect(
        &mut self,
        addr: impl ToSocketAddrs,
        policy: &RetryPolicy,
    ) -> Result<(), ConnectRetryError> {
        let started = std::time::Instant::now();
        let attempts = policy.max_attempts.max(1);
        let mut rng = SplitMix64::new(policy.jitter_seed);
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                thread::sleep(policy.delay_for(attempt - 1, &mut rng));
            }
            let dialed = TcpStream::connect(&addr).and_then(|stream| {
                stream.set_nodelay(true)?;
                stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
                Ok(stream)
            });
            match dialed {
                Ok(stream) => {
                    let _ = self.stream.shutdown(Shutdown::Both);
                    self.stream = stream;
                    self.decoder = FrameDecoder::new();
                    self.ready.clear();
                    self.error = None;
                    self.peer_closed = false;
                    self.wbuf.clear();
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ConnectRetryError {
            attempts,
            elapsed: started.elapsed(),
            last: last.expect("at least one attempt always runs"),
        })
    }

    /// Flushes the encoded frames in `wbuf` — `frames` of them — as one
    /// physical write, recording the first failure as the sticky error.
    fn write_wbuf(&mut self, frames: u64) {
        if frames == 0 {
            return;
        }
        // recv polling may have left the socket non-blocking; writes must not
        // short-circuit mid-frame.
        let _ = self.stream.set_nonblocking(false);
        self.io_stats.frames += frames;
        self.io_stats.physical_writes += 1;
        if let Err(e) = self.stream.write_all(&self.wbuf) {
            self.error = Some(e.into());
        }
    }

    /// Which side this endpoint belongs to.
    pub fn side(&self) -> Side {
        self.side
    }

    /// The endpoint's local socket address.
    ///
    /// # Errors
    ///
    /// Propagates the socket-layer failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// The first stream failure, if the connection has broken down. A sticky
    /// error means the endpoint will never deliver again; the session layer
    /// sees the resulting starvation as a deadlock.
    pub fn last_error(&self) -> Option<&FrameError> {
        self.error.as_ref()
    }

    /// True once the peer has closed its write half (EOF observed).
    pub fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    /// Feeds `bytes` through the decoder into the ready queue, recording the
    /// first codec failure.
    fn ingest(&mut self, bytes: &[u8]) {
        self.decoder.push(bytes);
        loop {
            match self.decoder.next_frame() {
                Ok(Some(packet)) => self.ready.push_back(packet),
                Ok(None) => break,
                Err(e) => {
                    self.error = Some(e);
                    break;
                }
            }
        }
    }

    /// Marks the stream dead on EOF: clean close at a boundary, truncation
    /// mid-frame.
    fn on_eof(&mut self) {
        self.peer_closed = true;
        if self.decoder.is_mid_frame() && self.error.is_none() {
            self.error = Some(FrameError::Truncated {
                missing: self.decoder.missing_bytes(),
            });
        }
    }

    /// True once no further byte will ever be decoded.
    fn stream_dead(&self) -> bool {
        self.error.is_some() || self.peer_closed
    }

    /// Drains whatever the socket holds right now without blocking.
    fn poll_nonblocking(&mut self) {
        if self.stream_dead() {
            return;
        }
        if let Err(e) = self.stream.set_nonblocking(true) {
            self.error = Some(e.into());
            return;
        }
        let mut scratch = [0u8; 8192];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.on_eof();
                    break;
                }
                Ok(n) => {
                    self.ingest(&scratch[..n]);
                    if self.error.is_some() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.error = Some(e.into());
                    break;
                }
            }
        }
        let _ = self.stream.set_nonblocking(false);
    }

    /// One blocking read with `timeout`; returns whether any bytes arrived.
    fn poll_blocking(&mut self, timeout: Duration) -> bool {
        if self.stream_dead() {
            return false;
        }
        // A zero timeout means "block forever" to the socket layer; clamp to
        // the smallest real timeout instead.
        let timeout = timeout.max(Duration::from_millis(1));
        if let Err(e) = self.stream.set_read_timeout(Some(timeout)) {
            self.error = Some(e.into());
            return false;
        }
        let mut scratch = [0u8; 8192];
        loop {
            return match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.on_eof();
                    false
                }
                Ok(n) => {
                    self.ingest(&scratch[..n]);
                    true
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // The platform reports a read timeout as either kind;
                    // both simply mean "nothing yet" (the same shape
                    // `TryRecvError::Empty` takes on the mpsc backend).
                    false
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.error = Some(e.into());
                    false
                }
            };
        }
    }
}

/// A socket-like endpoint carries **no serializable session state**: its
/// medium lives outside this process's cut, so a checkpoint saves nothing
/// and restore is a no-op. Frames in flight at the cut are healed by the
/// reliable layer's re-armed retransmission window (duplicates are
/// suppressed, cumulative acks are idempotent) — which is why sessions that
/// need restore-exactness over endpoint backends run them under
/// [`ReliableTransport`](crate::ReliableTransport).
impl predpkt_sim::Snapshot for TcpEndpoint {
    fn save(&self, _w: &mut predpkt_sim::StateWriter<'_>) {}

    fn restore(
        &mut self,
        _r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        Ok(())
    }
}

impl Transport for TcpEndpoint {
    fn send(&mut self, from: Side, packet: Packet) {
        self.send_ref(from, &packet);
    }

    /// A lone send is the one-element batch (single shared body — the
    /// error-guard/scratch/write sequence lives in `send_batch_ref` alone).
    fn send_ref(&mut self, from: Side, packet: &Packet) {
        self.send_batch_ref(from, &mut std::iter::once(packet));
    }

    fn send_batch(&mut self, from: Side, packets: &mut Vec<Packet>) {
        self.send_batch_ref(from, &mut packets.iter());
        packets.clear();
    }

    /// Coalesces the whole batch into the scratch buffer and issues **one**
    /// physical write (`TCP_NODELAY` is on, so the segment leaves
    /// immediately) — the per-frame-syscall cost of the sequential path
    /// disappears.
    fn send_batch_ref(&mut self, from: Side, packets: &mut dyn Iterator<Item = &Packet>) {
        debug_assert_eq!(from, self.side, "endpoints send from their own side");
        if self.error.is_some() {
            return;
        }
        self.wbuf.clear();
        let mut frames = 0u64;
        for packet in packets {
            encode_frame_into(&mut self.wbuf, packet);
            frames += 1;
        }
        self.write_wbuf(frames);
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        debug_assert_eq!(to, self.side, "endpoints receive for their own side");
        if self.ready.is_empty() {
            self.poll_nonblocking();
        }
        self.ready.pop_front()
    }

    /// Packets decoded locally and awaiting `recv`. Unlike
    /// [`ThreadedEndpoint`](crate::ThreadedEndpoint) there is no shared
    /// in-flight counter — the peer may be another process or host — so
    /// frames still in the kernel or on the wire are not counted.
    fn pending(&self, to: Side) -> usize {
        debug_assert_eq!(to, self.side, "endpoints count for their own side");
        self.ready.len()
    }

    fn batch_stats(&self) -> Option<crate::transport::BatchStats> {
        Some(self.io_stats)
    }
}

impl WaitTransport for TcpEndpoint {
    fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        if !self.ready.is_empty() {
            return true;
        }
        self.poll_nonblocking();
        if !self.ready.is_empty() {
            return true;
        }
        if self.stream_dead() {
            // Nothing will ever arrive, but returning instantly would turn
            // the caller's poll loop into a hot spin (and, under a reliable
            // wrapper, advance the RTO clock once per iteration, burning the
            // retry budget in wall-clock microseconds). Pace the caller
            // exactly like a live-but-silent link would.
            thread::sleep(timeout);
            return false;
        }
        self.poll_blocking(timeout);
        !self.ready.is_empty()
    }
}

impl crate::poll::PollReady for TcpEndpoint {
    /// Read-readiness probe: one non-blocking socket drain (the kernel
    /// buffer is emptied into the decoder as a side effect), never a blocking
    /// read — the poll-set's per-source probe.
    fn readiness(&mut self) -> crate::poll::Readiness {
        if self.ready.is_empty() {
            self.poll_nonblocking();
        }
        if !self.ready.is_empty() {
            crate::poll::Readiness::Ready
        } else if self.stream_dead() {
            crate::poll::Readiness::Dead
        } else {
            crate::poll::Readiness::Idle
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Wake a peer blocked in wait_for_packet immediately rather than
        // relying on the kernel noticing the closed fd later.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ChannelCostModel, Direction};
    use crate::transport::CostedChannel;
    use std::thread;

    fn pair() -> (TcpEndpoint, TcpEndpoint) {
        TcpTransport::loopback_pair().expect("loopback pair")
    }

    #[test]
    fn loopback_ping_pong() {
        let (mut sim, mut acc) = pair();
        let worker = thread::spawn(move || {
            for _ in 0..50 {
                while !acc.wait_for_packet(Duration::from_secs(5)) {}
                let p = acc.recv(Side::Accelerator).unwrap();
                let bumped: Vec<u32> = p.payload().iter().map(|w| w + 1).collect();
                acc.send(
                    Side::Accelerator,
                    Packet::new(PacketTag::CycleOutputs, bumped),
                );
            }
        });
        for i in 0..50u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i]),
            );
            while !sim.wait_for_packet(Duration::from_secs(5)) {}
            let reply = sim.recv(Side::Simulator).unwrap();
            assert_eq!(reply.payload(), &[i + 1]);
        }
        worker.join().unwrap();
    }

    #[test]
    fn recv_is_nonblocking_when_empty() {
        let (mut sim, _acc) = pair();
        assert!(sim.recv(Side::Simulator).is_none());
        assert_eq!(sim.pending(Side::Simulator), 0);
    }

    #[test]
    fn wait_times_out_then_delivers() {
        let (mut sim, mut acc) = pair();
        assert!(!sim.wait_for_packet(Duration::from_millis(5)));
        acc.send(Side::Accelerator, Packet::new(PacketTag::Handshake, vec![]));
        assert!(sim.wait_for_packet(Duration::from_secs(5)));
        assert_eq!(
            sim.recv(Side::Simulator).unwrap().tag(),
            PacketTag::Handshake
        );
    }

    #[test]
    fn fifo_order_preserved_across_the_socket() {
        let (mut sim, mut acc) = pair();
        for i in 0..100u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::Burst, vec![i; (i % 7) as usize]),
            );
        }
        for i in 0..100u32 {
            while !acc.wait_for_packet(Duration::from_secs(5)) {}
            let p = acc.recv(Side::Accelerator).unwrap();
            assert_eq!(p.payload(), vec![i; (i % 7) as usize].as_slice());
        }
    }

    #[test]
    fn costed_endpoint_bills_like_any_transport() {
        let (sim_end, mut acc_end) = pair();
        let mut sim = CostedChannel::with_transport(sim_end, ChannelCostModel::iprove_pci());
        let cost = sim.send(Side::Simulator, Packet::new(PacketTag::Burst, vec![0; 9]));
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().access_cost(Direction::SimToAcc, 10)
        );
        while !acc_end.wait_for_packet(Duration::from_secs(5)) {}
        assert_eq!(acc_end.recv(Side::Accelerator).unwrap().payload().len(), 9);
    }

    #[test]
    fn dropped_peer_wakes_waiter_and_drains_cleanly() {
        let (mut sim, acc) = pair();
        // Park a waiter on a live link *first*, then shut the peer down from
        // another thread: the EOF must wake the blocked wait well before its
        // generous timeout (this is the no-teardown-deadlock property).
        let killer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(acc);
        });
        let t0 = std::time::Instant::now();
        assert!(!sim.wait_for_packet(Duration::from_secs(30)));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "EOF should wake the waiter, not let it run the full timeout"
        );
        killer.join().unwrap();
        assert!(sim.peer_closed() || sim.last_error().is_some());
        assert!(sim.recv(Side::Simulator).is_none());
        // Once the stream is known dead, waits pace the caller (no hot spin)
        // instead of returning instantly.
        let t0 = std::time::Instant::now();
        assert!(!sim.wait_for_packet(Duration::from_millis(30)));
        assert!(t0.elapsed() >= Duration::from_millis(25), "paced, not spun");
        // Sends after the peer is gone are lost on the floor, not panics.
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
    }

    #[test]
    fn reconnect_revives_a_dead_endpoint() {
        let (mut sim, acc) = pair();
        drop(acc); // peer crashes
        while !sim.stream_dead() {
            let _ = sim.wait_for_packet(Duration::from_millis(5));
        }
        // A fresh peer comes up elsewhere; the endpoint dials it and the
        // link works again, with the sticky death state fully cleared.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            TcpEndpoint::from_stream(stream, Side::Accelerator).unwrap()
        });
        let policy = RetryPolicy::default().base_delay(Duration::from_millis(1));
        sim.reconnect(addr, &policy).expect("reconnect");
        let mut acc = accept.join().unwrap();
        assert!(!sim.stream_dead());
        assert!(sim.last_error().is_none() && !sim.peer_closed());
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![9]));
        while !acc.wait_for_packet(Duration::from_secs(5)) {}
        assert_eq!(acc.recv(Side::Accelerator).unwrap().payload(), &[9]);
    }

    #[test]
    fn reconnect_budget_exhaustion_is_typed() {
        let (mut sim, _acc) = pair();
        // An address nothing listens on: bind, learn the port, release it.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let policy = RetryPolicy::default()
            .max_attempts(3)
            .base_delay(Duration::from_micros(100))
            .max_delay(Duration::from_millis(1));
        let err = sim.reconnect(addr, &policy).expect_err("nothing listening");
        assert_eq!(err.attempts, 3);
        assert!(
            err.to_string().contains("gave up after 3 attempts"),
            "{err}"
        );
    }

    #[test]
    fn retry_policy_schedule_is_seeded_and_bounded() {
        let policy = RetryPolicy::default()
            .base_delay(Duration::from_millis(4))
            .max_delay(Duration::from_millis(20))
            .jitter_seed(7);
        let draw = || {
            let mut rng = SplitMix64::new(policy.jitter_seed);
            (0..6)
                .map(|k| policy.delay_for(k, &mut rng))
                .collect::<Vec<_>>()
        };
        let (a, b) = (draw(), draw());
        assert_eq!(a, b, "same seed, same schedule");
        for (k, d) in a.iter().enumerate() {
            let ramp = policy
                .base_delay
                .saturating_mul(1 << k.min(20) as u32)
                .min(policy.max_delay);
            assert!(*d >= ramp / 2 && *d < ramp.max(Duration::from_nanos(1)));
        }
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::default().max_attempts(0).validate().is_err());
        assert!(RetryPolicy::default()
            .max_delay(Duration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn garbage_stream_surfaces_typed_error_not_panic() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut end = TcpEndpoint::from_stream(stream, Side::Accelerator).unwrap();
        // A plausible length prefix followed by an unknown tag word.
        raw.write_all(&2u32.to_le_bytes()).unwrap();
        raw.write_all(&0xdead_beefu32.to_le_bytes()).unwrap();
        raw.write_all(&7u32.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        while !end.stream_dead() {
            let _ = end.wait_for_packet(Duration::from_millis(10));
        }
        assert!(
            matches!(end.last_error(), Some(FrameError::UnknownTag { word }) if *word == 0xdead_beef),
            "got {:?}",
            end.last_error()
        );
        assert!(end.recv(Side::Accelerator).is_none());
    }
}
