//! Wire packets: tagged word payloads.
//!
//! The channel moves 32-bit words (the paper's PCI target is a 32-bit bus). A
//! [`Packet`] is a tag plus a word payload; the tag travels in the first word on
//! the wire, so [`Packet::wire_words`] — the figure the cost model charges — is
//! `1 + payload length`.

use std::fmt;

/// Message kind, encoded into the first wire word.
///
/// The protocol of `predpkt-core` uses these tags to drive the channel-wrapper
/// state machine: a lagger blocked in *Read input data* distinguishes a
/// conventional per-cycle exchange from a LOB burst by tag alone (this is how a
/// conservative CW learns that its peer has started leading).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketTag {
    /// One cycle's signal values, conservative mode.
    CycleOutputs,
    /// A packetized LOB flush: head cycle + predicted entries.
    Burst,
    /// Lagger report: every prediction checked out.
    ReportSuccess,
    /// Lagger report: prediction failure, actual values attached.
    ReportFailure,
    /// Initial handshake / configuration exchange.
    Handshake,
    /// A sequence-numbered, CRC-protected data frame of the reliable layer
    /// (wraps one of the protocol packets above; never reaches the protocol
    /// decoder directly).
    RelData,
    /// A cumulative acknowledgement of the reliable layer.
    RelAck,
    /// One labeled section of a serialized whole-session checkpoint (magic /
    /// version header, component payloads, CRC trailer). Checkpoint blobs are
    /// a framed sequence of these, so they can be written to disk or streamed
    /// over any transport that moves packets.
    Checkpoint,
}

impl PacketTag {
    /// Encodes the tag as a wire word.
    pub fn encode(self) -> u32 {
        match self {
            PacketTag::CycleOutputs => 0x4359_434c,  // "CYCL"
            PacketTag::Burst => 0x4255_5253,         // "BURS"
            PacketTag::ReportSuccess => 0x524f_4b21, // "ROK!"
            PacketTag::ReportFailure => 0x5246_4149, // "RFAI"
            PacketTag::Handshake => 0x4853_4b21,     // "HSK!"
            PacketTag::RelData => 0x5244_4154,       // "RDAT"
            PacketTag::RelAck => 0x5241_434b,        // "RACK"
            PacketTag::Checkpoint => 0x434b_5054,    // "CKPT"
        }
    }

    /// Decodes a wire word back into a tag.
    pub fn decode(word: u32) -> Option<PacketTag> {
        match word {
            0x4359_434c => Some(PacketTag::CycleOutputs),
            0x4255_5253 => Some(PacketTag::Burst),
            0x524f_4b21 => Some(PacketTag::ReportSuccess),
            0x5246_4149 => Some(PacketTag::ReportFailure),
            0x4853_4b21 => Some(PacketTag::Handshake),
            0x5244_4154 => Some(PacketTag::RelData),
            0x5241_434b => Some(PacketTag::RelAck),
            0x434b_5054 => Some(PacketTag::Checkpoint),
            _ => None,
        }
    }

    /// All tags (for exhaustive tests).
    pub const ALL: [PacketTag; 8] = [
        PacketTag::CycleOutputs,
        PacketTag::Burst,
        PacketTag::ReportSuccess,
        PacketTag::ReportFailure,
        PacketTag::Handshake,
        PacketTag::RelData,
        PacketTag::RelAck,
        PacketTag::Checkpoint,
    ];
}

impl fmt::Display for PacketTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A tagged word payload moving across the channel.
///
/// # Example
///
/// ```
/// use predpkt_channel::{Packet, PacketTag};
/// let p = Packet::new(PacketTag::Burst, vec![1, 2, 3]);
/// assert_eq!(p.wire_words(), 4); // tag word + 3 payload words
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    tag: PacketTag,
    payload: Vec<u32>,
}

impl Packet {
    /// Creates a packet from a tag and payload words.
    pub fn new(tag: PacketTag, payload: Vec<u32>) -> Self {
        Packet { tag, payload }
    }

    /// The message tag.
    pub fn tag(&self) -> PacketTag {
        self.tag
    }

    /// Borrows the payload words (tag not included).
    pub fn payload(&self) -> &[u32] {
        &self.payload
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> Vec<u32> {
        self.payload
    }

    /// Exclusive access to the payload words — crate-internal so wrapper
    /// layers (the reliable transport's ack refresh) can patch header words
    /// in place without re-allocating the frame.
    pub(crate) fn payload_mut(&mut self) -> &mut [u32] {
        &mut self.payload
    }

    /// Number of words this packet occupies on the wire (tag + payload).
    pub fn wire_words(&self) -> u64 {
        1 + self.payload.len() as u64
    }

    /// Appends the packet's wire words (tag first) to `out` — the
    /// allocation-free sibling of [`to_wire`](Self::to_wire). Callers own the
    /// scratch buffer and reuse it across packets, so steady-state encoding
    /// never touches the heap once the buffer has grown to the working set.
    pub fn encode_into(&self, out: &mut Vec<u32>) {
        out.reserve(1 + self.payload.len());
        out.push(self.tag.encode());
        out.extend_from_slice(&self.payload);
    }

    /// Serializes to raw wire words (tag first).
    ///
    /// Allocates a fresh vector per call; hot paths use
    /// [`encode_into`](Self::encode_into) with a reused scratch buffer
    /// instead.
    pub fn to_wire(&self) -> Vec<u32> {
        let mut w = Vec::with_capacity(self.payload.len() + 1);
        self.encode_into(&mut w);
        w
    }

    /// Parses raw wire words back into a packet.
    ///
    /// Returns `None` on an empty slice or unknown tag.
    pub fn from_wire(words: &[u32]) -> Option<Packet> {
        PacketView::parse(words).map(|v| v.to_packet())
    }
}

/// Tag word plus length-prefixed payload. An unknown tag word surfaces as a
/// [`Corrupt`](predpkt_sim::SnapshotError::Corrupt) error anchored at the tag
/// word, so corrupt checkpoint blobs fail loudly instead of resurrecting a
/// garbage packet.
impl predpkt_sim::Snapshot for Packet {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        w.u32(self.tag.encode()).slice_u32(&self.payload);
    }

    fn restore(
        &mut self,
        r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        let at = r.position();
        let tag_word = r.u32()?;
        self.tag = PacketTag::decode(tag_word).ok_or_else(|| r.corrupt_at(at))?;
        self.payload = r.slice_u32()?;
        Ok(())
    }
}

/// A borrowed decode of raw wire words: the tag plus a payload *slice* into
/// the caller's buffer. Decoding through a view costs nothing; the copy (if
/// one is needed at all) happens only when the caller materializes a
/// [`Packet`], and can then target a pooled buffer.
///
/// # Example
///
/// ```
/// use predpkt_channel::{Packet, PacketTag, PacketView};
/// let wire = Packet::new(PacketTag::Burst, vec![1, 2, 3]).to_wire();
/// let view = PacketView::parse(&wire).unwrap();
/// assert_eq!(view.tag(), PacketTag::Burst);
/// assert_eq!(view.payload(), &[1, 2, 3]);
/// assert_eq!(view.wire_words(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    tag: PacketTag,
    payload: &'a [u32],
}

impl<'a> PacketView<'a> {
    /// Borrows a decode of `words` (tag word first).
    ///
    /// Returns `None` on an empty slice or unknown tag — the same inputs
    /// [`Packet::from_wire`] rejects.
    pub fn parse(words: &'a [u32]) -> Option<PacketView<'a>> {
        let (&tag_word, payload) = words.split_first()?;
        Some(PacketView {
            tag: PacketTag::decode(tag_word)?,
            payload,
        })
    }

    /// The message tag.
    pub fn tag(&self) -> PacketTag {
        self.tag
    }

    /// The borrowed payload words (tag not included).
    pub fn payload(&self) -> &'a [u32] {
        self.payload
    }

    /// Number of words the packet occupies on the wire (tag + payload).
    pub fn wire_words(&self) -> u64 {
        1 + self.payload.len() as u64
    }

    /// Materializes an owned [`Packet`], allocating a fresh payload.
    pub fn to_packet(&self) -> Packet {
        Packet::new(self.tag, self.payload.to_vec())
    }

    /// Materializes an owned [`Packet`] into `buf` (cleared first) — pair
    /// with a [`BufferPool`](crate::BufferPool) to keep the decode path off
    /// the allocator.
    pub fn to_packet_into(&self, mut buf: Vec<u32>) -> Packet {
        buf.clear();
        buf.extend_from_slice(self.payload);
        Packet::new(self.tag, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_all() {
        for tag in PacketTag::ALL {
            assert_eq!(PacketTag::decode(tag.encode()), Some(tag));
        }
    }

    #[test]
    fn tag_encodings_distinct() {
        let mut codes: Vec<u32> = PacketTag::ALL.iter().map(|t| t.encode()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), PacketTag::ALL.len());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(PacketTag::decode(0xdead_beef), None);
    }

    #[test]
    fn packet_wire_roundtrip() {
        let p = Packet::new(PacketTag::ReportFailure, vec![7, 8, 9]);
        let wire = p.to_wire();
        assert_eq!(wire.len() as u64, p.wire_words());
        assert_eq!(Packet::from_wire(&wire), Some(p));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = Packet::new(PacketTag::Handshake, vec![]);
        assert_eq!(p.wire_words(), 1);
        assert_eq!(Packet::from_wire(&p.to_wire()), Some(p));
    }

    #[test]
    fn from_wire_rejects_empty_and_garbage() {
        assert_eq!(Packet::from_wire(&[]), None);
        assert_eq!(Packet::from_wire(&[0x1234_5678, 1, 2]), None);
    }

    #[test]
    fn into_payload_moves() {
        let p = Packet::new(PacketTag::CycleOutputs, vec![42]);
        assert_eq!(p.into_payload(), vec![42]);
    }

    #[test]
    fn tag_display() {
        assert_eq!(PacketTag::Burst.to_string(), "Burst");
    }

    #[test]
    fn encode_into_appends_and_matches_to_wire() {
        let p = Packet::new(PacketTag::Burst, vec![5, 6]);
        let mut scratch = vec![0xffff_ffff];
        p.encode_into(&mut scratch);
        assert_eq!(scratch[0], 0xffff_ffff, "existing contents are kept");
        assert_eq!(&scratch[1..], p.to_wire().as_slice());
    }

    #[test]
    fn view_parses_without_copying_and_roundtrips() {
        let p = Packet::new(PacketTag::ReportFailure, vec![7, 8, 9]);
        let wire = p.to_wire();
        let view = PacketView::parse(&wire).unwrap();
        assert_eq!(view.tag(), p.tag());
        assert_eq!(view.payload(), p.payload());
        assert_eq!(view.wire_words(), p.wire_words());
        assert_eq!(view.to_packet(), p);
        // Materializing into a reused buffer keeps its capacity.
        let buf = Vec::with_capacity(64);
        let rebuilt = view.to_packet_into(buf);
        assert_eq!(rebuilt, p);
        assert!(rebuilt.payload().len() <= 64);
    }

    #[test]
    fn view_rejects_what_from_wire_rejects() {
        assert_eq!(PacketView::parse(&[]), None);
        assert_eq!(PacketView::parse(&[0x1234_5678, 1]), None);
    }
}
