//! Wire packets: tagged word payloads.
//!
//! The channel moves 32-bit words (the paper's PCI target is a 32-bit bus). A
//! [`Packet`] is a tag plus a word payload; the tag travels in the first word on
//! the wire, so [`Packet::wire_words`] — the figure the cost model charges — is
//! `1 + payload length`.

use std::fmt;

/// Message kind, encoded into the first wire word.
///
/// The protocol of `predpkt-core` uses these tags to drive the channel-wrapper
/// state machine: a lagger blocked in *Read input data* distinguishes a
/// conventional per-cycle exchange from a LOB burst by tag alone (this is how a
/// conservative CW learns that its peer has started leading).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketTag {
    /// One cycle's signal values, conservative mode.
    CycleOutputs,
    /// A packetized LOB flush: head cycle + predicted entries.
    Burst,
    /// Lagger report: every prediction checked out.
    ReportSuccess,
    /// Lagger report: prediction failure, actual values attached.
    ReportFailure,
    /// Initial handshake / configuration exchange.
    Handshake,
    /// A sequence-numbered, CRC-protected data frame of the reliable layer
    /// (wraps one of the protocol packets above; never reaches the protocol
    /// decoder directly).
    RelData,
    /// A cumulative acknowledgement of the reliable layer.
    RelAck,
}

impl PacketTag {
    /// Encodes the tag as a wire word.
    pub fn encode(self) -> u32 {
        match self {
            PacketTag::CycleOutputs => 0x4359_434c,  // "CYCL"
            PacketTag::Burst => 0x4255_5253,         // "BURS"
            PacketTag::ReportSuccess => 0x524f_4b21, // "ROK!"
            PacketTag::ReportFailure => 0x5246_4149, // "RFAI"
            PacketTag::Handshake => 0x4853_4b21,     // "HSK!"
            PacketTag::RelData => 0x5244_4154,       // "RDAT"
            PacketTag::RelAck => 0x5241_434b,        // "RACK"
        }
    }

    /// Decodes a wire word back into a tag.
    pub fn decode(word: u32) -> Option<PacketTag> {
        match word {
            0x4359_434c => Some(PacketTag::CycleOutputs),
            0x4255_5253 => Some(PacketTag::Burst),
            0x524f_4b21 => Some(PacketTag::ReportSuccess),
            0x5246_4149 => Some(PacketTag::ReportFailure),
            0x4853_4b21 => Some(PacketTag::Handshake),
            0x5244_4154 => Some(PacketTag::RelData),
            0x5241_434b => Some(PacketTag::RelAck),
            _ => None,
        }
    }

    /// All tags (for exhaustive tests).
    pub const ALL: [PacketTag; 7] = [
        PacketTag::CycleOutputs,
        PacketTag::Burst,
        PacketTag::ReportSuccess,
        PacketTag::ReportFailure,
        PacketTag::Handshake,
        PacketTag::RelData,
        PacketTag::RelAck,
    ];
}

impl fmt::Display for PacketTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A tagged word payload moving across the channel.
///
/// # Example
///
/// ```
/// use predpkt_channel::{Packet, PacketTag};
/// let p = Packet::new(PacketTag::Burst, vec![1, 2, 3]);
/// assert_eq!(p.wire_words(), 4); // tag word + 3 payload words
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    tag: PacketTag,
    payload: Vec<u32>,
}

impl Packet {
    /// Creates a packet from a tag and payload words.
    pub fn new(tag: PacketTag, payload: Vec<u32>) -> Self {
        Packet { tag, payload }
    }

    /// The message tag.
    pub fn tag(&self) -> PacketTag {
        self.tag
    }

    /// Borrows the payload words (tag not included).
    pub fn payload(&self) -> &[u32] {
        &self.payload
    }

    /// Consumes the packet, returning the payload.
    pub fn into_payload(self) -> Vec<u32> {
        self.payload
    }

    /// Number of words this packet occupies on the wire (tag + payload).
    pub fn wire_words(&self) -> u64 {
        1 + self.payload.len() as u64
    }

    /// Serializes to raw wire words (tag first).
    pub fn to_wire(&self) -> Vec<u32> {
        let mut w = Vec::with_capacity(self.payload.len() + 1);
        w.push(self.tag.encode());
        w.extend_from_slice(&self.payload);
        w
    }

    /// Parses raw wire words back into a packet.
    ///
    /// Returns `None` on an empty slice or unknown tag.
    pub fn from_wire(words: &[u32]) -> Option<Packet> {
        let (&tag_word, payload) = words.split_first()?;
        Some(Packet::new(PacketTag::decode(tag_word)?, payload.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_all() {
        for tag in PacketTag::ALL {
            assert_eq!(PacketTag::decode(tag.encode()), Some(tag));
        }
    }

    #[test]
    fn tag_encodings_distinct() {
        let mut codes: Vec<u32> = PacketTag::ALL.iter().map(|t| t.encode()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), PacketTag::ALL.len());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(PacketTag::decode(0xdead_beef), None);
    }

    #[test]
    fn packet_wire_roundtrip() {
        let p = Packet::new(PacketTag::ReportFailure, vec![7, 8, 9]);
        let wire = p.to_wire();
        assert_eq!(wire.len() as u64, p.wire_words());
        assert_eq!(Packet::from_wire(&wire), Some(p));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = Packet::new(PacketTag::Handshake, vec![]);
        assert_eq!(p.wire_words(), 1);
        assert_eq!(Packet::from_wire(&p.to_wire()), Some(p));
    }

    #[test]
    fn from_wire_rejects_empty_and_garbage() {
        assert_eq!(Packet::from_wire(&[]), None);
        assert_eq!(Packet::from_wire(&[0x1234_5678, 1, 2]), None);
    }

    #[test]
    fn into_payload_moves() {
        let p = Packet::new(PacketTag::CycleOutputs, vec![42]);
        assert_eq!(p.into_payload(), vec![42]);
    }

    #[test]
    fn tag_display() {
        assert_eq!(PacketTag::Burst.to_string(), "Burst");
    }
}
