//! Channel cost model: layered startup overhead + direction-dependent payload.

use predpkt_sim::VirtualTime;
use std::fmt;

/// The two ends of the co-emulation channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The software simulator domain (transaction-level models).
    Simulator,
    /// The hardware accelerator domain (RTL models).
    Accelerator,
}

impl Side {
    /// The opposite end.
    pub fn peer(self) -> Side {
        match self {
            Side::Simulator => Side::Accelerator,
            Side::Accelerator => Side::Simulator,
        }
    }

    /// The direction of a transfer *sent from* this side.
    pub fn outbound(self) -> Direction {
        match self {
            Side::Simulator => Direction::SimToAcc,
            Side::Accelerator => Direction::AccToSim,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Simulator => f.write_str("simulator"),
            Side::Accelerator => f.write_str("accelerator"),
        }
    }
}

/// Transfer direction over the channel.
///
/// The paper measured asymmetric payload rates: writes toward the accelerator
/// stream at 49.95 ns/word, reads back at 75.73 ns/word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Simulator → accelerator (the paper's 49.95 ns/word direction).
    SimToAcc,
    /// Accelerator → simulator (the paper's 75.73 ns/word direction).
    AccToSim,
}

impl Direction {
    /// Both directions, forward first.
    pub const BOTH: [Direction; 2] = [Direction::SimToAcc, Direction::AccToSim];

    pub(crate) fn index(self) -> usize {
        match self {
            Direction::SimToAcc => 0,
            Direction::AccToSim => 1,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::SimToAcc => f.write_str("sim->acc"),
            Direction::AccToSim => f.write_str("acc->sim"),
        }
    }
}

/// Startup overhead decomposed into the paper's three layers
/// ("layers of API, device driver, and physical media each with static startup
/// overhead", §1.2).
///
/// # Example
///
/// ```
/// use predpkt_channel::LayeredStartup;
/// use predpkt_sim::VirtualTime;
/// let layers = LayeredStartup::iprove_pci();
/// assert_eq!(layers.total(), VirtualTime::from_nanos(12_200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayeredStartup {
    /// User-space API call overhead.
    pub api: VirtualTime,
    /// Kernel device-driver overhead (syscall, DMA setup).
    pub driver: VirtualTime,
    /// Physical-medium transaction setup (PCI bus acquisition).
    pub physical: VirtualTime,
}

impl LayeredStartup {
    /// The iPROVE PCI breakdown. The paper reports only the 12.2 µs total; the
    /// split (1.2 / 8.0 / 3.0 µs) is a representative decomposition for a 33 MHz
    /// PCI target behind an ioctl-style driver and sums exactly to the total.
    pub fn iprove_pci() -> Self {
        LayeredStartup {
            api: VirtualTime::from_nanos(1_200),
            driver: VirtualTime::from_nanos(8_000),
            physical: VirtualTime::from_nanos(3_000),
        }
    }

    /// Sum of all three layers: the per-access startup overhead.
    pub fn total(self) -> VirtualTime {
        self.api + self.driver + self.physical
    }
}

/// Virtual-time cost model of one channel access.
///
/// An access transferring `n` words in direction `d` costs
/// `startup + n * per_word(d)`.
///
/// # Example
///
/// ```
/// use predpkt_channel::{ChannelCostModel, Direction};
/// let pci = ChannelCostModel::iprove_pci();
/// let burst = pci.access_cost(Direction::AccToSim, 64);
/// assert_eq!(burst.as_picos(), 12_200_000 + 64 * 75_730);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelCostModel {
    startup: VirtualTime,
    per_word: [VirtualTime; 2],
}

impl ChannelCostModel {
    /// Creates a model from a flat startup overhead and per-direction word costs.
    pub fn new(
        startup: VirtualTime,
        per_word_sim_to_acc: VirtualTime,
        per_word_acc_to_sim: VirtualTime,
    ) -> Self {
        ChannelCostModel {
            startup,
            per_word: [per_word_sim_to_acc, per_word_acc_to_sim],
        }
    }

    /// Creates a model whose startup is the sum of [`LayeredStartup`] components.
    pub fn from_layers(
        layers: LayeredStartup,
        per_word_sim_to_acc: VirtualTime,
        per_word_acc_to_sim: VirtualTime,
    ) -> Self {
        Self::new(layers.total(), per_word_sim_to_acc, per_word_acc_to_sim)
    }

    /// The paper's measured iPROVE PCI channel: 12.2 µs startup, 49.95 ns/word
    /// simulator→accelerator, 75.73 ns/word accelerator→simulator
    /// (Pentium-4 2.8 GHz host, 32-bit PCI at 33 MHz).
    pub fn iprove_pci() -> Self {
        Self::from_layers(
            LayeredStartup::iprove_pci(),
            VirtualTime::from_picos(49_950),
            VirtualTime::from_picos(75_730),
        )
    }

    /// An idealized channel with zero startup overhead (ablation baseline: with
    /// no startup cost the optimistic scheme has nothing to amortize).
    pub fn zero_startup_like_iprove() -> Self {
        Self::new(
            VirtualTime::ZERO,
            VirtualTime::from_picos(49_950),
            VirtualTime::from_picos(75_730),
        )
    }

    /// Returns a copy with a different startup overhead (ablation A3).
    pub fn with_startup(mut self, startup: VirtualTime) -> Self {
        self.startup = startup;
        self
    }

    /// The per-access startup overhead.
    pub fn startup(&self) -> VirtualTime {
        self.startup
    }

    /// The per-word payload cost in `direction`.
    pub fn per_word(&self, direction: Direction) -> VirtualTime {
        self.per_word[direction.index()]
    }

    /// The full cost of one access moving `words` payload words.
    pub fn access_cost(&self, direction: Direction, words: u64) -> VirtualTime {
        self.startup + self.per_word(direction) * words
    }

    /// Payload efficiency of an access: payload time / total time, in `[0, 1]`.
    ///
    /// This is the §1.2 observation quantified: short transfers waste the channel.
    pub fn efficiency(&self, direction: Direction, words: u64) -> f64 {
        let payload = (self.per_word(direction) * words).as_secs_f64();
        let total = self.access_cost(direction, words).as_secs_f64();
        if total == 0.0 {
            1.0
        } else {
            payload / total
        }
    }

    /// Effective throughput of an access in words/second.
    pub fn throughput_words_per_sec(&self, direction: Direction, words: u64) -> f64 {
        if words == 0 {
            return 0.0;
        }
        words as f64 / self.access_cost(direction, words).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_peer_and_outbound() {
        assert_eq!(Side::Simulator.peer(), Side::Accelerator);
        assert_eq!(Side::Accelerator.peer(), Side::Simulator);
        assert_eq!(Side::Simulator.outbound(), Direction::SimToAcc);
        assert_eq!(Side::Accelerator.outbound(), Direction::AccToSim);
        assert_eq!(Side::Simulator.to_string(), "simulator");
        assert_eq!(Direction::AccToSim.to_string(), "acc->sim");
    }

    #[test]
    fn iprove_constants_match_paper() {
        let m = ChannelCostModel::iprove_pci();
        assert_eq!(m.startup(), VirtualTime::from_nanos(12_200));
        assert_eq!(
            m.per_word(Direction::SimToAcc),
            VirtualTime::from_picos(49_950)
        );
        assert_eq!(
            m.per_word(Direction::AccToSim),
            VirtualTime::from_picos(75_730)
        );
    }

    #[test]
    fn layered_startup_sums_to_total() {
        assert_eq!(
            LayeredStartup::iprove_pci().total(),
            ChannelCostModel::iprove_pci().startup()
        );
    }

    #[test]
    fn access_cost_is_affine_in_words() {
        let m = ChannelCostModel::iprove_pci();
        let zero = m.access_cost(Direction::SimToAcc, 0);
        assert_eq!(zero, m.startup());
        let one = m.access_cost(Direction::SimToAcc, 1);
        let hundred = m.access_cost(Direction::SimToAcc, 100);
        assert_eq!(hundred - zero, (one - zero) * 100);
    }

    #[test]
    fn efficiency_grows_with_burst_size() {
        let m = ChannelCostModel::iprove_pci();
        let mut last = -1.0;
        for words in [1u64, 4, 16, 64, 256, 1024, 4096] {
            let e = m.efficiency(Direction::SimToAcc, words);
            assert!(e > last, "efficiency must increase with size");
            assert!((0.0..=1.0).contains(&e));
            last = e;
        }
        // At 5 words (a typical per-cycle SoC exchange, per the paper) the channel
        // is dreadfully inefficient: > 97% of the time is startup overhead.
        assert!(m.efficiency(Direction::SimToAcc, 5) < 0.03);
    }

    #[test]
    fn zero_startup_is_fully_efficient() {
        let m = ChannelCostModel::zero_startup_like_iprove();
        assert_eq!(m.efficiency(Direction::AccToSim, 1), 1.0);
    }

    #[test]
    fn with_startup_overrides() {
        let m = ChannelCostModel::iprove_pci().with_startup(VirtualTime::from_micros(100));
        assert_eq!(m.startup(), VirtualTime::from_micros(100));
        assert_eq!(
            m.per_word(Direction::SimToAcc),
            VirtualTime::from_picos(49_950)
        );
    }

    #[test]
    fn throughput_saturates_at_line_rate() {
        let m = ChannelCostModel::iprove_pci();
        assert_eq!(m.throughput_words_per_sec(Direction::SimToAcc, 0), 0.0);
        let line_rate = 1.0 / 49.95e-9;
        let big = m.throughput_words_per_sec(Direction::SimToAcc, 1_000_000);
        assert!(big < line_rate);
        assert!(big > line_rate * 0.99);
        let small = m.throughput_words_per_sec(Direction::SimToAcc, 1);
        assert!(small < line_rate * 0.01);
    }
}
