//! Ack-and-retransmit reliability layer over any [`Transport`].
//!
//! The paper assumes a reliable PCI channel; [`LossyTransport`] showed that on
//! a faulty channel the co-emulation protocol merely *detects* corruption
//! (deadlock or protocol error). [`ReliableTransport`] closes that gap: it
//! wraps any inner transport with per-direction sequence numbers, a CRC-32
//! over every frame, a sliding send window, cumulative acknowledgements, and
//! go-back-N retransmission — turning a lossy mailbox into a lossless one.
//!
//! Design points:
//!
//! * **Framing.** Every protocol packet is wrapped into a
//!   [`PacketTag::RelData`] frame `[seq, orig_tag, crc, payload...]`; receipts
//!   travel as [`PacketTag::RelAck`] frames `[ack_seq, crc]` carrying the
//!   receiver's next expected sequence number (cumulative). A frame whose CRC
//!   or layout check fails is discarded and healed by retransmission, so
//!   truncation faults never reach the protocol decoder.
//! * **Virtual-time retransmission clock.** The layer keeps its own
//!   [`VirtualTime`] clock, advanced by [`ReliableConfig::poll_tick`] on
//!   every fruitless receive poll (the caller models blocking by polling, so
//!   polls *are* the passage of time; a delivering poll is not idle time). A
//!   frame unacknowledged for [`ReliableConfig::rto`] of such idle time is
//!   retransmitted, go-back-N, up to [`ReliableConfig::retry_budget`] times
//!   before the layer gives up and records a [`RetryExhausted`] failure
//!   instead of hanging. On real-thread backends polls are wall-clock-paced,
//!   so an OS scheduling stall can fire spurious retransmissions (harmless —
//!   duplicates are suppressed) or even burn the budget; the session layer
//!   therefore treats a recorded failure on a run that still completed as
//!   the false alarm it provably is.
//! * **Cost accounting.** The paper's whole subject is channel traffic, so
//!   recovery overhead is billed honestly: frame headers, acks, and every
//!   retransmitted word are charged through the [`ChannelCostModel`] into
//!   [`RecoveryStats::overhead_words`] / [`RecoveryStats::overhead_time`],
//!   *separately* from the protocol-level [`ChannelStats`] — a reliable
//!   session over a faulty link commits bit-identical traces and ledgers to a
//!   clean run while the recovery bill shows the true cost of the bad link.
//!
//! One instance can serve both directions (wrapping a shared
//! [`QueueTransport`]-style mailbox) or a single side (wrapping a per-side
//! [`ThreadedEndpoint`](crate::ThreadedEndpoint)); unused direction state
//! simply stays empty.
//!
//! # Example
//!
//! ```
//! use predpkt_channel::{
//!     ChannelCostModel, FaultSpec, LossyTransport, Packet, PacketTag, QueueTransport,
//!     ReliableConfig, ReliableTransport, Side, Transport,
//! };
//!
//! // A link that drops half of everything...
//! let lossy = LossyTransport::new(QueueTransport::new(), FaultSpec::drops(7, 0.5));
//! // ...wrapped into a lossless one.
//! let mut t = ReliableTransport::new(lossy, ReliableConfig::default(), ChannelCostModel::iprove_pci());
//! for i in 0..20u32 {
//!     t.send(Side::Simulator, Packet::new(PacketTag::CycleOutputs, vec![i]));
//! }
//! let mut got = Vec::new();
//! for _ in 0..100_000 {
//!     if let Some(p) = t.recv(Side::Accelerator) {
//!         got.push(p.payload()[0]);
//!     }
//!     let _ = t.recv(Side::Simulator); // sender must drain acks
//!     if got.len() == 20 {
//!         break;
//!     }
//! }
//! assert_eq!(got, (0..20).collect::<Vec<_>>(), "in order, nothing lost");
//! assert!(t.recovery_stats().retransmits > 0, "losses were healed");
//! ```

use crate::cost::{ChannelCostModel, Direction, Side};
use crate::knob::KnobError;
use crate::message::{Packet, PacketTag};
use crate::transport::{Transport, WaitTransport};
use predpkt_sim::VirtualTime;
use std::collections::VecDeque;
use std::time::Duration;

/// Words a [`PacketTag::RelData`] frame adds on top of the wrapped packet's
/// own wire words: the sequence number, the original tag, and the CRC (the
/// `RelData` tag word replaces the original tag word, which rides in the
/// payload instead).
pub const DATA_HEADER_WORDS: u64 = 3;

/// Tuning knobs of a [`ReliableTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Maximum unacknowledged frames per direction; further sends queue in an
    /// unbounded backlog until the window opens.
    pub window: usize,
    /// Retransmissions allowed per frame before the layer gives up and
    /// records a [`RetryExhausted`] failure.
    pub retry_budget: u32,
    /// Virtual time a frame may stay unacknowledged before go-back-N
    /// retransmission fires.
    pub rto: VirtualTime,
    /// Virtual time one fruitless receive poll represents (the caller models
    /// blocking by polling, so this is the layer's clock resolution).
    pub poll_tick: VirtualTime,
}

impl Default for ReliableConfig {
    /// Window 8, budget 16, RTO 100 µs, poll tick 12.2 µs (one iPROVE channel
    /// startup — a natural "the channel could have turned around by now"
    /// quantum).
    fn default() -> Self {
        ReliableConfig {
            window: 8,
            retry_budget: 16,
            rto: VirtualTime::from_micros(100),
            poll_tick: VirtualTime::from_nanos(12_200),
        }
    }
}

impl ReliableConfig {
    /// Overrides the send window.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Overrides the retransmission budget.
    pub fn retry_budget(mut self, retry_budget: u32) -> Self {
        self.retry_budget = retry_budget;
        self
    }

    /// Overrides the retransmission timeout.
    pub fn rto(mut self, rto: VirtualTime) -> Self {
        self.rto = rto;
        self
    }

    /// Overrides the per-poll clock tick.
    pub fn poll_tick(mut self, poll_tick: VirtualTime) -> Self {
        self.poll_tick = poll_tick;
        self
    }

    /// Checks every knob for sanity.
    ///
    /// # Errors
    ///
    /// Returns a [`KnobError`] naming the first rejected knob.
    pub fn validate(&self) -> Result<(), KnobError> {
        if self.window == 0 {
            return Err(KnobError::new("window", "must be at least 1"));
        }
        if self.retry_budget == 0 {
            return Err(KnobError::new("retry_budget", "must be at least 1"));
        }
        if self.rto == VirtualTime::ZERO {
            return Err(KnobError::new("rto", "must be positive"));
        }
        if self.poll_tick == VirtualTime::ZERO {
            return Err(KnobError::new("poll_tick", "must be positive"));
        }
        Ok(())
    }
}

/// Counters of the recovery work a [`ReliableTransport`] has performed.
///
/// `overhead_words`/`overhead_time` are the traffic the reliability layer
/// *adds* on top of the protocol's own [`ChannelStats`](crate::ChannelStats):
/// frame headers, acknowledgement frames, and full retransmissions, each
/// billed through the [`ChannelCostModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Data frames retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
    /// Already-delivered frames received again and discarded.
    pub duplicates_suppressed: u64,
    /// Frames discarded for CRC or layout violations.
    pub crc_rejects: u64,
    /// In-flight frames discarded because an earlier frame was still missing
    /// (go-back-N accepts only in-order delivery).
    pub out_of_order_drops: u64,
    /// Extra wire words the recovery layer moved (headers + acks +
    /// retransmissions).
    pub overhead_words: u64,
    /// Virtual-time cost of the extra traffic under the channel cost model.
    pub overhead_time: VirtualTime,
}

impl RecoveryStats {
    /// Recovery *events* (excluding routine acks): retransmits, suppressed
    /// duplicates, CRC rejects, and out-of-order drops. Nonzero exactly when
    /// the layer actually had to repair something.
    pub fn recovery_events(&self) -> u64 {
        self.retransmits + self.duplicates_suppressed + self.crc_rejects + self.out_of_order_drops
    }

    /// Merges another block into this one (per-side threaded instances).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.crc_rejects += other.crc_rejects;
        self.out_of_order_drops += other.out_of_order_drops;
        self.overhead_words += other.overhead_words;
        self.overhead_time += other.overhead_time;
    }
}

/// Record of a frame the reliable layer gave up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryExhausted {
    /// Direction of the abandoned frame.
    pub direction: Direction,
    /// Its sequence number.
    pub seq: u32,
    /// Retransmissions attempted before giving up.
    pub retries: u32,
}

/// Feeds the little-endian bytes of `words` into a running CRC-32 state
/// (IEEE 802.3, reflected); streaming so frame checksums never need a
/// contiguous copy of header + payload.
fn crc32_feed(mut crc: u32, words: &[u32]) -> u32 {
    for word in words {
        for byte in word.to_le_bytes() {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
    }
    crc
}

/// CRC-32 of `head` followed by `tail`, as if they were one word slice.
fn crc32_parts(head: &[u32], tail: &[u32]) -> u32 {
    !crc32_feed(crc32_feed(!0, head), tail)
}

/// CRC-32 (IEEE 802.3, reflected) over the little-endian bytes of `words`.
fn crc32(words: &[u32]) -> u32 {
    crc32_parts(words, &[])
}

/// An in-flight (or backlogged) data frame.
#[derive(Debug)]
struct InFlight {
    seq: u32,
    frame: Packet,
    /// Clock value at the most recent transmission (meaningless while
    /// backlogged).
    sent_at: VirtualTime,
    retries: u32,
}

/// Per-direction sender state.
#[derive(Debug, Default)]
struct SendState {
    next_seq: u32,
    /// Transmitted, awaiting acknowledgement (len ≤ window).
    unacked: VecDeque<InFlight>,
    /// Framed but not yet transmitted (window was full).
    backlog: VecDeque<InFlight>,
}

/// Per-direction receiver state.
#[derive(Debug, Default)]
struct RecvState {
    next_expected: u32,
    /// Decoded original packets ready for [`Transport::recv`].
    deliverable: VecDeque<Packet>,
}

/// Sequence-numbered ack-and-retransmit wrapper turning any inner transport —
/// including a fault-injecting [`LossyTransport`](crate::LossyTransport) —
/// into a lossless one. See the module-level documentation for the design.
#[derive(Debug)]
pub struct ReliableTransport<T: Transport> {
    inner: T,
    config: ReliableConfig,
    cost_model: ChannelCostModel,
    /// The layer's own virtual-time clock (see module docs).
    now: VirtualTime,
    /// `None` when one instance serves both domains over a shared mailbox
    /// (queue/lossy backends): any receive poll drains *both* sides' inner
    /// queues so acknowledgements are processed promptly no matter which
    /// domain polls. `Some(side)` for a per-side instance over an endpoint
    /// that only ever carries that side's traffic.
    scope: Option<Side>,
    send: [SendState; 2],
    recv: [RecvState; 2],
    stats: RecoveryStats,
    failure: Option<RetryExhausted>,
}

fn sender_of(direction: Direction) -> Side {
    match direction {
        Direction::SimToAcc => Side::Simulator,
        Direction::AccToSim => Side::Accelerator,
    }
}

impl<T: Transport> ReliableTransport<T> {
    /// Wraps `inner`, validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ReliableConfig::validate`]; callers wanting
    /// a `Result` validate first (the session builder does).
    pub fn new(inner: T, config: ReliableConfig, cost_model: ChannelCostModel) -> Self {
        config.validate().expect("invalid reliable config");
        ReliableTransport {
            inner,
            config,
            cost_model,
            now: VirtualTime::ZERO,
            scope: None,
            send: Default::default(),
            recv: Default::default(),
            stats: RecoveryStats::default(),
            failure: None,
        }
    }

    /// Restricts the instance to one side — for per-side inner transports
    /// like a [`ThreadedEndpoint`](crate::ThreadedEndpoint), where receiving
    /// for the peer would read the wrong queue.
    pub fn for_side(mut self, side: Side) -> Self {
        self.scope = Some(side);
        self
    }

    /// Recovery counters accumulated so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The first frame the layer gave up on, if any — once set, the affected
    /// direction stops retransmitting so the run can terminate (detected as a
    /// deadlock and mapped to a typed error by the session layer).
    pub fn failure(&self) -> Option<RetryExhausted> {
        self.failure
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The layer's virtual-time clock (diagnostics).
    pub fn clock(&self) -> VirtualTime {
        self.now
    }

    /// Shared access to the inner transport (e.g. to read
    /// [`LossyTransport`](crate::LossyTransport) fault counters).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Exclusive access to the inner transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn encode_data(seq: u32, packet: &Packet) -> Packet {
        let tag_word = packet.tag().encode();
        let mut payload = Vec::with_capacity(3 + packet.payload().len());
        payload.push(seq);
        payload.push(tag_word);
        payload.push(crc32_parts(&[seq, tag_word], packet.payload()));
        payload.extend_from_slice(packet.payload());
        Packet::new(PacketTag::RelData, payload)
    }

    fn decode_data(frame: &Packet) -> Option<(u32, Packet)> {
        let p = frame.payload();
        if p.len() < 3 {
            return None;
        }
        let (seq, tag_word, crc) = (p[0], p[1], p[2]);
        let tag = PacketTag::decode(tag_word)?;
        if crc32_parts(&[seq, tag_word], &p[3..]) != crc {
            return None;
        }
        Some((seq, Packet::new(tag, p[3..].to_vec())))
    }

    fn encode_ack(ack_seq: u32) -> Packet {
        Packet::new(PacketTag::RelAck, vec![ack_seq, crc32(&[ack_seq])])
    }

    fn decode_ack(frame: &Packet) -> Option<u32> {
        let p = frame.payload();
        if p.len() != 2 || crc32(&[p[0]]) != p[1] {
            return None;
        }
        Some(p[0])
    }

    /// Pushes `frame` onto the wire from `from`. Returns the wire words and
    /// the cost-model access cost so callers can bill recovery overhead.
    fn transmit(&mut self, from: Side, frame: Packet) -> (u64, VirtualTime) {
        let words = frame.wire_words();
        let cost = self.cost_model.access_cost(from.outbound(), words);
        self.inner.send(from, frame);
        (words, cost)
    }

    /// Sends a cumulative ack from `from` (the receiving domain) back toward
    /// the data sender, billing it as pure recovery overhead.
    fn send_ack(&mut self, from: Side, ack_seq: u32) {
        let (words, cost) = self.transmit(from, Self::encode_ack(ack_seq));
        self.stats.acks_sent += 1;
        self.stats.overhead_words += words;
        self.stats.overhead_time += cost;
    }

    /// Moves backlogged frames of `direction` onto the wire while the window
    /// has room.
    fn fill_window(&mut self, direction: Direction) {
        let from = sender_of(direction);
        loop {
            let state = &mut self.send[direction.index()];
            if state.unacked.len() >= self.config.window {
                return;
            }
            let Some(mut inflight) = state.backlog.pop_front() else {
                return;
            };
            self.transmit(from, inflight.frame.clone());
            inflight.sent_at = self.now;
            self.send[direction.index()].unacked.push_back(inflight);
        }
    }

    fn handle_data(&mut self, to: Side, frame: &Packet) {
        let in_dir = to.peer().outbound();
        let Some((seq, original)) = Self::decode_data(frame) else {
            self.stats.crc_rejects += 1;
            return;
        };
        let state = &mut self.recv[in_dir.index()];
        if seq == state.next_expected {
            state.next_expected = state.next_expected.wrapping_add(1);
            state.deliverable.push_back(original);
        } else if seq.wrapping_sub(state.next_expected) > u32::MAX / 2 {
            // seq < next_expected (mod 2^32): already delivered.
            self.stats.duplicates_suppressed += 1;
        } else {
            // A gap: an earlier frame is still missing; go-back-N discards.
            self.stats.out_of_order_drops += 1;
        }
        let ack_seq = self.recv[in_dir.index()].next_expected;
        self.send_ack(to, ack_seq);
    }

    fn handle_ack(&mut self, to: Side, frame: &Packet) {
        let out_dir = to.outbound();
        let Some(ack) = Self::decode_ack(frame) else {
            self.stats.crc_rejects += 1;
            return;
        };
        let state = &mut self.send[out_dir.index()];
        while let Some(front) = state.unacked.front() {
            if front.seq.wrapping_sub(ack) > u32::MAX / 2 {
                // front.seq < ack (mod 2^32): acknowledged.
                state.unacked.pop_front();
            } else {
                break;
            }
        }
        self.fill_window(out_dir);
    }

    /// Drains every packet the inner transport holds for `side`, sorting
    /// frames into deliverable data, consumed acks, and rejected garbage.
    fn drain_for(&mut self, side: Side) {
        while let Some(frame) = self.inner.recv(side) {
            match frame.tag() {
                PacketTag::RelData => self.handle_data(side, &frame),
                PacketTag::RelAck => self.handle_ack(side, &frame),
                // Unframed traffic (an inner transport shared with raw users)
                // passes through untouched.
                _ => {
                    let in_dir = side.peer().outbound();
                    self.recv[in_dir.index()].deliverable.push_back(frame);
                }
            }
        }
    }

    /// Drains the inner queues this instance is allowed to read: just `to`'s
    /// for a per-side instance, both for a shared one (so a poll by either
    /// domain processes pending acknowledgements immediately).
    fn drain_inner(&mut self, to: Side) {
        self.drain_for(to);
        if self.scope.is_none() {
            self.drain_for(to.peer());
        }
    }

    /// Retransmits timed-out frames (go-back-N) in every direction this
    /// instance sends, abandoning directions whose budget is exhausted.
    fn pump_timeouts(&mut self) {
        for direction in Direction::BOTH {
            let state = &self.send[direction.index()];
            let Some(front) = state.unacked.front() else {
                continue;
            };
            if self.now - front.sent_at < self.config.rto {
                continue;
            }
            if front.retries >= self.config.retry_budget {
                if self.failure.is_none() {
                    self.failure = Some(RetryExhausted {
                        direction,
                        seq: front.seq,
                        retries: front.retries,
                    });
                }
                let state = &mut self.send[direction.index()];
                state.unacked.clear();
                state.backlog.clear();
                continue;
            }
            let from = sender_of(direction);
            let count = self.send[direction.index()].unacked.len();
            for i in 0..count {
                let frame = self.send[direction.index()].unacked[i].frame.clone();
                let (words, cost) = self.transmit(from, frame);
                let inflight = &mut self.send[direction.index()].unacked[i];
                inflight.sent_at = self.now;
                inflight.retries += 1;
                self.stats.retransmits += 1;
                self.stats.overhead_words += words;
                self.stats.overhead_time += cost;
            }
        }
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn send(&mut self, from: Side, packet: Packet) {
        let out_dir = from.outbound();
        let state = &mut self.send[out_dir.index()];
        let seq = state.next_seq;
        state.next_seq = state.next_seq.wrapping_add(1);
        let frame = Self::encode_data(seq, &packet);
        // The protocol already billed the original packet through its costed
        // channel; the framing header is the recovery layer's own traffic.
        self.stats.overhead_words += DATA_HEADER_WORDS;
        self.stats.overhead_time += self.cost_model.per_word(out_dir) * DATA_HEADER_WORDS;
        let state = &mut self.send[out_dir.index()];
        let window_open = state.unacked.len() < self.config.window && state.backlog.is_empty();
        let mut inflight = InFlight {
            seq,
            frame,
            sent_at: VirtualTime::ZERO,
            retries: 0,
        };
        if window_open {
            self.transmit(from, inflight.frame.clone());
            inflight.sent_at = self.now;
            self.send[out_dir.index()].unacked.push_back(inflight);
        } else {
            self.send[out_dir.index()].backlog.push_back(inflight);
        }
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        self.drain_inner(to);
        let in_dir = to.peer().outbound();
        if let Some(packet) = self.recv[in_dir.index()].deliverable.pop_front() {
            return Some(packet);
        }
        // Nothing deliverable: the caller is polling, i.e. time is passing.
        self.now += self.config.poll_tick;
        self.pump_timeouts();
        None
    }

    /// Logical packets still owed to `to`: decoded-but-unconsumed deliveries
    /// plus every frame the sender will (re)transmit until acknowledged.
    /// In-flight wire frames are *not* double-counted — a frame is either
    /// deliverable, unacknowledged, or backlogged. Reaches zero exactly when
    /// no recovery action can ever deliver anything more (including after a
    /// [`RetryExhausted`] abandonment), which is what turns starvation into a
    /// detectable deadlock upstream.
    fn pending(&self, to: Side) -> usize {
        let in_dir = to.peer().outbound();
        self.recv[in_dir.index()].deliverable.len()
            + self.send[in_dir.index()].unacked.len()
            + self.send[in_dir.index()].backlog.len()
    }
}

impl<T: WaitTransport> WaitTransport for ReliableTransport<T> {
    fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        if self.recv.iter().any(|r| !r.deliverable.is_empty()) {
            return true;
        }
        let got = self.inner.wait_for_packet(timeout);
        // Like a delivering recv poll, a wait that produced a packet is not
        // idle time; only a timed-out wait advances the RTO clock.
        if !got {
            self.now += self.config.poll_tick;
            self.pump_timeouts();
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::QueueTransport;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // CRC-32("123456789") = 0xCBF43926; feed the nine ASCII bytes as
        // little-endian words (two whole words + the tail folded manually is
        // awkward, so check word-aligned vectors instead and pin them).
        assert_eq!(crc32(&[]), 0);
        // Pinned value: CRC-32 of four zero bytes is 0x2144DF1C; stability
        // here is what frame compatibility rests on.
        assert_eq!(crc32(&[0]), 0x2144_df1c);
        assert_ne!(crc32(&[1]), crc32(&[2]));
    }

    #[test]
    fn streamed_crc_equals_whole_slice_crc() {
        let words = [7u32, 0xdead_beef, 42, 0, u32::MAX];
        for split in 0..=words.len() {
            assert_eq!(
                crc32_parts(&words[..split], &words[split..]),
                crc32(&words),
                "split at {split}"
            );
        }
    }

    #[test]
    fn data_frame_roundtrip() {
        let original = Packet::new(PacketTag::Burst, vec![9, 8, 7]);
        let frame = ReliableTransport::<QueueTransport>::encode_data(5, &original);
        assert_eq!(frame.tag(), PacketTag::RelData);
        assert_eq!(
            frame.wire_words(),
            original.wire_words() + DATA_HEADER_WORDS
        );
        let (seq, decoded) = ReliableTransport::<QueueTransport>::decode_data(&frame).unwrap();
        assert_eq!(seq, 5);
        assert_eq!(decoded, original);
    }

    #[test]
    fn corrupted_data_frame_rejected() {
        let original = Packet::new(PacketTag::CycleOutputs, vec![1, 2]);
        let frame = ReliableTransport::<QueueTransport>::encode_data(0, &original);
        // Flip a payload bit.
        let mut words = frame.payload().to_vec();
        *words.last_mut().unwrap() ^= 1;
        let bad = Packet::new(PacketTag::RelData, words);
        assert!(ReliableTransport::<QueueTransport>::decode_data(&bad).is_none());
        // Truncate the last word (what LossyTransport does).
        let mut words = frame.payload().to_vec();
        words.pop();
        let truncated = Packet::new(PacketTag::RelData, words);
        assert!(ReliableTransport::<QueueTransport>::decode_data(&truncated).is_none());
    }

    #[test]
    fn ack_frame_roundtrip_and_rejection() {
        let ack = ReliableTransport::<QueueTransport>::encode_ack(77);
        assert_eq!(
            ReliableTransport::<QueueTransport>::decode_ack(&ack),
            Some(77)
        );
        let mut words = ack.payload().to_vec();
        words.pop();
        let truncated = Packet::new(PacketTag::RelAck, words);
        assert_eq!(
            ReliableTransport::<QueueTransport>::decode_ack(&truncated),
            None
        );
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(ReliableConfig::default().validate().is_ok());
        for (field, config) in [
            ("window", ReliableConfig::default().window(0)),
            ("retry_budget", ReliableConfig::default().retry_budget(0)),
            ("rto", ReliableConfig::default().rto(VirtualTime::ZERO)),
            (
                "poll_tick",
                ReliableConfig::default().poll_tick(VirtualTime::ZERO),
            ),
        ] {
            let err = config.validate().expect_err("must be rejected");
            assert_eq!(err.field, field, "error '{err}' should name {field}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid reliable config")]
    fn constructor_panics_on_invalid_config() {
        let _ = ReliableTransport::new(
            QueueTransport::new(),
            ReliableConfig::default().window(0),
            ChannelCostModel::iprove_pci(),
        );
    }
}
