//! Ack-and-retransmit reliability layer over any [`Transport`].
//!
//! The paper assumes a reliable PCI channel; [`LossyTransport`] showed that on
//! a faulty channel the co-emulation protocol merely *detects* corruption
//! (deadlock or protocol error). [`ReliableTransport`] closes that gap: it
//! wraps any inner transport with per-direction sequence numbers, a CRC-32
//! over every frame, a sliding send window, cumulative acknowledgements, and
//! go-back-N retransmission — turning a lossy mailbox into a lossless one.
//!
//! Design points:
//!
//! * **Framing with piggybacked acks.** Every protocol packet is wrapped into
//!   a [`PacketTag::RelData`] frame `[seq, ack, orig_tag, crc, payload...]`
//!   whose `ack` word carries the sender's cumulative acknowledgement for the
//!   *reverse* direction — when data is flowing, acknowledgements ride on it
//!   for free instead of paying a channel access each. A standalone
//!   [`PacketTag::RelAck`] frame `[ack_seq, crc]` is emitted only when the
//!   receiving side goes idle (a fruitless receive poll) while still owing
//!   one. Cumulative acks are idempotent, so a stale piggybacked value is
//!   harmless. A frame whose CRC or layout check fails is discarded and
//!   healed by retransmission, so truncation faults never reach the protocol
//!   decoder.
//! * **Zero-copy hot path.** Frame payloads are drawn from a free-list
//!   [`BufferPool`](crate::BufferPool) fed by consumed inbound frames,
//!   acknowledged outbound frames, and the protocol packets the layer
//!   swallows; transmissions (first sends, window refills, go-back-N bursts)
//!   go to the inner transport **by reference** ([`Transport::send_ref`] /
//!   [`Transport::send_batch_ref`]), so the steady-state path neither clones
//!   frames nor allocates, and a retransmission burst coalesces into one
//!   physical write on batching backends.
//! * **Virtual-time retransmission clock.** The layer keeps its own
//!   [`VirtualTime`] clock, advanced by [`ReliableConfig::poll_tick`] on
//!   every fruitless receive poll (the caller models blocking by polling, so
//!   polls *are* the passage of time; a delivering poll is not idle time). A
//!   frame unacknowledged for [`ReliableConfig::rto`] of such idle time is
//!   retransmitted, go-back-N, up to [`ReliableConfig::retry_budget`] times
//!   before the layer gives up and records a [`RetryExhausted`] failure
//!   instead of hanging. On real-thread backends polls are wall-clock-paced,
//!   so an OS scheduling stall can fire spurious retransmissions (harmless —
//!   duplicates are suppressed) or even burn the budget; the session layer
//!   therefore treats a recorded failure on a run that still completed as
//!   the false alarm it provably is.
//! * **Cost accounting.** The paper's whole subject is channel traffic, so
//!   recovery overhead is billed honestly: frame headers, acks, and every
//!   retransmitted word are charged through the [`ChannelCostModel`] into
//!   [`RecoveryStats::overhead_words`] / [`RecoveryStats::overhead_time`],
//!   *separately* from the protocol-level [`ChannelStats`] — a reliable
//!   session over a faulty link commits bit-identical traces and ledgers to a
//!   clean run while the recovery bill shows the true cost of the bad link.
//!
//! One instance can serve both directions (wrapping a shared
//! [`QueueTransport`]-style mailbox) or a single side (wrapping a per-side
//! [`ThreadedEndpoint`](crate::ThreadedEndpoint)); unused direction state
//! simply stays empty.
//!
//! # Example
//!
//! ```
//! use predpkt_channel::{
//!     ChannelCostModel, FaultSpec, LossyTransport, Packet, PacketTag, QueueTransport,
//!     ReliableConfig, ReliableTransport, Side, Transport,
//! };
//!
//! // A link that drops half of everything...
//! let lossy = LossyTransport::new(QueueTransport::new(), FaultSpec::drops(7, 0.5));
//! // ...wrapped into a lossless one.
//! let mut t = ReliableTransport::new(lossy, ReliableConfig::default(), ChannelCostModel::iprove_pci());
//! for i in 0..20u32 {
//!     t.send(Side::Simulator, Packet::new(PacketTag::CycleOutputs, vec![i]));
//! }
//! let mut got = Vec::new();
//! for _ in 0..100_000 {
//!     if let Some(p) = t.recv(Side::Accelerator) {
//!         got.push(p.payload()[0]);
//!     }
//!     let _ = t.recv(Side::Simulator); // sender must drain acks
//!     if got.len() == 20 {
//!         break;
//!     }
//! }
//! assert_eq!(got, (0..20).collect::<Vec<_>>(), "in order, nothing lost");
//! assert!(t.recovery_stats().retransmits > 0, "losses were healed");
//! ```

use crate::cost::{ChannelCostModel, Direction, Side};
use crate::knob::KnobError;
use crate::message::{Packet, PacketTag};
use crate::pool::{BufferPool, PoolStats};
use crate::transport::{BatchStats, Transport, WaitTransport};
use predpkt_sim::{Snapshot, VirtualTime};
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Words a [`PacketTag::RelData`] frame adds on top of the wrapped packet's
/// own wire words: the sequence number, the piggybacked cumulative ack for
/// the reverse direction, the original tag, and the CRC (the `RelData` tag
/// word replaces the original tag word, which rides in the payload instead).
pub const DATA_HEADER_WORDS: u64 = 4;

/// Tuning knobs of a [`ReliableTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Maximum unacknowledged frames per direction; further sends queue in an
    /// unbounded backlog until the window opens.
    pub window: usize,
    /// Go-back-N rounds a frame may fail as the *oldest unacknowledged*
    /// frame before the layer gives up and records a [`RetryExhausted`]
    /// failure (frames deeper in the window retransmit alongside without
    /// being charged — they did not cause the stall).
    pub retry_budget: u32,
    /// Virtual time a frame may stay unacknowledged before go-back-N
    /// retransmission fires.
    pub rto: VirtualTime,
    /// Virtual time one fruitless receive poll represents (the caller models
    /// blocking by polling, so this is the layer's clock resolution).
    pub poll_tick: VirtualTime,
}

impl Default for ReliableConfig {
    /// Window 8, budget 16, RTO 100 µs, poll tick 12.2 µs (one iPROVE channel
    /// startup — a natural "the channel could have turned around by now"
    /// quantum).
    fn default() -> Self {
        ReliableConfig {
            window: 8,
            retry_budget: 16,
            rto: VirtualTime::from_micros(100),
            poll_tick: VirtualTime::from_nanos(12_200),
        }
    }
}

impl ReliableConfig {
    /// Overrides the send window.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Overrides the retransmission budget.
    pub fn retry_budget(mut self, retry_budget: u32) -> Self {
        self.retry_budget = retry_budget;
        self
    }

    /// Overrides the retransmission timeout.
    pub fn rto(mut self, rto: VirtualTime) -> Self {
        self.rto = rto;
        self
    }

    /// Overrides the per-poll clock tick.
    pub fn poll_tick(mut self, poll_tick: VirtualTime) -> Self {
        self.poll_tick = poll_tick;
        self
    }

    /// Checks every knob for sanity.
    ///
    /// # Errors
    ///
    /// Returns a [`KnobError`] naming the first rejected knob.
    pub fn validate(&self) -> Result<(), KnobError> {
        if self.window == 0 {
            return Err(KnobError::new("window", "must be at least 1"));
        }
        if self.retry_budget == 0 {
            return Err(KnobError::new("retry_budget", "must be at least 1"));
        }
        if self.rto == VirtualTime::ZERO {
            return Err(KnobError::new("rto", "must be positive"));
        }
        if self.poll_tick == VirtualTime::ZERO {
            return Err(KnobError::new("poll_tick", "must be positive"));
        }
        Ok(())
    }
}

/// Counters of the recovery work a [`ReliableTransport`] has performed.
///
/// `overhead_words`/`overhead_time` are the traffic the reliability layer
/// *adds* on top of the protocol's own [`ChannelStats`](crate::ChannelStats):
/// frame headers, acknowledgement frames, and full retransmissions, each
/// billed through the [`ChannelCostModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Data frames retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// Acknowledgement obligations satisfied: standalone [`PacketTag::RelAck`]
    /// frames plus acks piggybacked on outgoing data frames.
    pub acks_sent: u64,
    /// The subset of [`acks_sent`](Self::acks_sent) that rode an outgoing
    /// data frame instead of paying for a standalone ack access.
    pub acks_piggybacked: u64,
    /// Already-delivered frames received again and discarded.
    pub duplicates_suppressed: u64,
    /// Frames discarded for CRC or layout violations.
    pub crc_rejects: u64,
    /// In-flight frames discarded because an earlier frame was still missing
    /// (go-back-N accepts only in-order delivery).
    pub out_of_order_drops: u64,
    /// Extra wire words the recovery layer moved (headers + acks +
    /// retransmissions).
    pub overhead_words: u64,
    /// Virtual-time cost of the extra traffic under the channel cost model.
    pub overhead_time: VirtualTime,
}

impl RecoveryStats {
    /// Recovery *events* (excluding routine acks): retransmits, suppressed
    /// duplicates, CRC rejects, and out-of-order drops. Nonzero exactly when
    /// the layer actually had to repair something.
    pub fn recovery_events(&self) -> u64 {
        self.retransmits + self.duplicates_suppressed + self.crc_rejects + self.out_of_order_drops
    }

    /// Fraction of acknowledgements that rode data frames for free (`None`
    /// before the first ack). High when traffic is bidirectional — the
    /// batching/piggyback efficiency figure benches report.
    pub fn ack_piggyback_ratio(&self) -> Option<f64> {
        (self.acks_sent > 0).then(|| self.acks_piggybacked as f64 / self.acks_sent as f64)
    }

    /// Merges another block into this one (per-side threaded instances).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.acks_piggybacked += other.acks_piggybacked;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.crc_rejects += other.crc_rejects;
        self.out_of_order_drops += other.out_of_order_drops;
        self.overhead_words += other.overhead_words;
        self.overhead_time += other.overhead_time;
    }
}

/// Why a [`ReliableTransport`] gave up on a frame — the postmortem cause
/// attached to every [`RetryExhausted`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportDead {
    /// The medium itself reported death (the inner transport's readiness
    /// went [`Dead`](crate::poll::Readiness::Dead) — a severed link or
    /// reset socket) while frames were still outstanding. The layer fails
    /// fast instead of burning the budget against a link it knows is gone.
    PeerGone,
    /// The retransmission budget was exhausted with no death signal from
    /// the medium: the link may be lossy beyond repair, silently wedged, or
    /// the peer stalled. Blocking runners land here even when the peer is
    /// in fact gone — they have no readiness probe, so exhaustion is the
    /// only evidence they ever see.
    BudgetExhausted,
}

impl fmt::Display for TransportDead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportDead::PeerGone => "peer gone",
            TransportDead::BudgetExhausted => "retry budget exhausted",
        })
    }
}

/// Record of a frame the reliable layer gave up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryExhausted {
    /// Direction of the abandoned frame.
    pub direction: Direction,
    /// Its sequence number.
    pub seq: u32,
    /// Retransmissions attempted before giving up.
    pub retries: u32,
    /// Cumulative idle (RTO-clock) time the frame spent unacknowledged —
    /// from its first transmission to abandonment — so a postmortem can say
    /// how long the link was dead, not just how often it was retried.
    pub idle: VirtualTime,
    /// Why the layer gave up: the medium reported death, or the budget ran
    /// out without one.
    pub cause: TransportDead,
}

/// Feeds the little-endian bytes of `words` into a running CRC-32 state
/// (IEEE 802.3, reflected); streaming so frame checksums never need a
/// contiguous copy of header + payload.
pub fn crc32_feed(mut crc: u32, words: &[u32]) -> u32 {
    for word in words {
        for byte in word.to_le_bytes() {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
    }
    crc
}

/// CRC-32 of `head` followed by `tail`, as if they were one word slice.
pub fn crc32_parts(head: &[u32], tail: &[u32]) -> u32 {
    !crc32_feed(crc32_feed(!0, head), tail)
}

/// CRC-32 (IEEE 802.3, reflected) over the little-endian bytes of `words` —
/// the same polynomial that protects `RelData` frames, reused by the session
/// checkpoint codec to seal each section of a checkpoint blob.
pub fn crc32(words: &[u32]) -> u32 {
    crc32_parts(words, &[])
}

/// An in-flight (or backlogged) data frame.
#[derive(Debug)]
struct InFlight {
    seq: u32,
    frame: Packet,
    /// Clock value at the most recent transmission (meaningless while
    /// backlogged).
    sent_at: VirtualTime,
    /// Clock value at the *first* transmission — unlike `sent_at` it
    /// survives retransmissions, so `now - first_sent` at abandonment is
    /// the frame's cumulative idle RTO time.
    first_sent: VirtualTime,
    retries: u32,
}

/// Per-direction sender state.
#[derive(Debug, Default)]
struct SendState {
    next_seq: u32,
    /// Transmitted, awaiting acknowledgement (len ≤ window).
    unacked: VecDeque<InFlight>,
    /// Framed but not yet transmitted (window was full).
    backlog: VecDeque<InFlight>,
}

/// Per-direction receiver state.
#[derive(Debug, Default)]
struct RecvState {
    next_expected: u32,
    /// Decoded original packets ready for [`Transport::recv`].
    deliverable: VecDeque<Packet>,
    /// The receiving side owes the data sender an acknowledgement. Cleared
    /// when a cumulative ack goes out — piggybacked on a data frame when
    /// traffic is flowing, or as a standalone frame on the receiver's next
    /// idle poll.
    ack_pending: bool,
}

/// Sequence-numbered ack-and-retransmit wrapper turning any inner transport —
/// including a fault-injecting [`LossyTransport`](crate::LossyTransport) —
/// into a lossless one. See the module-level documentation for the design.
#[derive(Debug)]
pub struct ReliableTransport<T: Transport> {
    inner: T,
    config: ReliableConfig,
    cost_model: ChannelCostModel,
    /// The layer's own virtual-time clock (see module docs).
    now: VirtualTime,
    /// `None` when one instance serves both domains over a shared mailbox
    /// (queue/lossy backends): any receive poll drains *both* sides' inner
    /// queues so acknowledgements are processed promptly no matter which
    /// domain polls. `Some(side)` for a per-side instance over an endpoint
    /// that only ever carries that side's traffic.
    scope: Option<Side>,
    send: [SendState; 2],
    recv: [RecvState; 2],
    stats: RecoveryStats,
    failure: Option<RetryExhausted>,
    /// Free list feeding the frame-encode and decode paths: consumed inbound
    /// frames, acknowledged outbound frames, and swallowed protocol packets
    /// all return their buffers here. Steady state runs allocation-free.
    pool: BufferPool,
}

fn sender_of(direction: Direction) -> Side {
    match direction {
        Direction::SimToAcc => Side::Simulator,
        Direction::AccToSim => Side::Accelerator,
    }
}

impl<T: Transport> ReliableTransport<T> {
    /// Wraps `inner`, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns a [`KnobError`] naming the first knob
    /// [`ReliableConfig::validate`] rejects.
    pub fn try_new(
        inner: T,
        config: ReliableConfig,
        cost_model: ChannelCostModel,
    ) -> Result<Self, KnobError> {
        config.validate()?;
        Ok(Self::new_prevalidated(inner, config, cost_model))
    }

    /// Wraps `inner`, validating the configuration.
    ///
    /// Convenience for configurations known valid by construction (defaults,
    /// literals); fallible callers — anything forwarding user input — should
    /// use [`try_new`](Self::try_new) instead.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ReliableConfig::validate`].
    pub fn new(inner: T, config: ReliableConfig, cost_model: ChannelCostModel) -> Self {
        Self::try_new(inner, config, cost_model).expect("invalid reliable config")
    }

    /// The infallible interior constructor: `config` has already passed
    /// [`ReliableConfig::validate`] (the session builder validates every knob
    /// before any transport is built).
    pub(crate) fn new_prevalidated(
        inner: T,
        config: ReliableConfig,
        cost_model: ChannelCostModel,
    ) -> Self {
        ReliableTransport {
            inner,
            config,
            cost_model,
            now: VirtualTime::ZERO,
            scope: None,
            send: Default::default(),
            recv: Default::default(),
            stats: RecoveryStats::default(),
            failure: None,
            pool: BufferPool::new(),
        }
    }

    /// Restricts the instance to one side — for per-side inner transports
    /// like a [`ThreadedEndpoint`](crate::ThreadedEndpoint), where receiving
    /// for the peer would read the wrong queue.
    pub fn for_side(mut self, side: Side) -> Self {
        self.scope = Some(side);
        self
    }

    /// Recovery counters accumulated so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The first frame the layer gave up on, if any — once set, the affected
    /// direction stops retransmitting so the run can terminate (detected as a
    /// deadlock and mapped to a typed error by the session layer).
    pub fn failure(&self) -> Option<RetryExhausted> {
        self.failure
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The layer's virtual-time clock (diagnostics).
    pub fn clock(&self) -> VirtualTime {
        self.now
    }

    /// Shared access to the inner transport (e.g. to read
    /// [`LossyTransport`](crate::LossyTransport) fault counters).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Exclusive access to the inner transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The pool's hit/miss counters — the steady-state zero-allocation
    /// property, observable (and asserted by tests/benches).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Frames the packet into a `[seq, ack, orig_tag, crc, payload...]`
    /// `RelData` frame, drawing the frame buffer from the pool.
    fn encode_data(&mut self, seq: u32, ack: u32, packet: &Packet) -> Packet {
        let tag_word = packet.tag().encode();
        let mut payload = self.pool.acquire();
        payload.reserve(DATA_HEADER_WORDS as usize + packet.payload().len());
        payload.push(seq);
        payload.push(ack);
        payload.push(tag_word);
        payload.push(crc32_parts(&[seq, ack, tag_word], packet.payload()));
        payload.extend_from_slice(packet.payload());
        Packet::new(PacketTag::RelData, payload)
    }

    /// Validates a `RelData` frame and borrows its parts — `(seq,
    /// piggybacked ack, wrapped tag, wrapped payload)`. No copy happens
    /// here: the caller materializes the wrapped packet only for frames it
    /// actually delivers (duplicates and gap frames are discarded from the
    /// borrow).
    fn parse_data(frame: &Packet) -> Option<(u32, u32, PacketTag, &[u32])> {
        let p = frame.payload();
        if p.len() < DATA_HEADER_WORDS as usize {
            return None;
        }
        let (seq, ack, tag_word, crc) = (p[0], p[1], p[2], p[3]);
        let tag = PacketTag::decode(tag_word)?;
        if crc32_parts(&[seq, ack, tag_word], &p[4..]) != crc {
            return None;
        }
        Some((seq, ack, tag, &p[4..]))
    }

    /// [`parse_data`](Self::parse_data) plus materialization through the
    /// pool — the full decode, kept for the codec round-trip tests.
    #[cfg(test)]
    fn decode_data(&mut self, frame: &Packet) -> Option<(u32, u32, Packet)> {
        let (seq, ack, tag, payload) = Self::parse_data(frame)?;
        let mut buf = self.pool.acquire();
        buf.extend_from_slice(payload);
        Some((seq, ack, Packet::new(tag, buf)))
    }

    /// Rewrites the piggybacked ack word of an already-encoded data frame
    /// (and its CRC) in place — transmissions always carry the *current*
    /// cumulative ack, however long the frame sat in the backlog or window.
    fn refresh_frame_ack(frame: &mut Packet, ack: u32) {
        let p = frame.payload_mut();
        debug_assert!(p.len() >= DATA_HEADER_WORDS as usize);
        if p[1] == ack {
            return;
        }
        p[1] = ack;
        let crc = crc32_parts(&[p[0], ack, p[2]], &p[DATA_HEADER_WORDS as usize..]);
        p[3] = crc;
    }

    fn encode_ack(&mut self, ack_seq: u32) -> Packet {
        let mut payload = self.pool.acquire();
        payload.push(ack_seq);
        payload.push(crc32(&[ack_seq]));
        Packet::new(PacketTag::RelAck, payload)
    }

    fn decode_ack(frame: &Packet) -> Option<u32> {
        let p = frame.payload();
        if p.len() != 2 || crc32(&[p[0]]) != p[1] {
            return None;
        }
        Some(p[0])
    }

    /// Sends a standalone cumulative ack from `from` (the receiving domain)
    /// back toward the data sender, billing it as pure recovery overhead.
    fn send_ack(&mut self, from: Side, ack_seq: u32) {
        let frame = self.encode_ack(ack_seq);
        let words = frame.wire_words();
        let cost = self.cost_model.access_cost(from.outbound(), words);
        self.inner.send_ref(from, &frame);
        self.pool.release(frame.into_payload());
        self.stats.acks_sent += 1;
        self.stats.overhead_words += words;
        self.stats.overhead_time += cost;
    }

    /// Emits the standalone ack `from` still owes, if any — called on
    /// fruitless polls (idle time), so an ack that found no data frame to
    /// ride is never delayed past one poll tick.
    fn flush_pending_ack(&mut self, from: Side) {
        let in_dir = from.peer().outbound();
        if !self.recv[in_dir.index()].ack_pending {
            return;
        }
        self.recv[in_dir.index()].ack_pending = false;
        let ack_seq = self.recv[in_dir.index()].next_expected;
        self.send_ack(from, ack_seq);
    }

    /// Moves backlogged frames of `direction` onto the wire while the window
    /// has room, stamping each with the current cumulative ack (clearing any
    /// pending ack obligation for free) and handing the whole refill to the
    /// inner transport as one by-reference batch.
    fn fill_window(&mut self, direction: Direction) {
        let from = sender_of(direction);
        let in_dir = from.peer().outbound();
        let ack_now = self.recv[in_dir.index()].next_expected;
        let idx = direction.index();
        let start = {
            let state = &mut self.send[idx];
            let start = state.unacked.len();
            while state.unacked.len() < self.config.window {
                let Some(mut inflight) = state.backlog.pop_front() else {
                    break;
                };
                inflight.sent_at = self.now;
                inflight.first_sent = self.now;
                Self::refresh_frame_ack(&mut inflight.frame, ack_now);
                state.unacked.push_back(inflight);
            }
            start
        };
        if self.send[idx].unacked.len() == start {
            return;
        }
        if self.recv[in_dir.index()].ack_pending {
            // These frames carry the current cumulative ack: the obligation
            // is satisfied without a standalone ack frame.
            self.recv[in_dir.index()].ack_pending = false;
            self.stats.acks_sent += 1;
            self.stats.acks_piggybacked += 1;
        }
        self.inner.send_batch_ref(
            from,
            &mut self.send[idx].unacked.range(start..).map(|f| &f.frame),
        );
    }

    fn handle_data(&mut self, to: Side, frame: &Packet) {
        let in_dir = to.peer().outbound();
        let Some((seq, ack, tag, payload)) = Self::parse_data(frame) else {
            self.stats.crc_rejects += 1;
            return;
        };
        let in_order = seq == self.recv[in_dir.index()].next_expected;
        // Materialize the wrapped packet only when it will be delivered;
        // duplicates and gap frames are discarded straight from the borrow
        // (the go-back-N recovery path would otherwise pay a full payload
        // copy per retransmitted frame).
        let original = in_order.then(|| {
            let mut buf = self.pool.acquire();
            buf.extend_from_slice(payload);
            Packet::new(tag, buf)
        });
        // The piggybacked cumulative ack covers the direction `to` sends in.
        self.apply_ack(to, ack);
        let state = &mut self.recv[in_dir.index()];
        if let Some(original) = original {
            state.next_expected = state.next_expected.wrapping_add(1);
            state.deliverable.push_back(original);
            // Owe the sender an ack; on the hot path it rides the next
            // outgoing data frame (or a standalone frame on the next idle
            // poll) — deferring is safe because in-order delivery means the
            // sender is not starving.
            state.ack_pending = true;
        } else {
            // An abnormal frame is evidence the sender has timed out and is
            // retransmitting: answer with the cumulative ack *immediately*
            // (covering any deferred obligation too), so a lossy link gets
            // one ack opportunity per arriving frame — not one per idle
            // cycle — and the retry budget is never burned by our own ack
            // frugality.
            if seq.wrapping_sub(state.next_expected) > u32::MAX / 2 {
                // seq < next_expected (mod 2^32): already delivered.
                self.stats.duplicates_suppressed += 1;
            } else {
                // A gap: an earlier frame is still missing; go-back-N
                // discards.
                self.stats.out_of_order_drops += 1;
            }
            let ack_seq = self.recv[in_dir.index()].next_expected;
            self.recv[in_dir.index()].ack_pending = false;
            self.send_ack(to, ack_seq);
        }
    }

    /// Releases acknowledged frames of the direction `to` sends in and
    /// refills the window.
    fn apply_ack(&mut self, to: Side, ack: u32) {
        let out_dir = to.outbound();
        let state = &mut self.send[out_dir.index()];
        let mut advanced = false;
        while let Some(front) = state.unacked.front() {
            if front.seq.wrapping_sub(ack) > u32::MAX / 2 {
                // front.seq < ack (mod 2^32): acknowledged.
                let inflight = state.unacked.pop_front().expect("front exists");
                self.pool.release(inflight.frame.into_payload());
                advanced = true;
            } else {
                break;
            }
        }
        if advanced {
            self.fill_window(out_dir);
        }
    }

    fn handle_ack(&mut self, to: Side, frame: &Packet) {
        let Some(ack) = Self::decode_ack(frame) else {
            self.stats.crc_rejects += 1;
            return;
        };
        self.apply_ack(to, ack);
    }

    /// Drains every packet the inner transport holds for `side`, sorting
    /// frames into deliverable data, consumed acks, and rejected garbage.
    fn drain_for(&mut self, side: Side) {
        while let Some(frame) = self.inner.recv(side) {
            match frame.tag() {
                PacketTag::RelData => {
                    self.handle_data(side, &frame);
                    self.pool.release(frame.into_payload());
                }
                PacketTag::RelAck => {
                    self.handle_ack(side, &frame);
                    self.pool.release(frame.into_payload());
                }
                // Unframed traffic (an inner transport shared with raw users)
                // passes through untouched.
                _ => {
                    let in_dir = side.peer().outbound();
                    self.recv[in_dir.index()].deliverable.push_back(frame);
                }
            }
        }
    }

    /// Drains the inner queues this instance is allowed to read: just `to`'s
    /// for a per-side instance, both for a shared one (so a poll by either
    /// domain processes pending acknowledgements immediately).
    fn drain_inner(&mut self, to: Side) {
        self.drain_for(to);
        if self.scope.is_none() {
            self.drain_for(to.peer());
        }
    }

    /// Retransmits timed-out frames (go-back-N) in every direction this
    /// instance sends, abandoning directions whose budget is exhausted. The
    /// whole go-back-N burst is refreshed (current cumulative ack) and handed
    /// to the inner transport as **one** by-reference batch — no clones, and
    /// one physical write on batching backends.
    fn pump_timeouts(&mut self) {
        for direction in Direction::BOTH {
            let state = &self.send[direction.index()];
            let Some(front) = state.unacked.front() else {
                continue;
            };
            if self.now - front.sent_at < self.config.rto {
                continue;
            }
            let (front_seq, front_retries) = (front.seq, front.retries);
            if self.recv[direction.index()].ack_pending {
                // Shared-scope guard: this very instance is also the
                // receiver for `direction` and still owes its cumulative ack
                // (delayed to ride reverse data that never came). Flush it
                // now; and when it covers the expired frame — the frame was
                // in fact delivered, the "timeout" is our own ack delay —
                // skip the retransmission outright. (Per-side instances
                // never receive in the direction they send, so none of this
                // fires for them.)
                let next_expected = self.recv[direction.index()].next_expected;
                let delivered = front_seq.wrapping_sub(next_expected) > u32::MAX / 2;
                self.flush_pending_ack(sender_of(direction).peer());
                if delivered {
                    continue;
                }
            }
            if front_retries >= self.config.retry_budget {
                self.abandon_direction(direction, TransportDead::BudgetExhausted);
                continue;
            }
            let from = sender_of(direction);
            let in_dir = from.peer().outbound();
            let ack_now = self.recv[in_dir.index()].next_expected;
            let idx = direction.index();
            let now = self.now;
            let count = self.send[idx].unacked.len() as u64;
            let mut words_total = 0u64;
            let mut time_total = VirtualTime::ZERO;
            for (i, inflight) in self.send[idx].unacked.iter_mut().enumerate() {
                Self::refresh_frame_ack(&mut inflight.frame, ack_now);
                inflight.sent_at = now;
                if i == 0 {
                    // The budget is charged against the *front* frame only
                    // (TCP-style): exhaustion means the oldest unacknowledged
                    // frame failed `retry_budget` consecutive rounds, not
                    // that the window was merely congested that often —
                    // frames deep in a go-back-N window must not inherit
                    // retries from stalls they did not cause.
                    inflight.retries += 1;
                }
                let words = inflight.frame.wire_words();
                words_total += words;
                time_total += self.cost_model.access_cost(direction, words);
            }
            self.stats.retransmits += count;
            self.stats.overhead_words += words_total;
            self.stats.overhead_time += time_total;
            if self.recv[in_dir.index()].ack_pending {
                self.recv[in_dir.index()].ack_pending = false;
                self.stats.acks_sent += 1;
                self.stats.acks_piggybacked += 1;
            }
            self.inner
                .send_batch_ref(from, &mut self.send[idx].unacked.iter().map(|f| &f.frame));
        }
    }

    /// Frames `packet` (swallowing its buffer into the pool) and appends it
    /// to the direction's backlog, billing the header overhead. The caller
    /// refills the window afterwards — once per packet for a lone send, once
    /// per batch for [`Transport::send_batch`].
    fn enqueue_frame(&mut self, from: Side, packet: Packet) {
        let out_dir = from.outbound();
        let in_dir = from.peer().outbound();
        let seq = {
            let state = &mut self.send[out_dir.index()];
            let seq = state.next_seq;
            state.next_seq = state.next_seq.wrapping_add(1);
            seq
        };
        let ack = self.recv[in_dir.index()].next_expected;
        let frame = self.encode_data(seq, ack, &packet);
        self.pool.release(packet.into_payload());
        // The protocol already billed the original packet through its costed
        // channel; the framing header is the recovery layer's own traffic.
        self.stats.overhead_words += DATA_HEADER_WORDS;
        self.stats.overhead_time += self.cost_model.per_word(out_dir) * DATA_HEADER_WORDS;
        self.send[out_dir.index()].backlog.push_back(InFlight {
            seq,
            frame,
            sent_at: VirtualTime::ZERO,
            first_sent: VirtualTime::ZERO,
            retries: 0,
        });
    }

    /// Records a terminal failure for `direction` (first failure wins) and
    /// drops its outstanding frames so [`Transport::pending`] reaches zero
    /// and starvation becomes a detectable deadlock upstream.
    fn abandon_direction(&mut self, direction: Direction, cause: TransportDead) {
        if self.failure.is_none() {
            let state = &self.send[direction.index()];
            let (seq, retries, first_sent) = match state.unacked.front() {
                Some(front) => (front.seq, front.retries, front.first_sent),
                // Only backlogged (never-transmitted) frames: the stall
                // starts now, so the idle span is zero.
                None => match state.backlog.front() {
                    Some(front) => (front.seq, front.retries, self.now),
                    None => (state.next_seq, 0, self.now),
                },
            };
            self.failure = Some(RetryExhausted {
                direction,
                seq,
                retries,
                idle: self.now.saturating_sub(first_sent),
                cause,
            });
        }
        let state = &mut self.send[direction.index()];
        state.unacked.clear();
        state.backlog.clear();
    }
}

impl InFlight {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        w.u32(self.seq);
        self.frame.save(w);
        w.word(self.sent_at.as_picos())
            .word(self.first_sent.as_picos())
            .u32(self.retries);
    }

    fn restore(r: &mut predpkt_sim::StateReader<'_>) -> Result<Self, predpkt_sim::SnapshotError> {
        let seq = r.u32()?;
        let mut frame = Packet::new(PacketTag::RelData, Vec::new());
        frame.restore(r)?;
        Ok(InFlight {
            seq,
            frame,
            sent_at: VirtualTime::from_picos(r.word()?),
            first_sent: VirtualTime::from_picos(r.word()?),
            retries: r.u32()?,
        })
    }
}

fn save_frame_queue(queue: &VecDeque<InFlight>, w: &mut predpkt_sim::StateWriter<'_>) {
    w.usize(queue.len());
    for inflight in queue {
        inflight.save(w);
    }
}

fn restore_frame_queue(
    r: &mut predpkt_sim::StateReader<'_>,
) -> Result<VecDeque<InFlight>, predpkt_sim::SnapshotError> {
    let n = r.usize()?;
    let mut queue = VecDeque::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        queue.push_back(InFlight::restore(r)?);
    }
    Ok(queue)
}

/// The complete recovery state — the RTO clock, both directions' send
/// windows (sequence cursors, unacknowledged and backlogged frames with
/// their per-frame retry counts and transmission stamps), both directions'
/// receive state (expected sequence, decoded-but-unconsumed deliveries, owed
/// acks), the recovery counters, and any recorded abandonment. Configuration
/// (`config`, `cost_model`, `scope`) and the buffer pool stay with the live
/// instance.
///
/// Restoring **re-arms** the window: frames restored into `unacked` carry
/// their original `sent_at` stamps against the restored clock, so the next
/// idle polls age them exactly as the uninterrupted run would — a restored
/// session resumes mid-window, retransmitting whatever the cut left
/// unhealed.
impl<T: Transport + predpkt_sim::Snapshot> predpkt_sim::Snapshot for ReliableTransport<T> {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        w.section("reliable.clock").word(self.now.as_picos());
        w.section("reliable.send");
        for state in &self.send {
            w.u32(state.next_seq);
            save_frame_queue(&state.unacked, w);
            save_frame_queue(&state.backlog, w);
        }
        w.section("reliable.recv");
        for state in &self.recv {
            w.u32(state.next_expected);
            w.usize(state.deliverable.len());
            for packet in &state.deliverable {
                packet.save(w);
            }
            w.bool(state.ack_pending);
        }
        w.section("reliable.stats")
            .word(self.stats.retransmits)
            .word(self.stats.acks_sent)
            .word(self.stats.acks_piggybacked)
            .word(self.stats.duplicates_suppressed)
            .word(self.stats.crc_rejects)
            .word(self.stats.out_of_order_drops)
            .word(self.stats.overhead_words)
            .word(self.stats.overhead_time.as_picos());
        w.section("reliable.failure");
        match self.failure {
            None => {
                w.bool(false);
            }
            Some(f) => {
                w.bool(true)
                    .word(match f.direction {
                        Direction::SimToAcc => 0,
                        Direction::AccToSim => 1,
                    })
                    .u32(f.seq)
                    .u32(f.retries)
                    .word(f.idle.as_picos())
                    .word(match f.cause {
                        TransportDead::PeerGone => 0,
                        TransportDead::BudgetExhausted => 1,
                    });
            }
        }
        w.section("reliable.inner");
        self.inner.save(w);
    }

    fn restore(
        &mut self,
        r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        self.now = VirtualTime::from_picos(r.word()?);
        for state in &mut self.send {
            state.next_seq = r.u32()?;
            state.unacked = restore_frame_queue(r)?;
            state.backlog = restore_frame_queue(r)?;
        }
        for state in &mut self.recv {
            state.next_expected = r.u32()?;
            let n = r.usize()?;
            let mut deliverable = VecDeque::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let mut packet = Packet::new(PacketTag::RelData, Vec::new());
                packet.restore(r)?;
                deliverable.push_back(packet);
            }
            state.deliverable = deliverable;
            state.ack_pending = r.bool()?;
        }
        self.stats.retransmits = r.word()?;
        self.stats.acks_sent = r.word()?;
        self.stats.acks_piggybacked = r.word()?;
        self.stats.duplicates_suppressed = r.word()?;
        self.stats.crc_rejects = r.word()?;
        self.stats.out_of_order_drops = r.word()?;
        self.stats.overhead_words = r.word()?;
        self.stats.overhead_time = VirtualTime::from_picos(r.word()?);
        self.failure = if r.bool()? {
            let at = r.position();
            let direction = match r.word()? {
                0 => Direction::SimToAcc,
                1 => Direction::AccToSim,
                _ => return Err(r.corrupt_at(at)),
            };
            let (seq, retries) = (r.u32()?, r.u32()?);
            let idle = VirtualTime::from_picos(r.word()?);
            let at = r.position();
            let cause = match r.word()? {
                0 => TransportDead::PeerGone,
                1 => TransportDead::BudgetExhausted,
                _ => return Err(r.corrupt_at(at)),
            };
            Some(RetryExhausted {
                direction,
                seq,
                retries,
                idle,
                cause,
            })
        } else {
            None
        };
        self.inner.restore(r)
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn send(&mut self, from: Side, packet: Packet) {
        self.enqueue_frame(from, packet);
        self.fill_window(from.outbound());
    }

    fn send_batch(&mut self, from: Side, packets: &mut Vec<Packet>) {
        if packets.is_empty() {
            return;
        }
        for packet in packets.drain(..) {
            self.enqueue_frame(from, packet);
        }
        // One window refill for the whole batch: every frame the window
        // admits leaves in a single inner batch (one physical write on
        // batching backends), with the cumulative ack piggybacked once.
        self.fill_window(from.outbound());
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        self.drain_inner(to);
        let in_dir = to.peer().outbound();
        if let Some(packet) = self.recv[in_dir.index()].deliverable.pop_front() {
            return Some(packet);
        }
        // Nothing deliverable: the caller is polling, i.e. time is passing.
        // The timeout pump runs first (its shared-scope guard turns an
        // expiry caused by our own delayed ack into that ack, not a
        // retransmission); any ack still owed then goes out standalone.
        self.now += self.config.poll_tick;
        self.pump_timeouts();
        self.flush_pending_ack(to);
        None
    }

    fn drain(&mut self, to: Side, out: &mut Vec<Packet>) {
        self.drain_inner(to);
        let in_dir = to.peer().outbound();
        let deliverable = &mut self.recv[in_dir.index()].deliverable;
        if deliverable.is_empty() {
            // An empty drain is one fruitless poll: let the retransmission
            // clock advance, then flush owed acks (same order as `recv`).
            self.now += self.config.poll_tick;
            self.pump_timeouts();
            self.flush_pending_ack(to);
            return;
        }
        out.extend(self.recv[in_dir.index()].deliverable.drain(..));
    }

    fn batch_stats(&self) -> Option<BatchStats> {
        self.inner.batch_stats()
    }

    /// Logical packets still owed to `to`: decoded-but-unconsumed deliveries
    /// plus every frame the sender will (re)transmit until acknowledged.
    /// In-flight wire frames are *not* double-counted — a frame is either
    /// deliverable, unacknowledged, or backlogged. Reaches zero exactly when
    /// no recovery action can ever deliver anything more (including after a
    /// [`RetryExhausted`] abandonment), which is what turns starvation into a
    /// detectable deadlock upstream.
    fn pending(&self, to: Side) -> usize {
        let in_dir = to.peer().outbound();
        self.recv[in_dir.index()].deliverable.len()
            + self.send[in_dir.index()].unacked.len()
            + self.send[in_dir.index()].backlog.len()
    }
}

impl<T: Transport + crate::poll::PollReady> crate::poll::PollReady for ReliableTransport<T> {
    /// A reliable source is `Ready` not only when data is deliverable (or
    /// the inner transport has frames to decode) but also while *recovery
    /// work is outstanding* — unacknowledged or backlogged frames whose
    /// retransmission clock only advances when the owner polls. A scheduler
    /// must therefore never park a session that still owes the wire a
    /// repair; parking happens only when the layer is fully drained.
    ///
    /// The exception is a medium that reports itself `Dead` while repairs
    /// are still owed: no retransmission can ever land, so the layer fails
    /// fast — it records a [`TransportDead::PeerGone`] failure, drops the
    /// outstanding frames (pending reaches zero, starvation becomes a
    /// detectable deadlock), and reports `Dead` instead of burning the
    /// whole retry budget against a link it knows is gone. Deliverable
    /// frames are still surfaced first: data decoded before the link died
    /// belongs to the consumer.
    fn readiness(&mut self) -> crate::poll::Readiness {
        if self.recv.iter().any(|r| !r.deliverable.is_empty()) {
            return crate::poll::Readiness::Ready;
        }
        let outstanding = self
            .send
            .iter()
            .any(|s| !s.unacked.is_empty() || !s.backlog.is_empty());
        if outstanding {
            if self.inner.readiness() == crate::poll::Readiness::Dead {
                for direction in Direction::BOTH {
                    let state = &self.send[direction.index()];
                    if !state.unacked.is_empty() || !state.backlog.is_empty() {
                        self.abandon_direction(direction, TransportDead::PeerGone);
                    }
                }
                return crate::poll::Readiness::Dead;
            }
            return crate::poll::Readiness::Ready;
        }
        self.inner.readiness()
    }
}

impl<T: WaitTransport> WaitTransport for ReliableTransport<T> {
    fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        if self.recv.iter().any(|r| !r.deliverable.is_empty()) {
            return true;
        }
        let got = self.inner.wait_for_packet(timeout);
        // Like a delivering recv poll, a wait that produced a packet is not
        // idle time; only a timed-out wait advances the RTO clock (and, being
        // idle, flushes any ack still owed by this instance's side).
        if !got {
            if let Some(side) = self.scope {
                self.flush_pending_ack(side);
            }
            self.now += self.config.poll_tick;
            self.pump_timeouts();
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::QueueTransport;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // CRC-32("123456789") = 0xCBF43926; feed the nine ASCII bytes as
        // little-endian words (two whole words + the tail folded manually is
        // awkward, so check word-aligned vectors instead and pin them).
        assert_eq!(crc32(&[]), 0);
        // Pinned value: CRC-32 of four zero bytes is 0x2144DF1C; stability
        // here is what frame compatibility rests on.
        assert_eq!(crc32(&[0]), 0x2144_df1c);
        assert_ne!(crc32(&[1]), crc32(&[2]));
    }

    #[test]
    fn streamed_crc_equals_whole_slice_crc() {
        let words = [7u32, 0xdead_beef, 42, 0, u32::MAX];
        for split in 0..=words.len() {
            assert_eq!(
                crc32_parts(&words[..split], &words[split..]),
                crc32(&words),
                "split at {split}"
            );
        }
    }

    fn fresh() -> ReliableTransport<QueueTransport> {
        ReliableTransport::new(
            QueueTransport::new(),
            ReliableConfig::default(),
            ChannelCostModel::iprove_pci(),
        )
    }

    #[test]
    fn data_frame_roundtrip_carries_seq_and_piggybacked_ack() {
        let mut t = fresh();
        let original = Packet::new(PacketTag::Burst, vec![9, 8, 7]);
        let frame = t.encode_data(5, 3, &original);
        assert_eq!(frame.tag(), PacketTag::RelData);
        assert_eq!(
            frame.wire_words(),
            original.wire_words() + DATA_HEADER_WORDS
        );
        let (seq, ack, decoded) = t.decode_data(&frame).unwrap();
        assert_eq!(seq, 5);
        assert_eq!(ack, 3);
        assert_eq!(decoded, original);
    }

    #[test]
    fn refreshing_the_piggybacked_ack_keeps_the_frame_valid() {
        let mut t = fresh();
        let original = Packet::new(PacketTag::CycleOutputs, vec![4, 5, 6]);
        let mut frame = t.encode_data(9, 0, &original);
        ReliableTransport::<QueueTransport>::refresh_frame_ack(&mut frame, 42);
        let (seq, ack, decoded) = t.decode_data(&frame).expect("refreshed CRC must hold");
        assert_eq!(seq, 9);
        assert_eq!(ack, 42);
        assert_eq!(decoded, original);
    }

    #[test]
    fn corrupted_data_frame_rejected() {
        let mut t = fresh();
        let original = Packet::new(PacketTag::CycleOutputs, vec![1, 2]);
        let frame = t.encode_data(0, 0, &original);
        // Flip a payload bit.
        let mut words = frame.payload().to_vec();
        *words.last_mut().unwrap() ^= 1;
        let bad = Packet::new(PacketTag::RelData, words);
        assert!(t.decode_data(&bad).is_none());
        // Truncate the last word (what LossyTransport does).
        let mut words = frame.payload().to_vec();
        words.pop();
        let truncated = Packet::new(PacketTag::RelData, words);
        assert!(t.decode_data(&truncated).is_none());
        // Corrupting the piggybacked ack word is caught too.
        let mut words = frame.payload().to_vec();
        words[1] ^= 1;
        let bad_ack = Packet::new(PacketTag::RelData, words);
        assert!(t.decode_data(&bad_ack).is_none());
    }

    #[test]
    fn ack_frame_roundtrip_and_rejection() {
        let mut t = fresh();
        let ack = t.encode_ack(77);
        assert_eq!(
            ReliableTransport::<QueueTransport>::decode_ack(&ack),
            Some(77)
        );
        let mut words = ack.payload().to_vec();
        words.pop();
        let truncated = Packet::new(PacketTag::RelAck, words);
        assert_eq!(
            ReliableTransport::<QueueTransport>::decode_ack(&truncated),
            None
        );
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(ReliableConfig::default().validate().is_ok());
        for (field, config) in [
            ("window", ReliableConfig::default().window(0)),
            ("retry_budget", ReliableConfig::default().retry_budget(0)),
            ("rto", ReliableConfig::default().rto(VirtualTime::ZERO)),
            (
                "poll_tick",
                ReliableConfig::default().poll_tick(VirtualTime::ZERO),
            ),
        ] {
            let err = config.validate().expect_err("must be rejected");
            assert_eq!(err.field, field, "error '{err}' should name {field}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid reliable config")]
    fn constructor_panics_on_invalid_config() {
        let _ = ReliableTransport::new(
            QueueTransport::new(),
            ReliableConfig::default().window(0),
            ChannelCostModel::iprove_pci(),
        );
    }

    #[test]
    fn try_new_rejects_bad_configs_without_panicking() {
        for (field, config) in [
            ("window", ReliableConfig::default().window(0)),
            ("retry_budget", ReliableConfig::default().retry_budget(0)),
            ("rto", ReliableConfig::default().rto(VirtualTime::ZERO)),
            (
                "poll_tick",
                ReliableConfig::default().poll_tick(VirtualTime::ZERO),
            ),
        ] {
            let err = ReliableTransport::try_new(
                QueueTransport::new(),
                config,
                ChannelCostModel::iprove_pci(),
            )
            .expect_err("config must be rejected");
            assert_eq!(err.field, field, "{err}");
        }
        assert!(ReliableTransport::try_new(
            QueueTransport::new(),
            ReliableConfig::default(),
            ChannelCostModel::iprove_pci(),
        )
        .is_ok());
    }

    #[test]
    fn snapshot_restores_a_mid_window_cut_exactly() {
        use predpkt_sim::{restore_from_vec, save_to_vec};
        // Fill the window past capacity so unacked AND backlog are non-empty,
        // with an un-drained reverse direction so acks are still owed.
        let mut t = fresh();
        for i in 0..12u32 {
            t.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i]),
            );
        }
        let _ = t.recv(Side::Accelerator); // deliver one, leave the ack owed
        let state = save_to_vec(&t);
        assert!(
            state.section_at(0).is_some(),
            "reliable snapshots are section-labeled"
        );

        let mut resumed = fresh();
        restore_from_vec(&mut resumed, &state).unwrap();
        assert_eq!(resumed.clock(), t.clock());
        assert_eq!(resumed.recovery_stats(), t.recovery_stats());
        assert_eq!(
            resumed.pending(Side::Accelerator),
            t.pending(Side::Accelerator)
        );

        // Both must drain identically from here: same deliveries, same stats.
        let drain = |t: &mut ReliableTransport<QueueTransport>| {
            let mut got = Vec::new();
            for _ in 0..10_000 {
                if let Some(p) = t.recv(Side::Accelerator) {
                    got.push(p.payload()[0]);
                }
                let _ = t.recv(Side::Simulator);
                if got.len() == 11 {
                    break;
                }
            }
            got
        };
        assert_eq!(drain(&mut t), drain(&mut resumed));
        assert_eq!(t.recovery_stats(), resumed.recovery_stats());
        // And re-saving is bit-equal to the state both started from… after
        // identical further traffic, both snapshots still agree.
        assert_eq!(save_to_vec(&t), save_to_vec(&resumed));
    }

    #[test]
    fn peer_death_fails_fast_with_a_typed_cause() {
        use crate::lossy::{FaultSpec, LossyTransport};
        use crate::poll::{PollReady, Readiness};
        use crate::threaded::ThreadedTransport;
        // The link is severed from frame zero: the very first data frame
        // vanishes and the medium reports itself dead. (A threaded endpoint
        // rather than a queue: readiness needs a `PollReady` medium.)
        let (sim_end, _acc_end) = ThreadedTransport::pair();
        let mut t = ReliableTransport::new(
            LossyTransport::new(sim_end, FaultSpec::disconnect_after(1, 0)),
            ReliableConfig::default(),
            ChannelCostModel::iprove_pci(),
        )
        .for_side(Side::Simulator);
        t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![9]));
        assert!(t.pending(Side::Accelerator) > 0, "frame is outstanding");
        // One readiness probe is enough: no retry budget is burned.
        assert_eq!(t.readiness(), Readiness::Dead);
        let failure = t.failure().expect("death must be recorded");
        assert_eq!(failure.cause, TransportDead::PeerGone);
        assert_eq!(failure.seq, 0);
        assert_eq!(failure.retries, 0, "fail-fast, not budget burn");
        // Outstanding work is dropped so starvation is detectable.
        assert_eq!(t.pending(Side::Accelerator), 0);
        assert_eq!(t.readiness(), Readiness::Dead, "death is sticky");
    }

    #[test]
    fn enriched_failure_survives_a_snapshot_round_trip() {
        use crate::lossy::{FaultSpec, LossyTransport};
        use predpkt_sim::{restore_from_vec, save_to_vec};
        let lossy = || {
            ReliableTransport::new(
                LossyTransport::new(QueueTransport::new(), FaultSpec::drops(3, 1.0)),
                ReliableConfig::default().retry_budget(2),
                ChannelCostModel::iprove_pci(),
            )
        };
        let mut t = lossy();
        t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![7]));
        let mut polls = 0;
        while t.failure().is_none() {
            assert!(polls < 100_000, "layer never gave up");
            assert!(t.recv(Side::Accelerator).is_none());
            polls += 1;
        }
        let failure = t.failure().unwrap();
        assert_eq!(failure.cause, TransportDead::BudgetExhausted);
        assert!(failure.idle > VirtualTime::ZERO, "idle time was accrued");

        let state = save_to_vec(&t);
        let mut resumed = lossy();
        restore_from_vec(&mut resumed, &state).unwrap();
        assert_eq!(resumed.failure(), Some(failure), "cause and idle survive");
        assert_eq!(save_to_vec(&resumed), state);
    }

    #[test]
    fn snapshot_restore_rejects_a_corrupt_direction_word() {
        use predpkt_sim::{restore_from_vec, save_to_vec};
        let mut t = fresh();
        t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        let state = save_to_vec(&t);
        // Truncate: drop the trailing words and the restore must fail with a
        // typed, section-labeled error rather than panic.
        let truncated: predpkt_sim::StateVec =
            state.words()[..state.words().len() - 3].to_vec().into();
        let mut target = fresh();
        let err = restore_from_vec(&mut target, &truncated).unwrap_err();
        assert!(matches!(
            err,
            predpkt_sim::SnapshotError::Exhausted { .. }
                | predpkt_sim::SnapshotError::Corrupt { .. }
                | predpkt_sim::SnapshotError::TrailingWords { .. }
                | predpkt_sim::SnapshotError::InSection { .. }
        ));
    }
}
