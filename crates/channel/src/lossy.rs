//! Fault-injecting transport for protocol-robustness scenarios.
//!
//! [`LossyTransport`] wraps any inner [`Transport`] and, with seeded
//! deterministic pseudo-randomness, drops, truncates, or duplicates packets as
//! they are sent. The co-emulation protocol has no retransmission layer (the
//! paper assumes a reliable PCI channel), so faults surface as *detected*
//! failures:
//!
//! * a **dropped** packet starves the receiver, which the orchestrator reports
//!   as [`Deadlock`](predpkt_sim::SimError::Deadlock);
//! * a **truncated** packet violates the fixed message layout and is rejected
//!   by the protocol decoder;
//! * a **duplicated** packet usually arrives in a wrapper phase that cannot
//!   accept it (handshakes, bursts, reports) and is rejected as a protocol
//!   violation or starves the run into a detected deadlock. The exception is
//!   a duplicated conservative `CycleOutputs` exchange: the wire format
//!   carries no sequence numbers (the paper's channel model has none), so a
//!   stale copy is indistinguishable from a fresh exchange and *can* corrupt
//!   a conservative-mode run silently. Duplicate injection is therefore a
//!   robustness probe, not a guaranteed-detection mode.
//!
//! Beyond the per-packet rate faults, a plan can arm a deterministic
//! **terminal** fault: [`FaultSpec::disconnect_after`] kills the link
//! permanently at a seeded frame index (a socket reset / peer crash — the
//! wrapper reports [`Dead`](crate::Readiness::Dead)), while
//! [`FaultSpec::hang_after`] wedges it silently (delivery stops but the link
//! still looks idle — only a deadlock timeout catches it). Terminal faults
//! trigger on a frame *counter*, not a random draw, so arming one never
//! perturbs the seeded rate-fault stream.
//!
//! With [`FaultSpec::none`] the transport is bit-for-bit transparent, which
//! the transport-equivalence suite exploits.

use crate::cost::Side;
use crate::knob::KnobError;
use crate::message::Packet;
use crate::transport::{QueueTransport, Transport, WaitTransport};
use predpkt_sim::SplitMix64;
use std::time::Duration;

/// Deterministic fault plan for a [`LossyTransport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// PRNG seed; identical seeds reproduce identical fault sequences.
    pub seed: u64,
    /// Probability a sent packet is silently discarded.
    pub drop_rate: f64,
    /// Probability a sent packet loses its last payload word (layout
    /// corruption the decoder must detect).
    pub truncate_rate: f64,
    /// Probability a sent packet is delivered twice.
    pub duplicate_rate: f64,
    /// Terminal fault: the link dies permanently once this many frames have
    /// been pushed at the send path — the socket-reset / peer-crash failure.
    /// Further frames are swallowed (counted as `severed`), delivery stops,
    /// and readiness reports [`Dead`](crate::Readiness::Dead). Frame indices
    /// are deterministic, not drawn, so a terminal plan never perturbs the
    /// seeded rate-fault stream.
    pub disconnect_after: Option<u64>,
    /// Terminal fault: the link *wedges* once this many frames have been
    /// pushed at the send path — delivery stops without closing. Unlike a
    /// disconnect the link still looks merely idle
    /// ([`Readiness::Idle`](crate::Readiness::Idle)), the pathological hang a
    /// deadlock timeout exists to catch. When both terminal faults are armed,
    /// a tripped disconnect takes precedence in readiness reporting.
    pub hang_after: Option<u64>,
}

impl FaultSpec {
    /// A fault-free plan: the lossy transport becomes transparent.
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            duplicate_rate: 0.0,
            disconnect_after: None,
            hang_after: None,
        }
    }

    /// Drops packets at `rate`, injects nothing else.
    pub fn drops(seed: u64, rate: f64) -> Self {
        FaultSpec {
            drop_rate: rate,
            ..Self::none(seed)
        }
    }

    /// Truncates packets at `rate`, injects nothing else.
    pub fn truncations(seed: u64, rate: f64) -> Self {
        FaultSpec {
            truncate_rate: rate,
            ..Self::none(seed)
        }
    }

    /// Duplicates packets at `rate`, injects nothing else.
    pub fn duplicates(seed: u64, rate: f64) -> Self {
        FaultSpec {
            duplicate_rate: rate,
            ..Self::none(seed)
        }
    }

    /// Severs the link permanently after `frames` frames have been sent,
    /// injects nothing else. See [`FaultSpec::disconnect_after`] (the field)
    /// for the death semantics.
    pub fn disconnect_after(seed: u64, frames: u64) -> Self {
        FaultSpec {
            disconnect_after: Some(frames),
            ..Self::none(seed)
        }
    }

    /// Wedges the link after `frames` frames have been sent, injects nothing
    /// else. See [`FaultSpec::hang_after`] (the field) for the hang
    /// semantics.
    pub fn hang_after(seed: u64, frames: u64) -> Self {
        FaultSpec {
            hang_after: Some(frames),
            ..Self::none(seed)
        }
    }

    /// Checks that every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns a [`KnobError`] naming the first out-of-range rate.
    pub fn validate(&self) -> Result<(), KnobError> {
        for (name, r) in [
            ("drop_rate", self.drop_rate),
            ("truncate_rate", self.truncate_rate),
            ("duplicate_rate", self.duplicate_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(KnobError::new(
                    name,
                    format!("must be a probability, got {r}"),
                ));
            }
        }
        Ok(())
    }

    /// True when any fault can ever fire (some rate is positive, or a
    /// terminal fault is armed).
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.truncate_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.disconnect_after.is_some()
            || self.hang_after.is_some()
    }
}

/// Counters of the faults a [`LossyTransport`] has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets discarded in flight.
    pub dropped: u64,
    /// Packets delivered with a truncated payload.
    pub truncated: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
    /// Packets swallowed after a terminal fault (disconnect or hang) killed
    /// the link.
    pub severed: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.truncated + self.duplicated + self.severed
    }

    /// Merges another block into this one (per-side instances over socket
    /// endpoints, where each domain wraps its own end).
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.truncated += other.truncated;
        self.duplicated += other.duplicated;
        self.severed += other.severed;
    }
}

/// A transport that injects seeded faults on the send path.
///
/// # Example
///
/// ```
/// use predpkt_channel::{FaultSpec, LossyTransport, Packet, PacketTag, Side, Transport};
/// let mut t = LossyTransport::over_queue(FaultSpec::drops(1, 1.0));
/// t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
/// assert_eq!(t.pending(Side::Accelerator), 0, "every packet is dropped");
/// assert_eq!(t.fault_stats().dropped, 1);
/// ```
#[derive(Debug)]
pub struct LossyTransport<T: Transport = QueueTransport> {
    inner: T,
    spec: FaultSpec,
    rng: SplitMix64,
    stats: FaultStats,
    /// Frames pushed at the send path so far — the deterministic cursor
    /// terminal faults trigger on.
    sent_frames: u64,
}

impl LossyTransport<QueueTransport> {
    /// Wraps a fresh deterministic [`QueueTransport`].
    pub fn over_queue(spec: FaultSpec) -> Self {
        Self::new(QueueTransport::new(), spec)
    }
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner` with the fault plan `spec`, validating it first.
    ///
    /// # Errors
    ///
    /// Returns a [`KnobError`] naming the first out-of-range (or NaN) rate.
    pub fn try_new(inner: T, spec: FaultSpec) -> Result<Self, KnobError> {
        spec.validate()?;
        Ok(Self::new_prevalidated(inner, spec))
    }

    /// Wraps `inner` with the fault plan `spec`.
    ///
    /// Convenience for specs known valid by construction (literals in tests
    /// and examples); fallible callers — anything forwarding user input —
    /// should use [`try_new`](Self::try_new) instead.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `spec` is outside `[0, 1]`.
    pub fn new(inner: T, spec: FaultSpec) -> Self {
        Self::try_new(inner, spec).expect("invalid fault spec")
    }

    /// The infallible interior constructor: `spec` has already passed
    /// [`FaultSpec::validate`] (the session builder validates every knob
    /// before any transport is built).
    pub(crate) fn new_prevalidated(inner: T, spec: FaultSpec) -> Self {
        LossyTransport {
            inner,
            spec,
            rng: SplitMix64::new(spec.seed),
            stats: FaultStats::default(),
            sent_frames: 0,
        }
    }

    /// Faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The fault plan in force.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Frames pushed at this wrapper's send path so far (the cursor the
    /// terminal faults trigger on) — for dead-link postmortems.
    pub fn sent_frames(&self) -> u64 {
        self.sent_frames
    }

    /// True once a [`FaultSpec::disconnect_after`] plan has severed the link.
    pub fn disconnected(&self) -> bool {
        self.spec
            .disconnect_after
            .is_some_and(|n| self.sent_frames >= n)
    }

    /// True once a [`FaultSpec::hang_after`] plan has wedged the link.
    pub fn hung(&self) -> bool {
        self.spec.hang_after.is_some_and(|n| self.sent_frames >= n)
    }

    /// True once any terminal fault has fired: the link no longer moves
    /// frames in either direction.
    pub fn link_down(&self) -> bool {
        self.disconnected() || self.hung()
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

/// One send's fault decisions, drawn in a fixed order so the seeded stream
/// is identical whichever send entry point (owned, by-ref, batched) carried
/// the packet.
struct FaultDraw {
    dropped: bool,
    truncated: bool,
    duplicated: bool,
}

impl<T: Transport> LossyTransport<T> {
    /// Advances the frame cursor and reports whether a terminal fault fires
    /// for this send. Runs **before** the rate draws and consumes no
    /// randomness, so arming a terminal plan never shifts the seeded fault
    /// stream of the frames that do get through.
    fn terminal_fired(&mut self) -> bool {
        let fired = self.link_down();
        self.sent_frames += 1;
        fired
    }

    /// Draws this send's faults. The draw order — drop, truncate, duplicate,
    /// each consumed only when its rate is positive — is the wire format of
    /// the seed and must never change.
    fn draw_faults(&mut self, payload_empty: bool) -> FaultDraw {
        if self.spec.drop_rate > 0.0 && self.rng.unit_f64() < self.spec.drop_rate {
            return FaultDraw {
                dropped: true,
                truncated: false,
                duplicated: false,
            };
        }
        let truncated = self.spec.truncate_rate > 0.0
            && self.rng.unit_f64() < self.spec.truncate_rate
            && !payload_empty;
        let duplicated =
            self.spec.duplicate_rate > 0.0 && self.rng.unit_f64() < self.spec.duplicate_rate;
        FaultDraw {
            dropped: false,
            truncated,
            duplicated,
        }
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn send(&mut self, from: Side, mut packet: Packet) {
        if self.terminal_fired() {
            self.stats.severed += 1;
            return;
        }
        let draw = self.draw_faults(packet.payload().is_empty());
        if draw.dropped {
            self.stats.dropped += 1;
            return;
        }
        if draw.truncated {
            // Reuse the packet's own allocation: pop the last word in place
            // instead of copying the payload.
            let tag = packet.tag();
            let mut words = packet.into_payload();
            words.pop();
            packet = Packet::new(tag, words);
            self.stats.truncated += 1;
        }
        if draw.duplicated {
            self.stats.duplicated += 1;
            self.inner.send(from, packet.clone());
        }
        self.inner.send(from, packet);
    }

    /// By-reference send: the packet is cloned **only when a fault that
    /// needs an owned copy actually fires** — on the (common) clean draw the
    /// borrow is forwarded straight to the inner transport.
    fn send_ref(&mut self, from: Side, packet: &Packet) {
        if !self.spec.is_active() {
            return self.inner.send_ref(from, packet);
        }
        if self.terminal_fired() {
            self.stats.severed += 1;
            return;
        }
        let draw = self.draw_faults(packet.payload().is_empty());
        if draw.dropped {
            self.stats.dropped += 1;
            return;
        }
        if !draw.truncated && !draw.duplicated {
            return self.inner.send_ref(from, packet);
        }
        let mut owned = packet.clone();
        if draw.truncated {
            let tag = owned.tag();
            let mut words = owned.into_payload();
            words.pop();
            owned = Packet::new(tag, words);
            self.stats.truncated += 1;
        }
        if draw.duplicated {
            self.stats.duplicated += 1;
            self.inner.send_ref(from, &owned);
        }
        self.inner.send(from, owned);
    }

    fn send_batch(&mut self, from: Side, packets: &mut Vec<Packet>) {
        if !self.spec.is_active() {
            // Transparent wrapper: hand the whole batch down so the inner
            // backend's coalescing (one socket write / ring publish) is kept.
            return self.inner.send_batch(from, packets);
        }
        for packet in packets.drain(..) {
            self.send(from, packet);
        }
    }

    fn send_batch_ref(&mut self, from: Side, packets: &mut dyn Iterator<Item = &Packet>) {
        if !self.spec.is_active() {
            return self.inner.send_batch_ref(from, packets);
        }
        for packet in packets {
            self.send_ref(from, packet);
        }
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        if self.link_down() {
            return None;
        }
        self.inner.recv(to)
    }

    fn drain(&mut self, to: Side, out: &mut Vec<Packet>) {
        if self.link_down() {
            return;
        }
        self.inner.drain(to, out);
    }

    fn pending(&self, to: Side) -> usize {
        if self.link_down() {
            return 0;
        }
        self.inner.pending(to)
    }

    fn batch_stats(&self) -> Option<crate::transport::BatchStats> {
        self.inner.batch_stats()
    }
}

/// The RNG cursor, fault counters, and the inner transport. The [`FaultSpec`]
/// is configuration (validated at construction) and stays with the live
/// instance — restoring resumes the *same* seeded fault plan draw-for-draw.
impl<T: Transport + predpkt_sim::Snapshot> predpkt_sim::Snapshot for LossyTransport<T> {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        self.rng.save(w);
        w.word(self.stats.dropped)
            .word(self.stats.truncated)
            .word(self.stats.duplicated)
            .word(self.stats.severed)
            .word(self.sent_frames);
        self.inner.save(w);
    }

    fn restore(
        &mut self,
        r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        self.rng.restore(r)?;
        self.stats.dropped = r.word()?;
        self.stats.truncated = r.word()?;
        self.stats.duplicated = r.word()?;
        self.stats.severed = r.word()?;
        self.sent_frames = r.word()?;
        self.inner.restore(r)
    }
}

/// Fault injection happens on the send path, so waiting is delegated
/// untouched — this is what lets a fault plan ride on a blocking-capable
/// endpoint (e.g. a [`TcpEndpoint`](crate::TcpEndpoint)) under a per-side
/// [`ReliableTransport`](crate::ReliableTransport).
impl<T: WaitTransport> WaitTransport for LossyTransport<T> {
    fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        if self.link_down() {
            // A severed or hung link never delivers again; pace the caller's
            // retry loop like a dead socket instead of spinning it.
            std::thread::sleep(timeout);
            return false;
        }
        self.inner.wait_for_packet(timeout)
    }
}

impl<T: Transport + crate::poll::PollReady> crate::poll::PollReady for LossyTransport<T> {
    /// Rate faults fire on the send path only, so readiness is normally the
    /// inner transport's verbatim. A tripped terminal fault overrides it: a
    /// disconnect is an observable death ([`Dead`](crate::Readiness::Dead)),
    /// while a hang is deliberately indistinguishable from a quiet healthy
    /// peer ([`Idle`](crate::Readiness::Idle)) — only a deadlock timeout
    /// catches it.
    fn readiness(&mut self) -> crate::poll::Readiness {
        if self.disconnected() {
            return crate::poll::Readiness::Dead;
        }
        if self.hung() {
            return crate::poll::Readiness::Idle;
        }
        self.inner.readiness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::PacketTag;

    fn pkt(n: usize) -> Packet {
        Packet::new(PacketTag::CycleOutputs, vec![7; n])
    }

    #[test]
    fn faultless_spec_is_transparent() {
        let mut t = LossyTransport::over_queue(FaultSpec::none(42));
        for i in 0..100 {
            t.send(Side::Simulator, pkt(i % 5));
        }
        assert_eq!(t.pending(Side::Accelerator), 100);
        for i in 0..100 {
            assert_eq!(t.recv(Side::Accelerator).unwrap().payload().len(), i % 5);
        }
        assert_eq!(t.fault_stats(), FaultStats::default());
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut t = LossyTransport::over_queue(FaultSpec::drops(7, 0.3));
        for _ in 0..10_000 {
            t.send(Side::Simulator, pkt(1));
        }
        let dropped = t.fault_stats().dropped as f64 / 10_000.0;
        assert!((dropped - 0.3).abs() < 0.03, "observed drop rate {dropped}");
    }

    #[test]
    fn truncation_shortens_payload() {
        let mut t = LossyTransport::over_queue(FaultSpec::truncations(9, 1.0));
        t.send(Side::Accelerator, pkt(4));
        let got = t.recv(Side::Simulator).unwrap();
        assert_eq!(got.payload().len(), 3);
        assert_eq!(t.fault_stats().truncated, 1);
    }

    #[test]
    fn empty_payload_never_truncates() {
        let mut t = LossyTransport::over_queue(FaultSpec::truncations(9, 1.0));
        t.send(Side::Accelerator, pkt(0));
        assert_eq!(t.recv(Side::Simulator).unwrap().payload().len(), 0);
        assert_eq!(t.fault_stats().truncated, 0);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let mut t = LossyTransport::over_queue(FaultSpec::duplicates(3, 1.0));
        t.send(Side::Simulator, pkt(2));
        assert_eq!(t.pending(Side::Accelerator), 2);
        assert_eq!(t.fault_stats().duplicated, 1);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let mut t = LossyTransport::over_queue(FaultSpec::drops(11, 0.5));
            for _ in 0..64 {
                t.send(Side::Simulator, pkt(1));
            }
            t.fault_stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_rate_rejected() {
        let _ = LossyTransport::over_queue(FaultSpec::drops(0, 1.5));
    }

    #[test]
    fn try_new_rejects_bad_specs_without_panicking() {
        for spec in [
            FaultSpec::drops(0, 1.5),
            FaultSpec::drops(0, -0.1),
            FaultSpec::drops(0, f64::NAN),
            FaultSpec::truncations(0, f64::INFINITY),
            FaultSpec::duplicates(0, 2.0),
        ] {
            let err = LossyTransport::try_new(QueueTransport::new(), spec)
                .expect_err("spec must be rejected");
            assert!(err.to_string().contains("_rate"), "{err}");
        }
        assert!(LossyTransport::try_new(QueueTransport::new(), FaultSpec::none(1)).is_ok());
    }

    #[test]
    fn snapshot_resumes_the_fault_plan_exactly() {
        use predpkt_sim::{restore_from_vec, save_to_vec};
        let spec = FaultSpec {
            drop_rate: 0.3,
            truncate_rate: 0.2,
            duplicate_rate: 0.1,
            ..FaultSpec::none(99)
        };
        let mut t = LossyTransport::over_queue(spec);
        for _ in 0..50 {
            t.send(Side::Simulator, pkt(2));
        }
        while t.recv(Side::Accelerator).is_some() {}
        let state = save_to_vec(&t);
        // Continue the original...
        let mut expect_stats = {
            let mut probe = LossyTransport::over_queue(spec);
            restore_from_vec(&mut probe, &state).unwrap();
            probe
        };
        for _ in 0..50 {
            t.send(Side::Simulator, pkt(2));
            expect_stats.send(Side::Simulator, pkt(2));
        }
        assert_eq!(t.fault_stats(), expect_stats.fault_stats());
        assert!(t.fault_stats().total() > 0, "faults really fired");
    }

    #[test]
    fn disconnect_after_kills_the_link_at_the_exact_frame() {
        // A threaded endpoint rather than a queue: the readiness probe at the
        // end needs a `PollReady` inner medium.
        let (sim_end, _acc_end) = crate::threaded::ThreadedTransport::pair();
        let mut t = LossyTransport::new(sim_end, FaultSpec::disconnect_after(5, 3));
        for _ in 0..6 {
            t.send(Side::Simulator, pkt(1));
        }
        // Frames 0..3 got through; 3.. were severed, and delivery of the
        // survivors stops with the link.
        assert_eq!(t.fault_stats().severed, 3);
        assert!(t.disconnected());
        assert!(t.link_down());
        assert_eq!(t.pending(Side::Accelerator), 0);
        assert!(t.recv(Side::Accelerator).is_none());
        use crate::poll::{PollReady, Readiness};
        assert_eq!(t.readiness(), Readiness::Dead);
    }

    #[test]
    fn hang_after_wedges_without_closing() {
        let (sim_end, _acc_end) = crate::threaded::ThreadedTransport::pair();
        let mut t = LossyTransport::new(sim_end, FaultSpec::hang_after(5, 2));
        for _ in 0..4 {
            t.send(Side::Simulator, pkt(1));
        }
        assert_eq!(t.fault_stats().severed, 2);
        assert!(t.hung() && !t.disconnected());
        use crate::poll::{PollReady, Readiness};
        assert_eq!(t.readiness(), Readiness::Idle, "a hang looks merely idle");
    }

    #[test]
    fn terminal_faults_do_not_shift_the_seeded_rate_stream() {
        // Same seed + rates, with and without an (unreached) terminal plan:
        // the rate-fault pattern over the surviving frames must be identical.
        let run = |terminal: Option<u64>| {
            let spec = FaultSpec {
                disconnect_after: terminal,
                ..FaultSpec::drops(11, 0.5)
            };
            let mut t = LossyTransport::over_queue(spec);
            for _ in 0..64 {
                t.send(Side::Simulator, pkt(1));
            }
            t.fault_stats().dropped
        };
        assert_eq!(run(None), run(Some(1_000)));
    }

    #[test]
    fn terminal_cursor_survives_a_snapshot_round_trip() {
        use predpkt_sim::{restore_from_vec, save_to_vec};
        let spec = FaultSpec::disconnect_after(1, 4);
        let mut t = LossyTransport::over_queue(spec);
        for _ in 0..3 {
            t.send(Side::Simulator, pkt(1));
        }
        let state = save_to_vec(&t);
        let mut twin = LossyTransport::over_queue(spec);
        restore_from_vec(&mut twin, &state).unwrap();
        assert_eq!(twin.sent_frames(), 3);
        assert!(!twin.link_down());
        twin.send(Side::Simulator, pkt(1));
        twin.send(Side::Simulator, pkt(1));
        assert!(twin.disconnected(), "cursor resumed where it left off");
        assert_eq!(twin.fault_stats().severed, 1);
    }

    #[test]
    fn validate_accepts_boundary_probabilities() {
        // 0.0 and 1.0 are both legal rates — "never" and "always".
        for rate in [0.0, 1.0] {
            assert!(FaultSpec::drops(1, rate).validate().is_ok(), "rate {rate}");
            assert!(FaultSpec::truncations(1, rate).validate().is_ok());
            assert!(FaultSpec::duplicates(1, rate).validate().is_ok());
        }
        // -0.0 compares equal to 0.0 and is a probability.
        assert!(FaultSpec::drops(1, -0.0).validate().is_ok());
        // A transport at both extremes must construct without panicking.
        let _ = LossyTransport::over_queue(FaultSpec::drops(1, 1.0));
        let _ = LossyTransport::over_queue(FaultSpec::none(1));
    }

    #[test]
    fn validate_rejects_non_probabilities() {
        for (name, spec) in [
            ("drop_rate", FaultSpec::drops(1, -0.25)),
            ("drop_rate", FaultSpec::drops(1, f64::NAN)),
            ("drop_rate", FaultSpec::drops(1, f64::INFINITY)),
            ("truncate_rate", FaultSpec::truncations(1, 1.0001)),
            ("truncate_rate", FaultSpec::truncations(1, f64::NAN)),
            (
                "duplicate_rate",
                FaultSpec::duplicates(1, f64::NEG_INFINITY),
            ),
            ("duplicate_rate", FaultSpec::duplicates(1, -f64::NAN)),
        ] {
            let err = spec.validate().expect_err("must be rejected");
            assert_eq!(err.field, name, "error '{err}' should name {name}");
            assert!(err.to_string().contains(name), "display names the field");
        }
    }

    #[test]
    fn validate_reports_the_first_bad_rate() {
        let spec = FaultSpec {
            drop_rate: 0.5,
            truncate_rate: f64::NAN,
            duplicate_rate: 2.0,
            ..FaultSpec::none(0)
        };
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field, "truncate_rate", "{err}");
    }
}
