//! N-domain link fabric: the full-mesh topology the multi-domain session
//! runner routes over.
//!
//! The paper's channel joins exactly two domains; an N-domain co-emulation
//! (NoC prototypes, emulation farms) needs a link **per pair of domains**
//! that exchange traffic. This module owns the topology bookkeeping — which
//! undirected edge joins which domains, which [`Side`] each domain plays on
//! that edge — and builds the whole mesh over any of the crate's endpoint
//! types in one call: in-process queues ([`Fabric::threaded_mesh`]), TCP
//! loopback sockets ([`Fabric::tcp_mesh`]), or shared-memory rings packed
//! into a *single* region ([`Fabric::shm_mesh`] /
//! [`Fabric::shm_file_mesh`]).
//!
//! ## Topology and routing
//!
//! A fabric over `n` domains is the complete graph: `n·(n−1)/2` undirected
//! edges, each carrying one bidirectional channel — so `n·(n−1)` directed
//! links in total. Routing is single-hop by construction: a packet for
//! domain `d` goes out on the one edge that joins the sender to `d`; no
//! domain ever forwards another pair's traffic (multi-hop routing is a
//! deliberate non-goal — see the ROADMAP).
//!
//! On edge `{a, b}` (stored with `a < b`), domain `a` plays
//! [`Side::Simulator`] and domain `b` plays [`Side::Accelerator`]. The
//! assignment is arbitrary but **fixed**, so every backend and every run
//! wires the same protocol roles to the same domains — a precondition for
//! the bit-identical conformance the session layer asserts.
//!
//! Per-link composition (loss, reliable delivery) stays orthogonal:
//! [`Fabric::map`] rebuilds the fabric with every endpoint wrapped, keeping
//! the edge list intact.

use crate::cost::Side;
use crate::shm::ShmTransport;
use crate::tcp::TcpTransport;
use crate::threaded::{ThreadedEndpoint, ThreadedTransport};
use std::io;

/// One undirected edge of the fabric: the channel joining domains `a` and
/// `b` (always stored with `a < b`). Domain `a` plays [`Side::Simulator`]
/// on this edge's channel, domain `b` plays [`Side::Accelerator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricEdge {
    a: usize,
    b: usize,
}

impl FabricEdge {
    /// Builds the edge joining `a` and `b` (order-insensitive).
    ///
    /// # Panics
    ///
    /// When `a == b` — a domain never links to itself.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a fabric edge joins two distinct domains");
        FabricEdge {
            a: a.min(b),
            b: a.max(b),
        }
    }

    /// The lower-numbered domain (plays [`Side::Simulator`] on this edge).
    pub fn a(&self) -> usize {
        self.a
    }

    /// The higher-numbered domain (plays [`Side::Accelerator`]).
    pub fn b(&self) -> usize {
        self.b
    }

    /// Whether `domain` is one of this edge's ends.
    pub fn involves(&self, domain: usize) -> bool {
        self.a == domain || self.b == domain
    }

    /// The protocol side `domain` plays on this edge's channel.
    ///
    /// # Panics
    ///
    /// When `domain` is not an end of this edge.
    pub fn role_of(&self, domain: usize) -> Side {
        if domain == self.a {
            Side::Simulator
        } else if domain == self.b {
            Side::Accelerator
        } else {
            panic!("domain {domain} is not on edge {self:?}")
        }
    }

    /// The domain at the other end from `domain`.
    ///
    /// # Panics
    ///
    /// When `domain` is not an end of this edge.
    pub fn peer_of(&self, domain: usize) -> usize {
        if domain == self.a {
            self.b
        } else if domain == self.b {
            self.a
        } else {
            panic!("domain {domain} is not on edge {self:?}")
        }
    }
}

/// The complete graph over `domains` domains in lexicographic edge order:
/// `{0,1}, {0,2}, …, {0,n−1}, {1,2}, …` — the canonical ordering every
/// fabric constructor and the session layer's per-domain merges rely on.
pub fn full_mesh(domains: usize) -> Vec<FabricEdge> {
    let mut edges = Vec::with_capacity(domains.saturating_sub(1) * domains / 2);
    for a in 0..domains {
        for b in (a + 1)..domains {
            edges.push(FabricEdge::new(a, b));
        }
    }
    edges
}

/// A full mesh of channels over `domains` domains: the edge list plus one
/// endpoint pair per edge, index-aligned (`links[i]` carries `edges[i]`).
/// Within each pair, `.0` is the endpoint domain `a` drives (as
/// [`Side::Simulator`]) and `.1` the endpoint domain `b` drives (as
/// [`Side::Accelerator`]).
///
/// The fabric is pure topology + endpoints; the session layer
/// (`predpkt-core`) owns the protocol engines, routing, and the N-way
/// boundary-halt run loop.
#[derive(Debug)]
pub struct Fabric<E> {
    domains: usize,
    edges: Vec<FabricEdge>,
    links: Vec<(E, E)>,
}

impl Fabric<ThreadedEndpoint> {
    /// Builds the mesh over in-process mpsc channels — the deterministic
    /// default, and the baseline every other backend is conformance-checked
    /// against.
    pub fn threaded_mesh(domains: usize) -> Self {
        let edges = full_mesh(domains);
        let links = edges.iter().map(|_| ThreadedTransport::pair()).collect();
        Fabric {
            domains,
            edges,
            links,
        }
    }
}

impl Fabric<crate::tcp::TcpEndpoint> {
    /// Builds the mesh over TCP loopback socket pairs — one real socket per
    /// edge, the shape a cross-host fabric would take (with loopback
    /// standing in for the wire).
    ///
    /// # Errors
    ///
    /// Any socket-setup failure while building an edge's pair.
    pub fn tcp_mesh(domains: usize) -> io::Result<Self> {
        let edges = full_mesh(domains);
        let links = edges
            .iter()
            .map(|_| TcpTransport::loopback_pair())
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Fabric {
            domains,
            edges,
            links,
        })
    }
}

impl Fabric<crate::shm::ShmEndpoint> {
    /// Builds the mesh over shared-memory rings, all edges packed into
    /// **one** [`ShmRegion`](crate::shm::ShmRegion) — N×(N−1) directed rings
    /// in a single allocation.
    pub fn shm_mesh(domains: usize, ring_words: u32) -> Self {
        let edges = full_mesh(domains);
        let links = if edges.is_empty() {
            Vec::new()
        } else {
            ShmTransport::mesh(edges.len(), ring_words)
        };
        Fabric {
            domains,
            edges,
            links,
        }
    }

    /// The file-backed form of [`shm_mesh`](Self::shm_mesh): one `/dev/shm`
    /// region file carries every edge's ring pair.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or attaching the region file.
    #[cfg(unix)]
    pub fn shm_file_mesh(domains: usize, ring_words: u32) -> io::Result<Self> {
        let edges = full_mesh(domains);
        let links = if edges.is_empty() {
            Vec::new()
        } else {
            ShmTransport::file_mesh(edges.len(), ring_words)?
        };
        Ok(Fabric {
            domains,
            edges,
            links,
        })
    }
}

impl<E> Fabric<E> {
    /// Assembles a fabric from parts — for callers composing their own
    /// endpoint types. `links` must be index-aligned with `edges`.
    ///
    /// # Panics
    ///
    /// When the link and edge counts disagree.
    pub fn from_parts(domains: usize, edges: Vec<FabricEdge>, links: Vec<(E, E)>) -> Self {
        assert_eq!(
            edges.len(),
            links.len(),
            "one endpoint pair per fabric edge"
        );
        Fabric {
            domains,
            edges,
            links,
        }
    }

    /// How many domains the fabric joins.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The edge list, index-aligned with the links.
    pub fn edges(&self) -> &[FabricEdge] {
        &self.edges
    }

    /// Rebuilds the fabric with every endpoint passed through `wrap` — the
    /// per-link composition hook (loss injection, reliable delivery). The
    /// closure receives the edge index, the edge, and the [`Side`] the
    /// endpoint plays on it.
    pub fn map<E2>(self, mut wrap: impl FnMut(usize, FabricEdge, Side, E) -> E2) -> Fabric<E2> {
        let edges = self.edges;
        let links = self
            .links
            .into_iter()
            .zip(edges.iter())
            .enumerate()
            .map(|(i, ((sim, acc), &edge))| {
                (
                    wrap(i, edge, Side::Simulator, sim),
                    wrap(i, edge, Side::Accelerator, acc),
                )
            })
            .collect();
        Fabric {
            domains: self.domains,
            edges,
            links,
        }
    }

    /// Tears the fabric into its edge list and endpoint pairs (the session
    /// layer consumes these to build per-domain ports).
    pub fn into_parts(self) -> (usize, Vec<FabricEdge>, Vec<(E, E)>) {
        (self.domains, self.edges, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Packet, PacketTag};
    use crate::transport::Transport;
    use crate::transport::WaitTransport;
    use std::time::Duration;

    #[test]
    fn full_mesh_counts_and_order() {
        assert!(full_mesh(0).is_empty());
        assert!(full_mesh(1).is_empty());
        assert_eq!(full_mesh(2), vec![FabricEdge::new(0, 1)]);
        let m4 = full_mesh(4);
        assert_eq!(m4.len(), 6);
        assert_eq!(m4[0], FabricEdge::new(0, 1));
        assert_eq!(m4[5], FabricEdge::new(2, 3));
        // n·(n−1)/2 edges → n·(n−1) directed links.
        assert_eq!(full_mesh(8).len(), 8 * 7 / 2);
    }

    #[test]
    fn edge_roles_are_fixed_by_domain_order() {
        let e = FabricEdge::new(5, 2);
        assert_eq!((e.a(), e.b()), (2, 5));
        assert_eq!(e.role_of(2), Side::Simulator);
        assert_eq!(e.role_of(5), Side::Accelerator);
        assert_eq!(e.peer_of(2), 5);
        assert_eq!(e.peer_of(5), 2);
        assert!(e.involves(2) && e.involves(5) && !e.involves(3));
    }

    #[test]
    #[should_panic(expected = "distinct domains")]
    fn self_edge_is_rejected() {
        let _ = FabricEdge::new(3, 3);
    }

    #[test]
    fn threaded_mesh_carries_cross_edge_traffic_independently() {
        let fabric = Fabric::threaded_mesh(3);
        assert_eq!(fabric.domains(), 3);
        let (_, edges, mut links) = fabric.into_parts();
        assert_eq!(edges.len(), 3);
        // Send a distinct payload down each edge in the a→b direction.
        for (i, (sim, _)) in links.iter_mut().enumerate() {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i as u32]),
            );
        }
        for (i, (_, acc)) in links.iter_mut().enumerate() {
            assert!(acc.wait_for_packet(Duration::from_secs(5)));
            assert_eq!(acc.recv(Side::Accelerator).unwrap().payload(), &[i as u32]);
            assert_eq!(acc.pending(Side::Accelerator), 0, "no cross-edge leakage");
        }
    }

    #[test]
    fn shm_mesh_builds_one_region_for_all_edges() {
        let fabric = Fabric::shm_mesh(4, 256);
        let (_, edges, mut links) = fabric.into_parts();
        assert_eq!(edges.len(), 6);
        for (i, (sim, acc)) in links.iter_mut().enumerate() {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::Burst, vec![i as u32; 3]),
            );
            assert!(acc.wait_for_packet(Duration::from_secs(5)));
            assert_eq!(
                acc.recv(Side::Accelerator).unwrap().payload(),
                vec![i as u32; 3].as_slice()
            );
        }
    }

    #[test]
    fn map_preserves_edges_and_wraps_every_endpoint() {
        let fabric = Fabric::threaded_mesh(3);
        let mut seen = Vec::new();
        let wrapped = fabric.map(|i, edge, side, end| {
            seen.push((i, edge, side));
            end
        });
        assert_eq!(wrapped.edges().len(), 3);
        assert_eq!(seen.len(), 6, "both sides of every edge pass through");
        assert_eq!(seen[0], (0, FabricEdge::new(0, 1), Side::Simulator));
        assert_eq!(seen[1], (0, FabricEdge::new(0, 1), Side::Accelerator));
    }
}
