//! A free-list buffer pool for the packet hot path.
//!
//! The paper's premise is that channel traffic dominates co-emulation cost —
//! so the host-side packet path should not add a heap allocation per packet
//! on top. [`BufferPool`] is a minimal free list of `Vec<u32>` payload
//! buffers: layers that consume packets (the reliable transport draining
//! acked frames, decoders retiring consumed frames) release the buffers
//! here, and layers that produce packets (frame encoders, decode
//! materialization) acquire them back. Once the pool has warmed to the
//! working set, steady-state send/recv runs entirely off the free list.
//!
//! The pool is deliberately not shared or locked: each transport layer owns
//! its own pool, matching the per-side ownership of the endpoints
//! themselves.
//!
//! # Example
//!
//! ```
//! use predpkt_channel::BufferPool;
//! let mut pool = BufferPool::new();
//! let mut buf = pool.acquire(); // first acquire is a miss
//! buf.extend_from_slice(&[1, 2, 3]);
//! pool.release(buf);
//! let again = pool.acquire(); // reuses the buffer: a hit, and cleared
//! assert!(again.is_empty());
//! assert_eq!(pool.stats().hits, 1);
//! assert_eq!(pool.stats().misses, 1);
//! ```

/// Counters describing how well a [`BufferPool`] is feeding its users.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free list (no allocation).
    pub hits: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
    /// Returned buffers dropped because the free list was at capacity.
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of acquires served without allocating (`None` before the
    /// first acquire). A warmed steady-state hot path sits at ~1.0.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Default cap on retained free buffers: enough for a full reliable window
/// per direction plus in-flight decodes, small enough that a burst never
/// pins unbounded memory.
pub const DEFAULT_POOL_RETAIN: usize = 64;

/// A free list of reusable `Vec<u32>` payload buffers.
///
/// Buffers are always handed out **empty** (cleared on release, so a stale
/// payload can never leak into a fresh packet) but keep their capacity, which
/// is the entire point: after warm-up, `acquire` is a pop and `release` is a
/// push.
///
/// Double-leasing is impossible by construction — `acquire` transfers
/// ownership of the `Vec` out of the pool, and `release` moves it back.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u32>>,
    max_free: usize,
    stats: PoolStats,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// A pool retaining up to [`DEFAULT_POOL_RETAIN`] free buffers.
    pub fn new() -> Self {
        Self::with_retain(DEFAULT_POOL_RETAIN)
    }

    /// A pool retaining up to `max_free` free buffers; returns beyond the cap
    /// drop the buffer instead of growing the list.
    pub fn with_retain(max_free: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_free,
            stats: PoolStats::default(),
        }
    }

    /// Takes an empty buffer — off the free list when one is available, a
    /// fresh allocation otherwise.
    pub fn acquire(&mut self) -> Vec<u32> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "released buffers are cleared");
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the free list, clearing it first (capacity is
    /// kept). Beyond the retain cap the buffer is dropped.
    pub fn release(&mut self, mut buf: Vec<u32>) {
        if self.free.len() >= self.max_free {
            self.stats.dropped += 1;
            return;
        }
        buf.clear();
        self.stats.recycled += 1;
        self.free.push(buf);
    }

    /// Buffers currently on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// The pool's hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_hit_reuses_capacity() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire();
        assert_eq!(pool.stats().misses, 1);
        buf.extend_from_slice(&[9; 100]);
        let cap = buf.capacity();
        pool.release(buf);
        assert_eq!(pool.free_len(), 1);
        let again = pool.acquire();
        assert_eq!(pool.stats().hits, 1);
        assert!(again.is_empty(), "released buffers are cleared");
        assert!(again.capacity() >= cap, "capacity survives the round trip");
    }

    #[test]
    fn no_double_lease_two_acquires_are_distinct_buffers() {
        let mut pool = BufferPool::new();
        let mut a = pool.acquire();
        let mut b = pool.acquire();
        a.push(1);
        b.push(2);
        assert_eq!(a, vec![1]);
        assert_eq!(b, vec![2]);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.free_len(), 2);
        // Draining the free list twice hands each buffer out exactly once.
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.free_len(), 0);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn retain_cap_drops_excess_returns() {
        let mut pool = BufferPool::with_retain(2);
        for _ in 0..4 {
            pool.release(vec![1, 2, 3]);
        }
        assert_eq!(pool.free_len(), 2);
        assert_eq!(pool.stats().recycled, 2);
        assert_eq!(pool.stats().dropped, 2);
    }

    #[test]
    fn hit_rate_converges_to_one_in_steady_state() {
        let mut pool = BufferPool::new();
        // Warm-up: one miss.
        let buf = pool.acquire();
        pool.release(buf);
        for _ in 0..99 {
            let buf = pool.acquire();
            pool.release(buf);
        }
        let rate = pool.stats().hit_rate().unwrap();
        assert!(
            rate >= 0.99,
            "steady state must run off the free list: {rate}"
        );
        assert_eq!(pool.stats().misses, 1, "only the cold start allocates");
    }

    #[test]
    fn hit_rate_is_none_before_first_acquire() {
        assert_eq!(BufferPool::new().stats().hit_rate(), None);
    }
}
