//! Per-direction channel statistics.

use crate::cost::Direction;
use predpkt_sim::VirtualTime;
use std::fmt;

/// Counts accesses, payload words and accumulated virtual time per direction.
///
/// The headline metric of the paper is *channel accesses per target cycle*:
/// conventional co-emulation needs two per cycle, the optimistic scheme
/// amortizes two across an entire transition. [`ChannelStats::total_accesses`]
/// divided by committed cycles gives that figure directly.
///
/// # Example
///
/// ```
/// use predpkt_channel::{ChannelStats, Direction};
/// use predpkt_sim::VirtualTime;
/// let mut stats = ChannelStats::new();
/// stats.record(Direction::SimToAcc, 64, VirtualTime::from_micros(15));
/// assert_eq!(stats.accesses(Direction::SimToAcc), 1);
/// assert_eq!(stats.total_words(), 64);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    accesses: [u64; 2],
    words: [u64; 2],
    time: [VirtualTime; 2],
}

impl ChannelStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access of `words` payload words costing `cost`.
    pub fn record(&mut self, direction: Direction, words: u64, cost: VirtualTime) {
        let i = direction.index();
        self.accesses[i] += 1;
        self.words[i] += words;
        self.time[i] += cost;
    }

    /// Records `words` of *piggybacked* payload costing `cost` — control
    /// words riding an access that is already being billed (e.g. adaptive
    /// strategy epochs appended to a burst flush). Words and time accrue,
    /// the access count does not.
    pub fn record_piggyback(&mut self, direction: Direction, words: u64, cost: VirtualTime) {
        let i = direction.index();
        self.words[i] += words;
        self.time[i] += cost;
    }

    /// Accesses performed in `direction`.
    pub fn accesses(&self, direction: Direction) -> u64 {
        self.accesses[direction.index()]
    }

    /// Payload words moved in `direction`.
    pub fn words(&self, direction: Direction) -> u64 {
        self.words[direction.index()]
    }

    /// Virtual time spent in `direction`.
    pub fn time(&self, direction: Direction) -> VirtualTime {
        self.time[direction.index()]
    }

    /// Accesses summed over both directions.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Words summed over both directions.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }

    /// Virtual time summed over both directions.
    pub fn total_time(&self) -> VirtualTime {
        self.time.iter().copied().sum()
    }

    /// Mean payload words per access across both directions
    /// (`None` before the first access).
    pub fn mean_words_per_access(&self) -> Option<f64> {
        let n = self.total_accesses();
        (n > 0).then(|| self.total_words() as f64 / n as f64)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        for d in Direction::BOTH {
            let i = d.index();
            self.accesses[i] += other.accesses[i];
            self.words[i] += other.words[i];
            self.time[i] += other.time[i];
        }
    }
}

/// Six words: per-direction accesses, words, and virtual time (picoseconds),
/// forward direction first.
impl predpkt_sim::Snapshot for ChannelStats {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        for i in 0..2 {
            w.word(self.accesses[i])
                .word(self.words[i])
                .word(self.time[i].as_picos());
        }
    }

    fn restore(
        &mut self,
        r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        let mut restored = ChannelStats::new();
        for i in 0..2 {
            restored.accesses[i] = r.word()?;
            restored.words[i] = r.word()?;
            restored.time[i] = VirtualTime::from_picos(r.word()?);
        }
        *self = restored;
        Ok(())
    }
}

impl fmt::Display for ChannelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} (fwd {}, rev {}), words={}, time={}",
            self.total_accesses(),
            self.accesses(Direction::SimToAcc),
            self.accesses(Direction::AccToSim),
            self.total_words(),
            self.total_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_creation() {
        let s = ChannelStats::new();
        assert_eq!(s.total_accesses(), 0);
        assert_eq!(s.total_words(), 0);
        assert_eq!(s.total_time(), VirtualTime::ZERO);
        assert_eq!(s.mean_words_per_access(), None);
    }

    #[test]
    fn records_per_direction() {
        let mut s = ChannelStats::new();
        s.record(Direction::SimToAcc, 10, VirtualTime::from_nanos(100));
        s.record(Direction::SimToAcc, 20, VirtualTime::from_nanos(200));
        s.record(Direction::AccToSim, 5, VirtualTime::from_nanos(50));
        assert_eq!(s.accesses(Direction::SimToAcc), 2);
        assert_eq!(s.accesses(Direction::AccToSim), 1);
        assert_eq!(s.words(Direction::SimToAcc), 30);
        assert_eq!(s.words(Direction::AccToSim), 5);
        assert_eq!(s.time(Direction::SimToAcc), VirtualTime::from_nanos(300));
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.total_words(), 35);
        assert_eq!(s.total_time(), VirtualTime::from_nanos(350));
        assert!((s.mean_words_per_access().unwrap() - 35.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn piggyback_accrues_words_and_time_only() {
        let mut s = ChannelStats::new();
        s.record(Direction::SimToAcc, 10, VirtualTime::from_nanos(100));
        s.record_piggyback(Direction::SimToAcc, 3, VirtualTime::from_nanos(30));
        assert_eq!(s.accesses(Direction::SimToAcc), 1);
        assert_eq!(s.words(Direction::SimToAcc), 13);
        assert_eq!(s.time(Direction::SimToAcc), VirtualTime::from_nanos(130));
    }

    #[test]
    fn reset_and_merge() {
        let mut a = ChannelStats::new();
        a.record(Direction::SimToAcc, 1, VirtualTime::from_nanos(1));
        let mut b = ChannelStats::new();
        b.record(Direction::AccToSim, 2, VirtualTime::from_nanos(2));
        a.merge(&b);
        assert_eq!(a.total_accesses(), 2);
        assert_eq!(a.total_words(), 3);
        a.reset();
        assert_eq!(a, ChannelStats::new());
    }

    #[test]
    fn display_mentions_both_directions() {
        let mut s = ChannelStats::new();
        s.record(Direction::AccToSim, 4, VirtualTime::from_nanos(4));
        let text = s.to_string();
        assert!(text.contains("accesses=1"));
        assert!(text.contains("words=4"));
    }
}
