//! Crossbeam-based transport for real-thread experiments.
//!
//! The deterministic [`QueueTransport`](crate::QueueTransport) is what the
//! evaluation uses; this module provides an equivalent transport whose two ends
//! live on different OS threads, so the conservative protocol can be exercised
//! with genuine concurrency (useful for stress-testing the protocol's freedom
//! from cross-domain ordering assumptions). Statistics are shared behind a
//! `parking_lot::Mutex`.

use crate::cost::{ChannelCostModel, Side};
use crate::message::Packet;
use crate::stats::ChannelStats;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use predpkt_sim::VirtualTime;
use std::sync::Arc;

/// A threaded channel: construct with [`ThreadedTransport::pair`], move each
/// [`ThreadedEndpoint`] to its own thread.
#[derive(Debug)]
pub struct ThreadedTransport;

impl ThreadedTransport {
    /// Creates the two endpoints of a threaded channel sharing one cost model
    /// and one statistics block.
    pub fn pair(cost_model: ChannelCostModel) -> (ThreadedEndpoint, ThreadedEndpoint) {
        let (sim_tx, sim_rx) = unbounded::<Packet>(); // toward accelerator
        let (acc_tx, acc_rx) = unbounded::<Packet>(); // toward simulator
        let stats = Arc::new(Mutex::new(ChannelStats::new()));
        let sim_end = ThreadedEndpoint {
            side: Side::Simulator,
            tx: sim_tx,
            rx: acc_rx,
            cost_model,
            stats: Arc::clone(&stats),
        };
        let acc_end = ThreadedEndpoint {
            side: Side::Accelerator,
            tx: acc_tx,
            rx: sim_rx,
            cost_model,
            stats,
        };
        (sim_end, acc_end)
    }
}

/// One end of a [`ThreadedTransport`]; `Send` so it can move to a worker thread.
#[derive(Debug)]
pub struct ThreadedEndpoint {
    side: Side,
    tx: Sender<Packet>,
    rx: Receiver<Packet>,
    cost_model: ChannelCostModel,
    stats: Arc<Mutex<ChannelStats>>,
}

impl ThreadedEndpoint {
    /// Which side this endpoint belongs to.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Sends a packet toward the peer, returning the access cost.
    ///
    /// Returns `None` if the peer endpoint has been dropped.
    pub fn send(&self, packet: Packet) -> Option<VirtualTime> {
        let direction = self.side.outbound();
        let words = packet.wire_words();
        let cost = self.cost_model.access_cost(direction, words);
        self.tx.send(packet).ok()?;
        self.stats.lock().record(direction, words, cost);
        Some(cost)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Packet> {
        match self.rx.try_recv() {
            Ok(p) => Some(p),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive; `None` once the peer has been dropped and the queue is
    /// drained.
    pub fn recv_blocking(&self) -> Option<Packet> {
        self.rx.recv().ok()
    }

    /// A snapshot of the shared statistics.
    pub fn stats_snapshot(&self) -> ChannelStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Direction;
    use crate::message::PacketTag;
    use std::thread;

    #[test]
    fn ping_pong_across_threads() {
        let (sim, acc) = ThreadedTransport::pair(ChannelCostModel::iprove_pci());
        let worker = thread::spawn(move || {
            // Accelerator thread: echo payloads back incremented.
            for _ in 0..100 {
                let p = acc.recv_blocking().unwrap();
                let bumped: Vec<u32> = p.payload().iter().map(|w| w + 1).collect();
                acc.send(Packet::new(PacketTag::CycleOutputs, bumped)).unwrap();
            }
            acc.stats_snapshot()
        });
        for i in 0..100u32 {
            sim.send(Packet::new(PacketTag::CycleOutputs, vec![i])).unwrap();
            let reply = sim.recv_blocking().unwrap();
            assert_eq!(reply.payload(), &[i + 1]);
        }
        let stats = worker.join().unwrap();
        assert_eq!(stats.accesses(Direction::SimToAcc), 100);
        assert_eq!(stats.accesses(Direction::AccToSim), 100);
        // 2 wire words per packet (tag + 1 payload word), both directions.
        assert_eq!(stats.total_words(), 400);
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let (sim, _acc) = ThreadedTransport::pair(ChannelCostModel::iprove_pci());
        assert!(sim.try_recv().is_none());
    }

    #[test]
    fn send_to_dropped_peer_fails() {
        let (sim, acc) = ThreadedTransport::pair(ChannelCostModel::iprove_pci());
        drop(acc);
        assert!(sim.send(Packet::new(PacketTag::Handshake, vec![])).is_none());
        assert!(sim.recv_blocking().is_none());
    }

    #[test]
    fn cost_matches_queue_transport_model() {
        let (sim, acc) = ThreadedTransport::pair(ChannelCostModel::iprove_pci());
        let cost = sim.send(Packet::new(PacketTag::Burst, vec![0; 9])).unwrap();
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().access_cost(Direction::SimToAcc, 10)
        );
        assert_eq!(acc.try_recv().unwrap().payload().len(), 9);
        assert_eq!(sim.side(), Side::Simulator);
        assert_eq!(acc.side(), Side::Accelerator);
    }
}
