//! Real-thread transport built on `std::sync::mpsc`.
//!
//! The deterministic [`QueueTransport`](crate::QueueTransport) is what the
//! single-threaded evaluation uses; this module provides an equivalent
//! transport whose two ends live on different OS threads, so the conservative
//! protocol can be exercised with genuine concurrency (stress-testing the
//! protocol's freedom from cross-domain ordering assumptions).
//!
//! Each [`ThreadedEndpoint`] implements [`Transport`] for *its own side*, so it
//! slots straight into a per-side [`CostedChannel`](crate::CostedChannel):
//!
//! ```
//! use predpkt_channel::{ChannelCostModel, CostedChannel, Packet, PacketTag, Side, Transport};
//! let (sim_end, acc_end) = predpkt_channel::ThreadedTransport::pair();
//! let mut sim = CostedChannel::with_transport(sim_end, ChannelCostModel::iprove_pci());
//! let mut acc = CostedChannel::with_transport(acc_end, ChannelCostModel::iprove_pci());
//! sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
//! assert_eq!(acc.recv(Side::Accelerator).unwrap().tag(), PacketTag::Handshake);
//! ```

use crate::cost::Side;
use crate::message::Packet;
use crate::transport::{Transport, WaitTransport};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// Constructor for a pair of thread-safe channel endpoints.
#[derive(Debug)]
pub struct ThreadedTransport;

impl ThreadedTransport {
    /// Creates the two endpoints of a threaded channel. Each endpoint is
    /// `Send` and moves to its domain's thread; costing and statistics are
    /// added per side by wrapping each endpoint in a
    /// [`CostedChannel`](crate::CostedChannel).
    pub fn pair() -> (ThreadedEndpoint, ThreadedEndpoint) {
        let (sim_tx, sim_rx) = channel::<Packet>(); // toward accelerator
        let (acc_tx, acc_rx) = channel::<Packet>(); // toward simulator
        let to_sim = Arc::new(AtomicUsize::new(0));
        let to_acc = Arc::new(AtomicUsize::new(0));
        let sim_end = ThreadedEndpoint {
            side: Side::Simulator,
            tx: sim_tx,
            rx: acc_rx,
            buf: VecDeque::new(),
            to_sim: Arc::clone(&to_sim),
            to_acc: Arc::clone(&to_acc),
        };
        let acc_end = ThreadedEndpoint {
            side: Side::Accelerator,
            tx: acc_tx,
            rx: sim_rx,
            buf: VecDeque::new(),
            to_sim,
            to_acc,
        };
        (sim_end, acc_end)
    }
}

/// One end of a [`ThreadedTransport`]; `Send` so it can move to a worker
/// thread. Implements [`Transport`] for the side it belongs to.
#[derive(Debug)]
pub struct ThreadedEndpoint {
    side: Side,
    tx: Sender<Packet>,
    rx: Receiver<Packet>,
    /// Packets pulled off `rx` by [`wait_for_packet`](Self::wait_for_packet)
    /// but not yet consumed through [`Transport::recv`].
    buf: VecDeque<Packet>,
    /// Packets in flight toward the simulator (shared with the peer).
    to_sim: Arc<AtomicUsize>,
    /// Packets in flight toward the accelerator (shared with the peer).
    to_acc: Arc<AtomicUsize>,
}

impl ThreadedEndpoint {
    /// Which side this endpoint belongs to.
    pub fn side(&self) -> Side {
        self.side
    }

    fn counter(&self, toward: Side) -> &AtomicUsize {
        match toward {
            Side::Simulator => &self.to_sim,
            Side::Accelerator => &self.to_acc,
        }
    }

    /// Blocks until a packet addressed to this endpoint is available or
    /// `timeout` elapses. Returns `true` if a packet is ready for
    /// [`Transport::recv`]; `false` on timeout or when the peer has been
    /// dropped with the queue drained.
    pub fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        if !self.buf.is_empty() {
            return true;
        }
        match self.rx.recv_timeout(timeout) {
            Ok(p) => {
                self.buf.push_back(p);
                true
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => false,
        }
    }

    /// Blocking receive; `None` once the peer has been dropped and the queue
    /// is drained.
    pub fn recv_blocking(&mut self) -> Option<Packet> {
        if let Some(p) = self.buf.pop_front() {
            self.counter(self.side).fetch_sub(1, Ordering::AcqRel);
            return Some(p);
        }
        let p = self.rx.recv().ok()?;
        self.counter(self.side).fetch_sub(1, Ordering::AcqRel);
        Some(p)
    }
}

/// A socket-like endpoint carries **no serializable session state**: its
/// medium (the peer's channel) lives outside this process's cut, so a
/// checkpoint saves nothing and restore is a no-op. Frames in flight at the
/// cut are healed by the reliable layer's re-armed retransmission window
/// (duplicates are suppressed, cumulative acks are idempotent) — which is why
/// sessions that need restore-exactness over endpoint backends run them under
/// [`ReliableTransport`](crate::ReliableTransport).
impl predpkt_sim::Snapshot for ThreadedEndpoint {
    fn save(&self, _w: &mut predpkt_sim::StateWriter<'_>) {}

    fn restore(
        &mut self,
        _r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        Ok(())
    }
}

impl Transport for ThreadedEndpoint {
    fn send(&mut self, from: Side, packet: Packet) {
        debug_assert_eq!(from, self.side, "endpoints send from their own side");
        self.counter(from.peer()).fetch_add(1, Ordering::AcqRel);
        if self.tx.send(packet).is_err() {
            // Peer dropped: the packet is lost on the floor, exactly like a
            // physical channel with no receiver. Undo the in-flight count.
            self.counter(from.peer()).fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        debug_assert_eq!(to, self.side, "endpoints receive for their own side");
        if let Some(p) = self.buf.pop_front() {
            self.counter(to).fetch_sub(1, Ordering::AcqRel);
            return Some(p);
        }
        match self.rx.try_recv() {
            Ok(p) => {
                self.counter(to).fetch_sub(1, Ordering::AcqRel);
                Some(p)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    fn pending(&self, to: Side) -> usize {
        self.counter(to).load(Ordering::Acquire)
    }
}

impl WaitTransport for ThreadedEndpoint {
    fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        ThreadedEndpoint::wait_for_packet(self, timeout)
    }
}

impl crate::poll::PollReady for ThreadedEndpoint {
    /// One `try_recv` (parked into the wait buffer on success) — the
    /// poll-set's per-source probe. A disconnected sender with the queue
    /// drained is a dead source: nothing will ever arrive.
    fn readiness(&mut self) -> crate::poll::Readiness {
        if !self.buf.is_empty() {
            return crate::poll::Readiness::Ready;
        }
        match self.rx.try_recv() {
            Ok(p) => {
                self.buf.push_back(p);
                crate::poll::Readiness::Ready
            }
            Err(TryRecvError::Empty) => crate::poll::Readiness::Idle,
            Err(TryRecvError::Disconnected) => crate::poll::Readiness::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ChannelCostModel, Direction};
    use crate::message::PacketTag;
    use crate::transport::CostedChannel;
    use std::thread;

    #[test]
    fn ping_pong_across_threads() {
        let (mut sim, mut acc) = ThreadedTransport::pair();
        let worker = thread::spawn(move || {
            // Accelerator thread: echo payloads back incremented.
            for _ in 0..100 {
                let p = acc.recv_blocking().unwrap();
                let bumped: Vec<u32> = p.payload().iter().map(|w| w + 1).collect();
                acc.send(
                    Side::Accelerator,
                    Packet::new(PacketTag::CycleOutputs, bumped),
                );
            }
        });
        for i in 0..100u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i]),
            );
            let reply = sim.recv_blocking().unwrap();
            assert_eq!(reply.payload(), &[i + 1]);
        }
        worker.join().unwrap();
        assert_eq!(sim.pending(Side::Simulator), 0);
        assert_eq!(sim.pending(Side::Accelerator), 0);
    }

    #[test]
    fn costed_endpoints_record_per_side_stats() {
        let (sim_end, mut acc_end) = ThreadedTransport::pair();
        let mut sim = CostedChannel::with_transport(sim_end, ChannelCostModel::iprove_pci());
        let cost = sim.send(Side::Simulator, Packet::new(PacketTag::Burst, vec![0; 9]));
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().access_cost(Direction::SimToAcc, 10)
        );
        assert_eq!(sim.stats().accesses(Direction::SimToAcc), 1);
        assert_eq!(acc_end.recv_blocking().unwrap().payload().len(), 9);
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let (mut sim, _acc) = ThreadedTransport::pair();
        assert!(sim.recv(Side::Simulator).is_none());
    }

    #[test]
    fn wait_for_packet_times_out_and_delivers() {
        let (mut sim, mut acc) = ThreadedTransport::pair();
        assert!(!sim.wait_for_packet(Duration::from_millis(1)));
        acc.send(Side::Accelerator, Packet::new(PacketTag::Handshake, vec![]));
        assert!(sim.wait_for_packet(Duration::from_millis(100)));
        assert_eq!(
            sim.recv(Side::Simulator).unwrap().tag(),
            PacketTag::Handshake
        );
    }

    #[test]
    fn pending_tracks_in_flight_packets() {
        let (mut sim, mut acc) = ThreadedTransport::pair();
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        assert_eq!(acc.pending(Side::Accelerator), 2);
        assert!(acc.recv(Side::Accelerator).is_some());
        assert_eq!(acc.pending(Side::Accelerator), 1);
        assert_eq!(sim.pending(Side::Accelerator), 1, "counters are shared");
    }

    #[test]
    fn dropped_peer_drains_cleanly() {
        let (mut sim, acc) = ThreadedTransport::pair();
        drop(acc);
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        assert!(sim.recv_blocking().is_none());
        assert_eq!(
            sim.pending(Side::Accelerator),
            0,
            "lost send is not pending"
        );
    }
}
