//! Transports and the costed channel facade.

use crate::cost::{ChannelCostModel, Side};
use crate::message::Packet;
use crate::stats::ChannelStats;
use predpkt_sim::VirtualTime;
use std::collections::VecDeque;
use std::time::Duration;

/// Message-passing between the two co-emulation domains.
///
/// A transport is *only* a mailbox: ordering is FIFO per direction, sends never
/// block, and receives return `None` when no message is pending (the caller — the
/// channel-wrapper state machine — models blocking by yielding to the peer
/// domain). Costing and statistics live in [`CostedChannel`].
pub trait Transport {
    /// Enqueues `packet` from `from` toward its peer.
    fn send(&mut self, from: Side, packet: Packet);

    /// Dequeues the next packet addressed to `to`, if any.
    fn recv(&mut self, to: Side) -> Option<Packet>;

    /// Number of packets currently queued toward `to`.
    fn pending(&self, to: Side) -> usize;
}

/// A [`Transport`] whose receiving end can block awaiting the next packet —
/// the capability the one-thread-per-domain session runner needs so a blocked
/// domain can sleep instead of spinning. Implemented by
/// [`ThreadedEndpoint`](crate::ThreadedEndpoint) and forwarded by wrappers
/// such as [`ReliableTransport`](crate::ReliableTransport), which also use the
/// wakeup to pump their retransmission timers.
pub trait WaitTransport: Transport {
    /// Blocks until a packet addressed to this endpoint's side is available
    /// or `timeout` elapses. Returns `true` if a subsequent
    /// [`recv`](Transport::recv) may yield a packet.
    fn wait_for_packet(&mut self, timeout: Duration) -> bool;
}

/// Deterministic in-process transport: two FIFO queues.
///
/// This is the transport used by the single-threaded co-emulation orchestrator;
/// it makes every run exactly reproducible.
///
/// # Example
///
/// ```
/// use predpkt_channel::{Packet, PacketTag, QueueTransport, Side, Transport};
/// let mut t = QueueTransport::new();
/// t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
/// assert_eq!(t.pending(Side::Accelerator), 1);
/// let p = t.recv(Side::Accelerator).unwrap();
/// assert_eq!(p.tag(), PacketTag::Handshake);
/// ```
#[derive(Debug, Default)]
pub struct QueueTransport {
    to_acc: VecDeque<Packet>,
    to_sim: VecDeque<Packet>,
}

impl QueueTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue_toward(&mut self, side: Side) -> &mut VecDeque<Packet> {
        match side {
            Side::Simulator => &mut self.to_sim,
            Side::Accelerator => &mut self.to_acc,
        }
    }
}

impl Transport for QueueTransport {
    fn send(&mut self, from: Side, packet: Packet) {
        self.queue_toward(from.peer()).push_back(packet);
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        self.queue_toward(to).pop_front()
    }

    fn pending(&self, to: Side) -> usize {
        match to {
            Side::Simulator => self.to_sim.len(),
            Side::Accelerator => self.to_acc.len(),
        }
    }
}

/// A transport wrapped with the [`ChannelCostModel`] and [`ChannelStats`].
///
/// Every [`send`](CostedChannel::send) charges `startup + wire_words × per_word`
/// and returns the cost so the caller can bill its time ledger; every access is
/// recorded in the statistics. This is the channel object the co-emulator holds.
///
/// # Example
///
/// ```
/// use predpkt_channel::{ChannelCostModel, CostedChannel, Packet, PacketTag, Side};
/// let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
/// let cost = ch.send(Side::Accelerator, Packet::new(PacketTag::Burst, vec![0; 63]));
/// // 12.2 us startup + 64 wire words (tag + 63) * 75.73 ns
/// assert_eq!(cost.as_picos(), 12_200_000 + 64 * 75_730);
/// assert!(ch.recv(Side::Simulator).is_some());
/// ```
#[derive(Debug)]
pub struct CostedChannel<T = QueueTransport> {
    transport: T,
    cost_model: ChannelCostModel,
    stats: ChannelStats,
}

impl CostedChannel<QueueTransport> {
    /// Creates a costed channel over a fresh [`QueueTransport`].
    pub fn new(cost_model: ChannelCostModel) -> Self {
        Self::with_transport(QueueTransport::new(), cost_model)
    }
}

impl<T: Transport> CostedChannel<T> {
    /// Wraps an existing transport with a cost model.
    pub fn with_transport(transport: T, cost_model: ChannelCostModel) -> Self {
        CostedChannel {
            transport,
            cost_model,
            stats: ChannelStats::new(),
        }
    }

    /// Sends `packet` from `from`, returning the virtual-time cost of the access.
    pub fn send(&mut self, from: Side, packet: Packet) -> VirtualTime {
        let direction = from.outbound();
        let words = packet.wire_words();
        let cost = self.cost_model.access_cost(direction, words);
        self.stats.record(direction, words, cost);
        self.transport.send(from, packet);
        cost
    }

    /// Receives the next packet addressed to `to`, if any.
    ///
    /// Receiving is free: the access was billed on the send side (the paper's
    /// model bills each channel access exactly once).
    pub fn recv(&mut self, to: Side) -> Option<Packet> {
        self.transport.recv(to)
    }

    /// Number of packets pending toward `to`.
    pub fn pending(&self, to: Side) -> usize {
        self.transport.pending(to)
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Resets the statistics (the transport queues are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &ChannelCostModel {
        &self.cost_model
    }

    /// Shared access to the inner transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Exclusive access to the inner transport (e.g. to wait on a
    /// [`ThreadedEndpoint`](crate::ThreadedEndpoint) or inspect
    /// [`LossyTransport`](crate::LossyTransport) fault counters).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Consumes the channel, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Direction;
    use crate::message::PacketTag;

    fn pkt(n: usize) -> Packet {
        Packet::new(PacketTag::CycleOutputs, vec![0; n])
    }

    #[test]
    fn queue_fifo_order_per_direction() {
        let mut t = QueueTransport::new();
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, vec![1]),
        );
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, vec![2]),
        );
        t.send(
            Side::Accelerator,
            Packet::new(PacketTag::CycleOutputs, vec![3]),
        );
        assert_eq!(t.pending(Side::Accelerator), 2);
        assert_eq!(t.pending(Side::Simulator), 1);
        assert_eq!(t.recv(Side::Accelerator).unwrap().payload(), &[1]);
        assert_eq!(t.recv(Side::Accelerator).unwrap().payload(), &[2]);
        assert_eq!(t.recv(Side::Accelerator), None);
        assert_eq!(t.recv(Side::Simulator).unwrap().payload(), &[3]);
    }

    #[test]
    fn costed_send_charges_wire_words() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        let cost = ch.send(Side::Simulator, pkt(4)); // 5 wire words
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().access_cost(Direction::SimToAcc, 5)
        );
        assert_eq!(ch.stats().accesses(Direction::SimToAcc), 1);
        assert_eq!(ch.stats().words(Direction::SimToAcc), 5);
        assert_eq!(ch.stats().time(Direction::SimToAcc), cost);
    }

    #[test]
    fn recv_is_free_and_delivers() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Accelerator, pkt(2));
        let before = ch.stats().clone();
        let got = ch.recv(Side::Simulator).unwrap();
        assert_eq!(got.payload().len(), 2);
        assert_eq!(ch.stats(), &before, "recv must not change statistics");
        assert_eq!(ch.recv(Side::Simulator), None);
    }

    #[test]
    fn directions_are_independent() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Simulator, pkt(0));
        ch.send(Side::Accelerator, pkt(0));
        assert_eq!(ch.stats().accesses(Direction::SimToAcc), 1);
        assert_eq!(ch.stats().accesses(Direction::AccToSim), 1);
        assert!(ch.recv(Side::Simulator).is_some());
        assert!(ch.recv(Side::Accelerator).is_some());
    }

    #[test]
    fn conventional_cycle_cost_matches_paper_baseline() {
        // Two accesses per cycle (2 payload words forward, 1 back) plus tag words
        // is the configuration that reproduces the paper's 38.9 kcycles/s
        // conventional figure within a few percent.
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        let c1 = ch.send(Side::Simulator, pkt(2));
        let c2 = ch.send(Side::Accelerator, pkt(1));
        let per_cycle = (c1 + c2).as_secs_f64() + 1.0e-6 + 0.1e-6; // + Tsim + Tacc
        let perf = 1.0 / per_cycle;
        assert!((perf - 38_900.0).abs() < 500.0, "perf = {perf}");
    }

    #[test]
    fn reset_stats_keeps_queue() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Simulator, pkt(1));
        ch.reset_stats();
        assert_eq!(ch.stats().total_accesses(), 0);
        assert_eq!(ch.pending(Side::Accelerator), 1);
        assert!(ch.recv(Side::Accelerator).is_some());
    }
}
