//! Transports and the costed channel facade.

use crate::cost::{ChannelCostModel, Side};
use crate::message::Packet;
use crate::stats::ChannelStats;
use predpkt_sim::{Snapshot, VirtualTime};
use std::collections::VecDeque;
use std::time::Duration;

/// Physical-write efficiency counters of a batching transport.
///
/// Backends that coalesce frames — one socket write or one ring publication
/// carrying several frames — report how many logical frames rode how many
/// physical operations, so benches and the observer stream can show the
/// batching win directly. Backends with no physical write concept (the
/// in-process queues) report nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Logical frames handed to the physical medium.
    pub frames: u64,
    /// Physical operations issued (socket writes, ring head publications).
    pub physical_writes: u64,
}

impl BatchStats {
    /// Mean frames carried per physical operation (`None` before the first
    /// write). 1.0 means no coalescing happened; higher is better.
    pub fn frames_per_write(&self) -> Option<f64> {
        (self.physical_writes > 0).then(|| self.frames as f64 / self.physical_writes as f64)
    }

    /// Merges another block into this one (per-side endpoints).
    pub fn merge(&mut self, other: &BatchStats) {
        self.frames += other.frames;
        self.physical_writes += other.physical_writes;
    }
}

/// Message-passing between the two co-emulation domains.
///
/// A transport is *only* a mailbox: ordering is FIFO per direction, sends never
/// block, and receives return `None` when no message is pending (the caller — the
/// channel-wrapper state machine — models blocking by yielding to the peer
/// domain). Costing and statistics live in [`CostedChannel`].
///
/// The batch hooks ([`send_batch`](Self::send_batch),
/// [`send_batch_ref`](Self::send_batch_ref), [`drain`](Self::drain)) default
/// to sequential sends/receives, so every implementation is batch-correct by
/// construction; backends with a physical write concept override them to
/// coalesce — the delivered packet sequence **must** stay bit-identical to
/// the sequential path (the cross-transport conformance harness asserts it).
pub trait Transport {
    /// Enqueues `packet` from `from` toward its peer.
    fn send(&mut self, from: Side, packet: Packet);

    /// Dequeues the next packet addressed to `to`, if any.
    fn recv(&mut self, to: Side) -> Option<Packet>;

    /// Number of packets currently queued toward `to`.
    fn pending(&self, to: Side) -> usize;

    /// Sends `packet` by reference. Serializing backends (socket, ring)
    /// override this to encode straight off the borrow; the default clones
    /// for backends that must own the packet (in-process queues).
    fn send_ref(&mut self, from: Side, packet: &Packet) {
        self.send(from, packet.clone());
    }

    /// Sends every packet in `packets` (drained, preserving order) from
    /// `from`. Override to coalesce the batch into one physical operation.
    fn send_batch(&mut self, from: Side, packets: &mut Vec<Packet>) {
        for packet in packets.drain(..) {
            self.send(from, packet);
        }
    }

    /// Sends a sequence of borrowed packets from `from`, preserving order.
    /// The by-reference sibling of [`send_batch`](Self::send_batch), for
    /// callers that must keep the packets (retransmission windows).
    fn send_batch_ref(&mut self, from: Side, packets: &mut dyn Iterator<Item = &Packet>) {
        for packet in packets {
            self.send_ref(from, packet);
        }
    }

    /// Moves every packet currently deliverable to `to` into `out`,
    /// preserving order.
    fn drain(&mut self, to: Side, out: &mut Vec<Packet>) {
        while let Some(packet) = self.recv(to) {
            out.push(packet);
        }
    }

    /// Physical-write efficiency counters, for backends that coalesce frames
    /// (`None` when the backend has no physical write concept). Wrappers
    /// forward their inner transport's counters.
    fn batch_stats(&self) -> Option<BatchStats> {
        None
    }
}

/// A [`Transport`] whose receiving end can block awaiting the next packet —
/// the capability the one-thread-per-domain session runner needs so a blocked
/// domain can sleep instead of spinning. Implemented by
/// [`ThreadedEndpoint`](crate::ThreadedEndpoint) and forwarded by wrappers
/// such as [`ReliableTransport`](crate::ReliableTransport), which also use the
/// wakeup to pump their retransmission timers.
pub trait WaitTransport: Transport {
    /// Blocks until a packet addressed to this endpoint's side is available
    /// or `timeout` elapses. Returns `true` if a subsequent
    /// [`recv`](Transport::recv) may yield a packet.
    fn wait_for_packet(&mut self, timeout: Duration) -> bool;
}

/// Deterministic in-process transport: two FIFO queues.
///
/// This is the transport used by the single-threaded co-emulation orchestrator;
/// it makes every run exactly reproducible.
///
/// # Example
///
/// ```
/// use predpkt_channel::{Packet, PacketTag, QueueTransport, Side, Transport};
/// let mut t = QueueTransport::new();
/// t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
/// assert_eq!(t.pending(Side::Accelerator), 1);
/// let p = t.recv(Side::Accelerator).unwrap();
/// assert_eq!(p.tag(), PacketTag::Handshake);
/// ```
#[derive(Debug, Default)]
pub struct QueueTransport {
    to_acc: VecDeque<Packet>,
    to_sim: VecDeque<Packet>,
}

impl QueueTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue_toward(&mut self, side: Side) -> &mut VecDeque<Packet> {
        match side {
            Side::Simulator => &mut self.to_sim,
            Side::Accelerator => &mut self.to_acc,
        }
    }
}

impl Transport for QueueTransport {
    fn send(&mut self, from: Side, packet: Packet) {
        self.queue_toward(from.peer()).push_back(packet);
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        self.queue_toward(to).pop_front()
    }

    fn pending(&self, to: Side) -> usize {
        match to {
            Side::Simulator => self.to_sim.len(),
            Side::Accelerator => self.to_acc.len(),
        }
    }
}

/// Both FIFO queues, in-flight packets included — an in-process medium is
/// part of the session state, so a checkpoint captures it exactly.
impl predpkt_sim::Snapshot for QueueTransport {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        for queue in [&self.to_acc, &self.to_sim] {
            w.usize(queue.len());
            for packet in queue {
                packet.save(w);
            }
        }
    }

    fn restore(
        &mut self,
        r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        let mut queues = [VecDeque::new(), VecDeque::new()];
        for queue in &mut queues {
            let n = r.usize()?;
            for _ in 0..n {
                let mut packet = Packet::new(crate::message::PacketTag::Handshake, Vec::new());
                packet.restore(r)?;
                queue.push_back(packet);
            }
        }
        let [to_acc, to_sim] = queues;
        self.to_acc = to_acc;
        self.to_sim = to_sim;
        Ok(())
    }
}

/// A transport wrapped with the [`ChannelCostModel`] and [`ChannelStats`].
///
/// Every [`send`](CostedChannel::send) charges `startup + wire_words × per_word`
/// and returns the cost so the caller can bill its time ledger; every access is
/// recorded in the statistics. This is the channel object the co-emulator holds.
///
/// # Example
///
/// ```
/// use predpkt_channel::{ChannelCostModel, CostedChannel, Packet, PacketTag, Side};
/// let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
/// let cost = ch.send(Side::Accelerator, Packet::new(PacketTag::Burst, vec![0; 63]));
/// // 12.2 us startup + 64 wire words (tag + 63) * 75.73 ns
/// assert_eq!(cost.as_picos(), 12_200_000 + 64 * 75_730);
/// assert!(ch.recv(Side::Simulator).is_some());
/// ```
#[derive(Debug)]
pub struct CostedChannel<T = QueueTransport> {
    transport: T,
    cost_model: ChannelCostModel,
    stats: ChannelStats,
    /// When set, sends are billed immediately but parked in the outbox until
    /// [`flush`](Self::flush) (or the next receive) pushes them to the
    /// transport as one batch — the per-scheduling-slice coalescing the
    /// threaded session runner uses. Billing order and amounts are identical
    /// to the unbatched path, so statistics and ledgers cannot diverge.
    batching: bool,
    outbox: Vec<Packet>,
    outbox_from: Option<Side>,
}

impl CostedChannel<QueueTransport> {
    /// Creates a costed channel over a fresh [`QueueTransport`].
    pub fn new(cost_model: ChannelCostModel) -> Self {
        Self::with_transport(QueueTransport::new(), cost_model)
    }
}

impl<T: Transport> CostedChannel<T> {
    /// Wraps an existing transport with a cost model.
    pub fn with_transport(transport: T, cost_model: ChannelCostModel) -> Self {
        CostedChannel {
            transport,
            cost_model,
            stats: ChannelStats::new(),
            batching: false,
            outbox: Vec::new(),
            outbox_from: None,
        }
    }

    /// Enables or disables outbox batching (disabled by default). While
    /// enabled, sends are parked until [`flush`](Self::flush) — which every
    /// [`recv`](Self::recv) performs first, so a caller that sends then polls
    /// can never starve its peer. Disabling flushes whatever is parked.
    pub fn set_batching(&mut self, batching: bool) {
        self.batching = batching;
        if !batching {
            self.flush();
        }
    }

    /// Pushes every parked packet to the transport as one
    /// [`Transport::send_batch`]. A no-op when the outbox is empty.
    pub fn flush(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        let from = self
            .outbox_from
            .expect("a non-empty outbox records its sender");
        self.transport.send_batch(from, &mut self.outbox);
    }

    /// Sends `packet` from `from`, returning the virtual-time cost of the access.
    pub fn send(&mut self, from: Side, packet: Packet) -> VirtualTime {
        let direction = from.outbound();
        let words = packet.wire_words();
        let cost = self.cost_model.access_cost(direction, words);
        self.stats.record(direction, words, cost);
        if self.batching {
            if self.outbox_from != Some(from) {
                // A new sender (shared-mailbox usage): flush the old side's
                // packets first so per-direction FIFO order is preserved.
                self.flush();
                self.outbox_from = Some(from);
            }
            self.outbox.push(packet);
        } else {
            self.transport.send(from, packet);
        }
        cost
    }

    /// Bills `words` of control payload piggybacked on an access already
    /// sent from `from` (e.g. adaptive-suite strategy epochs riding a burst
    /// flush). No packet moves and no access is counted: the words are
    /// charged at the per-word rate only, and the returned cost is what the
    /// caller should add to its virtual-time ledger.
    pub fn bill_control(&mut self, from: Side, words: u64) -> VirtualTime {
        let direction = from.outbound();
        let cost = self.cost_model.per_word(direction) * words;
        self.stats.record_piggyback(direction, words, cost);
        cost
    }

    /// Receives the next packet addressed to `to`, if any. Parked sends are
    /// flushed first, so a send-then-poll caller cannot deadlock its peer.
    ///
    /// Receiving is free: the access was billed on the send side (the paper's
    /// model bills each channel access exactly once).
    pub fn recv(&mut self, to: Side) -> Option<Packet> {
        self.flush();
        self.transport.recv(to)
    }

    /// The transport's physical-write efficiency counters, when it batches.
    pub fn batch_stats(&self) -> Option<BatchStats> {
        self.transport.batch_stats()
    }

    /// Number of packets pending toward `to`.
    pub fn pending(&self, to: Side) -> usize {
        self.transport.pending(to)
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Resets the statistics (the transport queues are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &ChannelCostModel {
        &self.cost_model
    }

    /// Shared access to the inner transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Exclusive access to the inner transport (e.g. to wait on a
    /// [`ThreadedEndpoint`](crate::ThreadedEndpoint) or inspect
    /// [`LossyTransport`](crate::LossyTransport) fault counters).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Consumes the channel, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.transport
    }
}

/// Statistics, the parked outbox, and the inner transport — everything that
/// distinguishes two mid-run channels sharing a cost model. The cost model
/// itself is configuration and stays with the live instance.
impl<T: Transport + Snapshot> Snapshot for CostedChannel<T> {
    fn save(&self, w: &mut predpkt_sim::StateWriter<'_>) {
        self.stats.save(w);
        w.word(match self.outbox_from {
            None => 0,
            Some(Side::Simulator) => 1,
            Some(Side::Accelerator) => 2,
        });
        w.usize(self.outbox.len());
        for packet in &self.outbox {
            packet.save(w);
        }
        self.transport.save(w);
    }

    fn restore(
        &mut self,
        r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        self.stats.restore(r)?;
        let at = r.position();
        self.outbox_from = match r.word()? {
            0 => None,
            1 => Some(Side::Simulator),
            2 => Some(Side::Accelerator),
            _ => return Err(r.corrupt_at(at)),
        };
        let n = r.usize()?;
        let mut outbox = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let mut packet = Packet::new(crate::message::PacketTag::Handshake, Vec::new());
            packet.restore(r)?;
            outbox.push(packet);
        }
        self.outbox = outbox;
        self.transport.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Direction;
    use crate::message::PacketTag;

    fn pkt(n: usize) -> Packet {
        Packet::new(PacketTag::CycleOutputs, vec![0; n])
    }

    #[test]
    fn queue_fifo_order_per_direction() {
        let mut t = QueueTransport::new();
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, vec![1]),
        );
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, vec![2]),
        );
        t.send(
            Side::Accelerator,
            Packet::new(PacketTag::CycleOutputs, vec![3]),
        );
        assert_eq!(t.pending(Side::Accelerator), 2);
        assert_eq!(t.pending(Side::Simulator), 1);
        assert_eq!(t.recv(Side::Accelerator).unwrap().payload(), &[1]);
        assert_eq!(t.recv(Side::Accelerator).unwrap().payload(), &[2]);
        assert_eq!(t.recv(Side::Accelerator), None);
        assert_eq!(t.recv(Side::Simulator).unwrap().payload(), &[3]);
    }

    #[test]
    fn costed_send_charges_wire_words() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        let cost = ch.send(Side::Simulator, pkt(4)); // 5 wire words
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().access_cost(Direction::SimToAcc, 5)
        );
        assert_eq!(ch.stats().accesses(Direction::SimToAcc), 1);
        assert_eq!(ch.stats().words(Direction::SimToAcc), 5);
        assert_eq!(ch.stats().time(Direction::SimToAcc), cost);
    }

    #[test]
    fn bill_control_adds_words_and_time_but_no_access() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Simulator, pkt(4)); // 5 wire words, 1 access
        let before_words = ch.stats().words(Direction::SimToAcc);
        let cost = ch.bill_control(Side::Simulator, 3);
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().per_word(Direction::SimToAcc) * 3
        );
        assert_eq!(ch.stats().accesses(Direction::SimToAcc), 1, "no new access");
        assert_eq!(ch.stats().words(Direction::SimToAcc), before_words + 3);
        assert_eq!(ch.recv(Side::Accelerator).unwrap().payload().len(), 4);
        assert_eq!(ch.recv(Side::Accelerator), None, "no packet was created");
    }

    #[test]
    fn recv_is_free_and_delivers() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Accelerator, pkt(2));
        let before = ch.stats().clone();
        let got = ch.recv(Side::Simulator).unwrap();
        assert_eq!(got.payload().len(), 2);
        assert_eq!(ch.stats(), &before, "recv must not change statistics");
        assert_eq!(ch.recv(Side::Simulator), None);
    }

    #[test]
    fn directions_are_independent() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Simulator, pkt(0));
        ch.send(Side::Accelerator, pkt(0));
        assert_eq!(ch.stats().accesses(Direction::SimToAcc), 1);
        assert_eq!(ch.stats().accesses(Direction::AccToSim), 1);
        assert!(ch.recv(Side::Simulator).is_some());
        assert!(ch.recv(Side::Accelerator).is_some());
    }

    #[test]
    fn conventional_cycle_cost_matches_paper_baseline() {
        // Two accesses per cycle (2 payload words forward, 1 back) plus tag words
        // is the configuration that reproduces the paper's 38.9 kcycles/s
        // conventional figure within a few percent.
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        let c1 = ch.send(Side::Simulator, pkt(2));
        let c2 = ch.send(Side::Accelerator, pkt(1));
        let per_cycle = (c1 + c2).as_secs_f64() + 1.0e-6 + 0.1e-6; // + Tsim + Tacc
        let perf = 1.0 / per_cycle;
        assert!((perf - 38_900.0).abs() < 500.0, "perf = {perf}");
    }

    #[test]
    fn batched_sends_bill_identically_and_deliver_on_flush() {
        let mut plain = CostedChannel::new(ChannelCostModel::iprove_pci());
        let mut batched = CostedChannel::new(ChannelCostModel::iprove_pci());
        batched.set_batching(true);
        for i in 0..5usize {
            let c1 = plain.send(Side::Simulator, pkt(i));
            let c2 = batched.send(Side::Simulator, pkt(i));
            assert_eq!(c1, c2, "billing must not depend on batching");
        }
        assert_eq!(plain.stats(), batched.stats());
        assert_eq!(
            batched.transport().pending(Side::Accelerator),
            0,
            "parked until flush"
        );
        batched.flush();
        assert_eq!(batched.transport().pending(Side::Accelerator), 5);
        for i in 0..5usize {
            assert_eq!(
                batched.recv(Side::Accelerator).unwrap().payload().len(),
                i,
                "order preserved"
            );
        }
    }

    #[test]
    fn batched_recv_flushes_first() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.set_batching(true);
        ch.send(Side::Simulator, pkt(1));
        // The packet is parked, but a receive pushes it out before polling —
        // so a peer polling through the same channel sees it.
        assert!(ch.recv(Side::Accelerator).is_some());
    }

    #[test]
    fn disabling_batching_flushes() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.set_batching(true);
        ch.send(Side::Simulator, pkt(2));
        ch.set_batching(false);
        assert_eq!(ch.transport().pending(Side::Accelerator), 1);
    }

    #[test]
    fn default_batch_hooks_match_sequential_sends() {
        let mut sequential = QueueTransport::new();
        let mut batched = QueueTransport::new();
        let packets: Vec<Packet> = (0..7)
            .map(|i| Packet::new(PacketTag::CycleOutputs, vec![i; i as usize % 4]))
            .collect();
        for p in &packets {
            sequential.send(Side::Simulator, p.clone());
        }
        let mut owned = packets.clone();
        batched.send_batch(Side::Simulator, &mut owned);
        assert!(owned.is_empty(), "send_batch drains its input");
        let mut a = Vec::new();
        let mut b = Vec::new();
        sequential.drain(Side::Accelerator, &mut a);
        batched.drain(Side::Accelerator, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, packets);
    }

    #[test]
    fn batch_stats_default_is_none() {
        assert_eq!(QueueTransport::new().batch_stats(), None);
        let merged = {
            let mut s = BatchStats {
                frames: 3,
                physical_writes: 1,
            };
            s.merge(&BatchStats {
                frames: 5,
                physical_writes: 1,
            });
            s
        };
        assert_eq!(merged.frames, 8);
        assert_eq!(merged.physical_writes, 2);
        assert_eq!(merged.frames_per_write(), Some(4.0));
        assert_eq!(BatchStats::default().frames_per_write(), None);
    }

    #[test]
    fn reset_stats_keeps_queue() {
        let mut ch = CostedChannel::new(ChannelCostModel::iprove_pci());
        ch.send(Side::Simulator, pkt(1));
        ch.reset_stats();
        assert_eq!(ch.stats().total_accesses(), 0);
        assert_eq!(ch.pending(Side::Accelerator), 1);
        assert!(ch.recv(Side::Accelerator).is_some());
    }
}
