//! Typed validation errors for transport tuning knobs.

use std::error::Error;
use std::fmt;

/// A rejected tuning knob: which field was rejected, and why.
///
/// Both [`FaultSpec::validate`](crate::FaultSpec::validate) and
/// [`ReliableConfig::validate`](crate::ReliableConfig::validate) report
/// through this one shape, so every layer above (the session builder's
/// `ConfigError`, error messages, tests) can name the offending field
/// uniformly instead of parsing free-form strings.
///
/// # Example
///
/// ```
/// use predpkt_channel::FaultSpec;
/// let err = FaultSpec::drops(0, 1.5).validate().unwrap_err();
/// assert_eq!(err.field, "drop_rate");
/// assert!(err.to_string().contains("drop_rate"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnobError {
    /// The offending field, as named in the configuration struct.
    pub field: &'static str,
    /// Why the value was rejected.
    pub detail: String,
}

impl KnobError {
    /// Creates an error for `field` with the rejection reason `detail`.
    pub fn new(field: &'static str, detail: impl Into<String>) -> Self {
        KnobError {
            field,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.detail)
    }
}

impl Error for KnobError {}
