//! # predpkt-channel — the simulator–accelerator channel substrate
//!
//! The paper's whole premise is a channel whose **static startup overhead
//! (12.2 µs per access)** dwarfs its **per-word payload cost (49.95 ns/word
//! simulator→accelerator, 75.73 ns/word accelerator→simulator)**, measured on a
//! PCI-based iPROVE accelerator (§1.2). This crate models that channel:
//!
//! * [`ChannelCostModel`] — startup + per-word virtual-time costs, composable from
//!   the paper's three layers (API / device driver / physical medium) via
//!   [`LayeredStartup`]. The preset [`ChannelCostModel::iprove_pci`] carries the
//!   paper's exact constants.
//! * [`Packet`] — a word-addressed payload with a message tag.
//! * [`Transport`] — the pluggable mailbox abstraction between the two
//!   domains. Five backends ship with the crate: the deterministic in-process
//!   [`QueueTransport`], the real-thread [`ThreadedTransport`] (each
//!   [`ThreadedEndpoint`] implements [`Transport`] for its own side), the
//!   socket-backed [`TcpTransport`] (per-side [`TcpEndpoint`]s moving
//!   length-prefixed frames over `std::net::TcpStream`, for co-emulation
//!   split across processes or hosts), the shared-memory [`ShmTransport`]
//!   (per-side [`ShmEndpoint`]s over lock-free SPSC rings — in-process or
//!   through a `/dev/shm` region file, for multi-process co-emulation on one
//!   host), and the fault-injecting [`LossyTransport`] for
//!   protocol-robustness scenarios.
//! * [`CostedChannel`] — a transport combined with the cost model and
//!   [`ChannelStats`], returning the virtual-time cost of every access so the
//!   caller can charge its ledger.
//! * [`ReliableTransport`] — an ack-and-retransmit wrapper (sequence numbers,
//!   per-frame CRC-32, sliding window, virtual-time retransmission timeouts)
//!   that turns any inner transport — including a fault-injecting
//!   [`LossyTransport`] — into a lossless one, with the recovery traffic
//!   billed through the cost model into [`RecoveryStats`].
//!
//! # Example
//!
//! ```
//! use predpkt_channel::{ChannelCostModel, Direction};
//!
//! let pci = ChannelCostModel::iprove_pci();
//! // One conventional-mode cycle: two accesses, a few words each.
//! let fwd = pci.access_cost(Direction::SimToAcc, 2);
//! let rev = pci.access_cost(Direction::AccToSim, 1);
//! assert_eq!((fwd + rev).as_picos(), 12_200_000 * 2 + 2 * 49_950 + 75_730);
//! ```
//!
//! # Quickstart: surviving a lossy channel
//!
//! Wrap a faulty link in [`ReliableTransport`] and it behaves like a clean
//! FIFO; the price appears in [`RecoveryStats`], not in lost packets:
//!
//! ```
//! use predpkt_channel::{
//!     ChannelCostModel, FaultSpec, LossyTransport, Packet, PacketTag, QueueTransport,
//!     ReliableConfig, ReliableTransport, Side, Transport,
//! };
//!
//! // One packet in four is dropped, one in ten truncated.
//! let spec = FaultSpec {
//!     drop_rate: 0.25,
//!     truncate_rate: 0.1,
//!     ..FaultSpec::none(42)
//! };
//! let lossy = LossyTransport::new(QueueTransport::new(), spec);
//! let mut link =
//!     ReliableTransport::new(lossy, ReliableConfig::default(), ChannelCostModel::iprove_pci());
//!
//! for i in 0..32u32 {
//!     link.send(Side::Simulator, Packet::new(PacketTag::CycleOutputs, vec![i, i + 1]));
//! }
//! let mut received = Vec::new();
//! while received.len() < 32 {
//!     if let Some(p) = link.recv(Side::Accelerator) {
//!         received.push(p.payload()[0]); // in order, bit-exact
//!     }
//!     let _ = link.recv(Side::Simulator); // the sender drains acks
//! }
//! assert_eq!(received, (0..32).collect::<Vec<_>>());
//! assert!(link.inner().fault_stats().total() > 0, "faults really fired");
//! assert!(link.recovery_stats().overhead_words > 0, "…and were paid for");
//! ```
//!
//! # Quickstart: remote co-emulation over TCP
//!
//! The [`TcpEndpoint`] carries the same packets over a real socket, so the
//! two domains can run in **different processes or on different hosts** — a
//! software simulator on a workstation talking to a remote accelerator farm.
//! One process listens, the other dials; each wraps its endpoint in its own
//! per-side [`CostedChannel`] (and, for links that must absorb real-world
//! loss, a per-side [`ReliableTransport`] via
//! [`for_side`](ReliableTransport::for_side), exactly like the
//! one-thread-per-domain backend does):
//!
//! ```no_run
//! use predpkt_channel::{
//!     ChannelCostModel, CostedChannel, Packet, PacketTag, Side, TcpEndpoint, Transport,
//!     WaitTransport,
//! };
//! use std::time::Duration;
//!
//! // ── Process A: the accelerator farm ─────────────────────────────────
//! // $ accel-farm 0.0.0.0:7000
//! let endpoint = TcpEndpoint::listen("0.0.0.0:7000", Side::Accelerator)?;
//! let mut acc = CostedChannel::with_transport(endpoint, ChannelCostModel::iprove_pci());
//! loop {
//!     if acc.transport_mut().wait_for_packet(Duration::from_millis(2)) {
//!         let packet = acc.recv(Side::Accelerator).expect("a frame is ready");
//!         // ...tick the hardware model, then answer:
//!         acc.send(Side::Accelerator, Packet::new(PacketTag::CycleOutputs, vec![0xacc]));
//!     }
//! }
//! # #[allow(unreachable_code)]
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ```no_run
//! use predpkt_channel::{
//!     ChannelCostModel, CostedChannel, Packet, PacketTag, Side, TcpEndpoint, Transport,
//!     WaitTransport,
//! };
//! use std::time::Duration;
//!
//! // ── Process B: the software simulator ───────────────────────────────
//! // $ simulator farm-host:7000
//! let endpoint = TcpEndpoint::connect("farm-host:7000", Side::Simulator)?;
//! let mut sim = CostedChannel::with_transport(endpoint, ChannelCostModel::iprove_pci());
//! let cost = sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
//! // `cost` is the virtual-time bill under the paper's channel model — the
//! // accounting is identical to every in-process backend, which is what the
//! // cross-transport conformance suite in `predpkt-core` asserts.
//! while !sim.transport_mut().wait_for_packet(Duration::from_millis(2)) {}
//! let reply = sim.recv(Side::Simulator).expect("a frame is ready");
//! # let _ = (cost, reply);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! In-process sessions and tests use [`TcpTransport::loopback_pair`], which
//! binds an ephemeral localhost port so parallel runs never collide. The
//! frame codec itself ([`tcp::write_frame`] / [`tcp::read_frame`] /
//! [`tcp::FrameDecoder`]) is public too, and rejects malformed input — short
//! reads, oversized length prefixes, unknown tags — with typed
//! [`tcp::FrameError`]s instead of panicking.
//!
//! # Quickstart: multi-process co-emulation on one host
//!
//! When both domains live on the *same* machine, a socket is needless
//! overhead: the [`ShmEndpoint`] carries the same length-prefixed frames
//! through a lock-free shared-memory ring — the lowest-latency channel the
//! crate models. The file-backed form puts the ring in a `/dev/shm` tempfile
//! so two separate processes can share it: one process creates the region,
//! the other attaches by path, and each wraps its endpoint in its own
//! per-side [`CostedChannel`], exactly like the TCP endpoints above:
//!
//! ```no_run
//! # #[cfg(unix)] fn demo() -> Result<(), std::io::Error> {
//! use predpkt_channel::{
//!     ChannelCostModel, CostedChannel, Packet, PacketTag, ShmEndpoint, Side, Transport,
//!     WaitTransport,
//! };
//! use std::time::Duration;
//!
//! // ── Process A: the accelerator, creating the shared region ──────────
//! // $ accel /dev/shm/coemu.ring
//! let endpoint = ShmEndpoint::create("/dev/shm/coemu.ring", Side::Accelerator)?;
//! let mut acc = CostedChannel::with_transport(endpoint, ChannelCostModel::iprove_pci());
//! loop {
//!     if acc.transport_mut().wait_for_packet(Duration::from_millis(2)) {
//!         let packet = acc.recv(Side::Accelerator).expect("a frame is ready");
//!         // ...tick the hardware model, then answer:
//!         acc.send(Side::Accelerator, Packet::new(PacketTag::CycleOutputs, vec![0xacc]));
//!     }
//! }
//! # #[allow(unreachable_code)]
//! # Ok(())
//! # }
//! ```
//!
//! ```no_run
//! # #[cfg(unix)] fn demo() -> Result<(), std::io::Error> {
//! use predpkt_channel::{
//!     ChannelCostModel, CostedChannel, Packet, PacketTag, ShmEndpoint, Side, Transport,
//!     WaitTransport,
//! };
//! use std::time::Duration;
//!
//! // ── Process B: the simulator, attaching to the region ───────────────
//! // $ simulator /dev/shm/coemu.ring
//! let endpoint = ShmEndpoint::attach("/dev/shm/coemu.ring", Side::Simulator)?;
//! let mut sim = CostedChannel::with_transport(endpoint, ChannelCostModel::iprove_pci());
//! let cost = sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
//! // Identical billing to every other backend — the cross-transport
//! // conformance suite asserts bit-identical traces, stats, and ledgers.
//! while !sim.transport_mut().wait_for_packet(Duration::from_millis(2)) {}
//! let reply = sim.recv(Side::Simulator).expect("a frame is ready");
//! # let _ = (cost, reply);
//! # Ok(())
//! # }
//! ```
//!
//! In-process sessions and tests use [`ShmTransport::pair`] (a heap region
//! shared through an [`Arc<ShmRegion>`](ShmRegion)) or
//! [`ShmTransport::file_pair`] (an auto-unlinked `/dev/shm` tempfile); both
//! forms run the identical ring algorithm. Malformed ring contents — a torn
//! frame left by a peer that died mid-write, an oversized or unknown-tag
//! frame — surface as typed [`RingError`]s, never panics, and dropping an
//! endpoint flips its liveness flag so a peer blocked in
//! [`WaitTransport::wait_for_packet`] wakes promptly.
//!
//! # Quickstart: running a session farm
//!
//! A server multiplexing *thousands* of sessions cannot spend a blocked
//! thread per link — that is what [`PollSet`] is for. Every endpoint
//! implements [`PollReady`], a non-blocking probe cheap enough to sweep over
//! thousands of parked sources; one thread calls
//! [`wait_any`](PollSet::wait_any) over the whole set and pays the
//! spin-then-park latency ladder once, regardless of how many links it
//! covers. [`Readiness`] distinguishes *data waiting* ([`Readiness::Ready`])
//! from *peer gone* ([`Readiness::Dead`]) from *healthy but quiet*
//! ([`Readiness::Idle`]) — so a scheduler can run the first, fail the second
//! fast, and park the third at zero thread cost:
//!
//! ```
//! use predpkt_channel::{Packet, PacketTag, PollSet, Readiness, Side, ShmTransport, Transport};
//! use std::time::Duration;
//!
//! // Three idle links parked on one poller; data lands on the last one.
//! let mut links: Vec<_> = (0..3).map(|_| ShmTransport::pair()).collect();
//! links[2].1.send(Side::Accelerator, Packet::new(PacketTag::CycleOutputs, vec![7]));
//!
//! let mut parked: Vec<_> = links.iter_mut().map(|(sim, _)| sim).collect();
//! let hit = PollSet::new().wait_any(&mut parked, Duration::from_millis(100));
//! assert_eq!(hit, Some((2, Readiness::Ready)));
//! ```
//!
//! The `predpkt-farm` crate builds the full server on top of this: a
//! `SessionFarm` runs whole co-emulation sessions as cooperative slices over
//! a fixed worker pool, parking every blocked session on one poll-set
//! (tuned via [`PollSet::syscall_probes`] because TCP probes embed a socket
//! drain), with bounded admission and per-session fault isolation. Sketch:
//!
//! ```text
//! let farm = SessionFarm::new(FarmConfig::new().workers(8).capacity(10_000))?;
//! for blueprint in incoming {
//!     let id = farm.submit(move || {
//!         Ok(EmuSession::from_blueprint(&blueprint).build()?.into_sliced(cycles))
//!     })?; // Err(FarmError::Saturated{..}) when the admission queue is full
//! }
//! let report = farm.join(); // per-session outcomes + sessions/sec, p50/p99
//! ```
//!
//! Scheduling never changes results: a farm-scheduled session commits
//! bit-identical traces, channel statistics, and virtual-time ledgers to a
//! dedicated-thread run — asserted per transport by the farm's stress suite
//! and the `session_farm` bench.
//!
//! # Quickstart: checkpoint, migrate, replay
//!
//! A whole-session checkpoint (`SessionCheckpoint` in `predpkt-core`) rides
//! this crate's frame codec: the blob is a sequence of
//! [`PacketTag::Checkpoint`] frames, each length-prefixed and CRC-sealed
//! exactly like the frames a [`TcpEndpoint`] puts on the wire —
//!
//! ```text
//! frame 0 (header):   [magic "PKCP"] [version] [backend name] [committed
//!                     cycles] [section count] [CRC-32]
//! frame 1..:          [section label: "wrapper.sim", "channel", "ledger", …]
//!                     [word count] [state words] [CRC-32]
//!                     (+ label-less continuation frames for big sections)
//! ```
//!
//! **Versioning rules:** the header's version is bumped whenever the layout
//! changes, and there are no compatibility shims — an older or newer blob is
//! rejected with a typed error (`CheckpointError::BadVersion`) instead of
//! being misread, a truncated or bit-flipped blob fails its CRC with the
//! damaged section named, and a backend-name mismatch is refused before any
//! state is touched. A restore that fails mid-way poisons the target
//! session, which then refuses to step: there is no half-restored state.
//!
//! Because the blob is just framed bytes, **live migration is plain socket
//! I/O** — no bespoke serialization on either end. And because a session
//! whose transport dies can carry its latest cut out, failover is one call:
//! `EmuSession::resume_from` (in `predpkt-core`) salvages the dead session's
//! domain models, rebuilds a *fresh* transport from a `TransportSelect`,
//! restores the cut, and resumes — bit-identical to an uninterrupted run:
//!
//! ```text
//! // A seeded terminal fault (FaultSpec::disconnect_after) kills the link…
//! let err = sliced.run_slice(steps).unwrap_err();  // Deadlock / RetryBudget…
//! let cut = sliced.take_latest_checkpoint();       // auto-captured boundary
//! let dead = sliced.into_session();
//!
//! // …and the session heals onto a clean transport, replaying nothing:
//! let mut healed = dead.resume_from(&cut?, TransportSelect::Tcp(opts))?;
//! healed.run_until_committed(target)?;             // bit-identical commit
//! ```
//!
//! The session farm automates the whole loop: a session admitted through
//! `SessionFarm::submit_healable` under a `ReadmitPolicy` is, after a
//! transport death (failure *or* eviction — both outcomes carry the latest
//! auto-captured cut), rebuilt by its respawn closure on a fresh link after
//! an exponential-backoff delay and resumed from the cut. Retries are
//! budgeted and capped; a death the policy declines lands as its real
//! outcome and is counted in `FarmStats::gave_up`, never dropped silently.
//! The same blob still migrates across hosts the manual way: ship
//! `ckpt.to_bytes()` over any medium, `SessionCheckpoint::from_bytes` +
//! `restore` on the far side.
//!
//! # Quickstart: an N-domain fabric
//!
//! One co-emulation can span more than two domains. A [`Fabric`] hosts the
//! links of an N-domain **full mesh**: one directed link per domain pair,
//! every pair an independent two-sided channel. For `N = 4`:
//!
//! ```text
//!        d0 ──────── d1          edge {a,b}, a < b:
//!        │ ╲        ╱ │            a plays Side::Simulator,
//!        │   ╲    ╱   │            b plays Side::Accelerator
//!        │     ╳      │
//!        │   ╱    ╲   │          links: {0,1} {0,2} {0,3}
//!        │ ╱        ╲ │                 {1,2} {1,3} {2,3}
//!        d2 ──────── d3
//! ```
//!
//! **Routing is structural and single-hop**: a packet for domain `d` goes
//! out on the one link that ends at `d`; no domain ever forwards another
//! pair's traffic, so there is no routing table to keep consistent and no
//! ordering hazard across hops. **Roles are fixed by domain order**
//! ([`FabricEdge::role_of`]): on every edge the lower-numbered domain is the
//! [`Side::Simulator`] end — a deterministic assignment, which is what lets
//! N-domain runs be compared bit-for-bit across backends.
//!
//! ```
//! use predpkt_channel::{Fabric, Packet, PacketTag, Side, Transport};
//!
//! // All six links of a 4-domain mesh over in-process endpoints; shm_mesh
//! // packs the same shape into ONE shared region (heap or /dev/shm file),
//! // and tcp_mesh opens one loopback socket pair per edge.
//! let fabric = Fabric::threaded_mesh(4);
//! assert_eq!(fabric.edges().len(), 6);
//!
//! // Per-link layering via map: wrap every endpoint in whatever stack the
//! // deployment needs — fault injection, the reliable ack/retransmit layer,
//! // or both — with the edge's fixed role picking each wrapper's side:
//! // fabric.map(|edge, _, role, end| {
//! //     ReliableTransport::new(end, cfg, model).for_side(role)
//! // })
//! let (domains, edges, mut links) = fabric.into_parts();
//! assert_eq!((domains, edges[0].a(), edges[0].b()), (4, 0, 1));
//! let (sim, acc) = &mut links[0];
//! sim.send(Side::Simulator, Packet::new(PacketTag::CycleOutputs, vec![9]));
//! assert_eq!(acc.recv(Side::Accelerator).unwrap().payload(), &[9]);
//! ```
//!
//! `predpkt-core` builds the full runner on top: a `FabricSession` hosts one
//! protocol engine pair per edge, runs boundary-halt across all domains (a
//! halted domain keeps pumping acks on every link until *every* peer halts),
//! and reports per-domain ledgers — bit-identical across queue, threaded,
//! TCP, shm, and reliable link backends, with `N = 2` degenerating exactly
//! to the two-domain session.
//!
//! # Hot-path performance notes
//!
//! The paper's premise is that channel traffic dominates co-emulation cost;
//! the host-side packet path is engineered so the *host* does not add an
//! allocation, copy, or syscall per packet on top:
//!
//! * **Zero-copy encode/decode.** [`Packet::encode_into`] serializes into a
//!   caller-owned scratch buffer and [`PacketView`] decodes by borrowing —
//!   use them (not [`Packet::to_wire`] / [`Packet::from_wire`]) anywhere
//!   per-packet throughput matters. [`BufferPool`] is the companion free
//!   list: layers that retire packets release the payload buffers, layers
//!   that produce them acquire the buffers back, and a warmed pool serves
//!   the steady state without touching the allocator (the
//!   [`ReliableTransport`] does exactly this; its
//!   [`pool_stats`](ReliableTransport::pool_stats) hit rate sits at ~1.0
//!   after warm-up, asserted by the `frame_codec` bench).
//! * **Batching.** [`Transport::send_batch`] / [`Transport::send_batch_ref`]
//!   coalesce a burst of frames into **one** physical operation: one
//!   `write_all` on a [`TcpEndpoint`] (≈20× faster than per-frame writes in
//!   the `frame_codec` bench), one chunked head publication run on a
//!   [`ShmEndpoint`]. [`CostedChannel::set_batching`] parks sends in an
//!   outbox flushed on the next receive, which is how the threaded session
//!   runner batches per scheduling slice; billing is identical either way,
//!   so traces/statistics never depend on the batching mode.
//!   [`BatchStats`] (via [`Transport::batch_stats`]) reports the achieved
//!   frames-per-write.
//! * **Ack piggybacking.** The reliable layer rides its cumulative ack in
//!   every outgoing data frame (`RelData` header word 2) and emits a
//!   standalone [`PacketTag::RelAck`] only on idle polls — when traffic is
//!   bidirectional, nearly all acknowledgements travel for free
//!   ([`RecoveryStats::ack_piggyback_ratio`] ≈ 1 in the loopback benches),
//!   which is a ~33% cut in recovery overhead words and removes one
//!   startup-dominated channel access per exchange.
//! * **When `TCP_NODELAY` matters.** [`TcpEndpoint`] always enables it: the
//!   protocol exchanges small, latency-critical request/response frames —
//!   precisely the workload Nagle's algorithm penalizes with up to an RTT of
//!   buffering. Batching makes coalescing explicit (one write per slice), so
//!   nothing is left for Nagle to usefully merge.
//! * **Wait tuning.** A blocked [`ShmEndpoint`] spins a bounded window
//!   (covering the peer's few-microsecond turnaround) before parking in
//!   short slices; the `/dev/shm` file backing parks early instead, since
//!   its polls cost syscalls. This halves the shared-memory loopback
//!   session's wall clock versus sleep-first waiting.

// The shm module's lock-free SPSC ring stores its data words in
// `UnsafeCell`s (published by the head/tail atomics); it carries the
// crate's only `unsafe`, each block documented. Everything else stays
// unsafe-free under this deny.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cost;
pub mod fabric;
mod knob;
mod lossy;
mod message;
mod poll;
mod pool;
mod reliable;
pub mod shm;
mod stats;
pub mod tcp;
mod threaded;
mod transport;

pub use cost::{ChannelCostModel, Direction, LayeredStartup, Side};
pub use fabric::{full_mesh, Fabric, FabricEdge};
pub use knob::KnobError;
pub use lossy::{FaultSpec, FaultStats, LossyTransport};
pub use message::{Packet, PacketTag, PacketView};
pub use poll::{PollReady, PollSet, Readiness};
pub use pool::{BufferPool, PoolStats, DEFAULT_POOL_RETAIN};
pub use reliable::{
    crc32, crc32_feed, crc32_parts, RecoveryStats, ReliableConfig, ReliableTransport,
    RetryExhausted, TransportDead, DATA_HEADER_WORDS,
};
pub use shm::{RingError, ShmEndpoint, ShmRegion, ShmTransport, DEFAULT_RING_WORDS};
pub use stats::ChannelStats;
pub use tcp::{
    ConnectRetryError, FrameError, RetryPolicy, TcpEndpoint, TcpTransport, MAX_FRAME_WORDS,
};
pub use threaded::{ThreadedEndpoint, ThreadedTransport};
pub use transport::{BatchStats, CostedChannel, QueueTransport, Transport, WaitTransport};
