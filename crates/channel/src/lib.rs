//! # predpkt-channel — the simulator–accelerator channel substrate
//!
//! The paper's whole premise is a channel whose **static startup overhead
//! (12.2 µs per access)** dwarfs its **per-word payload cost (49.95 ns/word
//! simulator→accelerator, 75.73 ns/word accelerator→simulator)**, measured on a
//! PCI-based iPROVE accelerator (§1.2). This crate models that channel:
//!
//! * [`ChannelCostModel`] — startup + per-word virtual-time costs, composable from
//!   the paper's three layers (API / device driver / physical medium) via
//!   [`LayeredStartup`]. The preset [`ChannelCostModel::iprove_pci`] carries the
//!   paper's exact constants.
//! * [`Packet`] — a word-addressed payload with a message tag.
//! * [`Transport`] — the pluggable mailbox abstraction between the two
//!   domains. Three backends ship with the crate: the deterministic in-process
//!   [`QueueTransport`], the real-thread [`ThreadedTransport`] (each
//!   [`ThreadedEndpoint`] implements [`Transport`] for its own side), and the
//!   fault-injecting [`LossyTransport`] for protocol-robustness scenarios.
//! * [`CostedChannel`] — a transport combined with the cost model and
//!   [`ChannelStats`], returning the virtual-time cost of every access so the
//!   caller can charge its ledger.
//!
//! # Example
//!
//! ```
//! use predpkt_channel::{ChannelCostModel, Direction};
//!
//! let pci = ChannelCostModel::iprove_pci();
//! // One conventional-mode cycle: two accesses, a few words each.
//! let fwd = pci.access_cost(Direction::SimToAcc, 2);
//! let rev = pci.access_cost(Direction::AccToSim, 1);
//! assert_eq!((fwd + rev).as_picos(), 12_200_000 * 2 + 2 * 49_950 + 75_730);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod lossy;
mod message;
mod stats;
mod threaded;
mod transport;

pub use cost::{ChannelCostModel, Direction, LayeredStartup, Side};
pub use lossy::{FaultSpec, FaultStats, LossyTransport};
pub use message::{Packet, PacketTag};
pub use stats::ChannelStats;
pub use threaded::{ThreadedEndpoint, ThreadedTransport};
pub use transport::{CostedChannel, QueueTransport, Transport};
