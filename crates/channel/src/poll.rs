//! Readiness poll-set: one poller parking on N transports.
//!
//! [`WaitTransport`](crate::WaitTransport) answers "block *this thread* until
//! *this transport* has a packet" — exactly right for a dedicated domain
//! thread, and exactly wrong for a session server multiplexing thousands of
//! idle sessions over a fixed worker pool, where a blocked thread is a wasted
//! worker. This module generalizes the spin-then-park machinery the
//! shared-memory ring's waiter pioneered into a *non-blocking* readiness
//! probe plus a poll-set that parks one thread on any number of probes:
//!
//! * [`PollReady`] is the probe: a cheap, non-blocking "would a receive make
//!   progress right now?" — read-readiness for the TCP endpoint (a
//!   non-blocking socket drain), the head/liveness atomics for the
//!   shared-memory ring, the in-flight counters for the mpsc endpoint, and
//!   outstanding-recovery state for the reliable layer.
//! * [`PollSet`] is the parking engine: probe every source, spin briefly
//!   (the peer's turnaround is microseconds; the first sleep costs two
//!   orders of magnitude more), then park in short slices re-probing between
//!   naps — the same ladder as the ring waiter, lifted over N sources.
//!
//! Readiness is a *hint*, not a guarantee: a `Ready` source promises that
//! polling it is worthwhile now, not that a specific packet is deliverable
//! (a reliable source, for instance, reports `Ready` while it still owes
//! retransmissions, so a scheduler keeps pumping its timeout clock).
//! Spurious `Ready` must be tolerated by callers; `Idle` however is
//! authoritative at the instant of the probe.

use std::time::{Duration, Instant};

/// Bounded spin iterations before a waiter starts parking, for probes that
/// cost a couple of atomic loads. Sized to cover a peer's model-stepping
/// turnaround (a few microseconds), because the first sleep costs two orders
/// of magnitude more than the spin itself.
pub(crate) const SPIN_POLLS: u32 = 1024;

/// Spin budget for probes that cost syscalls (file-backed ring reads,
/// socket drains): long spins would turn every blocked wait into a syscall
/// storm, so the waiter parks early instead.
pub(crate) const SPIN_POLLS_SYSCALL: u32 = 16;

/// Park slice while blocked: short enough that fresh data (or a dying peer)
/// wakes the waiter with little added latency, long enough not to busy-wake.
/// Kept near the OS sleep granularity.
pub(crate) const PARK_SLICE: Duration = Duration::from_micros(50);

/// Park slice for syscall-cost probes: coarser, trading wake latency for
/// syscall pressure.
pub(crate) const PARK_SLICE_SYSCALL: Duration = Duration::from_micros(250);

/// What a non-blocking readiness probe learned about one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Polling this source now would make progress: a packet is decoded (or
    /// decodable), or the source owes work that only polling advances (a
    /// reliable layer with unacknowledged frames outstanding).
    Ready,
    /// Nothing to do right now; the source is healthy but quiet.
    Idle,
    /// The peer is gone (socket error/EOF, cleared ring liveness flag,
    /// disconnected mpsc sender) and everything receivable has been drained:
    /// no amount of waiting will produce more data.
    Dead,
}

impl Readiness {
    /// Whether a scheduler should run the owner now: `Ready` to consume
    /// data, `Dead` to let it discover the loss and fail fast. Only `Idle`
    /// parks.
    pub fn is_actionable(self) -> bool {
        !matches!(self, Readiness::Idle)
    }

    /// Folds two probes into the readiness of the pair: data anywhere wins,
    /// then death, then idleness.
    pub fn combine(self, other: Readiness) -> Readiness {
        use Readiness::*;
        match (self, other) {
            (Ready, _) | (_, Ready) => Ready,
            (Dead, _) | (_, Dead) => Dead,
            (Idle, Idle) => Idle,
        }
    }
}

/// A non-blocking readiness probe over one packet source.
///
/// Implementations must be cheap enough to call in a sweep over thousands of
/// parked sessions — a few atomic loads for the in-memory transports, one
/// non-blocking socket drain for TCP — and must never block or spin
/// internally.
pub trait PollReady {
    /// Probes the source without blocking. May perform hidden progress (e.g.
    /// draining a socket into the decode buffer) as long as it returns
    /// promptly; such progress is observed by the owner's next `recv`.
    fn readiness(&mut self) -> Readiness;
}

// A probe through any mutable reference, so heterogeneous sets can be built
// from `&mut dyn PollReady` without an extra adapter.
impl<P: PollReady + ?Sized> PollReady for &mut P {
    fn readiness(&mut self) -> Readiness {
        (**self).readiness()
    }
}

/// Spin-then-park engine over N [`PollReady`] sources: one thread waits on
/// all of them, paying the shared-memory waiter's latency ladder exactly
/// once regardless of how many sources it covers.
#[derive(Debug, Clone, Copy)]
pub struct PollSet {
    spin_sweeps: u32,
    park_slice: Duration,
}

impl Default for PollSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PollSet {
    /// A poll-set with the cheap-probe tuning (atomic-load sources: rings,
    /// mpsc counters). TCP sources embed a syscall per probe; sets holding
    /// many of them should prefer [`PollSet::syscall_probes`].
    pub fn new() -> Self {
        PollSet {
            spin_sweeps: SPIN_POLLS,
            park_slice: PARK_SLICE,
        }
    }

    /// A poll-set tuned for syscall-cost probes (socket drains, file-backed
    /// rings): a short spin budget and a coarser park slice, so a large idle
    /// set does not turn into a syscall storm.
    pub fn syscall_probes() -> Self {
        PollSet {
            spin_sweeps: SPIN_POLLS_SYSCALL,
            park_slice: PARK_SLICE_SYSCALL,
        }
    }

    /// Explicit tuning: `spin_sweeps` full sweeps over the set before the
    /// first park, then parks of `park_slice` between sweeps.
    pub fn with_tuning(spin_sweeps: u32, park_slice: Duration) -> Self {
        PollSet {
            spin_sweeps,
            park_slice,
        }
    }

    /// One non-blocking sweep: probes every source once and returns the
    /// first actionable one (`Ready` or `Dead`) with its index, or `None`
    /// when the whole set is idle.
    pub fn sweep<P: PollReady>(&self, sources: &mut [P]) -> Option<(usize, Readiness)> {
        for (i, source) in sources.iter_mut().enumerate() {
            let r = source.readiness();
            if r.is_actionable() {
                return Some((i, r));
            }
        }
        None
    }

    /// Blocks until any source is actionable or `timeout` elapses: spins
    /// `spin_sweeps` sweeps first (covering a live peer's turnaround without
    /// sleeping), then parks in `park_slice` naps, re-sweeping after each.
    /// Returns the actionable source, or `None` on timeout. An empty set
    /// just sleeps out the timeout.
    pub fn wait_any<P: PollReady>(
        &self,
        sources: &mut [P],
        timeout: Duration,
    ) -> Option<(usize, Readiness)> {
        let deadline = Instant::now() + timeout;
        for _ in 0..self.spin_sweeps.max(1) {
            if let Some(hit) = self.sweep(sources) {
                return Some(hit);
            }
            if sources.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::hint::spin_loop();
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            std::thread::sleep(self.park_slice.min(deadline - now));
            if let Some(hit) = self.sweep(sources) {
                return Some(hit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scripted {
        now: Readiness,
        probes: u32,
    }

    impl PollReady for Scripted {
        fn readiness(&mut self) -> Readiness {
            self.probes += 1;
            self.now
        }
    }

    fn scripted(now: Readiness) -> Scripted {
        Scripted { now, probes: 0 }
    }

    #[test]
    fn combine_prefers_data_then_death() {
        use Readiness::*;
        assert_eq!(Ready.combine(Dead), Ready);
        assert_eq!(Dead.combine(Ready), Ready);
        assert_eq!(Idle.combine(Dead), Dead);
        assert_eq!(Idle.combine(Idle), Idle);
        assert!(Ready.is_actionable());
        assert!(Dead.is_actionable());
        assert!(!Idle.is_actionable());
    }

    #[test]
    fn sweep_returns_first_actionable_source() {
        let mut set = vec![
            scripted(Readiness::Idle),
            scripted(Readiness::Dead),
            scripted(Readiness::Ready),
        ];
        let (idx, r) = PollSet::new().sweep(&mut set).expect("actionable");
        assert_eq!((idx, r), (1, Readiness::Dead));
        // The sweep short-circuits: the third source was never probed.
        assert_eq!(set[2].probes, 0);
    }

    #[test]
    fn wait_any_times_out_on_an_idle_set() {
        let mut set = vec![scripted(Readiness::Idle)];
        let t0 = Instant::now();
        let hit = PollSet::with_tuning(4, Duration::from_micros(50))
            .wait_any(&mut set, Duration::from_millis(5));
        assert!(hit.is_none());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert!(set[0].probes >= 4, "spin sweeps probed the source");
    }

    #[test]
    fn wait_any_returns_immediately_when_ready() {
        let mut set = vec![scripted(Readiness::Idle), scripted(Readiness::Ready)];
        let hit = PollSet::new().wait_any(&mut set, Duration::from_secs(5));
        assert_eq!(hit, Some((1, Readiness::Ready)));
    }

    #[test]
    fn wait_any_on_an_empty_set_sleeps_out_the_timeout() {
        let mut set: Vec<Scripted> = vec![];
        let t0 = Instant::now();
        assert!(PollSet::new()
            .wait_any(&mut set, Duration::from_millis(2))
            .is_none());
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }
}
