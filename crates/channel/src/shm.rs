//! Shared-memory ring transport: the lowest-latency channel the crate models.
//!
//! The paper's channel is a tightly coupled physical link (PCI between host
//! and iPROVE); [`TcpEndpoint`](crate::TcpEndpoint) stretched the abstraction
//! across real sockets, and this module closes the remaining gap in the other
//! direction — **multi-process co-emulation on one host**, where the two
//! domains share a memory region instead of a wire. Each direction is a
//! fixed-capacity single-producer/single-consumer ring of `u32` words; the
//! producer publishes with a release-store of its head counter, the consumer
//! frees space with a release-store of its tail counter, and no lock is ever
//! taken.
//!
//! Two backings share one ring algorithm:
//!
//! * the **in-process pair** ([`ShmTransport::pair`]) — an
//!   [`Arc<ShmRegion>`](ShmRegion) of [`UnsafeCell`] data words with atomic
//!   head/tail counters, for sessions whose domains are threads of one
//!   process (and for deterministic tests of the ring itself);
//! * the **file-backed form** ([`ShmEndpoint::create`] /
//!   [`ShmEndpoint::attach`], Unix only) — the same layout serialized into a
//!   `/dev/shm` tempfile (falling back to the system temp dir), accessed with
//!   positioned reads and writes. `/dev/shm` is a tmpfs, so every access goes
//!   through the kernel page cache — the file *is* memory shared between the
//!   two processes, reachable std-only (no `mmap` binding required).
//!
//! Both backings scale past one channel: a region holds one or more **link
//! slots**, each an independent ring pair with its own liveness flags, so an
//! N-domain fabric ([`ShmTransport::mesh`] / [`ShmTransport::file_mesh`])
//! carries all of its edges in one shared allocation (or one `/dev/shm`
//! file) instead of one per link.
//!
//! ## Wire format
//!
//! Frames are byte-for-byte the TCP codec's
//! ([`tcp::write_frame`]): a `u32` little-endian
//! length prefix counting the wire words, then the tag word and payload
//! words. The receive side drains ring words into the shared
//! [`FrameDecoder`], so malformed input — zero or
//! oversized prefixes, unknown tags, a peer that died mid-frame — surfaces as
//! a typed [`RingError`], never a panic.
//!
//! ## Liveness and teardown
//!
//! The region carries one liveness flag per side. Dropping an endpoint clears
//! its flag, so a peer blocked in
//! [`WaitTransport::wait_for_packet`](crate::WaitTransport) (bounded spin,
//! then parked in short slices that re-check the flag) wakes promptly instead
//! of sleeping out its timeout. A peer that vanishes mid-frame leaves the
//! decoder stranded, which the survivor reports as [`RingError::TornFrame`].

// The heap backing holds its data words in `UnsafeCell`s published across
// threads by the head/tail atomics (the classic lock-free SPSC ring). The
// crate otherwise denies `unsafe`; the two `unsafe` blocks live in
// `HeapBacking` with their invariants spelled out.
#![allow(unsafe_code)]

use crate::cost::Side;
use crate::message::Packet;
use crate::tcp::{self, FrameDecoder, FrameError};
use crate::transport::{Transport, WaitTransport};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default per-direction ring capacity in words (32 KiB of payload per
/// direction). The protocol's largest messages are LOB bursts of a few
/// hundred words, so the default leaves generous headroom before
/// backpressure engages.
pub const DEFAULT_RING_WORDS: u32 = 8 * 1024;

/// Smallest accepted ring capacity in words: the length prefix plus the tag
/// word plus one payload word, with one word of slack so a ring can never be
/// permanently wedged by a minimal frame.
pub const MIN_RING_WORDS: u32 = 4;

/// Largest accepted ring capacity in words (64 MiB of data per direction —
/// sixteen times the largest frame [`tcp::MAX_FRAME_WORDS`] allows).
/// Requests beyond this are clamped rather than honoured: an unchecked
/// capacity would turn a typo'd knob into a multi-GiB allocation (or a
/// tmpfs-filling `/dev/shm` file) instead of a working channel.
pub const MAX_RING_WORDS: u32 = 1 << 24;

/// How long a full ring may stall one send before the endpoint gives the
/// peer up as wedged (the shared-memory analogue of
/// [`tcp::WRITE_TIMEOUT`]): a live consumer
/// drains words in microseconds; only a stopped or stuck peer process ever
/// holds the ring full this long.
pub const SEND_TIMEOUT: Duration = Duration::from_secs(10);

/// Words a producer publishes per head-counter release. Publishing in chunks
/// lets the consumer start reassembling a large frame while its tail is
/// still being written (and keeps frames close to the ring capacity
/// transmissible at all: the producer reclaims the space the consumer frees
/// chunk by chunk).
const DEFAULT_CHUNK_WORDS: u32 = 256;

// The spin-then-park waiting ladder this ring's waiter pioneered now lives
// in [`crate::poll`], where the session-farm poll-set generalizes it over N
// transports; the ring's own blocking wait keeps using the same tuned
// constants (hard spin for atomic-load polls, a token spin plus coarser
// parks for syscall-cost polls).
use crate::poll::{
    PollReady, Readiness, PARK_SLICE, PARK_SLICE_SYSCALL, SPIN_POLLS, SPIN_POLLS_SYSCALL,
};

/// Why a shared-memory ring operation failed.
///
/// Every malformed or unserviceable input maps to a variant here; the ring
/// never panics on data read out of the shared region.
#[derive(Debug)]
pub enum RingError {
    /// The ring stayed full past [`SEND_TIMEOUT`] with the peer still
    /// attached — the consumer has stopped draining.
    Full {
        /// Words the stalled frame still owed the ring.
        remaining: u32,
        /// The ring's data capacity in words.
        capacity: u32,
    },
    /// The peer detached (or its process died) mid-frame; the bytes already
    /// drained can never complete.
    TornFrame {
        /// Bytes the frame still owed when the peer vanished.
        missing: usize,
    },
    /// The peer detached while this side still had words to hand it.
    PeerGone,
    /// The frame (prefix word + wire words) exceeds what the ring can ever
    /// hold.
    Oversized {
        /// The rejected frame size in ring words.
        words: u32,
    },
    /// The drained bytes failed the shared frame codec (zero or oversized
    /// length prefix, unknown tag word).
    Codec(FrameError),
    /// The file backing failed (I/O on the `/dev/shm` region).
    Io(io::Error),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::Full {
                remaining,
                capacity,
            } => write!(
                f,
                "ring full: peer stopped draining ({remaining} of {capacity} words still owed)"
            ),
            RingError::TornFrame { missing } => {
                write!(f, "peer vanished mid-frame ({missing} bytes missing)")
            }
            RingError::PeerGone => f.write_str("peer detached from the shared region"),
            RingError::Oversized { words } => {
                write!(f, "frame of {words} words can never fit the ring")
            }
            RingError::Codec(e) => write!(f, "frame codec rejected ring data: {e}"),
            RingError::Io(e) => write!(f, "shared region I/O failed: {e}"),
        }
    }
}

impl Error for RingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RingError::Codec(e) => Some(e),
            RingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for RingError {
    fn from(e: FrameError) -> Self {
        RingError::Codec(e)
    }
}

impl From<io::Error> for RingError {
    fn from(e: io::Error) -> Self {
        RingError::Io(e)
    }
}

/// Which directional ring an operation addresses within the shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingDir {
    /// Simulator → accelerator.
    SimToAcc,
    /// Accelerator → simulator.
    AccToSim,
}

impl RingDir {
    fn outbound_from(side: Side) -> RingDir {
        match side {
            Side::Simulator => RingDir::SimToAcc,
            Side::Accelerator => RingDir::AccToSim,
        }
    }

    fn index(self) -> usize {
        match self {
            RingDir::SimToAcc => 0,
            RingDir::AccToSim => 1,
        }
    }
}

fn side_index(side: Side) -> usize {
    match side {
        Side::Simulator => 0,
        Side::Accelerator => 1,
    }
}

/// The ring operations both backings implement. Control-word accesses carry
/// acquire/release semantics (atomics on the heap backing; syscall-ordered
/// positioned I/O on the file backing); data words need no ordering of their
/// own because the head/tail publication protocol brackets them.
trait RingBacking: Send + Sync {
    /// Per-direction data capacity in words (a power of two).
    fn capacity(&self) -> u32;
    /// Acquire-load of a ring's producer counter.
    fn head(&self, ring: RingDir) -> Result<u32, RingError>;
    /// Release-store of a ring's producer counter.
    fn set_head(&self, ring: RingDir, v: u32) -> Result<(), RingError>;
    /// Acquire-load of a ring's consumer counter.
    fn tail(&self, ring: RingDir) -> Result<u32, RingError>;
    /// Release-store of a ring's consumer counter.
    fn set_tail(&self, ring: RingDir, v: u32) -> Result<(), RingError>;
    /// Copies `data` into the ring at `slot..slot + data.len()` (no wrap:
    /// the caller splits runs at the ring boundary).
    fn write_data(&self, ring: RingDir, slot: u32, data: &[u32]) -> Result<(), RingError>;
    /// Copies `out.len()` words out of the ring starting at `slot` (no wrap).
    fn read_data(&self, ring: RingDir, slot: u32, out: &mut [u32]) -> Result<(), RingError>;
    /// Whether `side`'s endpoint is currently attached.
    fn alive(&self, side: Side) -> Result<bool, RingError>;
    /// Flips `side`'s attachment flag.
    fn set_alive(&self, side: Side, v: bool) -> Result<(), RingError>;
    /// Whether polling this backing is a couple of atomic loads (spin hard)
    /// rather than syscalls (park early).
    fn poll_is_cheap(&self) -> bool;
}

/// One directional SPSC ring of the heap backing.
struct HeapRing {
    head: AtomicU32,
    tail: AtomicU32,
    data: Box<[UnsafeCell<u32>]>,
}

impl HeapRing {
    fn new(capacity: u32) -> Self {
        HeapRing {
            head: AtomicU32::new(0),
            tail: AtomicU32::new(0),
            data: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
        }
    }
}

/// One link's slot within a region: a bidirectional SPSC ring pair plus the
/// two per-side liveness flags. A two-domain channel uses one slot; an
/// N-domain fabric packs every edge's slot into a single region.
struct LinkSlot {
    alive: [AtomicBool; 2],
    rings: [HeapRing; 2],
}

impl LinkSlot {
    fn new(capacity: u32) -> Self {
        LinkSlot {
            alive: [AtomicBool::new(true), AtomicBool::new(true)],
            rings: [HeapRing::new(capacity), HeapRing::new(capacity)],
        }
    }
}

/// The in-process shared region: one or more link slots — each a pair of
/// heap rings plus per-side liveness flags — shared between the
/// [`ShmEndpoint`]s via [`Arc`]. A plain channel ([`ShmTransport::pair`])
/// occupies a single-slot region; a fabric mesh
/// ([`ShmTransport::mesh`]) carries all of its edges' SPSC ring pairs in
/// *one* region, so an N-domain host pays one shared allocation, not one per
/// link.
///
/// Data words live in [`UnsafeCell`]s; the head/tail atomics carry the only
/// synchronization. The SPSC discipline makes this sound — see the safety
/// comments on the `Sync` impl and the data accessors.
pub struct ShmRegion {
    capacity: u32,
    links: Vec<LinkSlot>,
}

impl fmt::Debug for ShmRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShmRegion")
            .field("capacity", &self.capacity)
            .field("links", &self.links.len())
            .finish_non_exhaustive()
    }
}

// SAFETY: each ring is single-producer/single-consumer — exactly one
// endpoint ever writes data words and stores `head`, exactly one ever reads
// data words and stores `tail` (ShmTransport::pair / ShmTransport::mesh hand
// out one endpoint per side *per link slot*, each backing addresses exactly
// one slot, and endpoints are !Clone). A producer writes slots in
// [head, head+n) and only then release-stores head+n; the consumer
// acquire-loads head before reading those slots, so the writes
// happen-before the reads. Symmetrically, the consumer release-stores tail
// after reading and the producer acquire-loads tail before reusing a slot.
// No data word is therefore ever accessed concurrently from two threads.
unsafe impl Sync for ShmRegion {}
// SAFETY: the region owns its buffers; moving it between threads transfers
// plain data and atomics, both of which are Send.
unsafe impl Send for ShmRegion {}

impl ShmRegion {
    fn with_links(capacity: u32, links: usize) -> Self {
        ShmRegion {
            capacity,
            links: (0..links).map(|_| LinkSlot::new(capacity)).collect(),
        }
    }
}

/// Heap backing: the ring operations over one link slot of an
/// [`Arc<ShmRegion>`]. Each backing instance addresses exactly one link, so
/// the SPSC argument is per-slot and a mesh region stays sound.
struct HeapBacking {
    region: Arc<ShmRegion>,
    link: usize,
}

impl HeapBacking {
    fn slot(&self) -> &LinkSlot {
        &self.region.links[self.link]
    }
}

impl RingBacking for HeapBacking {
    fn capacity(&self) -> u32 {
        self.region.capacity
    }

    fn head(&self, ring: RingDir) -> Result<u32, RingError> {
        Ok(self.slot().rings[ring.index()].head.load(Ordering::Acquire))
    }

    fn set_head(&self, ring: RingDir, v: u32) -> Result<(), RingError> {
        self.slot().rings[ring.index()]
            .head
            .store(v, Ordering::Release);
        Ok(())
    }

    fn tail(&self, ring: RingDir) -> Result<u32, RingError> {
        Ok(self.slot().rings[ring.index()].tail.load(Ordering::Acquire))
    }

    fn set_tail(&self, ring: RingDir, v: u32) -> Result<(), RingError> {
        self.slot().rings[ring.index()]
            .tail
            .store(v, Ordering::Release);
        Ok(())
    }

    fn write_data(&self, ring: RingDir, slot: u32, data: &[u32]) -> Result<(), RingError> {
        let cells = &self.slot().rings[ring.index()].data;
        for (i, &w) in data.iter().enumerate() {
            // SAFETY: `slot..slot+data.len()` lies in the producer-owned
            // span [head, head+free): the consumer has release-stored a tail
            // covering these slots and will not read them again until the
            // producer's subsequent release-store of head publishes them.
            // See the Sync impl for the full protocol.
            unsafe { *cells[slot as usize + i].get() = w };
        }
        Ok(())
    }

    fn read_data(&self, ring: RingDir, slot: u32, out: &mut [u32]) -> Result<(), RingError> {
        let cells = &self.slot().rings[ring.index()].data;
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: `slot..slot+out.len()` lies in the consumer-owned span
            // [tail, head): the producer release-stored a head covering
            // these slots and will not write them again until the consumer's
            // subsequent release-store of tail frees them.
            *o = unsafe { *cells[slot as usize + i].get() };
        }
        Ok(())
    }

    fn alive(&self, side: Side) -> Result<bool, RingError> {
        Ok(self.slot().alive[side_index(side)].load(Ordering::Acquire))
    }

    fn set_alive(&self, side: Side, v: bool) -> Result<(), RingError> {
        self.slot().alive[side_index(side)].store(v, Ordering::Release);
        Ok(())
    }

    fn poll_is_cheap(&self) -> bool {
        true
    }
}

#[cfg(unix)]
mod file_backing {
    //! The `/dev/shm` tempfile backing: the region layout serialized into a
    //! file on a tmpfs, accessed with positioned reads/writes. Every access
    //! is a syscall against the shared page cache, which both orders the
    //! accesses (control-word stores cannot be reordered with the data
    //! writes issued before them) and makes them visible to the peer
    //! process immediately.

    use super::{side_index, RingBacking, RingDir, RingError};
    use crate::cost::Side;
    use std::fs::{File, OpenOptions};
    use std::io;
    use std::os::unix::fs::FileExt;
    use std::path::{Path, PathBuf};

    /// Magic word opening every region file ("PPK1" little-endian).
    pub const SHM_MAGIC: u32 = 0x314b_5050;
    /// Region layout version. Version 2 generalized the single ring pair to
    /// a per-link slot array (`W_LINKS` links, each with its own control
    /// block and ring pair), so one region file can carry a whole fabric
    /// mesh; version-1 attachers reject v2 files cleanly via the version
    /// word.
    pub const SHM_VERSION: u32 = 2;
    /// Most links one region file may declare — bounds the attach-side
    /// multiplication before it can size a rogue mapping (4096 links covers
    /// a 64-domain full mesh).
    pub const MAX_LINKS: u32 = 1 << 12;

    // Header word offsets (in u32 words from the start of the file).
    const W_MAGIC: u64 = 0;
    const W_VERSION: u64 = 1;
    const W_CAPACITY: u64 = 2;
    const W_LINKS: u64 = 3;
    /// First per-link control block (8 words each):
    /// `[alive_sim, alive_acc, r0_head, r0_tail, r1_head, r1_tail, pad, pad]`.
    const W_LINK_CTRL: u64 = 8;
    const LINK_CTRL_WORDS: u64 = 8;

    /// First data word: the control blocks padded up to a 16-word boundary.
    fn data_start(links: u32) -> u64 {
        let end = W_LINK_CTRL + LINK_CTRL_WORDS * u64::from(links);
        end.next_multiple_of(16)
    }

    /// Total file size in words for a region of `links` links.
    fn region_words(capacity: u32, links: u32) -> u64 {
        data_start(links) + 2 * u64::from(links) * u64::from(capacity)
    }

    pub struct FileBacking {
        file: File,
        capacity: u32,
        /// How many link slots the file declares (fixes the data base).
        links: u32,
        /// Which link slot this backing addresses.
        link: u32,
        /// Path to unlink on drop (the creator owns the file's lifetime).
        unlink_on_drop: Option<PathBuf>,
    }

    impl FileBacking {
        fn write_word(&self, word_off: u64, v: u32) -> Result<(), RingError> {
            self.file
                .write_all_at(&v.to_le_bytes(), word_off * 4)
                .map_err(RingError::from)
        }

        fn read_word(&self, word_off: u64) -> Result<u32, RingError> {
            let mut buf = [0u8; 4];
            self.file.read_exact_at(&mut buf, word_off * 4)?;
            Ok(u32::from_le_bytes(buf))
        }

        fn link_ctrl(&self) -> u64 {
            W_LINK_CTRL + LINK_CTRL_WORDS * u64::from(self.link)
        }

        fn ctrl_word(&self, ring: RingDir, tail: bool) -> u64 {
            self.link_ctrl() + 2 + 2 * ring.index() as u64 + u64::from(tail)
        }

        fn data_base(&self, ring: RingDir) -> u64 {
            data_start(self.links)
                + (2 * u64::from(self.link) + ring.index() as u64) * u64::from(self.capacity)
        }

        /// Creates and sizes a fresh region file at `path` holding `links`
        /// link slots, writing the header; returns the backing for link 0.
        /// The creator unlinks the file when dropped.
        pub fn create(path: &Path, capacity: u32, links: u32) -> io::Result<FileBacking> {
            assert!(
                (1..=MAX_LINKS).contains(&links),
                "region link count {links} outside 1..={MAX_LINKS}"
            );
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(path)?;
            file.set_len(region_words(capacity, links) * 4)?;
            let backing = FileBacking {
                file,
                capacity,
                links,
                link: 0,
                unlink_on_drop: Some(path.to_path_buf()),
            };
            let io_err = |e: RingError| match e {
                RingError::Io(e) => e,
                other => io::Error::other(other.to_string()),
            };
            backing.write_word(W_CAPACITY, capacity).map_err(io_err)?;
            backing.write_word(W_LINKS, links).map_err(io_err)?;
            backing.write_word(W_VERSION, SHM_VERSION).map_err(io_err)?;
            // The magic goes last: an attacher that sees it sees a complete
            // header.
            backing.write_word(W_MAGIC, SHM_MAGIC).map_err(io_err)?;
            Ok(backing)
        }

        /// Opens an existing region file, validating its header, addressing
        /// link slot `link`.
        pub fn attach(path: &Path, link: u32) -> io::Result<FileBacking> {
            let file = OpenOptions::new().read(true).write(true).open(path)?;
            let mut backing = FileBacking {
                file,
                capacity: 0,
                links: 0,
                link,
                unlink_on_drop: None,
            };
            let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
            let word = |off| match backing.read_word(off) {
                Ok(w) => Ok(w),
                Err(RingError::Io(e)) => Err(e),
                Err(other) => Err(invalid(other.to_string())),
            };
            let magic = word(W_MAGIC)?;
            if magic != SHM_MAGIC {
                return Err(invalid(format!(
                    "not a predpkt shm region (magic {magic:#010x})"
                )));
            }
            let version = word(W_VERSION)?;
            if version != SHM_VERSION {
                return Err(invalid(format!(
                    "unsupported shm region version {version} (expected {SHM_VERSION})"
                )));
            }
            let capacity = word(W_CAPACITY)?;
            if !capacity.is_power_of_two()
                || !(super::MIN_RING_WORDS..=super::MAX_RING_WORDS).contains(&capacity)
            {
                return Err(invalid(format!("corrupt shm region capacity {capacity}")));
            }
            let links = word(W_LINKS)?;
            if !(1..=MAX_LINKS).contains(&links) {
                return Err(invalid(format!("corrupt shm region link count {links}")));
            }
            if link >= links {
                return Err(invalid(format!(
                    "link {link} out of range for a {links}-link region"
                )));
            }
            backing.capacity = capacity;
            backing.links = links;
            Ok(backing)
        }
    }

    impl RingBacking for FileBacking {
        fn capacity(&self) -> u32 {
            self.capacity
        }

        fn head(&self, ring: RingDir) -> Result<u32, RingError> {
            self.read_word(self.ctrl_word(ring, false))
        }

        fn set_head(&self, ring: RingDir, v: u32) -> Result<(), RingError> {
            self.write_word(self.ctrl_word(ring, false), v)
        }

        fn tail(&self, ring: RingDir) -> Result<u32, RingError> {
            self.read_word(self.ctrl_word(ring, true))
        }

        fn set_tail(&self, ring: RingDir, v: u32) -> Result<(), RingError> {
            self.write_word(self.ctrl_word(ring, true), v)
        }

        fn write_data(&self, ring: RingDir, slot: u32, data: &[u32]) -> Result<(), RingError> {
            let mut bytes = Vec::with_capacity(data.len() * 4);
            for w in data {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            self.file
                .write_all_at(&bytes, (self.data_base(ring) + u64::from(slot)) * 4)
                .map_err(RingError::from)
        }

        fn read_data(&self, ring: RingDir, slot: u32, out: &mut [u32]) -> Result<(), RingError> {
            let mut bytes = vec![0u8; out.len() * 4];
            self.file
                .read_exact_at(&mut bytes, (self.data_base(ring) + u64::from(slot)) * 4)?;
            for (i, o) in out.iter_mut().enumerate() {
                *o = u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap());
            }
            Ok(())
        }

        fn alive(&self, side: Side) -> Result<bool, RingError> {
            Ok(self.read_word(self.link_ctrl() + side_index(side) as u64)? != 0)
        }

        fn set_alive(&self, side: Side, v: bool) -> Result<(), RingError> {
            self.write_word(self.link_ctrl() + side_index(side) as u64, u32::from(v))
        }

        fn poll_is_cheap(&self) -> bool {
            false
        }
    }

    impl Drop for FileBacking {
        fn drop(&mut self) {
            if let Some(path) = &self.unlink_on_drop {
                // The attacher keeps its own descriptor: unlinking only
                // removes the name, never the peer's mapping of the region.
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// A collision-free region path under `/dev/shm` (tmpfs — the file is
    /// memory), falling back to the system temp dir.
    pub fn fresh_region_path() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = Path::new("/dev/shm");
        let dir = if dir.is_dir() {
            dir.to_path_buf()
        } else {
            std::env::temp_dir()
        };
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        dir.join(format!(
            "predpkt-shm-{}-{}-{nanos}.ring",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ))
    }
}

/// Constructor for shared-memory channel endpoints (the shared-region
/// sibling of [`TcpTransport`](crate::TcpTransport)).
#[derive(Debug)]
pub struct ShmTransport;

impl ShmTransport {
    /// Creates the two endpoints of an in-process shared-memory channel over
    /// a fresh [`ShmRegion`] with the [default capacity](DEFAULT_RING_WORDS).
    pub fn pair() -> (ShmEndpoint, ShmEndpoint) {
        Self::pair_with_capacity(DEFAULT_RING_WORDS)
    }

    /// Creates an in-process pair whose per-direction rings hold
    /// `ring_words` data words (rounded up to a power of two and clamped to
    /// `[`[`MIN_RING_WORDS`]`, `[`MAX_RING_WORDS`]`]`).
    pub fn pair_with_capacity(ring_words: u32) -> (ShmEndpoint, ShmEndpoint) {
        let mut pairs = Self::mesh(1, ring_words);
        pairs.pop().expect("one-link mesh")
    }

    /// Creates `links` independent in-process channels over **one** shared
    /// region — the fabric form: an N-domain full mesh packs all of its
    /// N×(N−1)/2 edge ring pairs into a single allocation. Tuple order per
    /// link is `(simulator endpoint, accelerator endpoint)`; each link is
    /// its own SPSC ring pair with its own liveness flags, so links fail and
    /// tear down independently.
    ///
    /// # Panics
    ///
    /// When `links` is zero.
    pub fn mesh(links: usize, ring_words: u32) -> Vec<(ShmEndpoint, ShmEndpoint)> {
        assert!(links > 0, "a region carries at least one link");
        let capacity = ring_capacity(ring_words);
        let region = Arc::new(ShmRegion::with_links(capacity, links));
        (0..links)
            .map(|link| {
                let sim = ShmEndpoint::over_backing(
                    Arc::new(HeapBacking {
                        region: Arc::clone(&region),
                        link,
                    }),
                    Side::Simulator,
                    true,
                );
                let acc = ShmEndpoint::over_backing(
                    Arc::new(HeapBacking {
                        region: Arc::clone(&region),
                        link,
                    }),
                    Side::Accelerator,
                    true,
                );
                (sim, acc)
            })
            .collect()
    }

    /// The file-backed form of [`mesh`](Self::mesh): one `/dev/shm` region
    /// file carrying every link's ring pair. The link-0 simulator endpoint
    /// is the region creator and unlinks the file when dropped; every other
    /// endpoint attaches to the same path (exactly what a peer process
    /// would do with [`ShmEndpoint::attach_link`]).
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, sizing, or attaching the region file.
    ///
    /// # Panics
    ///
    /// When `links` is zero or exceeds the region format's link bound.
    #[cfg(unix)]
    pub fn file_mesh(links: usize, ring_words: u32) -> io::Result<Vec<(ShmEndpoint, ShmEndpoint)>> {
        assert!(links > 0, "a region carries at least one link");
        let path = file_backing::fresh_region_path();
        let mut pairs = Vec::with_capacity(links);
        for link in 0..links {
            let sim = if link == 0 {
                ShmEndpoint::create_mesh(&path, ring_words, links, Side::Simulator)?
            } else {
                ShmEndpoint::attach_link(&path, link, Side::Simulator)?
            };
            let acc = ShmEndpoint::attach_link(&path, link, Side::Accelerator)?;
            pairs.push((sim, acc));
        }
        Ok(pairs)
    }

    /// Creates a *file-backed* pair over a fresh `/dev/shm` tempfile with
    /// the default capacity — the multi-process form, exercised here through
    /// two endpoints of one process (tests, benches). The file is unlinked
    /// when the creating endpoint drops.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, sizing, or attaching the region file.
    #[cfg(unix)]
    pub fn file_pair() -> io::Result<(ShmEndpoint, ShmEndpoint)> {
        Self::file_pair_with_capacity(DEFAULT_RING_WORDS)
    }

    /// The file-backed form of [`pair_with_capacity`](Self::pair_with_capacity).
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, sizing, or attaching the region file.
    #[cfg(unix)]
    pub fn file_pair_with_capacity(ring_words: u32) -> io::Result<(ShmEndpoint, ShmEndpoint)> {
        let path = file_backing::fresh_region_path();
        let sim = ShmEndpoint::create_with_capacity(&path, ring_words, Side::Simulator)?;
        let acc = ShmEndpoint::attach(&path, Side::Accelerator)?;
        Ok((sim, acc))
    }
}

/// Rounds a requested ring size to the implementation's constraints: a
/// power of two (so the word counters index the ring seamlessly across
/// `u32` wraparound) clamped to `[`[`MIN_RING_WORDS`]`, `[`MAX_RING_WORDS`]`]`.
fn ring_capacity(ring_words: u32) -> u32 {
    // The clamp ceiling is itself a power of two, so the round-up cannot
    // escape it.
    ring_words
        .clamp(MIN_RING_WORDS, MAX_RING_WORDS)
        .next_power_of_two()
}

/// One side's endpoint of a shared-memory ring channel; `Send`, so it moves
/// to its domain's thread (or lives in its domain's process, for the
/// file-backed form). Implements [`Transport`] and [`WaitTransport`] for the
/// side it belongs to, exactly like
/// [`TcpEndpoint`](crate::TcpEndpoint) / [`ThreadedEndpoint`](crate::ThreadedEndpoint).
pub struct ShmEndpoint {
    side: Side,
    backing: Arc<dyn RingBacking>,
    /// Reassembles drained ring words into packets (the TCP frame codec).
    decoder: FrameDecoder,
    /// Decoded packets awaiting [`Transport::recv`].
    ready: VecDeque<Packet>,
    /// Local copy of the outbound ring's head (this side is its producer).
    out_head: u32,
    /// Local copy of the inbound ring's tail (this side is its consumer).
    in_tail: u32,
    /// Sticky first failure: once the ring is corrupt, wedged, or the peer
    /// is gone mid-frame, the endpoint delivers nothing further and reports
    /// the cause here (starvation is detected upstream by the session
    /// layer, mirroring the socket endpoint).
    error: Option<RingError>,
    /// The peer has been observed attached at least once — required before
    /// a cleared liveness flag can mean "gone" rather than "not yet
    /// attached" (the file-backed form attaches asymmetrically).
    peer_seen: bool,
    /// The peer's liveness flag has been observed cleared after attachment.
    peer_closed: bool,
    /// See [`SEND_TIMEOUT`]; tests shrink it to exercise backpressure
    /// failure without ten-second waits.
    send_timeout: Duration,
    /// See [`DEFAULT_CHUNK_WORDS`]; tests shrink it to place chunk seams at
    /// every offset inside a frame.
    chunk_words: u32,
    /// Reused frame-encoding scratch: sends serialize into this word buffer
    /// and publish it in one pass, so the
    /// steady-state send path performs no heap allocation and a batch of
    /// frames shares its head-counter publications.
    out_scratch: Vec<u32>,
    /// Frames vs head-counter publications issued (the batching win,
    /// measured).
    io_stats: crate::transport::BatchStats,
}

impl fmt::Debug for ShmEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShmEndpoint")
            .field("side", &self.side)
            .field("capacity", &self.backing.capacity())
            .field("ready", &self.ready.len())
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl ShmEndpoint {
    /// `peer_seen` starts true when the peer is attached by construction —
    /// both ends of an in-process pair, and an attacher (whose creator
    /// necessarily preceded it). Only a region *creator* must first observe
    /// its peer attach before a cleared flag can mean "gone".
    fn over_backing(backing: Arc<dyn RingBacking>, side: Side, peer_seen: bool) -> Self {
        // Attachment must be visible to the peer before any traffic.
        let _ = backing.set_alive(side, true);
        ShmEndpoint {
            side,
            backing,
            decoder: FrameDecoder::new(),
            ready: VecDeque::new(),
            out_head: 0,
            in_tail: 0,
            error: None,
            peer_seen,
            peer_closed: false,
            send_timeout: SEND_TIMEOUT,
            chunk_words: DEFAULT_CHUNK_WORDS,
            out_scratch: Vec::new(),
            io_stats: crate::transport::BatchStats::default(),
        }
    }

    /// Creates a region file at `path` with the default ring capacity and
    /// returns the creating endpoint for `side`. The peer process calls
    /// [`attach`](Self::attach) with the same path. The file is unlinked
    /// when this endpoint drops (the attached peer keeps its descriptor).
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or sizing the file (including
    /// `AlreadyExists` — region files are never reused).
    #[cfg(unix)]
    pub fn create(path: impl AsRef<std::path::Path>, side: Side) -> io::Result<Self> {
        Self::create_with_capacity(path, DEFAULT_RING_WORDS, side)
    }

    /// [`create`](Self::create) with an explicit per-direction ring capacity
    /// in words (rounded up to a power of two and clamped to
    /// `[`[`MIN_RING_WORDS`]`, `[`MAX_RING_WORDS`]`]`).
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or sizing the file.
    #[cfg(unix)]
    pub fn create_with_capacity(
        path: impl AsRef<std::path::Path>,
        ring_words: u32,
        side: Side,
    ) -> io::Result<Self> {
        Self::create_mesh(path, ring_words, 1, side)
    }

    /// Creates a region file carrying `links` link slots and returns the
    /// creating endpoint for `side` on **link 0** — the multi-process fabric
    /// form of [`create`](Self::create). Peer endpoints (including this
    /// process's other links) call [`attach_link`](Self::attach_link) with
    /// the same path.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or sizing the file.
    ///
    /// # Panics
    ///
    /// When `links` is zero or exceeds the region format's link bound.
    #[cfg(unix)]
    pub fn create_mesh(
        path: impl AsRef<std::path::Path>,
        ring_words: u32,
        links: usize,
        side: Side,
    ) -> io::Result<Self> {
        let links = u32::try_from(links).unwrap_or(u32::MAX);
        let backing =
            file_backing::FileBacking::create(path.as_ref(), ring_capacity(ring_words), links)?;
        Ok(Self::over_backing(Arc::new(backing), side, false))
    }

    /// Attaches to an existing region file created by a peer process.
    ///
    /// # Errors
    ///
    /// I/O failures opening the file, or `InvalidData` when the header is
    /// not a supported region (wrong magic, version, or corrupt capacity).
    #[cfg(unix)]
    pub fn attach(path: impl AsRef<std::path::Path>, side: Side) -> io::Result<Self> {
        Self::attach_link(path, 0, side)
    }

    /// Attaches to link slot `link` of an existing multi-link region file —
    /// the fabric form of [`attach`](Self::attach).
    ///
    /// # Errors
    ///
    /// I/O failures opening the file, or `InvalidData` when the header is
    /// not a supported region or `link` is out of range for it.
    #[cfg(unix)]
    pub fn attach_link(
        path: impl AsRef<std::path::Path>,
        link: usize,
        side: Side,
    ) -> io::Result<Self> {
        let link = u32::try_from(link)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "link index overflow"))?;
        let backing = file_backing::FileBacking::attach(path.as_ref(), link)?;
        Ok(Self::over_backing(Arc::new(backing), side, true))
    }

    /// Which side this endpoint belongs to.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Per-direction ring capacity in data words.
    pub fn capacity_words(&self) -> u32 {
        self.backing.capacity()
    }

    /// The first ring failure, if the channel has broken down. A sticky
    /// error means the endpoint will never deliver again; the session layer
    /// sees the resulting starvation as a deadlock.
    pub fn last_error(&self) -> Option<&RingError> {
        self.error.as_ref()
    }

    /// True once the peer has detached (liveness flag observed cleared).
    pub fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    /// Overrides the full-ring send deadline (default [`SEND_TIMEOUT`]).
    pub fn set_send_timeout(&mut self, timeout: Duration) {
        self.send_timeout = timeout;
    }

    /// Overrides the words published per head-counter release — test
    /// instrumentation for placing chunk seams (and torn frames) at every
    /// offset inside a frame.
    #[doc(hidden)]
    pub fn set_chunk_words(&mut self, words: u32) {
        self.chunk_words = words.max(1);
    }

    /// Writes raw words into the outbound ring and publishes them without
    /// any framing — fault-injection hook for tests simulating a peer that
    /// crashes mid-frame (write a prefix that promises more words than
    /// follow, then drop the endpoint).
    #[doc(hidden)]
    pub fn inject_raw_words(&mut self, words: &[u32]) {
        let mut deadline = None;
        if let Err(e) = self.push_words(words, &mut deadline) {
            self.record_error(e);
        }
    }

    fn record_error(&mut self, e: RingError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// True once nothing further will ever be decoded from the ring.
    fn channel_dead(&self) -> bool {
        self.error.is_some() || self.peer_closed
    }

    /// One peer-liveness observation; flips `peer_seen`/`peer_closed`.
    fn observe_peer(&mut self) -> Result<(), RingError> {
        if self.backing.alive(self.side.peer())? {
            self.peer_seen = true;
        } else if self.peer_seen {
            self.peer_closed = true;
        }
        Ok(())
    }

    /// Pushes `words` into the outbound ring, publishing in
    /// [`chunk_words`](Self::set_chunk_words) slices and waiting (bounded by
    /// the send deadline) whenever the ring is full.
    fn push_words(
        &mut self,
        words: &[u32],
        deadline: &mut Option<Instant>,
    ) -> Result<(), RingError> {
        let ring = RingDir::outbound_from(self.side);
        let capacity = self.backing.capacity();
        let mask = capacity - 1;
        let mut written = 0usize;
        while written < words.len() {
            let tail = self.backing.tail(ring)?;
            let free = capacity - self.out_head.wrapping_sub(tail);
            if free == 0 {
                self.observe_peer()?;
                if self.peer_closed {
                    return Err(RingError::PeerGone);
                }
                let deadline = deadline.get_or_insert_with(|| Instant::now() + self.send_timeout);
                if Instant::now() >= *deadline {
                    return Err(RingError::Full {
                        remaining: (words.len() - written) as u32,
                        capacity,
                    });
                }
                thread::sleep(PARK_SLICE);
                continue;
            }
            let slot = self.out_head & mask;
            let contiguous = capacity - slot;
            let n = (words.len() - written)
                .min(free as usize)
                .min(contiguous as usize)
                .min(self.chunk_words as usize);
            self.backing
                .write_data(ring, slot, &words[written..written + n])?;
            self.out_head = self.out_head.wrapping_add(n as u32);
            self.backing.set_head(ring, self.out_head)?;
            self.io_stats.physical_writes += 1;
            written += n;
        }
        Ok(())
    }

    /// Appends `packet` as ring words (length prefix, tag word, payload
    /// words) to `scratch`. Returns `false` — recording the sticky
    /// [`RingError::Oversized`] — when the frame can never fit the ring.
    fn encode_ring_frame(&mut self, packet: &Packet, scratch: &mut Vec<u32>) -> bool {
        let wire_words = packet.wire_words();
        let frame_words = wire_words + 1;
        if frame_words > u64::from(self.backing.capacity())
            || wire_words > u64::from(tcp::MAX_FRAME_WORDS)
        {
            self.record_error(RingError::Oversized {
                words: frame_words.min(u64::from(u32::MAX)) as u32,
            });
            return false;
        }
        scratch.push(wire_words as u32);
        packet.encode_into(scratch);
        true
    }

    /// Publishes the encoded frames in `scratch` — `frames` of them — into
    /// the outbound ring, recording the first failure as the sticky error.
    fn push_scratch(&mut self, scratch: &[u32], frames: u64) {
        if frames == 0 {
            return;
        }
        self.io_stats.frames += frames;
        let mut deadline = None;
        if let Err(e) = self.push_words(scratch, &mut deadline) {
            self.record_error(e);
        }
    }

    /// Drains every published inbound word through the frame decoder into
    /// the ready queue, freeing ring space as it goes.
    fn poll(&mut self) {
        if self.error.is_some() {
            return;
        }
        let ring = RingDir::outbound_from(self.side.peer());
        let capacity = self.backing.capacity();
        let mask = capacity - 1;
        let mut scratch = [0u32; 512];
        loop {
            let head = match self.backing.head(ring) {
                Ok(h) => h,
                Err(e) => return self.record_error(e),
            };
            let avail = head.wrapping_sub(self.in_tail);
            if avail == 0 {
                // Quiescent: now (and only now) a cleared liveness flag
                // means the peer is gone. Re-check the head afterwards — the
                // peer clears the flag strictly after its last publication,
                // so one more pass drains anything that raced us.
                let was_closed = self.peer_closed;
                if let Err(e) = self.observe_peer() {
                    return self.record_error(e);
                }
                if self.peer_closed && !was_closed {
                    continue; // one re-drain after observing the close
                }
                if self.peer_closed && self.decoder.is_mid_frame() {
                    let missing = self.decoder.missing_bytes();
                    return self.record_error(RingError::TornFrame { missing });
                }
                return;
            }
            let slot = self.in_tail & mask;
            let n = (avail as usize)
                .min((capacity - slot) as usize)
                .min(scratch.len());
            if let Err(e) = self.backing.read_data(ring, slot, &mut scratch[..n]) {
                return self.record_error(e);
            }
            self.in_tail = self.in_tail.wrapping_add(n as u32);
            if let Err(e) = self.backing.set_tail(ring, self.in_tail) {
                return self.record_error(e);
            }
            for w in &scratch[..n] {
                self.decoder.push(&w.to_le_bytes());
            }
            loop {
                match self.decoder.next_frame() {
                    Ok(Some(packet)) => self.ready.push_back(packet),
                    Ok(None) => break,
                    Err(e) => return self.record_error(e.into()),
                }
            }
        }
    }
}

/// A socket-like endpoint carries **no serializable session state**: its
/// medium lives outside this process's cut, so a checkpoint saves nothing
/// and restore is a no-op. Frames in flight at the cut are healed by the
/// reliable layer's re-armed retransmission window (duplicates are
/// suppressed, cumulative acks are idempotent) — which is why sessions that
/// need restore-exactness over endpoint backends run them under
/// [`ReliableTransport`](crate::ReliableTransport).
impl predpkt_sim::Snapshot for ShmEndpoint {
    fn save(&self, _w: &mut predpkt_sim::StateWriter<'_>) {}

    fn restore(
        &mut self,
        _r: &mut predpkt_sim::StateReader<'_>,
    ) -> Result<(), predpkt_sim::SnapshotError> {
        Ok(())
    }
}

impl Transport for ShmEndpoint {
    fn send(&mut self, from: Side, packet: Packet) {
        self.send_ref(from, &packet);
    }

    /// A lone send is the one-element batch (single shared body — the
    /// error-guard/scratch/publish sequence lives in `send_batch_ref`
    /// alone).
    fn send_ref(&mut self, from: Side, packet: &Packet) {
        self.send_batch_ref(from, &mut std::iter::once(packet));
    }

    fn send_batch(&mut self, from: Side, packets: &mut Vec<Packet>) {
        self.send_batch_ref(from, &mut packets.iter());
        packets.clear();
    }

    /// Coalesces the whole batch into the scratch buffer and publishes it in
    /// one publication pass: consecutive frames share head-counter
    /// publications (one release-store per [`chunk
    /// words`](Self::set_chunk_words) slice) instead of paying at least one
    /// per frame.
    fn send_batch_ref(&mut self, from: Side, packets: &mut dyn Iterator<Item = &Packet>) {
        debug_assert_eq!(from, self.side, "endpoints send from their own side");
        if self.error.is_some() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.out_scratch);
        scratch.clear();
        let mut frames = 0u64;
        for packet in packets {
            if !self.encode_ring_frame(packet, &mut scratch) {
                // Oversized mid-batch: the offender is dropped with the
                // sticky error recorded (every later send would be dropped
                // too); frames already encoded still go out, matching the
                // sequential path.
                break;
            }
            frames += 1;
        }
        self.push_scratch(&scratch, frames);
        self.out_scratch = scratch;
    }

    fn recv(&mut self, to: Side) -> Option<Packet> {
        debug_assert_eq!(to, self.side, "endpoints receive for their own side");
        if self.ready.is_empty() {
            self.poll();
        }
        self.ready.pop_front()
    }

    /// Packets decoded locally and awaiting `recv`. Like the socket
    /// endpoint there is no shared in-flight counter — the peer may be
    /// another process — so frames still in the ring are not counted.
    fn pending(&self, to: Side) -> usize {
        debug_assert_eq!(to, self.side, "endpoints count for their own side");
        self.ready.len()
    }

    fn batch_stats(&self) -> Option<crate::transport::BatchStats> {
        Some(self.io_stats)
    }
}

impl WaitTransport for ShmEndpoint {
    fn wait_for_packet(&mut self, timeout: Duration) -> bool {
        if !self.ready.is_empty() {
            return true;
        }
        self.poll();
        if !self.ready.is_empty() {
            return true;
        }
        if self.channel_dead() {
            // Nothing will ever arrive, but returning instantly would turn
            // the caller's poll loop into a hot spin (and, under a reliable
            // wrapper, burn the retry budget in wall-clock microseconds).
            // Pace the caller exactly like a live-but-silent link would.
            thread::sleep(timeout);
            return false;
        }
        let deadline = Instant::now() + timeout;
        // Bounded spin: shared-memory handoffs complete in well under a
        // microsecond and the peer's turnaround in a few, so most waits
        // resolve here without a sleep (budget per backing: hard spin on
        // atomic-load polls, a token spin on syscall polls).
        let spins = if self.backing.poll_is_cheap() {
            SPIN_POLLS
        } else {
            SPIN_POLLS_SYSCALL
        };
        for _ in 0..spins {
            std::hint::spin_loop();
            self.poll();
            if !self.ready.is_empty() {
                return true;
            }
            if self.channel_dead() {
                return false;
            }
        }
        // Park in short slices; each wakeup re-checks the data *and* the
        // peer's liveness flag, so a dropped peer (which clears its flag on
        // Drop) wakes this waiter within one slice rather than letting it
        // sleep out a long timeout.
        let park = if self.backing.poll_is_cheap() {
            PARK_SLICE
        } else {
            PARK_SLICE_SYSCALL
        };
        loop {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            thread::sleep(park.min(deadline - now));
            self.poll();
            if !self.ready.is_empty() {
                return true;
            }
            if self.channel_dead() {
                return false;
            }
        }
    }
}

impl PollReady for ShmEndpoint {
    /// Head/tail and liveness atomics only (plus the decode of whatever they
    /// reveal): one drain pass, no spinning, no sleeping — the poll-set's
    /// per-source probe.
    fn readiness(&mut self) -> Readiness {
        if self.ready.is_empty() {
            self.poll();
        }
        if !self.ready.is_empty() {
            Readiness::Ready
        } else if self.channel_dead() {
            Readiness::Dead
        } else {
            Readiness::Idle
        }
    }
}

impl Drop for ShmEndpoint {
    fn drop(&mut self) {
        // Wake a peer blocked in wait_for_packet promptly: its park slices
        // re-check this flag. (The file backing additionally unlinks the
        // region file when the creating endpoint drops.)
        let _ = self.backing.set_alive(self.side, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ChannelCostModel, Direction};
    use crate::message::PacketTag;
    use crate::transport::CostedChannel;

    fn pair() -> (ShmEndpoint, ShmEndpoint) {
        ShmTransport::pair()
    }

    #[test]
    fn loopback_ping_pong() {
        let (mut sim, mut acc) = pair();
        let worker = thread::spawn(move || {
            for _ in 0..50 {
                while !acc.wait_for_packet(Duration::from_secs(5)) {}
                let p = acc.recv(Side::Accelerator).unwrap();
                let bumped: Vec<u32> = p.payload().iter().map(|w| w + 1).collect();
                acc.send(
                    Side::Accelerator,
                    Packet::new(PacketTag::CycleOutputs, bumped),
                );
            }
        });
        for i in 0..50u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i]),
            );
            while !sim.wait_for_packet(Duration::from_secs(5)) {}
            let reply = sim.recv(Side::Simulator).unwrap();
            assert_eq!(reply.payload(), &[i + 1]);
        }
        worker.join().unwrap();
    }

    #[test]
    fn recv_is_nonblocking_when_empty() {
        let (mut sim, _acc) = pair();
        assert!(sim.recv(Side::Simulator).is_none());
        assert_eq!(sim.pending(Side::Simulator), 0);
    }

    #[test]
    fn wait_times_out_then_delivers() {
        let (mut sim, mut acc) = pair();
        assert!(!sim.wait_for_packet(Duration::from_millis(5)));
        acc.send(Side::Accelerator, Packet::new(PacketTag::Handshake, vec![]));
        assert!(sim.wait_for_packet(Duration::from_secs(5)));
        assert_eq!(
            sim.recv(Side::Simulator).unwrap().tag(),
            PacketTag::Handshake
        );
    }

    #[test]
    fn fifo_order_preserved_across_the_ring() {
        let (mut sim, mut acc) = pair();
        for i in 0..100u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::Burst, vec![i; (i % 7) as usize]),
            );
        }
        for i in 0..100u32 {
            while !acc.wait_for_packet(Duration::from_secs(5)) {}
            let p = acc.recv(Side::Accelerator).unwrap();
            assert_eq!(p.payload(), vec![i; (i % 7) as usize].as_slice());
        }
    }

    #[test]
    fn costed_endpoint_bills_like_any_transport() {
        let (sim_end, mut acc_end) = pair();
        let mut sim = CostedChannel::with_transport(sim_end, ChannelCostModel::iprove_pci());
        let cost = sim.send(Side::Simulator, Packet::new(PacketTag::Burst, vec![0; 9]));
        assert_eq!(
            cost,
            ChannelCostModel::iprove_pci().access_cost(Direction::SimToAcc, 10)
        );
        while !acc_end.wait_for_packet(Duration::from_secs(5)) {}
        assert_eq!(acc_end.recv(Side::Accelerator).unwrap().payload().len(), 9);
    }

    #[test]
    fn capacity_rounds_to_power_of_two_within_bounds() {
        assert_eq!(ring_capacity(0), MIN_RING_WORDS);
        assert_eq!(ring_capacity(5), 8);
        assert_eq!(ring_capacity(8), 8);
        assert_eq!(ring_capacity(1000), 1024);
        // A typo'd giant request is clamped, not allocated.
        assert_eq!(ring_capacity(u32::MAX), MAX_RING_WORDS);
        assert_eq!(ring_capacity(MAX_RING_WORDS + 1), MAX_RING_WORDS);
        let (sim, _acc) = ShmTransport::pair_with_capacity(100);
        assert_eq!(sim.capacity_words(), 128);
    }

    #[test]
    fn mesh_links_are_independent_channels_in_one_region() {
        let mut pairs = ShmTransport::mesh(3, 64);
        // Traffic on one link never appears on another.
        for (i, (sim, _acc)) in pairs.iter_mut().enumerate() {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i as u32]),
            );
        }
        for (i, (_sim, acc)) in pairs.iter_mut().enumerate() {
            while !acc.wait_for_packet(Duration::from_secs(5)) {}
            assert_eq!(
                acc.recv(Side::Accelerator).unwrap().payload(),
                &[i as u32],
                "link {i} received its own traffic"
            );
            assert_eq!(acc.pending(Side::Accelerator), 0, "no cross-link leakage");
        }
        // Dropping one link's endpoint closes only that link.
        let (sim0, mut acc0) = pairs.remove(0);
        drop(sim0);
        assert!(!acc0.wait_for_packet(Duration::from_millis(50)));
        assert!(acc0.peer_closed(), "link 0 sees its peer gone");
        let (ref mut sim1, ref mut acc1) = pairs[0];
        sim1.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        assert!(acc1.wait_for_packet(Duration::from_secs(5)));
        assert!(!acc1.peer_closed(), "link 1 unaffected by link 0 teardown");
    }

    #[cfg(unix)]
    #[test]
    fn file_mesh_links_are_independent_channels_in_one_file() {
        let mut pairs = ShmTransport::file_mesh(3, 64).expect("file mesh builds");
        for (i, (sim, _acc)) in pairs.iter_mut().enumerate() {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::Burst, vec![i as u32; 5]),
            );
        }
        for (i, (_sim, acc)) in pairs.iter_mut().enumerate() {
            while !acc.wait_for_packet(Duration::from_secs(5)) {}
            assert_eq!(
                acc.recv(Side::Accelerator).unwrap().payload(),
                vec![i as u32; 5].as_slice()
            );
            assert_eq!(acc.pending(Side::Accelerator), 0, "no cross-link leakage");
        }
    }

    #[cfg(unix)]
    #[test]
    fn attach_link_rejects_out_of_range_links() {
        let path = file_backing::fresh_region_path();
        let _creator = ShmEndpoint::create_mesh(&path, 64, 2, Side::Simulator).unwrap();
        assert!(ShmEndpoint::attach_link(&path, 1, Side::Accelerator).is_ok());
        let err = ShmEndpoint::attach_link(&path, 2, Side::Accelerator).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_frame_is_a_typed_error_not_a_hang() {
        let (mut sim, _acc) = ShmTransport::pair_with_capacity(16);
        sim.send(Side::Simulator, Packet::new(PacketTag::Burst, vec![0; 64]));
        assert!(
            matches!(sim.last_error(), Some(RingError::Oversized { words }) if *words == 66),
            "got {:?}",
            sim.last_error()
        );
        // Subsequent sends are dropped on the floor, never panics.
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
    }
}
