//! Transport-level behaviour of the ack-and-retransmit layer: in-order
//! lossless delivery over seeded drop/truncate/duplicate faults, window
//! backpressure, honest overhead billing, and typed give-up on an exhausted
//! retry budget.

use predpkt_channel::{
    ChannelCostModel, FaultSpec, LossyTransport, Packet, PacketTag, QueueTransport, RecoveryStats,
    ReliableConfig, ReliableTransport, Side, Transport, TransportDead, DATA_HEADER_WORDS,
};

type ReliableLossy = ReliableTransport<LossyTransport<QueueTransport>>;

fn reliable_over(spec: FaultSpec, config: ReliableConfig) -> ReliableLossy {
    ReliableTransport::new(
        LossyTransport::new(QueueTransport::new(), spec),
        config,
        ChannelCostModel::iprove_pci(),
    )
}

fn payload(i: u32) -> Vec<u32> {
    vec![i, i ^ 0xdead_beef, i.wrapping_mul(3)]
}

/// Sends `count` packets sim→acc, then alternates receive polls on both
/// sides (the co-emulator's scheduling shape: the receiver waits for data,
/// the sender waits for protocol responses and thereby drains acks) until
/// everything is delivered or `max_polls` is exceeded.
fn pump_through<T: Transport>(
    t: &mut ReliableTransport<T>,
    count: u32,
    max_polls: usize,
) -> Vec<Packet> {
    for i in 0..count {
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, payload(i)),
        );
    }
    let mut got = Vec::new();
    for _ in 0..max_polls {
        if let Some(p) = t.recv(Side::Accelerator) {
            got.push(p);
        }
        let _ = t.recv(Side::Simulator);
        if got.len() as u32 == count {
            break;
        }
    }
    got
}

fn assert_in_order(got: &[Packet], count: u32) {
    assert_eq!(got.len() as u32, count, "every packet must arrive");
    for (i, p) in got.iter().enumerate() {
        assert_eq!(p.tag(), PacketTag::CycleOutputs);
        assert_eq!(p.payload(), payload(i as u32), "packet {i} corrupted");
    }
}

#[test]
fn fault_free_link_is_transparent_and_billed() {
    let mut t = reliable_over(FaultSpec::none(1), ReliableConfig::default());
    let got = pump_through(&mut t, 50, 10_000);
    assert_in_order(&got, 50);
    let stats = t.recovery_stats();
    assert_eq!(stats.retransmits, 0);
    assert_eq!(stats.crc_rejects, 0);
    assert_eq!(stats.duplicates_suppressed, 0);
    // Acks are cumulative and coalesce across a window's worth of frames:
    // every frame is acknowledged, but far fewer than one ack frame per data
    // frame goes on the wire.
    assert!(stats.acks_sent > 0, "every frame is still acknowledged");
    assert!(
        stats.acks_sent <= 50,
        "cumulative acks never outnumber the frames"
    );
    let standalone_acks = stats.acks_sent - stats.acks_piggybacked;
    // Headers (4 words × 50 frames) + standalone ack frames (3 wire words
    // each) are the whole overhead.
    assert_eq!(
        stats.overhead_words,
        50 * DATA_HEADER_WORDS + standalone_acks * 3
    );
    assert!(stats.overhead_time > predpkt_sim::VirtualTime::ZERO);
}

#[test]
fn steady_state_frames_run_off_the_buffer_pool() {
    let mut t = reliable_over(FaultSpec::none(1), ReliableConfig::default());
    // Warm up one window's worth of traffic, then measure: once acked frames
    // and consumed deliveries feed the free list, further framing must not
    // allocate.
    let got = pump_through(&mut t, 20, 10_000);
    assert_in_order(&got, 20);
    let warm = t.pool_stats();
    let got = pump_through(&mut t, 200, 100_000);
    assert_eq!(got.len(), 200);
    let stats = t.pool_stats();
    assert_eq!(
        stats.misses, warm.misses,
        "steady state must not allocate new frame buffers"
    );
    assert!(
        stats.hit_rate().unwrap() > 0.9,
        "the pool serves the hot path: {:?}",
        stats
    );
}

#[test]
fn acks_piggyback_on_reverse_data_under_seeded_loss() {
    // Bidirectional traffic over a dropping link: acknowledgements must ride
    // the reverse data frames (piggyback), and the link must still deliver
    // everything in order both ways.
    let spec = FaultSpec::drops(0xfeed, 0.2);
    let mut t = reliable_over(spec, ReliableConfig::default());
    let count = 30u32;
    for i in 0..count {
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, payload(i)),
        );
        t.send(
            Side::Accelerator,
            Packet::new(PacketTag::Burst, payload(i ^ 1)),
        );
    }
    let (mut to_acc, mut to_sim) = (Vec::new(), Vec::new());
    for _ in 0..400_000 {
        if let Some(p) = t.recv(Side::Accelerator) {
            to_acc.push(p);
        }
        if let Some(p) = t.recv(Side::Simulator) {
            to_sim.push(p);
        }
        if to_acc.len() as u32 == count && to_sim.len() as u32 == count {
            break;
        }
    }
    assert_in_order(&to_acc, count);
    assert_eq!(to_sim.len() as u32, count);
    for (i, p) in to_sim.iter().enumerate() {
        assert_eq!(p.payload(), payload(i as u32 ^ 1), "reverse packet {i}");
    }
    let stats = t.recovery_stats();
    assert!(t.inner().fault_stats().dropped > 0, "faults really fired");
    assert!(stats.retransmits > 0, "drops must cost retransmissions");
    assert!(
        stats.acks_piggybacked > 0,
        "bidirectional flow must piggyback acks: {stats:?}"
    );
    assert!(stats.ack_piggyback_ratio().unwrap() > 0.0);
}

#[test]
fn drops_are_healed_by_retransmission() {
    let mut t = reliable_over(FaultSpec::drops(0xd00d, 0.4), ReliableConfig::default());
    let got = pump_through(&mut t, 40, 200_000);
    assert_in_order(&got, 40);
    let stats = t.recovery_stats();
    assert!(t.inner().fault_stats().dropped > 0, "faults really fired");
    assert!(stats.retransmits > 0, "drops must cost retransmissions");
    assert!(t.failure().is_none());
}

#[test]
fn truncations_are_rejected_by_crc_and_healed() {
    let mut t = reliable_over(
        FaultSpec::truncations(0xbad, 0.5),
        ReliableConfig::default(),
    );
    let got = pump_through(&mut t, 40, 200_000);
    assert_in_order(&got, 40);
    let stats = t.recovery_stats();
    assert!(t.inner().fault_stats().truncated > 0);
    assert!(stats.crc_rejects > 0, "truncation must be caught by CRC");
    assert!(stats.retransmits > 0, "rejected frames must be resent");
}

#[test]
fn duplicates_are_suppressed() {
    let mut t = reliable_over(FaultSpec::duplicates(3, 1.0), ReliableConfig::default());
    let got = pump_through(&mut t, 30, 50_000);
    assert_in_order(&got, 30);
    let stats = t.recovery_stats();
    assert!(
        stats.duplicates_suppressed > 0,
        "every data frame arrived twice; the copies must be discarded"
    );
}

#[test]
fn mixed_fault_storm_still_delivers_bit_exact() {
    for seed in [11, 22, 33, 44] {
        let spec = FaultSpec {
            drop_rate: 0.2,
            truncate_rate: 0.15,
            duplicate_rate: 0.2,
            ..FaultSpec::none(seed)
        };
        let mut t = reliable_over(spec, ReliableConfig::default());
        let got = pump_through(&mut t, 32, 400_000);
        assert_in_order(&got, 32);
        assert!(
            t.inner().fault_stats().total() > 0,
            "seed {seed}: no faults fired"
        );
        assert!(t.recovery_stats().recovery_events() > 0, "seed {seed}");
    }
}

#[test]
fn same_seed_same_recovery_story() {
    let run = || {
        let mut t = reliable_over(FaultSpec::drops(77, 0.3), ReliableConfig::default());
        let got = pump_through(&mut t, 25, 200_000);
        assert_in_order(&got, 25);
        t.recovery_stats()
    };
    assert_eq!(run(), run(), "recovery must be deterministic per seed");
}

#[test]
fn window_backpressure_holds_frames_back() {
    let mut t = ReliableTransport::new(
        QueueTransport::new(),
        ReliableConfig::default().window(2),
        ChannelCostModel::iprove_pci(),
    );
    for i in 0..6 {
        t.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, payload(i)),
        );
    }
    // Only the window's worth is on the wire; the rest is backlogged (but all
    // six count as pending toward the accelerator).
    assert_eq!(t.inner().pending(Side::Accelerator), 2);
    assert_eq!(t.pending(Side::Accelerator), 6);
    let mut delivered = Vec::new();
    for _ in 0..10_000 {
        if let Some(p) = t.recv(Side::Accelerator) {
            delivered.push(p);
        }
        let _ = t.recv(Side::Simulator);
        if delivered.len() == 6 {
            break;
        }
    }
    assert_in_order(&delivered, 6);
}

#[test]
fn exhausted_budget_reports_failure_instead_of_hanging() {
    let config = ReliableConfig::default().retry_budget(3);
    let mut t = reliable_over(FaultSpec::drops(9, 1.0), config);
    t.send(
        Side::Simulator,
        Packet::new(PacketTag::Handshake, vec![1, 2]),
    );
    // Poll until the layer gives up; bounded, so a hang fails the test.
    let mut polls = 0;
    while t.failure().is_none() {
        assert!(polls < 100_000, "layer never gave up");
        assert!(t.recv(Side::Accelerator).is_none());
        polls += 1;
    }
    let failure = t.failure().unwrap();
    assert_eq!(failure.seq, 0);
    assert_eq!(failure.retries, 3);
    assert_eq!(failure.cause, TransportDead::BudgetExhausted);
    // The frame idled from first transmission to abandonment: at least the
    // RTO per retry round, on the layer's own virtual clock.
    assert!(
        failure.idle >= ReliableConfig::default().rto * 3,
        "idle {} too short for 3 retry rounds",
        failure.idle
    );
    // After abandonment nothing is pending: the starvation is detectable.
    assert_eq!(t.pending(Side::Accelerator), 0);
    assert_eq!(t.recovery_stats().retransmits, 3);
}

#[test]
fn both_directions_are_independent() {
    let mut t = reliable_over(FaultSpec::none(5), ReliableConfig::default());
    t.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![1]));
    t.send(
        Side::Accelerator,
        Packet::new(PacketTag::Handshake, vec![2]),
    );
    let to_acc = t.recv(Side::Accelerator).expect("sim->acc delivered");
    let to_sim = t.recv(Side::Simulator).expect("acc->sim delivered");
    assert_eq!(to_acc.payload(), &[1]);
    assert_eq!(to_sim.payload(), &[2]);
}

#[test]
fn recovery_stats_merge_adds_fields() {
    let mut a = RecoveryStats {
        retransmits: 1,
        acks_sent: 2,
        acks_piggybacked: 1,
        duplicates_suppressed: 3,
        crc_rejects: 4,
        out_of_order_drops: 5,
        overhead_words: 6,
        overhead_time: predpkt_sim::VirtualTime::from_nanos(7),
    };
    a.merge(&a.clone());
    assert_eq!(a.retransmits, 2);
    assert_eq!(a.acks_sent, 4);
    assert_eq!(a.acks_piggybacked, 2);
    assert_eq!(a.duplicates_suppressed, 6);
    assert_eq!(a.crc_rejects, 8);
    assert_eq!(a.out_of_order_drops, 10);
    assert_eq!(a.overhead_words, 12);
    assert_eq!(a.overhead_time, predpkt_sim::VirtualTime::from_nanos(14));
    assert_eq!(a.recovery_events(), 2 + 6 + 8 + 10);
    assert_eq!(a.ack_piggyback_ratio(), Some(0.5));
}
