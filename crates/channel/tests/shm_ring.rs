//! Shared-memory ring codec suite: wrap-around reassembly at every seam
//! offset, full-ring backpressure (both the surviving and the failing kind),
//! torn-frame detection after a peer crash mid-write, and the file-backed
//! region's header validation. The cross-transport conformance matrix in
//! `predpkt-core` proves sessions over the ring commit bit-identical
//! results; this suite pins down the ring mechanics themselves.

use predpkt_channel::shm::{RingError, MIN_RING_WORDS};
use predpkt_channel::{
    Packet, PacketTag, ShmEndpoint, ShmTransport, Side, Transport, WaitTransport,
};
use std::thread;
use std::time::{Duration, Instant};

const CAPACITY: u32 = 32;

/// Advances the sim→acc ring so its next frame starts exactly at word
/// `offset` within the ring (frames are at least two words, so small
/// offsets are reached by going once around).
fn rotate_to_offset(sim: &mut ShmEndpoint, acc: &mut ShmEndpoint, offset: u32) {
    let mut remaining = if offset < 4 {
        CAPACITY + offset
    } else {
        offset
    };
    while remaining > 0 {
        // Frames occupy prefix + tag + payload = 2 + payload words; an odd
        // remainder needs one 3-word frame, everything else drains as
        // 2-word frames.
        let payload_words = if remaining % 2 == 1 { 1 } else { 0 };
        sim.send(
            Side::Simulator,
            Packet::new(PacketTag::Handshake, vec![0xeeee; payload_words]),
        );
        assert!(acc.wait_for_packet(Duration::from_secs(5)));
        acc.recv(Side::Accelerator).expect("rotation frame");
        remaining -= 2 + payload_words as u32;
    }
}

#[test]
fn wraparound_reassembly_at_every_offset() {
    // For every seam offset in 1..=17: park the ring position exactly there,
    // shrink the publication chunk to `offset` words (so the consumer also
    // sees the frame arrive in `offset`-word slices), then push frames big
    // enough that one of them straddles the ring boundary. Payloads are
    // position-dependent so a mis-stitched wrap cannot pass.
    for offset in 1u32..=17 {
        let (mut sim, mut acc) = ShmTransport::pair_with_capacity(CAPACITY);
        assert_eq!(sim.capacity_words(), CAPACITY);
        rotate_to_offset(&mut sim, &mut acc, offset);
        sim.set_chunk_words(offset);
        for round in 0..3u32 {
            // 29-word frames (prefix + tag + 27 payload) in a 32-word ring:
            // consecutive frames cross the boundary at a different word
            // each round.
            let payload: Vec<u32> = (0..27).map(|i| offset << 16 | round << 8 | i).collect();
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::Burst, payload.clone()),
            );
            assert!(
                acc.wait_for_packet(Duration::from_secs(5)),
                "offset {offset} round {round}: frame never arrived"
            );
            let got = acc.recv(Side::Accelerator).expect("frame decodes");
            assert_eq!(got.tag(), PacketTag::Burst);
            assert_eq!(
                got.payload(),
                payload.as_slice(),
                "offset {offset} round {round}: wrap-around reassembly corrupted the payload"
            );
        }
        assert!(sim.last_error().is_none(), "offset {offset}");
        assert!(acc.last_error().is_none(), "offset {offset}");
    }
}

#[test]
fn full_ring_backpressure_delivers_everything_in_order() {
    // A 16-word ring holds at most a couple of frames; a slow consumer
    // forces the producer through the full-ring wait path on nearly every
    // send. Nothing may be lost, reordered, or corrupted.
    let (mut sim, mut acc) = ShmTransport::pair_with_capacity(16);
    let consumer = thread::spawn(move || {
        let mut got = Vec::new();
        while got.len() < 200 {
            if acc.wait_for_packet(Duration::from_secs(10)) {
                while let Some(p) = acc.recv(Side::Accelerator) {
                    got.push(p.payload().to_vec());
                }
            }
            // Stay slow enough that the ring saturates.
            thread::sleep(Duration::from_micros(200));
        }
        got
    });
    let mut sent = Vec::new();
    for i in 0..200u32 {
        let payload: Vec<u32> = (0..(i % 11)).map(|w| i * 100 + w).collect();
        sent.push(payload.clone());
        sim.send(
            Side::Simulator,
            Packet::new(PacketTag::CycleOutputs, payload),
        );
        assert!(
            sim.last_error().is_none(),
            "send {i} errored: {:?}",
            sim.last_error()
        );
    }
    let got = consumer.join().unwrap();
    assert_eq!(got, sent, "backpressured frames lost or reordered");
}

#[test]
fn full_ring_against_a_stuck_peer_fails_typed_not_forever() {
    // Nobody drains the ring: the producer must block for its (shortened)
    // send deadline, then record a typed Full error — and later sends must
    // be dropped on the floor, never panic or hang.
    let (mut sim, _acc) = ShmTransport::pair_with_capacity(8);
    sim.set_send_timeout(Duration::from_millis(50));
    let t0 = Instant::now();
    for _ in 0..4 {
        sim.send(Side::Simulator, Packet::new(PacketTag::Burst, vec![7; 3]));
        if sim.last_error().is_some() {
            break;
        }
    }
    assert!(
        matches!(sim.last_error(), Some(RingError::Full { capacity: 8, .. })),
        "expected a typed Full error, got {:?}",
        sim.last_error()
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the shortened deadline must bound the stall"
    );
    sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
}

#[test]
fn torn_frame_detected_after_peer_crash_mid_write() {
    // The peer publishes a frame prefix promising five wire words, delivers
    // two, and dies. The survivor must drain what exists, notice the peer is
    // gone with the decoder mid-frame, and report a typed TornFrame with the
    // missing byte count — never a hang or a panic.
    let (mut sim, mut acc) = ShmTransport::pair_with_capacity(CAPACITY);
    acc.inject_raw_words(&[5, PacketTag::Burst.encode(), 0xdead]);
    drop(acc);
    assert!(!sim.wait_for_packet(Duration::from_secs(5)));
    assert!(
        matches!(sim.last_error(), Some(RingError::TornFrame { missing: 12 })),
        "expected TornFrame with 3 words (12 bytes) missing, got {:?}",
        sim.last_error()
    );
    assert!(sim.recv(Side::Simulator).is_none());
    // A dead channel paces its waiters instead of hot-spinning them.
    let t0 = Instant::now();
    assert!(!sim.wait_for_packet(Duration::from_millis(30)));
    assert!(t0.elapsed() >= Duration::from_millis(25), "paced, not spun");
}

#[test]
fn clean_peer_exit_at_a_frame_boundary_is_not_torn() {
    // Same shape as the crash test, but the peer finishes its frame before
    // dropping: the survivor must deliver the frame and report a clean
    // close, not an error.
    let (mut sim, mut acc) = ShmTransport::pair_with_capacity(CAPACITY);
    acc.send(Side::Accelerator, Packet::new(PacketTag::Burst, vec![1, 2]));
    drop(acc);
    assert!(sim.wait_for_packet(Duration::from_secs(5)));
    assert_eq!(sim.recv(Side::Simulator).unwrap().payload(), &[1, 2]);
    assert!(!sim.wait_for_packet(Duration::from_millis(10)));
    assert!(sim.peer_closed());
    assert!(sim.last_error().is_none(), "{:?}", sim.last_error());
}

#[cfg(unix)]
mod file_backed {
    use super::*;
    use std::io::Write;

    fn region_path(tag: &str) -> std::path::PathBuf {
        let dir = std::path::Path::new("/dev/shm");
        let dir = if dir.is_dir() {
            dir.to_path_buf()
        } else {
            std::env::temp_dir()
        };
        dir.join(format!(
            "predpkt-shm-test-{}-{tag}.ring",
            std::process::id()
        ))
    }

    #[test]
    fn file_backed_pair_roundtrips_and_unlinks() {
        let (mut sim, mut acc) = ShmTransport::file_pair().expect("region file");
        for i in 0..50u32 {
            sim.send(
                Side::Simulator,
                Packet::new(PacketTag::CycleOutputs, vec![i, i + 1]),
            );
            assert!(acc.wait_for_packet(Duration::from_secs(5)));
            assert_eq!(acc.recv(Side::Accelerator).unwrap().payload(), &[i, i + 1]);
            acc.send(
                Side::Accelerator,
                Packet::new(PacketTag::ReportSuccess, vec![i]),
            );
            assert!(sim.wait_for_packet(Duration::from_secs(5)));
            assert_eq!(sim.recv(Side::Simulator).unwrap().payload(), &[i]);
        }
    }

    #[test]
    fn explicit_create_attach_shares_one_region() {
        // The true multi-process shape: one side creates at a path, the
        // other attaches by path (here from another thread; the file API is
        // identical across processes). The creator's drop unlinks the file.
        let path = region_path("explicit");
        let mut acc = ShmEndpoint::create(&path, Side::Accelerator).expect("create");
        let mut sim = ShmEndpoint::attach(&path, Side::Simulator).expect("attach");
        sim.send(Side::Simulator, Packet::new(PacketTag::Handshake, vec![]));
        assert!(acc.wait_for_packet(Duration::from_secs(5)));
        assert_eq!(
            acc.recv(Side::Accelerator).unwrap().tag(),
            PacketTag::Handshake
        );
        assert!(path.exists(), "region lives while the creator does");
        drop(acc);
        assert!(!path.exists(), "creator unlinks its region on drop");
        drop(sim);
    }

    #[test]
    fn create_never_reuses_an_existing_region_file() {
        let path = region_path("no-reuse");
        let first = ShmEndpoint::create(&path, Side::Accelerator).expect("create");
        let second = ShmEndpoint::create(&path, Side::Simulator);
        assert!(
            matches!(&second, Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists),
            "got {second:?}"
        );
        drop(first);
    }

    #[test]
    fn attach_rejects_missing_and_malformed_regions() {
        let missing = ShmEndpoint::attach(region_path("missing"), Side::Simulator);
        assert!(missing.is_err());

        // A file that is not a region at all: wrong magic.
        let path = region_path("garbage");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&[0u8; 256]).unwrap();
        }
        let garbage = ShmEndpoint::attach(&path, Side::Simulator);
        assert!(
            matches!(&garbage, Err(e) if e.kind() == std::io::ErrorKind::InvalidData),
            "got {garbage:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attach_rejects_corrupt_capacity() {
        // A structurally valid header whose capacity word was trampled (not
        // a power of two / below the floor) must be refused, not divided by.
        let path = region_path("corrupt-cap");
        let end = ShmEndpoint::create(&path, Side::Accelerator).expect("create");
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let bad_cap = (MIN_RING_WORDS - 1).max(3); // 3: not a power of two
            f.write_all_at(&bad_cap.to_le_bytes(), 8).unwrap();
        }
        let attached = ShmEndpoint::attach(&path, Side::Simulator);
        assert!(
            matches!(&attached, Err(e) if e.kind() == std::io::ErrorKind::InvalidData),
            "got {attached:?}"
        );
        drop(end);
    }
}
