//! Batch-path conformance at the transport level: for every backend,
//! `send_batch` must deliver a packet sequence bit-identical to the same
//! packets pushed through sequential `send` calls — coalescing is a physical
//! optimization, never a semantic one. The session-level cross-transport
//! harness (`predpkt-core`) proves the same property end-to-end; this suite
//! pins it where it is implemented, per backend, including the by-reference
//! batch entry points.

use predpkt_channel::{
    ChannelCostModel, FaultSpec, LossyTransport, Packet, PacketTag, QueueTransport, ReliableConfig,
    ReliableTransport, ShmTransport, Side, TcpTransport, Transport, WaitTransport,
};
use std::time::Duration;

/// An irregular packet mix: every tag class the protocol uses, payload sizes
/// from empty through a few dozen words, so frame boundaries land everywhere.
fn packet_mix() -> Vec<Packet> {
    (0..40u32)
        .map(|i| {
            let tag = PacketTag::ALL[i as usize % PacketTag::ALL.len()];
            let len = (i * 7 % 33) as usize;
            Packet::new(
                tag,
                (0..len as u32).map(|w| w ^ i.wrapping_mul(31)).collect(),
            )
        })
        .collect()
}

#[test]
fn queue_batch_matches_sequential() {
    let packets = packet_mix();
    let mut sequential = QueueTransport::new();
    for p in &packets {
        sequential.send(Side::Simulator, p.clone());
    }
    let mut batched = QueueTransport::new();
    batched.send_batch(Side::Simulator, &mut packets.clone());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    sequential.drain(Side::Accelerator, &mut a);
    batched.drain(Side::Accelerator, &mut b);
    assert_eq!(a, packets);
    assert_eq!(b, packets);
}

#[test]
fn lossy_faultless_batch_is_transparent() {
    let packets = packet_mix();
    let mut t = LossyTransport::over_queue(FaultSpec::none(3));
    t.send_batch(Side::Simulator, &mut packets.clone());
    let mut got = Vec::new();
    t.drain(Side::Accelerator, &mut got);
    assert_eq!(got, packets);
}

#[test]
fn lossy_seeded_batch_matches_sequential_fault_for_fault() {
    // The seeded fault stream is part of the contract: a batch must draw
    // exactly the faults the sequential sends would have drawn, so the
    // delivered sequence (and the fault counters) are identical.
    let packets = packet_mix();
    let spec = FaultSpec {
        drop_rate: 0.2,
        truncate_rate: 0.2,
        duplicate_rate: 0.2,
        ..FaultSpec::none(0x5eed)
    };
    let mut sequential = LossyTransport::over_queue(spec);
    for p in &packets {
        sequential.send(Side::Simulator, p.clone());
    }
    let mut batched = LossyTransport::over_queue(spec);
    batched.send_batch(Side::Simulator, &mut packets.clone());
    assert_eq!(sequential.fault_stats(), batched.fault_stats());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    sequential.drain(Side::Accelerator, &mut a);
    batched.drain(Side::Accelerator, &mut b);
    assert_eq!(a, b, "identical fault draws, identical deliveries");

    // The by-reference path draws the same stream too.
    let mut by_ref = LossyTransport::over_queue(spec);
    by_ref.send_batch_ref(Side::Simulator, &mut packets.iter());
    assert_eq!(by_ref.fault_stats(), batched.fault_stats());
    let mut c = Vec::new();
    by_ref.drain(Side::Accelerator, &mut c);
    assert_eq!(c, b);
}

#[test]
fn tcp_batch_matches_sequential_and_coalesces_writes() {
    let packets = packet_mix();
    let (mut seq_sim, mut seq_acc) = TcpTransport::loopback_pair().expect("loopback");
    for p in &packets {
        seq_sim.send(Side::Simulator, p.clone());
    }
    let (mut bat_sim, mut bat_acc) = TcpTransport::loopback_pair().expect("loopback");
    bat_sim.send_batch(Side::Simulator, &mut packets.clone());

    let recv_all = |end: &mut predpkt_channel::TcpEndpoint, n: usize| {
        let mut got = Vec::new();
        while got.len() < n {
            assert!(
                end.wait_for_packet(Duration::from_secs(10)),
                "socket starved at {}/{n}",
                got.len()
            );
            end.drain(Side::Accelerator, &mut got);
        }
        got
    };
    assert_eq!(recv_all(&mut seq_acc, packets.len()), packets);
    assert_eq!(recv_all(&mut bat_acc, packets.len()), packets);

    let seq_stats = seq_sim.batch_stats().unwrap();
    let bat_stats = bat_sim.batch_stats().unwrap();
    assert_eq!(seq_stats.frames, packets.len() as u64);
    assert_eq!(bat_stats.frames, packets.len() as u64);
    assert_eq!(
        seq_stats.physical_writes,
        packets.len() as u64,
        "sequential sends pay one write per frame"
    );
    assert_eq!(
        bat_stats.physical_writes, 1,
        "the batch coalesces into a single write"
    );
}

#[test]
fn shm_batch_matches_sequential_and_shares_publications() {
    let packets = packet_mix();
    let (mut seq_sim, mut seq_acc) = ShmTransport::pair();
    for p in &packets {
        seq_sim.send(Side::Simulator, p.clone());
    }
    let (mut bat_sim, mut bat_acc) = ShmTransport::pair();
    bat_sim.send_batch(Side::Simulator, &mut packets.clone());

    let (mut a, mut b) = (Vec::new(), Vec::new());
    seq_acc.drain(Side::Accelerator, &mut a);
    bat_acc.drain(Side::Accelerator, &mut b);
    assert_eq!(a, packets);
    assert_eq!(b, packets);

    let seq_stats = seq_sim.batch_stats().unwrap();
    let bat_stats = bat_sim.batch_stats().unwrap();
    assert_eq!(seq_stats.frames, packets.len() as u64);
    assert_eq!(bat_stats.frames, packets.len() as u64);
    assert!(
        bat_stats.physical_writes < seq_stats.physical_writes,
        "batching must share head publications: batch {} vs sequential {}",
        bat_stats.physical_writes,
        seq_stats.physical_writes
    );
    assert!(bat_stats.frames_per_write().unwrap() > 1.0);
}

#[test]
fn reliable_batch_matches_sequential_deliveries() {
    let packets = packet_mix();
    let pump = |t: &mut ReliableTransport<QueueTransport>, n: usize| {
        let mut got = Vec::new();
        for _ in 0..100_000 {
            if let Some(p) = t.recv(Side::Accelerator) {
                got.push(p);
            }
            let _ = t.recv(Side::Simulator);
            if got.len() == n {
                break;
            }
        }
        got
    };
    let mut sequential = ReliableTransport::new(
        QueueTransport::new(),
        ReliableConfig::default(),
        ChannelCostModel::iprove_pci(),
    );
    for p in &packets {
        sequential.send(Side::Simulator, p.clone());
    }
    let a = pump(&mut sequential, packets.len());
    let mut batched = ReliableTransport::new(
        QueueTransport::new(),
        ReliableConfig::default(),
        ChannelCostModel::iprove_pci(),
    );
    batched.send_batch(Side::Simulator, &mut packets.clone());
    let b = pump(&mut batched, packets.len());
    assert_eq!(a, packets, "sequential reliable path delivers in order");
    assert_eq!(b, packets, "batched reliable path delivers identically");
    // Framing overhead is identical: one header per frame either way (the
    // standalone-ack count may differ with polling cadence, so it is
    // subtracted out).
    let headers_only = |s: predpkt_channel::RecoveryStats| {
        s.overhead_words - 3 * (s.acks_sent - s.acks_piggybacked)
    };
    assert_eq!(
        headers_only(sequential.recovery_stats()),
        headers_only(batched.recovery_stats()),
        "same per-frame header bill regardless of batching"
    );
}

#[test]
fn send_ref_matches_owned_send_on_endpoints() {
    let packets = packet_mix();
    let (mut sim, mut acc) = ShmTransport::pair();
    for p in &packets {
        sim.send_ref(Side::Simulator, p);
    }
    let mut got = Vec::new();
    acc.drain(Side::Accelerator, &mut got);
    assert_eq!(got, packets);
}
