//! TCP frame-codec conformance: every packet kind must survive the
//! length-prefixed encoding bit-for-bit, and every malformed input — short
//! read, oversized or zero length prefix, garbage tag — must surface a typed
//! [`FrameError`], never a panic. The codec is the trust boundary between a
//! remote peer and the protocol engine, so the rejection paths matter as much
//! as the round-trips.

use predpkt_channel::tcp::{read_frame, write_frame, FrameDecoder, FrameError};
use predpkt_channel::{Packet, PacketTag, MAX_FRAME_WORDS};
use std::io::Cursor;

/// Encodes `packet` to bytes through the public writer.
fn encode(packet: &Packet) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, packet).expect("Vec writes are infallible");
    bytes
}

#[test]
fn every_packet_tag_roundtrips() {
    for (i, tag) in PacketTag::ALL.into_iter().enumerate() {
        // Vary the payload per tag so a tag/payload mix-up cannot cancel out.
        let payload: Vec<u32> = (0..i as u32 * 3).map(|w| w.wrapping_mul(0x9e37)).collect();
        let original = Packet::new(tag, payload);
        let bytes = encode(&original);
        assert_eq!(
            bytes.len() as u64,
            4 * (1 + original.wire_words()),
            "{tag}: prefix word + wire words"
        );
        let decoded = read_frame(&mut Cursor::new(&bytes)).expect("roundtrip");
        assert_eq!(decoded, original, "{tag}");
    }
}

#[test]
fn empty_payload_and_max_word_values_roundtrip() {
    for payload in [
        vec![],
        vec![0],
        vec![u32::MAX; 7],
        vec![0x0102_0304, u32::MAX, 0],
    ] {
        let original = Packet::new(PacketTag::Burst, payload);
        let decoded = read_frame(&mut Cursor::new(encode(&original))).expect("roundtrip");
        assert_eq!(decoded, original);
    }
}

#[test]
fn back_to_back_frames_keep_boundaries() {
    let packets: Vec<Packet> = (0..20u32)
        .map(|i| {
            Packet::new(
                PacketTag::ALL[i as usize % PacketTag::ALL.len()],
                vec![i; (i % 5) as usize],
            )
        })
        .collect();
    let mut stream = Vec::new();
    for p in &packets {
        write_frame(&mut stream, p).unwrap();
    }
    let mut cursor = Cursor::new(&stream);
    for expected in &packets {
        assert_eq!(&read_frame(&mut cursor).unwrap(), expected);
    }
    assert!(
        matches!(read_frame(&mut cursor), Err(FrameError::Closed)),
        "exactly the written frames, then a clean close"
    );
}

#[test]
fn short_read_in_prefix_is_truncation() {
    let bytes = encode(&Packet::new(PacketTag::Handshake, vec![]));
    match read_frame(&mut Cursor::new(&bytes[..2])) {
        Err(FrameError::Truncated { missing }) => assert_eq!(missing, 2),
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn short_read_in_body_is_truncation() {
    let bytes = encode(&Packet::new(PacketTag::Burst, vec![1, 2, 3]));
    // Cut one byte off the final payload word.
    match read_frame(&mut Cursor::new(&bytes[..bytes.len() - 1])) {
        Err(FrameError::Truncated { missing }) => assert_eq!(missing, 1),
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn eof_at_boundary_is_a_clean_close_not_truncation() {
    match read_frame(&mut Cursor::new(Vec::new())) {
        Err(FrameError::Closed) => {}
        other => panic!("expected Closed, got {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_rejected_before_allocation() {
    for words in [MAX_FRAME_WORDS + 1, u32::MAX] {
        let mut bytes = words.to_le_bytes().to_vec();
        bytes.extend_from_slice(&PacketTag::Handshake.encode().to_le_bytes());
        match read_frame(&mut Cursor::new(&bytes)) {
            Err(FrameError::Oversized { words: got }) => assert_eq!(got, words),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
    // The bound itself is legal — the prefix is validated, not the payload
    // bytes behind it (which this stream does not carry).
    let bytes = MAX_FRAME_WORDS.to_le_bytes().to_vec();
    assert!(matches!(
        read_frame(&mut Cursor::new(&bytes)),
        Err(FrameError::Truncated { .. })
    ));
}

#[test]
fn zero_length_prefix_rejected() {
    let bytes = 0u32.to_le_bytes().to_vec();
    match read_frame(&mut Cursor::new(&bytes)) {
        Err(FrameError::Empty) => {}
        other => panic!("expected Empty, got {other:?}"),
    }
}

#[test]
fn garbage_tag_rejected_with_the_offending_word() {
    let mut bytes = 2u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&0xdead_beefu32.to_le_bytes());
    bytes.extend_from_slice(&7u32.to_le_bytes());
    match read_frame(&mut Cursor::new(&bytes)) {
        Err(FrameError::UnknownTag { word }) => assert_eq!(word, 0xdead_beef),
        other => panic!("expected UnknownTag, got {other:?}"),
    }
}

#[test]
fn errors_render_their_cause() {
    let errors = [
        (FrameError::Closed, "closed"),
        (FrameError::Truncated { missing: 3 }, "3 bytes missing"),
        (FrameError::Oversized { words: u32::MAX }, "exceeds"),
        (FrameError::Empty, "zero-length"),
        (FrameError::UnknownTag { word: 0xdead_beef }, "0xdeadbeef"),
    ];
    for (err, needle) in errors {
        let rendered = err.to_string();
        assert!(rendered.contains(needle), "{rendered:?} lacks {needle:?}");
    }
}

#[test]
fn decoder_reassembles_frames_from_arbitrary_chunking() {
    let packets: Vec<Packet> = (0..12u32)
        .map(|i| Packet::new(PacketTag::CycleOutputs, vec![i; (i % 4) as usize]))
        .collect();
    let mut stream = Vec::new();
    for p in &packets {
        write_frame(&mut stream, p).unwrap();
    }
    // Feed the byte stream in every fixed chunk size from 1 to 17: frame
    // boundaries never align with chunk boundaries, and nothing may be lost
    // or reordered.
    for chunk in 1..=17 {
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(p) = decoder.next_frame().expect("well-formed stream") {
                decoded.push(p);
            }
        }
        assert_eq!(decoded, packets, "chunk size {chunk}");
        assert!(!decoder.is_mid_frame(), "chunk size {chunk}: fully drained");
    }
}

#[test]
fn decoder_rejects_corrupt_streams_without_panicking() {
    // Oversized prefix.
    let mut decoder = FrameDecoder::new();
    decoder.push(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decoder.next_frame(),
        Err(FrameError::Oversized { words: u32::MAX })
    ));
    // Zero prefix.
    let mut decoder = FrameDecoder::new();
    decoder.push(&0u32.to_le_bytes());
    assert!(matches!(decoder.next_frame(), Err(FrameError::Empty)));
    // Garbage tag behind a plausible prefix.
    let mut decoder = FrameDecoder::new();
    decoder.push(&1u32.to_le_bytes());
    decoder.push(&0x1234_5678u32.to_le_bytes());
    assert!(matches!(
        decoder.next_frame(),
        Err(FrameError::UnknownTag { word: 0x1234_5678 })
    ));
}

#[test]
fn decoder_reports_mid_frame_state_for_eof_classification() {
    let bytes = encode(&Packet::new(PacketTag::Burst, vec![1, 2]));
    let mut decoder = FrameDecoder::new();
    assert!(!decoder.is_mid_frame(), "fresh decoder is at a boundary");
    decoder.push(&bytes[..5]);
    assert!(decoder.next_frame().unwrap().is_none());
    assert!(decoder.is_mid_frame(), "partial frame buffered");
    decoder.push(&bytes[5..]);
    assert!(decoder.next_frame().unwrap().is_some());
    assert!(!decoder.is_mid_frame(), "boundary again after the frame");
}

#[test]
fn decoder_counts_the_bytes_still_owed() {
    // A 3-word frame (tag + 2 payload words) is 4 prefix + 12 body bytes.
    let bytes = encode(&Packet::new(PacketTag::Burst, vec![1, 2]));
    assert_eq!(bytes.len(), 16);
    let mut decoder = FrameDecoder::new();
    assert_eq!(decoder.missing_bytes(), 0, "at a boundary nothing is owed");
    decoder.push(&bytes[..2]);
    assert_eq!(decoder.missing_bytes(), 2, "prefix itself incomplete");
    decoder.push(&bytes[2..9]);
    assert_eq!(decoder.missing_bytes(), 7, "body partially arrived");
    decoder.push(&bytes[9..]);
    assert!(decoder.next_frame().unwrap().is_some());
    assert_eq!(decoder.missing_bytes(), 0, "frame consumed");
}
