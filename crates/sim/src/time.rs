//! Exact integer virtual time.
//!
//! All performance accounting in `predpkt` uses integer picoseconds. The paper's
//! channel constants (12.2 µs startup, 49.95 / 75.73 ns per word) and clock rates
//! (100 kcycles/s … 10 Mcycles/s) are all exactly representable, so every derived
//! figure in the evaluation is reproducible bit-for-bit across hosts — no
//! floating-point accumulation order effects.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, stored as integer picoseconds.
///
/// `VirtualTime` is an additive quantity: it supports `+`, `-`, scaling by an
/// integer count, and summation over iterators. Use [`VirtualTime::as_secs_f64`]
/// only at the reporting boundary.
///
/// # Example
///
/// ```
/// use predpkt_sim::VirtualTime;
/// let startup = VirtualTime::from_nanos(12_200); // 12.2 us
/// let word = VirtualTime::from_picos(49_950);    // 49.95 ns
/// let access = startup + word * 64;
/// assert_eq!(access.as_picos(), 12_200_000 + 64 * 49_950);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The zero span.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Creates a span from integer picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        VirtualTime(ps)
    }

    /// Creates a span from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualTime(ns * 1_000)
    }

    /// Creates a span from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us * 1_000_000)
    }

    /// Creates a span from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000_000_000)
    }

    /// Creates a span from seconds, rounding to the nearest picosecond.
    ///
    /// Intended for configuration input (e.g. "0.03 ns per variable"), not for
    /// accumulation.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "negative or non-finite time"
        );
        VirtualTime((secs * 1e12).round() as u64)
    }

    /// The span in integer picoseconds.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// The span in microseconds as a float (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow (≈ 213 days of virtual time).
    pub fn checked_add(self, rhs: VirtualTime) -> Option<VirtualTime> {
        self.0.checked_add(rhs.0).map(VirtualTime)
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl SubAssign for VirtualTime {
    fn sub_assign(&mut self, rhs: VirtualTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for VirtualTime {
    type Output = VirtualTime;
    fn mul(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 * rhs)
    }
}

impl Div<u64> for VirtualTime {
    type Output = VirtualTime;
    fn div(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 / rhs)
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> VirtualTime {
        iter.fold(VirtualTime::ZERO, Add::add)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

/// A count of clock cycles in one clock domain.
pub type CycleCount = u64;

/// A clock rate, stored as integer cycles per second.
///
/// The paper quotes simulator speeds in kcycles/s and accelerator speeds in
/// Mcycles/s; both constructors are provided. [`Frequency::cycle_time`] returns
/// the per-cycle [`VirtualTime`], rounding to the nearest picosecond (exact for
/// every rate used in the evaluation).
///
/// # Example
///
/// ```
/// use predpkt_sim::Frequency;
/// let acc = Frequency::from_mcycles_per_sec(10);
/// assert_eq!(acc.cycle_time().as_picos(), 100_000); // 100 ns
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    cycles_per_sec: u64,
}

impl Frequency {
    /// Creates a rate from cycles per second.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_sec` is zero.
    pub fn from_cycles_per_sec(cycles_per_sec: u64) -> Self {
        assert!(cycles_per_sec > 0, "frequency must be non-zero");
        Frequency { cycles_per_sec }
    }

    /// Creates a rate from kilocycles per second (the paper's simulator unit).
    pub fn from_kcycles_per_sec(kcycles: u64) -> Self {
        Self::from_cycles_per_sec(kcycles * 1_000)
    }

    /// Creates a rate from megacycles per second (the paper's accelerator unit).
    pub fn from_mcycles_per_sec(mcycles: u64) -> Self {
        Self::from_cycles_per_sec(mcycles * 1_000_000)
    }

    /// The rate in cycles per second.
    pub const fn cycles_per_sec(self) -> u64 {
        self.cycles_per_sec
    }

    /// The virtual time one cycle takes, rounded to the nearest picosecond.
    pub fn cycle_time(self) -> VirtualTime {
        // 1e12 ps / (cycles/s), rounded half-up.
        VirtualTime::from_picos((1_000_000_000_000 + self.cycles_per_sec / 2) / self.cycles_per_sec)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.cycles_per_sec;
        if c % 1_000_000 == 0 {
            write!(f, "{}Mcycles/s", c / 1_000_000)
        } else if c % 1_000 == 0 {
            write!(f, "{}kcycles/s", c / 1_000)
        } else {
            write!(f, "{c}cycles/s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(VirtualTime::from_nanos(1), VirtualTime::from_picos(1_000));
        assert_eq!(VirtualTime::from_micros(1), VirtualTime::from_nanos(1_000));
        assert_eq!(VirtualTime::from_millis(1), VirtualTime::from_micros(1_000));
    }

    #[test]
    fn arithmetic() {
        let a = VirtualTime::from_nanos(10);
        let b = VirtualTime::from_nanos(3);
        assert_eq!((a + b).as_picos(), 13_000);
        assert_eq!((a - b).as_picos(), 7_000);
        assert_eq!((a * 4).as_picos(), 40_000);
        assert_eq!((a / 2).as_picos(), 5_000);
        let mut c = a;
        c += b;
        assert_eq!(c.as_picos(), 13_000);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = VirtualTime::from_nanos(1);
        let b = VirtualTime::from_nanos(2);
        assert_eq!(a.saturating_sub(b), VirtualTime::ZERO);
        assert_eq!(b.saturating_sub(a), VirtualTime::from_nanos(1));
    }

    #[test]
    fn sum_over_iterator() {
        let total: VirtualTime = (1..=4).map(VirtualTime::from_nanos).sum();
        assert_eq!(total, VirtualTime::from_nanos(10));
    }

    #[test]
    fn from_secs_f64_rounds() {
        // 0.03 ns = 30 ps: the accelerator per-variable snapshot cost.
        assert_eq!(VirtualTime::from_secs_f64(0.03e-9).as_picos(), 30);
        assert_eq!(VirtualTime::from_secs_f64(0.0), VirtualTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn from_secs_f64_rejects_negative() {
        let _ = VirtualTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(VirtualTime::ZERO.to_string(), "0s");
        assert_eq!(VirtualTime::from_picos(5).to_string(), "5ps");
        assert_eq!(VirtualTime::from_nanos(12).to_string(), "12.000ns");
        assert_eq!(VirtualTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(VirtualTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(VirtualTime::from_millis(3_000).to_string(), "3.000s");
    }

    #[test]
    fn paper_channel_constants_are_exact() {
        // 12.2 us startup, 49.95 ns and 75.73 ns per word.
        assert_eq!(VirtualTime::from_nanos(12_200).as_picos(), 12_200_000);
        assert_eq!(VirtualTime::from_picos(49_950).as_secs_f64(), 49.95e-9);
        assert_eq!(VirtualTime::from_picos(75_730).as_secs_f64(), 75.73e-9);
    }

    #[test]
    fn paper_frequencies_are_exact() {
        assert_eq!(
            Frequency::from_kcycles_per_sec(100).cycle_time(),
            VirtualTime::from_micros(10)
        );
        assert_eq!(
            Frequency::from_kcycles_per_sec(1_000).cycle_time(),
            VirtualTime::from_micros(1)
        );
        assert_eq!(
            Frequency::from_mcycles_per_sec(10).cycle_time(),
            VirtualTime::from_nanos(100)
        );
    }

    #[test]
    fn frequency_display() {
        assert_eq!(
            Frequency::from_mcycles_per_sec(10).to_string(),
            "10Mcycles/s"
        );
        assert_eq!(
            Frequency::from_kcycles_per_sec(100).to_string(),
            "100kcycles/s"
        );
        assert_eq!(Frequency::from_cycles_per_sec(7).to_string(), "7cycles/s");
    }

    #[test]
    fn cycle_time_rounds_to_nearest() {
        // 3 cycles/s -> 333,333,333,333.33 ps, rounds to ...333 ps.
        assert_eq!(
            Frequency::from_cycles_per_sec(3).cycle_time().as_picos(),
            333_333_333_333
        );
        // 7 cycles/s -> 142,857,142,857.14 -> rounds down.
        assert_eq!(
            Frequency::from_cycles_per_sec(7).cycle_time().as_picos(),
            142_857_142_857
        );
    }

    #[test]
    #[should_panic(expected = "frequency must be non-zero")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_cycles_per_sec(0);
    }
}
