//! # predpkt-sim — cycle-based simulation kernel
//!
//! The substrate every other `predpkt` crate stands on. It provides the pieces a
//! hardware/software co-emulation needs *besides* the bus protocol itself:
//!
//! * [`VirtualTime`] / [`Frequency`] — exact integer virtual time in picoseconds,
//!   so performance accounting is deterministic and reproducible across hosts.
//! * [`TimeLedger`] — per-category cost accounting mirroring the paper's
//!   Table 2 rows (`Tsim`, `Tacc`, `Tstore`, `Trestore`, `Tch`).
//! * [`Snapshot`] / [`StateVec`] — the rollback framework: any component can be
//!   checkpointed into a flat word vector and restored bit-exactly, which is what
//!   the leader domain does before each optimistic run-ahead.
//! * [`Trace`] — an append-only, hashable, *rollback-aware* record of per-cycle
//!   values used to prove that optimistic execution commits exactly the same bus
//!   behaviour as a monolithic golden simulation.
//!
//! # Example
//!
//! ```
//! use predpkt_sim::{Frequency, TimeLedger, CostCategory, VirtualTime};
//!
//! let sim = Frequency::from_kcycles_per_sec(1_000); // 1,000 kcycles/sec
//! let mut ledger = TimeLedger::new();
//! for _ in 0..64 {
//!     ledger.charge(CostCategory::Simulator, sim.cycle_time());
//! }
//! assert_eq!(ledger.total(), VirtualTime::from_micros(64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ledger;
mod rng;
mod snapshot;
mod stats;
mod time;
mod trace;

pub use error::SimError;
pub use ledger::{CostCategory, LedgerReport, TimeLedger};
pub use rng::{splitmix64_mix, SplitMix64};
pub use snapshot::{
    restore_from_vec, save_to_vec, Snapshot, SnapshotError, StateReader, StateVec, StateWriter,
};
pub use stats::{Counter, RunningStats};
pub use time::{CycleCount, Frequency, VirtualTime};
pub use trace::{fnv1a64, Trace, TraceMark};
