//! Per-category virtual-time cost accounting.
//!
//! The paper evaluates the optimistic scheme by decomposing the time spent per
//! target clock cycle into five buckets (Table 2): simulator execution, accelerator
//! execution, leader state store, leader state restore, and channel access. The
//! [`TimeLedger`] accumulates exactly those buckets; [`LedgerReport`] normalizes
//! them per committed cycle and inverts the sum into a performance figure, which is
//! precisely how the paper computes its `Perform.` row
//! (`1 / (Tsim + Tacc + Tstore + Trest + Tch)`).

use crate::time::VirtualTime;
use std::fmt;

/// The cost buckets of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostCategory {
    /// Time spent by the software simulator executing target cycles (`Tsim.`).
    Simulator,
    /// Time spent by the hardware accelerator executing target cycles (`Tacc.`).
    Accelerator,
    /// Time spent storing leader state for possible rollback (`Tstore`).
    StateStore,
    /// Time spent restoring leader state on a rollback (`Trestore`).
    StateRestore,
    /// Time spent accessing the simulator–accelerator channel (`Tch.`).
    Channel,
}

impl CostCategory {
    /// All categories in the paper's row order.
    pub const ALL: [CostCategory; 5] = [
        CostCategory::Simulator,
        CostCategory::Accelerator,
        CostCategory::StateStore,
        CostCategory::StateRestore,
        CostCategory::Channel,
    ];

    fn index(self) -> usize {
        match self {
            CostCategory::Simulator => 0,
            CostCategory::Accelerator => 1,
            CostCategory::StateStore => 2,
            CostCategory::StateRestore => 3,
            CostCategory::Channel => 4,
        }
    }

    /// The paper's row label for this bucket.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Simulator => "Tsim.",
            CostCategory::Accelerator => "Tacc.",
            CostCategory::StateStore => "Tstore",
            CostCategory::StateRestore => "Trest.",
            CostCategory::Channel => "Tch.",
        }
    }
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates virtual time per [`CostCategory`].
///
/// The co-emulation model is serialized (the paper's performance arithmetic sums
/// the buckets), so the ledger's [`total`](TimeLedger::total) *is* the elapsed
/// virtual wall time of the co-emulation.
///
/// # Example
///
/// ```
/// use predpkt_sim::{CostCategory, TimeLedger, VirtualTime};
/// let mut ledger = TimeLedger::new();
/// ledger.charge(CostCategory::Channel, VirtualTime::from_nanos(12_200));
/// ledger.charge(CostCategory::Simulator, VirtualTime::from_micros(1));
/// assert_eq!(ledger.get(CostCategory::Channel), VirtualTime::from_nanos(12_200));
/// assert_eq!(ledger.total(), VirtualTime::from_picos(13_200_000));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeLedger {
    buckets: [VirtualTime; 5],
}

impl TimeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cost` to `category`.
    pub fn charge(&mut self, category: CostCategory, cost: VirtualTime) {
        self.buckets[category.index()] += cost;
    }

    /// The accumulated time in one bucket.
    pub fn get(&self, category: CostCategory) -> VirtualTime {
        self.buckets[category.index()]
    }

    /// The sum over all buckets (the serialized virtual wall time).
    pub fn total(&self) -> VirtualTime {
        self.buckets.iter().copied().sum()
    }

    /// Resets every bucket to zero.
    pub fn reset(&mut self) {
        self.buckets = Default::default();
    }

    /// Merges another ledger into this one, bucket by bucket.
    pub fn merge(&mut self, other: &TimeLedger) {
        for c in CostCategory::ALL {
            self.charge(c, other.get(c));
        }
    }

    /// Produces a per-cycle report over `committed_cycles` target cycles.
    ///
    /// # Panics
    ///
    /// Panics if `committed_cycles` is zero.
    pub fn report(&self, committed_cycles: u64) -> LedgerReport {
        assert!(
            committed_cycles > 0,
            "report requires at least one committed cycle"
        );
        LedgerReport {
            ledger: self.clone(),
            committed_cycles,
        }
    }
}

/// One word per Table 2 bucket, in [`CostCategory::ALL`] order.
impl crate::Snapshot for TimeLedger {
    fn save(&self, w: &mut crate::StateWriter<'_>) {
        for c in CostCategory::ALL {
            w.word(self.get(c).as_picos());
        }
    }

    fn restore(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::SnapshotError> {
        let mut buckets = [VirtualTime::ZERO; 5];
        for b in &mut buckets {
            *b = VirtualTime::from_picos(r.word()?);
        }
        self.buckets = buckets;
        Ok(())
    }
}

/// Per-committed-cycle view of a [`TimeLedger`]: the paper's Table 2 columns.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerReport {
    ledger: TimeLedger,
    committed_cycles: u64,
}

impl LedgerReport {
    /// Seconds spent in `category` per committed target cycle.
    pub fn per_cycle(&self, category: CostCategory) -> f64 {
        self.ledger.get(category).as_secs_f64() / self.committed_cycles as f64
    }

    /// Total seconds per committed target cycle.
    pub fn total_per_cycle(&self) -> f64 {
        self.ledger.total().as_secs_f64() / self.committed_cycles as f64
    }

    /// Emulation performance in target cycles per second
    /// (`1 / (Tsim + Tacc + Tstore + Trest + Tch)`, the paper's `Perform.` row).
    pub fn performance_cps(&self) -> f64 {
        1.0 / self.total_per_cycle()
    }

    /// The number of committed target cycles the report is normalized over.
    pub fn committed_cycles(&self) -> u64 {
        self.committed_cycles
    }

    /// The underlying raw ledger.
    pub fn ledger(&self) -> &TimeLedger {
        &self.ledger
    }
}

impl fmt::Display for LedgerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in CostCategory::ALL {
            writeln!(f, "{:<8} {:.3e} s/cycle", c.label(), self.per_cycle(c))?;
        }
        write!(f, "Perform. {:.1} cycles/sec", self.performance_cps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let ledger = TimeLedger::new();
        assert_eq!(ledger.total(), VirtualTime::ZERO);
        for c in CostCategory::ALL {
            assert_eq!(ledger.get(c), VirtualTime::ZERO);
        }
    }

    #[test]
    fn charges_accumulate_per_bucket() {
        let mut ledger = TimeLedger::new();
        ledger.charge(CostCategory::Simulator, VirtualTime::from_nanos(10));
        ledger.charge(CostCategory::Simulator, VirtualTime::from_nanos(5));
        ledger.charge(CostCategory::Channel, VirtualTime::from_nanos(7));
        assert_eq!(
            ledger.get(CostCategory::Simulator),
            VirtualTime::from_nanos(15)
        );
        assert_eq!(
            ledger.get(CostCategory::Channel),
            VirtualTime::from_nanos(7)
        );
        assert_eq!(ledger.get(CostCategory::Accelerator), VirtualTime::ZERO);
        assert_eq!(ledger.total(), VirtualTime::from_nanos(22));
    }

    #[test]
    fn reset_clears() {
        let mut ledger = TimeLedger::new();
        ledger.charge(CostCategory::StateStore, VirtualTime::from_nanos(30));
        ledger.reset();
        assert_eq!(ledger.total(), VirtualTime::ZERO);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = TimeLedger::new();
        a.charge(CostCategory::Simulator, VirtualTime::from_nanos(1));
        let mut b = TimeLedger::new();
        b.charge(CostCategory::Simulator, VirtualTime::from_nanos(2));
        b.charge(CostCategory::StateRestore, VirtualTime::from_nanos(4));
        a.merge(&b);
        assert_eq!(a.get(CostCategory::Simulator), VirtualTime::from_nanos(3));
        assert_eq!(
            a.get(CostCategory::StateRestore),
            VirtualTime::from_nanos(4)
        );
    }

    #[test]
    fn report_normalizes_per_cycle() {
        let mut ledger = TimeLedger::new();
        // 64 simulator cycles at 1 us each.
        ledger.charge(CostCategory::Simulator, VirtualTime::from_micros(64));
        let report = ledger.report(64);
        assert!((report.per_cycle(CostCategory::Simulator) - 1e-6).abs() < 1e-15);
        assert!((report.performance_cps() - 1e6).abs() < 1.0);
    }

    #[test]
    fn report_reproduces_paper_conventional_arithmetic() {
        // Conventional method, simulator at 1,000 kcycles/s: per cycle the paper
        // implies Tsim=1us, Tacc=0.1us, Tch = 2 accesses + ~3 words. The paper
        // quotes 38.9 kcycles/s.
        let mut ledger = TimeLedger::new();
        let cycles = 1_000u64;
        for _ in 0..cycles {
            ledger.charge(CostCategory::Simulator, VirtualTime::from_micros(1));
            ledger.charge(CostCategory::Accelerator, VirtualTime::from_nanos(100));
            // two startups + 2 words forward + 1 word back
            ledger.charge(
                CostCategory::Channel,
                VirtualTime::from_nanos(12_200) * 2
                    + VirtualTime::from_picos(49_950) * 2
                    + VirtualTime::from_picos(75_730),
            );
        }
        let perf = ledger.report(cycles).performance_cps();
        assert!((perf - 38_900.0).abs() < 200.0, "perf = {perf}");
    }

    #[test]
    #[should_panic(expected = "at least one committed cycle")]
    fn report_rejects_zero_cycles() {
        let _ = TimeLedger::new().report(0);
    }

    #[test]
    fn display_contains_all_rows() {
        let mut ledger = TimeLedger::new();
        ledger.charge(CostCategory::Channel, VirtualTime::from_micros(1));
        let text = ledger.report(1).to_string();
        for c in CostCategory::ALL {
            assert!(text.contains(c.label()), "missing {c}");
        }
        assert!(text.contains("Perform."));
    }
}
