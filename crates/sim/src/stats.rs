//! Lightweight counters and running statistics for instrumentation.

use std::fmt;

/// A saturating event counter.
///
/// # Example
///
/// ```
/// use predpkt_sim::Counter;
/// let mut rollbacks = Counter::new("rollbacks");
/// rollbacks.incr();
/// rollbacks.add(2);
/// assert_eq!(rollbacks.get(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// The display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Streaming mean/min/max over `f64` samples (Welford's online mean).
///
/// Used for run-length and accuracy statistics in reports; not a precision
/// instrument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.mean += (sample - self.mean) / self.count as f64;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest sample, or `None` before any sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` before any sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count, m, self.min, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "x=5");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("big");
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn stats_tracks_mean_min_max() {
        let mut s = RunningStats::new();
        for v in [2.0, 4.0, 6.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn stats_single_sample() {
        let mut s = RunningStats::new();
        s.push(-1.5);
        assert_eq!(s.mean(), Some(-1.5));
        assert_eq!(s.min(), Some(-1.5));
        assert_eq!(s.max(), Some(-1.5));
    }
}
