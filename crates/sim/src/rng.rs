//! Seeded SplitMix64 pseudo-randomness, shared across the workspace.
//!
//! Everything random in this codebase — fault injection, synthetic value
//! streams, randomized test-case generation — must be exactly reproducible
//! from a seed, so the one generator lives here rather than in per-crate
//! copies that could drift.

/// The SplitMix64 increment ("golden gamma").
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A keyed, stateless SplitMix64 draw: a pure function of `(seed, index)`.
///
/// Used where the process must be independent of call count — e.g. the
/// synthetic value stream keyed by cycle index, so rollback replays observe
/// identical values.
pub fn splitmix64_mix(seed: u64, index: u64) -> u64 {
    mix((seed ^ index.wrapping_mul(GAMMA)).wrapping_add(GAMMA))
}

/// A sequential SplitMix64 stream.
///
/// # Example
///
/// ```
/// use predpkt_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// let u = a.unit_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// A draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The stream cursor is one word of rollback state: checkpointing it is what
/// makes a restored fault-injection plan replay draw-for-draw identically to
/// the uninterrupted run.
impl crate::Snapshot for SplitMix64 {
    fn save(&self, w: &mut crate::StateWriter<'_>) {
        w.word(self.state);
    }

    fn restore(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::SnapshotError> {
        self.state = r.word()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keyed_draw_is_a_pure_function() {
        assert_eq!(splitmix64_mix(3, 10), splitmix64_mix(3, 10));
        assert_ne!(splitmix64_mix(3, 10), splitmix64_mix(3, 11));
        assert_ne!(splitmix64_mix(3, 10), splitmix64_mix(4, 10));
    }

    #[test]
    fn unit_stays_in_range_and_varies() {
        let mut rng = SplitMix64::new(1);
        let draws: Vec<f64> = (0..1000).map(|_| rng.unit_f64()).collect();
        assert!(draws.iter().all(|u| (0.0..1.0).contains(u)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn flip_is_roughly_fair() {
        let mut rng = SplitMix64::new(9);
        let heads = (0..10_000).filter(|_| rng.flip()).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads");
    }

    #[test]
    fn snapshot_resumes_the_stream_exactly() {
        use crate::{restore_from_vec, save_to_vec};
        let mut rng = SplitMix64::new(123);
        for _ in 0..17 {
            rng.next_u64();
        }
        let state = save_to_vec(&rng);
        assert_eq!(state.len(), 1, "the cursor is one rollback variable");
        let expected: Vec<u64> = {
            let mut probe = rng;
            (0..10).map(|_| probe.next_u64()).collect()
        };
        let mut resumed = SplitMix64::new(0);
        restore_from_vec(&mut resumed, &state).unwrap();
        let got: Vec<u64> = (0..10).map(|_| resumed.next_u64()).collect();
        assert_eq!(got, expected);
    }
}
