//! Kernel-level error type.

use crate::snapshot::SnapshotError;
use std::error::Error;
use std::fmt;

/// Failures surfaced by the simulation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A snapshot restore failed.
    Snapshot(SnapshotError),
    /// Both co-emulation domains blocked with no message in flight.
    Deadlock {
        /// Global cycle at which progress stopped.
        cycle: u64,
    },
    /// A configuration value was rejected.
    Config(String),
    /// The reliable channel layer abandoned a frame: either its
    /// retransmission budget ran out (the fault rate exceeded what the
    /// configured `retry_budget` can absorb), or the medium itself reported
    /// death while the frame was outstanding.
    RetryBudgetExhausted {
        /// Fault-injection seed of the run (0 when no fault injector was
        /// installed), so the failing case can be replayed exactly.
        seed: u64,
        /// Sequence number of the abandoned frame.
        seq: u64,
        /// Retransmissions attempted before giving up.
        retries: u32,
        /// Committed cycle at which recovery was abandoned.
        cycle: u64,
        /// Cumulative idle RTO time (picoseconds on the reliable layer's
        /// virtual clock) the frame spent unacknowledged, from its first
        /// transmission to abandonment.
        idle_picos: u64,
        /// `true` when the medium reported itself dead (severed link, reset
        /// socket) and the layer failed fast; `false` when the budget was
        /// burned with no death signal.
        peer_gone: bool,
    },
    /// A previous restore failed and left this component's state unusable;
    /// every further step is refused so a half-restored run can never
    /// silently diverge. Carries the [`SnapshotError`] that poisoned it.
    StatePoisoned(SnapshotError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Snapshot(e) => write!(f, "snapshot failure: {e}"),
            SimError::Deadlock { cycle } => write!(f, "co-emulation deadlock at cycle {cycle}"),
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::RetryBudgetExhausted {
                seed,
                seq,
                retries,
                cycle,
                idle_picos,
                peer_gone,
            } => write!(
                f,
                "reliable channel gave up at cycle {cycle}: frame seq {seq} abandoned \
                 after {retries} retransmissions and {:.3}us idle ({}; fault seed {seed})",
                *idle_picos as f64 / 1e6,
                if *peer_gone {
                    "peer gone"
                } else {
                    "retry budget exhausted"
                },
            ),
            SimError::StatePoisoned(e) => {
                write!(f, "state poisoned by an earlier failed restore: {e}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Snapshot(e) => Some(e),
            SimError::StatePoisoned(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for SimError {
    fn from(e: SnapshotError) -> Self {
        SimError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            SimError::Deadlock { cycle: 7 }.to_string(),
            "co-emulation deadlock at cycle 7"
        );
        assert_eq!(
            SimError::Config("bad depth".into()).to_string(),
            "invalid configuration: bad depth"
        );
        let wrapped = SimError::from(SnapshotError::Exhausted { at: 1 });
        assert!(wrapped.to_string().contains("snapshot failure"));
        let exhausted = SimError::RetryBudgetExhausted {
            seed: 0xfeed,
            seq: 42,
            retries: 8,
            cycle: 100,
            idle_picos: 800_000_000,
            peer_gone: false,
        };
        let text = exhausted.to_string();
        assert!(text.contains("seq 42"), "{text}");
        assert!(text.contains("seed 65261"), "{text}");
        assert!(text.contains("800.000us"), "{text}");
        assert!(text.contains("retry budget exhausted"), "{text}");
        let dead = SimError::RetryBudgetExhausted {
            seed: 0xfeed,
            seq: 42,
            retries: 0,
            cycle: 100,
            idle_picos: 0,
            peer_gone: true,
        };
        assert!(dead.to_string().contains("peer gone"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let wrapped = SimError::from(SnapshotError::Corrupt { at: 0 });
        assert!(wrapped.source().is_some());
        assert!(SimError::Deadlock { cycle: 0 }.source().is_none());
    }
}
