//! Rollback-aware deterministic traces.
//!
//! Correctness of the optimistic protocol is stated as a trace property: the
//! committed per-cycle bus signal values of a split co-emulation must be
//! bit-identical to a monolithic golden simulation. [`Trace`] stores one `Vec<u64>`
//! record per cycle, supports *truncation back to a mark* (so a leader can discard
//! speculative records on rollback), and hashes with FNV-1a for cheap equality
//! assertions in tests and benches.

use std::fmt;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a word slice with 64-bit FNV-1a (byte-serialized little-endian).
///
/// Deterministic across platforms; used to fingerprint traces without keeping
/// the full record around.
pub fn fnv1a64(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// A position in a [`Trace`] captured by [`Trace::mark`], used to truncate
/// speculative records on rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceMark(usize);

/// An append-only, truncatable record of per-cycle values.
///
/// # Example
///
/// ```
/// use predpkt_sim::Trace;
/// let mut trace = Trace::new();
/// trace.record(vec![1, 2, 3]);
/// let mark = trace.mark();
/// trace.record(vec![4, 5, 6]); // speculative
/// trace.truncate(mark);        // rolled back
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<Vec<u64>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one per-cycle record.
    pub fn record(&mut self, values: Vec<u64>) {
        self.records.push(values);
    }

    /// The number of recorded cycles.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Captures the current length as a rollback mark.
    pub fn mark(&self) -> TraceMark {
        TraceMark(self.records.len())
    }

    /// Discards every record after `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` lies beyond the current length (marks from a *different*
    /// trace or after records were already truncated).
    pub fn truncate(&mut self, mark: TraceMark) {
        assert!(
            mark.0 <= self.records.len(),
            "trace mark beyond current length"
        );
        self.records.truncate(mark.0);
    }

    /// Keeps only the first `len` records (no-op if already shorter). Useful
    /// for comparing a run that overshot against a shorter reference.
    pub fn truncate_to_len(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// Borrows the record of cycle `index`.
    pub fn get(&self, index: usize) -> Option<&[u64]> {
        self.records.get(index).map(Vec::as_slice)
    }

    /// Iterates over all committed records.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> {
        self.records.iter().map(Vec::as_slice)
    }

    /// A 64-bit fingerprint of the whole trace (length-prefixed per record, so
    /// record boundaries matter).
    pub fn hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for rec in &self.records {
            for b in (rec.len() as u64).to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            for &w in rec {
                for b in w.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(FNV_PRIME);
                }
            }
        }
        h
    }

    /// Returns the first cycle index at which `self` and `other` differ, or
    /// `None` if one is a prefix of the other (compare lengths separately) or
    /// they are equal.
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        self.records
            .iter()
            .zip(&other.records)
            .position(|(a, b)| a != b)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace[{} cycles, hash={:016x}]", self.len(), self.hash())
    }
}

/// Whole-trace serialization for session checkpoints. The committed trace is
/// deliberately *outside* every [`DomainModel`-level](crate::Snapshot)
/// snapshot (rollback truncates it with marks instead), so a whole-session
/// checkpoint captures it through this impl.
impl crate::Snapshot for Trace {
    fn save(&self, w: &mut crate::StateWriter<'_>) {
        w.usize(self.records.len());
        for rec in &self.records {
            w.slice(rec);
        }
    }

    fn restore(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::SnapshotError> {
        let n = r.usize()?;
        let mut records = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            records.push(r.slice()?);
        }
        self.records = records;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Empty input hashes to the offset basis.
        assert_eq!(fnv1a64(&[]), FNV_OFFSET);
        // Deterministic and input-sensitive.
        assert_ne!(fnv1a64(&[1]), fnv1a64(&[2]));
        assert_eq!(fnv1a64(&[1, 2, 3]), fnv1a64(&[1, 2, 3]));
    }

    #[test]
    fn record_and_get() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(vec![10, 20]);
        t.record(vec![30]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Some(&[10u64, 20][..]));
        assert_eq!(t.get(1), Some(&[30u64][..]));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn truncate_discards_speculation() {
        let mut t = Trace::new();
        t.record(vec![1]);
        let mark = t.mark();
        t.record(vec![2]);
        t.record(vec![3]);
        t.truncate(mark);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0), Some(&[1u64][..]));
    }

    #[test]
    fn truncate_to_current_mark_is_noop() {
        let mut t = Trace::new();
        t.record(vec![1]);
        let mark = t.mark();
        t.truncate(mark);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "trace mark beyond current length")]
    fn stale_mark_panics() {
        let mut t = Trace::new();
        t.record(vec![1]);
        let mark = t.mark();
        t.truncate(TraceMark(0));
        t.truncate(mark); // mark now beyond length
    }

    #[test]
    fn hash_differs_on_boundary_moves() {
        let mut a = Trace::new();
        a.record(vec![1, 2]);
        a.record(vec![3]);
        let mut b = Trace::new();
        b.record(vec![1]);
        b.record(vec![2, 3]);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn hash_equal_for_equal_traces() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        for i in 0..100u64 {
            a.record(vec![i, i * 2]);
            b.record(vec![i, i * 2]);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a, b);
    }

    #[test]
    fn first_divergence_found() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.record(vec![1]);
        b.record(vec![1]);
        a.record(vec![2]);
        b.record(vec![9]);
        assert_eq!(a.first_divergence(&b), Some(1));
        b.truncate(TraceMark(1));
        assert_eq!(a.first_divergence(&b), None); // prefix relation
    }

    #[test]
    fn display_shows_len_and_hash() {
        let mut t = Trace::new();
        t.record(vec![5]);
        let s = t.to_string();
        assert!(s.contains("1 cycles"));
        assert!(s.contains("hash="));
    }
}
