//! State snapshot / restore — the rollback substrate.
//!
//! Before each optimistic run-ahead the leader domain stores its complete state
//! ("rollback variables" in the paper); on a prediction failure it restores that
//! state and replays. Every component that lives in a leader-capable domain
//! implements [`Snapshot`]: it serializes its state into a flat [`StateVec`] of
//! `u64` words through a [`StateWriter`] and restores bit-exactly through a
//! [`StateReader`].
//!
//! The word count of a snapshot is the *number of rollback variables*, which
//! drives the store/restore cost model (the paper assumes 1,000 of them).

use std::error::Error;
use std::fmt;

/// A serialized component state: a flat vector of 64-bit words.
///
/// Produced by [`Snapshot::save`] via [`StateWriter`]; consumed by
/// [`Snapshot::restore`] via [`StateReader`].
///
/// Alongside the words it carries an optional table of *labeled sections*
/// (component name → starting word offset), written by
/// [`StateWriter::section`]. Sections are pure bookkeeping: they do not add
/// words, so [`len`](Self::len) — the rollback-variable count that drives the
/// store/restore cost model — is unaffected, and two state vectors compare
/// equal iff their **words** are equal.
#[derive(Debug, Clone, Default)]
pub struct StateVec {
    words: Vec<u64>,
    sections: Vec<(&'static str, usize)>,
}

impl StateVec {
    /// Creates an empty state vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of stored words (= rollback variables).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if no words are stored.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Borrows the raw words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The labeled sections, as `(name, starting word offset)` pairs in
    /// ascending offset order.
    pub fn sections(&self) -> &[(&'static str, usize)] {
        &self.sections
    }

    /// The name of the section covering word `at`, if any (the last section
    /// starting at or before `at`).
    pub fn section_at(&self, at: usize) -> Option<&'static str> {
        self.sections
            .iter()
            .rev()
            .find(|(_, start)| *start <= at)
            .map(|(name, _)| *name)
    }
}

impl PartialEq for StateVec {
    /// Word-for-word equality; section labels are diagnostics, not state.
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words
    }
}

impl Eq for StateVec {}

impl From<Vec<u64>> for StateVec {
    fn from(words: Vec<u64>) -> Self {
        StateVec {
            words,
            sections: Vec::new(),
        }
    }
}

/// Push-side cursor for building a [`StateVec`].
#[derive(Debug)]
pub struct StateWriter<'a> {
    out: &'a mut StateVec,
}

impl<'a> StateWriter<'a> {
    /// Creates a writer appending to `out`.
    pub fn new(out: &'a mut StateVec) -> Self {
        StateWriter { out }
    }

    /// Appends one raw word.
    pub fn word(&mut self, w: u64) -> &mut Self {
        self.out.words.push(w);
        self
    }

    /// Appends a `u32` (zero-extended).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.word(v as u64)
    }

    /// Appends a `usize` (zero-extended).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.word(v as u64)
    }

    /// Appends a `bool` as 0/1.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.word(v as u64)
    }

    /// Appends a length-prefixed slice of words.
    pub fn slice(&mut self, v: &[u64]) -> &mut Self {
        self.usize(v.len());
        for &w in v {
            self.word(w);
        }
        self
    }

    /// Appends a length-prefixed slice of `u32` words.
    pub fn slice_u32(&mut self, v: &[u32]) -> &mut Self {
        self.usize(v.len());
        for &w in v {
            self.u32(w);
        }
        self
    }

    /// Opens a labeled section starting at the current word offset. Costs no
    /// words — it only records `(name, offset)` in the [`StateVec`]'s section
    /// table, so a restore failure anywhere past this point (until the next
    /// section) is reported against `name` instead of a bare word index.
    pub fn section(&mut self, name: &'static str) -> &mut Self {
        self.out.sections.push((name, self.out.words.len()));
        self
    }
}

/// Pop-side cursor for consuming a [`StateVec`].
///
/// When the state vector carries [labeled sections](StateWriter::section),
/// every error this reader produces is wrapped in
/// [`SnapshotError::InSection`], naming the component whose words failed —
/// the difference between "corrupt at word 3127" and "corrupt in
/// `acc.model` at offset 12".
#[derive(Debug)]
pub struct StateReader<'a> {
    words: &'a [u64],
    sections: &'a [(&'static str, usize)],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Creates a reader over `state`.
    pub fn new(state: &'a StateVec) -> Self {
        StateReader {
            words: &state.words,
            sections: &state.sections,
            pos: 0,
        }
    }

    /// Wraps `err` (anchored at absolute word `at`) with the covering
    /// section's label, if any.
    fn label(&self, at: usize, err: SnapshotError) -> SnapshotError {
        match self.sections.iter().rev().find(|(_, start)| *start <= at) {
            Some((name, start)) => SnapshotError::InSection {
                section: name,
                offset: at - start,
                source: Box::new(err),
            },
            None => err,
        }
    }

    /// Reads one raw word.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Exhausted`] if the vector is consumed.
    pub fn word(&mut self) -> Result<u64, SnapshotError> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.label(self.pos, SnapshotError::Exhausted { at: self.pos }))?;
        self.pos += 1;
        Ok(w)
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Exhausted`] on underrun or
    /// [`SnapshotError::Corrupt`] if the word does not fit.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let w = self.word()?;
        u32::try_from(w)
            .map_err(|_| self.label(self.pos - 1, SnapshotError::Corrupt { at: self.pos - 1 }))
    }

    /// Reads a `usize`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateReader::u32`].
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let w = self.word()?;
        usize::try_from(w)
            .map_err(|_| self.label(self.pos - 1, SnapshotError::Corrupt { at: self.pos - 1 }))
    }

    /// Reads a `bool`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] unless the word is 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.word()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.label(self.pos - 1, SnapshotError::Corrupt { at: self.pos - 1 })),
        }
    }

    /// Reads a length-prefixed slice of words.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Exhausted`] on underrun.
    pub fn slice(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.usize()?;
        (0..n).map(|_| self.word()).collect()
    }

    /// Reads a length-prefixed slice of `u32` words.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateReader::u32`].
    pub fn slice_u32(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.usize()?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// The absolute index of the next word to be read.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Builds a section-labeled [`SnapshotError::Corrupt`] anchored at
    /// absolute word `at` — for components whose domain validation (tag
    /// decode, enum range) goes beyond what the typed readers check.
    pub fn corrupt_at(&self, at: usize) -> SnapshotError {
        self.label(at, SnapshotError::Corrupt { at })
    }

    /// Asserts the snapshot was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::TrailingWords`] if words remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.words.len() {
            Ok(())
        } else {
            Err(self.label(
                self.pos,
                SnapshotError::TrailingWords {
                    remaining: self.words.len() - self.pos,
                },
            ))
        }
    }
}

/// Failure while restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The reader ran past the end of the state vector.
    Exhausted {
        /// Word index at which the read was attempted.
        at: usize,
    },
    /// A word failed validation (wrong range for the target type).
    Corrupt {
        /// Word index of the offending word.
        at: usize,
    },
    /// `finish` found unconsumed words.
    TrailingWords {
        /// Number of words left unread.
        remaining: usize,
    },
    /// A failure inside a [labeled section](StateWriter::section): the
    /// component whose words failed, the offset *within* that component, and
    /// the underlying error (whose indices stay absolute).
    InSection {
        /// Name of the labeled section (component) covering the failure.
        section: &'static str,
        /// Word offset of the failure relative to the section start.
        offset: usize,
        /// The underlying failure.
        source: Box<SnapshotError>,
    },
}

impl SnapshotError {
    /// The labeled section (component name) the failure occurred in, if the
    /// state vector carried section labels.
    pub fn section(&self) -> Option<&'static str> {
        match self {
            SnapshotError::InSection { section, .. } => Some(section),
            _ => None,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Exhausted { at } => write!(f, "snapshot exhausted at word {at}"),
            SnapshotError::Corrupt { at } => write!(f, "snapshot corrupt at word {at}"),
            SnapshotError::TrailingWords { remaining } => {
                write!(f, "snapshot has {remaining} trailing words")
            }
            SnapshotError::InSection {
                section,
                offset,
                source,
            } => write!(f, "in component `{section}` (offset {offset}): {source}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::InSection { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A component whose state can be checkpointed and restored bit-exactly.
///
/// The round-trip law `restore(save(x)); save(x) == save(x)` is enforced by
/// the shared seeded harness in `crates/core/tests/snapshot_roundtrip.rs`,
/// which sweeps every `Snapshot` implementation in the workspace.
pub trait Snapshot {
    /// Serializes the complete dynamic state into `w`.
    fn save(&self, w: &mut StateWriter<'_>);

    /// Restores the state previously produced by [`save`](Snapshot::save).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the reader underruns or a word fails
    /// validation. On error the component may be left partially restored:
    /// callers that keep the component alive **must** quarantine it (the
    /// protocol engine poisons its wrapper, so every later step fails with
    /// [`SimError::StatePoisoned`](crate::SimError) instead of silently
    /// diverging).
    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError>;
}

/// Convenience: saves any [`Snapshot`] component into a fresh [`StateVec`].
pub fn save_to_vec<S: Snapshot + ?Sized>(component: &S) -> StateVec {
    let mut state = StateVec::new();
    let mut writer = StateWriter::new(&mut state);
    component.save(&mut writer);
    state
}

/// Convenience: restores any [`Snapshot`] component from a [`StateVec`],
/// asserting full consumption.
///
/// # Errors
///
/// Propagates any [`SnapshotError`] from the component or from trailing words.
pub fn restore_from_vec<S: Snapshot + ?Sized>(
    component: &mut S,
    state: &StateVec,
) -> Result<(), SnapshotError> {
    let mut reader = StateReader::new(state);
    component.restore(&mut reader)?;
    reader.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Widget {
        counter: u32,
        armed: bool,
        fifo: Vec<u32>,
    }

    impl Snapshot for Widget {
        fn save(&self, w: &mut StateWriter<'_>) {
            w.u32(self.counter).bool(self.armed).slice_u32(&self.fifo);
        }
        fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
            self.counter = r.u32()?;
            self.armed = r.bool()?;
            self.fifo = r.slice_u32()?;
            Ok(())
        }
    }

    #[test]
    fn roundtrip_restores_exactly() {
        let original = Widget {
            counter: 42,
            armed: true,
            fifo: vec![1, 2, 3],
        };
        let state = save_to_vec(&original);
        let mut copy = Widget {
            counter: 0,
            armed: false,
            fifo: vec![],
        };
        restore_from_vec(&mut copy, &state).unwrap();
        assert_eq!(copy, original);
    }

    #[test]
    fn word_count_tracks_rollback_variables() {
        let w = Widget {
            counter: 1,
            armed: false,
            fifo: vec![9; 5],
        };
        // counter + armed + length prefix + 5 entries = 8 words.
        assert_eq!(save_to_vec(&w).len(), 8);
    }

    #[test]
    fn exhausted_read_errors() {
        let state = StateVec::from(vec![7]);
        let mut r = StateReader::new(&state);
        assert_eq!(r.word().unwrap(), 7);
        assert_eq!(r.word(), Err(SnapshotError::Exhausted { at: 1 }));
    }

    #[test]
    fn bool_validation() {
        let state = StateVec::from(vec![2]);
        let mut r = StateReader::new(&state);
        assert_eq!(r.bool(), Err(SnapshotError::Corrupt { at: 0 }));
    }

    #[test]
    fn u32_range_validation() {
        let state = StateVec::from(vec![u64::MAX]);
        let mut r = StateReader::new(&state);
        assert_eq!(r.u32(), Err(SnapshotError::Corrupt { at: 0 }));
    }

    #[test]
    fn trailing_words_detected() {
        let w = Widget {
            counter: 1,
            armed: false,
            fifo: vec![],
        };
        let mut state = save_to_vec(&w);
        state.words.push(99);
        let mut copy = w.clone();
        assert_eq!(
            restore_from_vec(&mut copy, &state),
            Err(SnapshotError::TrailingWords { remaining: 1 })
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(
            SnapshotError::Exhausted { at: 3 }.to_string(),
            "snapshot exhausted at word 3"
        );
        assert_eq!(
            SnapshotError::Corrupt { at: 0 }.to_string(),
            "snapshot corrupt at word 0"
        );
        assert_eq!(
            SnapshotError::TrailingWords { remaining: 2 }.to_string(),
            "snapshot has 2 trailing words"
        );
    }

    #[test]
    fn sections_cost_no_words_and_label_errors() {
        let mut state = StateVec::new();
        let mut w = StateWriter::new(&mut state);
        w.section("alpha").u32(1).u32(2).section("beta").bool(true);
        assert_eq!(state.len(), 3, "section labels must not add words");
        assert_eq!(state.sections(), &[("alpha", 0), ("beta", 2)]);
        assert_eq!(state.section_at(0), Some("alpha"));
        assert_eq!(state.section_at(2), Some("beta"));

        // Corrupt beta's word: the error names the component.
        state.words[2] = 7; // not a valid bool
        let mut r = StateReader::new(&state);
        r.u32().unwrap();
        r.u32().unwrap();
        let err = r.bool().unwrap_err();
        assert_eq!(err.section(), Some("beta"));
        match &err {
            SnapshotError::InSection {
                section,
                offset,
                source,
            } => {
                assert_eq!(*section, "beta");
                assert_eq!(*offset, 0);
                assert_eq!(**source, SnapshotError::Corrupt { at: 2 });
            }
            other => panic!("expected InSection, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("beta"), "{text}");
        assert!(text.contains("corrupt at word 2"), "{text}");
    }

    #[test]
    fn section_labels_do_not_affect_equality() {
        let mut labeled = StateVec::new();
        StateWriter::new(&mut labeled).section("x").u32(5);
        let plain = StateVec::from(vec![5]);
        assert_eq!(labeled, plain);
    }

    #[test]
    fn exhaustion_past_last_section_is_labeled() {
        let mut state = StateVec::new();
        StateWriter::new(&mut state).section("tail").u32(1);
        let mut r = StateReader::new(&state);
        r.u32().unwrap();
        let err = r.word().unwrap_err();
        assert_eq!(err.section(), Some("tail"));
    }

    #[test]
    fn empty_component_roundtrip() {
        struct Empty;
        impl Snapshot for Empty {
            fn save(&self, _w: &mut StateWriter<'_>) {}
            fn restore(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
                Ok(())
            }
        }
        let state = save_to_vec(&Empty);
        assert!(state.is_empty());
        restore_from_vec(&mut Empty, &state).unwrap();
    }
}
